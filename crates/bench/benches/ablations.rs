//! Design-choice ablations (DESIGN.md Section 6): which model terms produce
//! the paper's shapes, and what the applications' tuning knobs trade off.

use hetero_fem::rd::{PrecondKind, RdConfig};
use hetero_hpc::apps::App;
use hetero_hpc::modeled::run_modeled;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_platform::catalog;
use hetero_simmpi::ClusterTopology;

fn modeled_total(
    platform: &hetero_platform::PlatformSpec,
    topo: &ClusterTopology,
    net: &hetero_simmpi::NetworkModel,
    ranks: usize,
) -> f64 {
    let run = run_modeled(
        &App::paper_rd(3),
        ranks,
        20,
        topo,
        net,
        platform.compute,
        2012,
    );
    run.iterations.last().unwrap().total
}

/// Ablation 1 — NIC sharing: all 16 ranks of a cc2.8xlarge share one
/// adapter. Keeping the 63-node topology but giving each rank a dedicated
/// 10 GbE port (node bandwidth x16, hypothetical hardware) removes a large
/// share of EC2's cost at scale — confirming the paper's own explanation
/// that per-node adapters are the bottleneck term.
fn ablate_nic_sharing() {
    println!("--- ablation: NIC sharing (RD, 1000 ranks, ec2 fabric, 63 nodes) ---");
    let ec2 = catalog::ec2();
    let topo = ClusterTopology::uniform(63, 16);
    let shared = modeled_total(&ec2, &topo, &ec2.network, 1000);
    let mut fat_net = ec2.network.clone();
    fat_net.node_bw *= 16.0;
    let private = modeled_total(&ec2, &topo, &fat_net, 1000);
    println!("  one 10GbE port per node (real)       : {shared:>8.2} s/iter");
    println!("  one 10GbE port per rank (hypothetical): {private:>8.2} s/iter");
    println!(
        "  sharing penalty                       : {:>8.2}x\n",
        shared / private
    );
    assert!(shared > private);
}

/// Ablation 2 — placement-group spread: sweep the cross-group latency
/// multiplier. At the study's parameters the spread penalty is mild, which
/// is exactly why Table II saw no benefit from a single placement group.
fn ablate_placement_spread() {
    println!("--- ablation: placement-group spread (RD, 1000 ranks on 63 nodes, 4 groups) ---");
    let ec2 = catalog::ec2();
    let mix_topo = ClusterTopology::round_robin_groups(63, 16, 4);
    let single = modeled_total(&ec2, &ClusterTopology::uniform(63, 16), &ec2.network, 1000);
    for lat_mult in [1.0f64, 1.25, 2.0, 4.0] {
        let mut net = ec2.network.clone();
        net.cross_group_lat_mult = lat_mult;
        net.cross_group_bw_mult = 1.0 / lat_mult.sqrt();
        let spread = modeled_total(&ec2, &mix_topo, &net, 1000);
        println!(
            "  cross-group latency x{lat_mult:<4}: mix {spread:>8.2} s/iter ({:>+5.1}% vs single group)",
            (spread / single - 1.0) * 100.0
        );
    }
    println!();
}

/// Ablation 3 — preconditioner choice: ILU(0) spends more in the
/// preconditioner phase to save Krylov iterations (and their latency-bound
/// dot products); Jacobi does the opposite. This is the phase trade-off
/// behind the paper's per-phase plots.
fn ablate_preconditioner() {
    println!(
        "--- ablation: RD preconditioner (numerical engine, 8 ranks x 5^3 cells, ellipse) ---"
    );
    for pk in [
        PrecondKind::None,
        PrecondKind::Jacobi,
        PrecondKind::Ssor,
        PrecondKind::Ilu0,
    ] {
        let app = App::Rd(RdConfig {
            precond: pk,
            steps: 3,
            ..RdConfig::default()
        });
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            discard: 1,
            ..RunRequest::new(catalog::ellipse(), app, 8, 5)
        };
        let out = execute(&req).unwrap();
        println!(
            "  {:<8} precond {:.4} s  solve {:.4} s  total {:.4} s  ({:>5.1} CG iters)",
            format!("{pk:?}"),
            out.phases.precond,
            out.phases.solve,
            out.phases.total,
            out.krylov_iters
        );
    }
    println!();
}

/// Ablation 4 — fabric contention exponent: the single knob behind EC2's
/// large-scale collapse. With full bisection (exponent 0) EC2 would
/// out-scale everything; the calibrated 1.7 reproduces the paper's cloud
/// curve.
fn ablate_contention() {
    println!("--- ablation: ec2 fabric contention exponent (RD, 1000 ranks) ---");
    let ec2 = catalog::ec2();
    let topo = ClusterTopology::uniform(63, 16);
    let lagrange = catalog::lagrange();
    let lagrange_343 = modeled_total(
        &lagrange,
        &ClusterTopology::uniform(29, 12),
        &lagrange.network,
        343,
    );
    for exp in [0.0f64, 0.75, 1.35, 1.7, 2.2] {
        let mut net = ec2.network.clone();
        net.oversubscription = exp;
        let t = modeled_total(&ec2, &topo, &net, 1000);
        println!("  exponent {exp:<5}: {t:>8.2} s/iter");
    }
    println!("  (reference: lagrange at its 343-rank limit: {lagrange_343:.2} s/iter)\n");
}

/// Extension — strong scaling: the paper only studies weak scaling; here a
/// fixed 64^3-cell RD problem is thrown at more and more cores of each
/// platform, the complementary question its Section VIII raises.
fn extension_strong_scaling() {
    use hetero_hpc::scenarios::{strong_scaling, ScenarioOptions};
    println!("--- extension: strong scaling (RD, fixed 64^3 mesh) ---");
    let opts = ScenarioOptions {
        steps: 3,
        discard: 1,
        ..ScenarioOptions::paper()
    };
    for platform in catalog::all_platforms() {
        let pts = strong_scaling(&platform, App::paper_rd, 64, &opts);
        print!("  {:<9}", platform.key);
        for p in &pts {
            print!(
                " {:>4}r: {:>5.2}x (eff {:>4.0}%) |",
                p.ranks,
                p.speedup,
                p.efficiency * 100.0
            );
        }
        println!();
    }
    println!();
}

fn main() {
    ablate_nic_sharing();
    ablate_placement_spread();
    ablate_preconditioner();
    ablate_contention();
    extension_strong_scaling();
}
