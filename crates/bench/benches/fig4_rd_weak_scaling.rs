//! Regenerates **Figure 4**: weak scaling of the RD 3-D simulation on the
//! four platforms (initial mesh 20^3 per rank, ranks 1..=1000), plus a
//! numerical-engine cross-check of the modeled rows at small scale.

use hetero_bench::write_artifact;
use hetero_hpc::report::{render_weak_scaling, weak_scaling_csv, weak_scaling_json};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_hpc::scenarios::{fig4, ScenarioOptions};
use hetero_hpc::{App, TraceSpec};
use hetero_platform::catalog;

fn main() {
    let opts = ScenarioOptions {
        trace: Some(TraceSpec::phases()),
        ..ScenarioOptions::paper()
    };
    println!("=== Figure 4: RD weak scaling (modeled engine, paper ladder) ===\n");
    let table = fig4(&opts);
    let text = render_weak_scaling(&table);
    println!("{text}");
    write_artifact("fig4.txt", &text);
    write_artifact("fig4.csv", &weak_scaling_csv(&table));
    write_artifact(
        "fig4.json",
        &serde_json::to_string_pretty(&weak_scaling_json(&table)).unwrap(),
    );

    // The campaign's trace artifact: phase spans of the largest feasible
    // EC2 cell, viewable in Perfetto.
    let cell = table
        .rows
        .iter()
        .rev()
        .find_map(|row| {
            row.cells
                .iter()
                .find_map(|(key, cell)| (key == "ec2").then(|| cell.as_ref().ok()).flatten())
        })
        .expect("the cloud column has a feasible cell");
    let trace = cell.trace.as_ref().expect("tracing was requested");
    write_artifact("fig4_ec2_trace.chrome.json", &trace.chrome_json());

    println!("=== numerical cross-check (threaded engine, 8 ranks x 10^3 cells) ===\n");
    for platform in catalog::all_platforms() {
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            discard: 2,
            trace: Some(TraceSpec::collectives()),
            ..RunRequest::new(platform, App::paper_rd(4), 8, 10)
        };
        let key = req.platform.key.clone();
        let out = execute(&req).expect("8 ranks fit everywhere");
        let v = out.verification.unwrap();
        println!(
            "{key:>9}: total {:.3} s/iter (assembly {:.3}, precond {:.3}, solve {:.3}); \
             exact-solution linf error {:.1e}",
            out.phases.total, out.phases.assembly, out.phases.precond, out.phases.solve, v.linf
        );
        assert!(v.linf < 1e-4, "{key}: verification failed");
        if key == "puma" {
            let t = out.trace.as_ref().expect("tracing was requested");
            write_artifact("fig4_numerical_trace.chrome.json", &t.chrome_json());
            write_artifact("fig4_numerical_trace.jsonl", &t.jsonl());
        }
    }
    println!(
        "\nartifacts: target/paper-artifacts/fig4.{{txt,csv,json}} \
         + fig4_ec2_trace.chrome.json + fig4_numerical_trace.{{chrome.json,jsonl}}"
    );
}
