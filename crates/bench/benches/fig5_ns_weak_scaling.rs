//! Regenerates **Figure 5**: weak scaling of the Navier-Stokes 3-D
//! simulation (Ethier-Steinman benchmark) on the four platforms.

use hetero_bench::write_artifact;
use hetero_hpc::report::{render_weak_scaling, weak_scaling_csv, weak_scaling_json};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_hpc::scenarios::{fig5, ScenarioOptions};
use hetero_hpc::{App, TraceSpec};
use hetero_platform::catalog;

fn main() {
    let opts = ScenarioOptions {
        trace: Some(TraceSpec::phases()),
        ..ScenarioOptions::paper()
    };
    println!("=== Figure 5: NS weak scaling (modeled engine, paper ladder) ===\n");
    let table = fig5(&opts);
    let text = render_weak_scaling(&table);
    println!("{text}");
    write_artifact("fig5.txt", &text);
    write_artifact("fig5.csv", &weak_scaling_csv(&table));
    write_artifact(
        "fig5.json",
        &serde_json::to_string_pretty(&weak_scaling_json(&table)).unwrap(),
    );

    // The paper's qualitative reading of the figure.
    let t = |r: usize, p: &str| table.outcome(r, p).map(|o| o.phases.total);
    println!("paper checkpoints:");
    println!(
        "  NS does not scale well anywhere: ec2 1 -> 125 ranks = {:.2}x",
        t(125, "ec2").unwrap() / t(1, "ec2").unwrap()
    );
    println!(
        "  most efficient machine is lagrange: {:?} s/iter at its largest feasible size",
        t(table.max_feasible_ranks("lagrange"), "lagrange").unwrap()
    );
    println!(
        "  at 27 ranks ec2 ({:.1} s) rivals lagrange ({:.1} s) and beats puma ({:.1} s)",
        t(27, "ec2").unwrap(),
        t(27, "lagrange").unwrap(),
        t(27, "puma").unwrap()
    );

    println!("\n=== numerical cross-check (threaded engine, 8 ranks x 5^3 cells) ===\n");
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        discard: 1,
        trace: Some(TraceSpec::collectives()),
        ..RunRequest::new(catalog::ec2(), App::paper_ns(3), 8, 5)
    };
    let out = execute(&req).unwrap();
    let v = out.verification.unwrap();
    println!(
        "ec2 numerical: total {:.3} s/iter; Ethier-Steinman velocity linf error {:.2e}",
        out.phases.total, v.linf
    );
    assert!(v.linf < 0.05);
    let t = out.trace.as_ref().expect("tracing was requested");
    write_artifact("fig5_numerical_trace.chrome.json", &t.chrome_json());
    println!(
        "\nartifacts: target/paper-artifacts/fig5.{{txt,csv,json}} \
         + fig5_numerical_trace.chrome.json"
    );
}
