//! Regenerates **Figure 6**: per-iteration costs of the test architectures
//! for the RD weak-scaling benchmark, including the "ec2 mix" cost-aware
//! curve.

use hetero_bench::write_artifact;
use hetero_hpc::report::render_cost_curves;
use hetero_hpc::scenarios::{fig6, ScenarioOptions};

fn main() {
    let opts = ScenarioOptions::paper();
    let (table, curves) = fig6(&opts);
    let text = render_cost_curves("RD", &curves);
    println!("{text}");
    write_artifact("fig6.txt", &text);

    let mut csv = String::from("curve,ranks,cost_usd_per_iteration\n");
    for c in &curves {
        for &(ranks, cost) in &c.points {
            csv.push_str(&format!("{},{},{:.6}\n", c.label, ranks, cost));
        }
    }
    write_artifact("fig6.csv", &csv);

    // The whole-node billing effect the paper highlights in the first two
    // points of the chart.
    let ec2 = curves.iter().find(|c| c.label == "ec2").unwrap();
    let rate = |ranks: usize| {
        let cost = ec2.points.iter().find(|&&(r, _)| r == ranks).unwrap().1;
        let t = table.outcome(ranks, "ec2").unwrap().phases.total;
        cost / (ranks as f64 * t / 3600.0)
    };
    println!("paper checkpoints:");
    println!(
        "  whole-instance billing: effective $/core-h at 1 rank = {:.2}, at 16+ ranks = {:.3}",
        rate(1),
        rate(27)
    );
    println!("\nartifacts: target/paper-artifacts/fig6.{{txt,csv}}");
}
