//! Regenerates **Figure 7**: per-iteration costs of the test architectures
//! for the Navier-Stokes weak-scaling benchmark — the chart behind the
//! paper's headline cost finding that with the cost-aware (spot) strategy
//! "EC2 costs less than our on-premise cluster and is faster as well".

use hetero_bench::write_artifact;
use hetero_hpc::report::render_cost_curves;
use hetero_hpc::scenarios::{fig7, ScenarioOptions};

fn main() {
    let opts = ScenarioOptions::paper();
    let (table, curves) = fig7(&opts);
    let text = render_cost_curves("NS", &curves);
    println!("{text}");
    write_artifact("fig7.txt", &text);

    let mut csv = String::from("curve,ranks,cost_usd_per_iteration\n");
    for c in &curves {
        for &(ranks, cost) in &c.points {
            csv.push_str(&format!("{},{},{:.6}\n", c.label, ranks, cost));
        }
    }
    write_artifact("fig7.csv", &csv);

    let at = |label: &str, ranks: usize| -> Option<f64> {
        curves
            .iter()
            .find(|c| c.label == label)?
            .points
            .iter()
            .find(|&&(r, _)| r == ranks)
            .map(|&(_, c)| c)
    };
    println!("paper checkpoints (NS at 64 ranks):");
    let t_puma = table.outcome(64, "puma").unwrap().phases.total;
    let t_ec2 = table.outcome(64, "ec2").unwrap().phases.total;
    println!(
        "  time: ec2 {:.1} s vs puma {:.1} s ({}x faster)",
        t_ec2,
        t_puma,
        (t_puma / t_ec2 * 10.0).round() / 10.0
    );
    println!(
        "  cost: ec2 mix {:.4} $ vs puma {:.4} $ per iteration",
        at("ec2 mix", 64).unwrap(),
        at("puma", 64).unwrap()
    );
    println!("\nartifacts: target/paper-artifacts/fig7.{{txt,csv}}");
}
