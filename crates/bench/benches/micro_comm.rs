//! Criterion micro-benchmarks of the simulation substrate itself: how fast
//! the host executes the virtual-time runtime, the analytic replay, and the
//! partitioners. These bound the harness's own cost, not simulated time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_hpc::apps::App;
use hetero_hpc::modeled::run_modeled;
use hetero_mesh::StructuredHexMesh;
use hetero_partition::{
    refine::kl_refine, BlockPartitioner, DualGraph, GreedyPartitioner, Partitioner, RcbPartitioner,
};
use hetero_platform::catalog;
use hetero_simmpi::collectives::ReduceOp;
use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, Payload, SpmdConfig};
use std::hint::black_box;

fn cfg(size: usize) -> SpmdConfig {
    SpmdConfig {
        size,
        topo: ClusterTopology::uniform(size.div_ceil(4).max(1), 4),
        net: NetworkModel::gigabit_ethernet(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 3,
    }
}

fn bench_threaded_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_allreduce");
    g.sample_size(10);
    for p in [4usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                let r = run_spmd(cfg(p), |comm| {
                    let mut acc = 0.0;
                    for _ in 0..20 {
                        acc = comm.allreduce_scalar(ReduceOp::Sum, 1.0);
                    }
                    acc
                });
                black_box(r[0].value)
            });
        });
    }
    g.finish();
}

fn bench_threaded_pingpong(c: &mut Criterion) {
    c.bench_function("threaded_pingpong_1000msgs", |bench| {
        bench.iter(|| {
            run_spmd(cfg(2), |comm| {
                if comm.rank() == 0 {
                    for _ in 0..500 {
                        comm.send(1, 1, Payload::F64(vec![1.0; 64]));
                        let _ = comm.recv_f64(1, 2);
                    }
                } else {
                    for _ in 0..500 {
                        let v = comm.recv_f64(0, 1);
                        comm.send(0, 2, Payload::F64(v));
                    }
                }
            });
        });
    });
}

fn bench_modeled_replay(c: &mut Criterion) {
    // The analytic engine's host cost for one full paper-scale RD run: this
    // is what makes 1000-rank sweeps cheap.
    let ec2 = catalog::ec2();
    let mut g = c.benchmark_group("modeled_replay_rd");
    g.sample_size(10);
    for ranks in [64usize, 1000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(ranks),
            &ranks,
            |bench, &ranks| {
                let topo = ec2.topology(ranks);
                bench.iter(|| {
                    black_box(run_modeled(
                        &App::paper_rd(8),
                        ranks,
                        20,
                        &topo,
                        &ec2.network,
                        ec2.compute,
                        7,
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mesh = StructuredHexMesh::unit_cube(20); // the paper's per-rank mesh
    let mut g = c.benchmark_group("partition_8000_cells");
    g.sample_size(10);
    g.bench_function("block", |bench| {
        bench.iter(|| black_box(BlockPartitioner.partition(&mesh, 8)));
    });
    g.bench_function("rcb", |bench| {
        bench.iter(|| black_box(RcbPartitioner.partition(&mesh, 8)));
    });
    g.bench_function("greedy_plus_kl", |bench| {
        let graph = DualGraph::from_mesh(&mesh);
        bench.iter(|| {
            let mut asg = GreedyPartitioner.partition(&mesh, 8);
            let stats = kl_refine(&graph, &mut asg, 8, 1.1, 4);
            black_box((asg, stats))
        });
    });
    g.finish();
}

criterion_group!(
    name = comm;
    config = Criterion::default().sample_size(10);
    targets = bench_threaded_allreduce, bench_threaded_pingpong, bench_modeled_replay, bench_partitioners
);
criterion_main!(comm);
