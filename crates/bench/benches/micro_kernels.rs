//! Criterion micro-benchmarks of the real numerical kernels: these measure
//! *host* throughput of the from-scratch implementations (SpMV, element
//! integration, ILU(0), CG), independent of the virtual-time simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_fem::assembly::scalar_kernels;
use hetero_fem::element::ElementOrder;
use hetero_linalg::csr::TripletBuilder;
use hetero_linalg::precond::{IluZero, Jacobi, Preconditioner};
use hetero_linalg::solver::{cg, SolveOptions};
use hetero_linalg::{DistMatrix, DistVector, ExchangePlan};
use hetero_mesh::Point3;
use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
use std::hint::black_box;

fn laplacian_3d(n: usize) -> DistMatrix {
    // 7-point stencil on an n^3 grid.
    let total = n * n * n;
    let id = |i: usize, j: usize, k: usize| i + n * (j + n * k);
    let mut b = TripletBuilder::with_capacity(total, total, 7 * total);
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let r = id(i, j, k);
                b.add(r, r, 6.0);
                if i > 0 {
                    b.add(r, id(i - 1, j, k), -1.0);
                }
                if i + 1 < n {
                    b.add(r, id(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    b.add(r, id(i, j - 1, k), -1.0);
                }
                if j + 1 < n {
                    b.add(r, id(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    b.add(r, id(i, j, k - 1), -1.0);
                }
                if k + 1 < n {
                    b.add(r, id(i, j, k + 1), -1.0);
                }
            }
        }
    }
    DistMatrix::new(b.build(), ExchangePlan::empty())
}

fn serial_cfg() -> SpmdConfig {
    SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    }
}

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    for n in [16usize, 32] {
        let a = laplacian_3d(n);
        g.throughput(Throughput::Elements(a.nnz() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n * n * n), &a, |bench, a| {
            let x = vec![1.0f64; a.n_local()];
            let mut y = vec![0.0f64; a.n_owned()];
            bench.iter(|| {
                a.local().spmv(black_box(&x), &mut y);
                black_box(&y);
            });
        });
    }
    g.finish();
}

fn bench_element_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("element_kernels");
    for order in [ElementOrder::Q1, ElementOrder::Q2] {
        g.bench_function(format!("{order:?}"), |bench| {
            bench.iter(|| black_box(scalar_kernels(order, Point3::splat(0.05))));
        });
    }
    g.finish();
}

fn bench_ilu0_factorization(c: &mut Criterion) {
    let a = laplacian_3d(16);
    c.bench_function("ilu0_factor_4096", |bench| {
        bench.iter(|| {
            run_spmd(serial_cfg(), |comm| {
                black_box(IluZero::new(black_box(&a), comm));
            });
        });
    });
}

fn bench_cg_solve(c: &mut Criterion) {
    let a = laplacian_3d(12);
    c.bench_function("cg_jacobi_1728", |bench| {
        bench.iter(|| {
            run_spmd(serial_cfg(), |comm| {
                let jac = Jacobi::new(&a, comm);
                let mut b = a.new_vector();
                b.fill(1.0);
                let mut x = a.new_vector();
                let stats = cg(&a, &b, &mut x, &jac, SolveOptions::default(), comm);
                assert!(stats.converged);
                black_box(stats.iterations)
            });
        });
    });
}

fn bench_precond_apply(c: &mut Criterion) {
    let a = laplacian_3d(16);
    let mut g = c.benchmark_group("precond_apply_4096");
    g.bench_function("jacobi", |bench| {
        bench.iter(|| {
            run_spmd(serial_cfg(), |comm| {
                let m = Jacobi::new(&a, comm);
                let r = DistVector::from_values(vec![1.0; a.n_owned()], a.n_owned());
                let mut z = a.new_vector();
                for _ in 0..10 {
                    m.apply(&r, &mut z, comm);
                }
                black_box(z.owned()[0])
            });
        });
    });
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_spmv, bench_element_integration, bench_ilu0_factorization, bench_cg_solve, bench_precond_apply
);
criterion_main!(kernels);
