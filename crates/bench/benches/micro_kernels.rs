//! Criterion micro-benchmarks of the real numerical kernels: these measure
//! *host* throughput of the from-scratch implementations (SpMV, element
//! integration, ILU(0), CG), independent of the virtual-time simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_fem::assembly::{assemble_matrix, scalar_kernels, MatrixAssembly};
use hetero_fem::dofmap::DofMap;
use hetero_fem::element::ElementOrder;
use hetero_linalg::csr::TripletBuilder;
use hetero_linalg::precond::{IluZero, Jacobi, Preconditioner};
use hetero_linalg::solver::{cg, SolveOptions};
use hetero_linalg::{DistMatrix, DistVector, ExchangePlan};
use hetero_mesh::{DistributedMesh, Point3, StructuredHexMesh};
use hetero_partition::{BlockPartitioner, Partitioner};
use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SimComm, SpmdConfig};
use std::hint::black_box;
use std::sync::Arc;

/// Triplet stream of the 7-point stencil on an `n^3` grid, plus its values
/// in insertion order (the input `SparsityPattern::numeric` consumes).
fn laplacian_triplets(n: usize) -> (TripletBuilder, Vec<f64>) {
    let total = n * n * n;
    let id = |i: usize, j: usize, k: usize| i + n * (j + n * k);
    let mut b = TripletBuilder::with_capacity(total, total, 7 * total);
    let mut vals = Vec::with_capacity(7 * total);
    let add = |b: &mut TripletBuilder, vals: &mut Vec<f64>, r: usize, c: usize, v: f64| {
        b.add(r, c, v);
        vals.push(v);
    };
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let r = id(i, j, k);
                add(&mut b, &mut vals, r, r, 6.0);
                if i > 0 {
                    add(&mut b, &mut vals, r, id(i - 1, j, k), -1.0);
                }
                if i + 1 < n {
                    add(&mut b, &mut vals, r, id(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    add(&mut b, &mut vals, r, id(i, j - 1, k), -1.0);
                }
                if j + 1 < n {
                    add(&mut b, &mut vals, r, id(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    add(&mut b, &mut vals, r, id(i, j, k - 1), -1.0);
                }
                if k + 1 < n {
                    add(&mut b, &mut vals, r, id(i, j, k + 1), -1.0);
                }
            }
        }
    }
    (b, vals)
}

fn laplacian_3d(n: usize) -> DistMatrix {
    // 7-point stencil on an n^3 grid.
    let (b, _) = laplacian_triplets(n);
    DistMatrix::new(b.build(), ExchangePlan::empty())
}

/// Runs `f` on a single simulated rank with a Q2 `DofMap` over an
/// `n^3`-cell unit cube, returning the rank's result.
fn run_rank<T: Send + 'static>(
    n: usize,
    f: impl Fn(&DofMap, &mut SimComm) -> T + Send + Sync,
) -> T {
    let mesh = StructuredHexMesh::unit_cube(n);
    let assignment = Arc::new(BlockPartitioner.partition(&mesh, 1));
    run_spmd(serial_cfg(), move |comm| {
        let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), 0, 1);
        let dm = DofMap::build(&dmesh, ElementOrder::Q2, comm);
        f(&dm, comm)
    })
    .pop()
    .expect("one rank was launched")
    .value
}

fn serial_cfg() -> SpmdConfig {
    SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    }
}

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    for n in [16usize, 32] {
        let a = laplacian_3d(n);
        g.throughput(Throughput::Elements(a.nnz() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n * n * n), &a, |bench, a| {
            let x = vec![1.0f64; a.n_local()];
            let mut y = vec![0.0f64; a.n_owned()];
            bench.iter(|| {
                a.local().spmv(black_box(&x), &mut y);
                black_box(&y);
            });
        });
    }
    g.finish();
}

fn bench_element_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("element_kernels");
    for order in [ElementOrder::Q1, ElementOrder::Q2] {
        g.bench_function(format!("{order:?}"), |bench| {
            bench.iter(|| black_box(scalar_kernels(order, Point3::splat(0.05))));
        });
    }
    g.finish();
}

fn bench_ilu0_factorization(c: &mut Criterion) {
    let a = laplacian_3d(16);
    c.bench_function("ilu0_factor_4096", |bench| {
        bench.iter(|| {
            run_spmd(serial_cfg(), |comm| {
                black_box(IluZero::new(black_box(&a), comm));
            });
        });
    });
}

fn bench_cg_solve(c: &mut Criterion) {
    let a = laplacian_3d(12);
    c.bench_function("cg_jacobi_1728", |bench| {
        bench.iter(|| {
            run_spmd(serial_cfg(), |comm| {
                let jac = Jacobi::new(&a, comm);
                let mut b = a.new_vector();
                b.fill(1.0);
                let mut x = a.new_vector();
                let stats = cg(&a, &b, &mut x, &jac, SolveOptions::default(), comm);
                assert!(stats.converged);
                black_box(stats.iterations)
            });
        });
    });
}

fn bench_assembly_modes(c: &mut Criterion) {
    // Per-step system assembly the way the BDF2 time loops drive it: eight
    // matrix assemblies per iteration, all paying the same DofMap setup
    // inside `run_spmd`, so the spread between variants is per-step cost.
    // "from_scratch" re-sorts the full triplet stream on every call;
    // "symbolic_reuse" sorts once and then only scatters values through the
    // cached pattern; the 4-thread variant additionally integrates cells in
    // fixed 32-cell chunks on an explicit rayon pool.
    const STEPS: usize = 8;
    let n = 5;
    let kern = scalar_kernels(ElementOrder::Q2, Point3::splat(1.0 / n as f64));
    let mut g = c.benchmark_group("assembly_q2_125cells");
    g.bench_function("8_steps_from_scratch", |bench| {
        bench.iter(|| {
            run_rank(n, |dm, comm| {
                for _ in 0..STEPS {
                    black_box(assemble_matrix(dm, dm, comm, 2, |_i, out| {
                        out.copy_from_slice(&kern.stiffness);
                    }));
                }
            })
        });
    });
    g.bench_function("8_steps_symbolic_reuse", |bench| {
        bench.iter(|| {
            run_rank(n, |dm, comm| {
                let mut asm = MatrixAssembly::new(2);
                for _ in 0..STEPS {
                    black_box(asm.assemble(dm, dm, comm, |_i, out| {
                        out.copy_from_slice(&kern.stiffness);
                    }));
                }
            })
        });
    });
    g.bench_function("8_steps_symbolic_reuse_4threads", |bench| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("the vendored pool builder cannot fail");
        bench.iter(|| {
            run_rank(n, |dm, comm| {
                pool.install(|| {
                    let mut asm = MatrixAssembly::new(2);
                    for _ in 0..STEPS {
                        black_box(asm.assemble(dm, dm, comm, |_i, out| {
                            out.copy_from_slice(&kern.stiffness);
                        }));
                    }
                })
            })
        });
    });
    g.finish();
}

fn bench_matrix_rebuild(c: &mut Criterion) {
    // The symbolic/numeric split: rebuilding a 4096-row matrix from the
    // cached pattern vs. a from-scratch build (which must clone the triplet
    // stream, since `build` consumes the builder, and re-sort it).
    let (builder, vals) = laplacian_triplets(16);
    let pattern = builder.symbolic();
    let mut g = c.benchmark_group("matrix_rebuild_4096");
    g.bench_function("triplet_build", |bench| {
        bench.iter(|| black_box(builder.clone().build()));
    });
    g.bench_function("symbolic_numeric", |bench| {
        bench.iter(|| black_box(pattern.numeric(black_box(&vals))));
    });
    g.finish();
}

fn bench_spmv_threads(c: &mut Criterion) {
    // 32^3 rows is far above the parallel-SpMV cutoff, so the installed
    // pool size is the only difference between the variants.
    let a = laplacian_3d(32);
    let x = vec![1.0f64; a.n_local()];
    let mut g = c.benchmark_group("spmv_32768_threads");
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("the vendored pool builder cannot fail");
        g.bench_function(format!("{threads}_threads"), |bench| {
            let mut y = vec![0.0f64; a.n_owned()];
            bench.iter(|| {
                pool.install(|| a.local().spmv(black_box(&x), &mut y));
                black_box(y[0])
            });
        });
    }
    g.finish();
}

fn bench_precond_apply(c: &mut Criterion) {
    let a = laplacian_3d(16);
    let mut g = c.benchmark_group("precond_apply_4096");
    g.bench_function("jacobi", |bench| {
        bench.iter(|| {
            run_spmd(serial_cfg(), |comm| {
                let m = Jacobi::new(&a, comm);
                let r = DistVector::from_values(vec![1.0; a.n_owned()], a.n_owned());
                let mut z = a.new_vector();
                for _ in 0..10 {
                    m.apply(&r, &mut z, comm);
                }
                black_box(z.owned()[0])
            });
        });
    });
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_spmv, bench_element_integration, bench_assembly_modes, bench_matrix_rebuild,
        bench_spmv_threads, bench_ilu0_factorization, bench_cg_solve, bench_precond_apply
);
criterion_main!(kernels);
