//! Regenerates **Table I** (the platform capability matrix with the
//! remediation annotations) and the **Section VI** provisioning effort
//! report.

use hetero_bench::write_artifact;
use hetero_hpc::report::render_table1;
use hetero_hpc::scenarios::table1;

fn main() {
    let t = table1();
    let text = render_table1(&t);
    println!("{text}");
    write_artifact("table1.txt", &text);

    println!("paper checkpoints:");
    for plan in &t.plans {
        let expect = match plan.platform.as_str() {
            "puma" => "home environment, no preconditioning needed",
            "ellipse" => "\"about 8 man-hours of work by an experienced member\"",
            "lagrange" => "\"about 8 man-hours for the LifeV developer\"",
            "ec2" => "\"provisioning of a machine took about a day\"",
            _ => "",
        };
        println!(
            "  {:<9} {:>5.1} h  — {expect}",
            plan.platform,
            plan.total_hours()
        );
    }
    println!("\nartifact: target/paper-artifacts/table1.txt");
}
