//! Regenerates **Table II**: comparison of two EC2 cc2.8xlarge assemblies —
//! fully paid instances in a single placement group ("full") vs spot
//! requests in various placement groups ("mix") — for the RD application.

use hetero_bench::write_artifact;
use hetero_hpc::report::render_table2;
use hetero_hpc::scenarios::{table2, ScenarioOptions};

fn main() {
    let opts = ScenarioOptions::paper();
    let rows = table2(&opts);
    let text = render_table2(&rows);
    println!("{text}");
    write_artifact("table2.txt", &text);

    let mut csv = String::from(
        "ranks,nodes,full_time_s,full_cost_usd,mix_time_s,mix_est_cost_usd,mix_spot_nodes\n",
    );
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{:.4},{:.6},{:.4},{:.6},{}\n",
            r.ranks,
            r.nodes,
            r.full_time,
            r.full_cost,
            r.mix_time,
            r.mix_est_cost,
            r.mix_spot_nodes
        ));
    }
    write_artifact("table2.csv", &csv);

    println!("paper checkpoints:");
    let last = rows.last().unwrap();
    println!(
        "  'regular allocation in a single placement group does not introduce any\n\
         \x20  performance benefits': mix/full time at 1000 ranks = {:.3}",
        last.mix_time / last.full_time
    );
    println!(
        "  '...despite costing four times as much': on-demand/spot rate = {:.2}x",
        2.40 / 0.54
    );
    println!(
        "  'we never succeeded in establishing a full 63-host configuration of spot\n\
         \x20  request instances': acquired {}/63 from spot",
        last.mix_spot_nodes
    );
    println!("\nartifacts: target/paper-artifacts/table2.{{txt,csv}}");
}
