//! Regenerates **Table III** (extension): expected time and dollar cost of
//! the RD application on EC2 under faults — on-demand (hardware crashes
//! only, restart from scratch) vs spot-with-restart under the live
//! revocation market — across checkpoint cadences. This is the table the
//! paper could not produce: its spot experiments never survived long enough
//! ("we never succeeded in establishing a full 63-host configuration of
//! spot request instances").

use hetero_bench::write_artifact;
use hetero_hpc::report::{render_table3, table3_json};
use hetero_hpc::scenarios::{table3, ResilienceOptions};

fn main() {
    let opts = ResilienceOptions::paper();
    let rows = table3(&opts);
    let text = render_table3(&rows);
    println!("{text}");
    write_artifact("table3.txt", &text);

    let mut csv =
        String::from("ranks,nodes,config,cadence,expected_s,expected_usd,completion_rate,mean_attempts,mean_lost_work_s,mean_checkpoint_s\n");
    let mut push = |ranks: usize,
                    nodes: usize,
                    config: &str,
                    cadence: usize,
                    c: &hetero_hpc::scenarios::Table3Cell| {
        csv.push_str(&format!(
            "{},{},{},{},{:.2},{:.4},{:.3},{:.2},{:.2},{:.2}\n",
            ranks,
            nodes,
            config,
            cadence,
            c.expected_seconds,
            c.expected_dollars,
            c.completion_rate,
            c.mean_attempts,
            c.mean_lost_work,
            c.mean_checkpoint_seconds
        ));
    };
    for row in &rows {
        push(row.ranks, row.nodes, "on_demand", 0, &row.on_demand);
        for (cadence, cell) in &row.spot {
            push(row.ranks, row.nodes, "spot_restart", *cadence, cell);
        }
    }
    write_artifact("table3.csv", &csv);
    write_artifact(
        "table3.json",
        &serde_json::to_string_pretty(&table3_json(&rows)).expect("finite JSON tree"),
    );

    println!("paper checkpoints:");
    // Spot-with-restart wins on expected dollars at small-to-mid scale,
    // where fleets fill from spot capacity and revocations are rare price
    // spikes rather than capacity losses.
    for row in rows.iter().filter(|r| r.ranks <= 216) {
        let best = row
            .spot
            .iter()
            .find(|&&(c, _)| c == row.best_cadence())
            .expect("best cadence is in the sweep");
        assert!(
            best.1.expected_dollars < row.on_demand.expected_dollars,
            "ranks {}: spot {} vs on-demand {}",
            row.ranks,
            best.1.expected_dollars,
            row.on_demand.expected_dollars
        );
    }
    let mid = rows
        .iter()
        .find(|r| r.ranks == 216)
        .expect("ladder has 216");
    let mid_best = mid
        .spot
        .iter()
        .find(|&&(c, _)| c == mid.best_cadence())
        .unwrap();
    println!(
        "  spot-with-restart undercuts on-demand through 216 ranks \
         (at 216: {:.2} $ vs {:.2} $, {:.1}x)",
        mid_best.1.expected_dollars,
        mid.on_demand.expected_dollars,
        mid.on_demand.expected_dollars / mid_best.1.expected_dollars
    );

    // At the largest scale revocations are frequent (spot capacity crosses
    // the fleet size every few epochs) and the checkpoint cadence shows an
    // interior optimum: checkpointing every step wastes I/O, never
    // checkpointing re-executes entire campaigns.
    let last = rows.last().expect("ladder is non-empty");
    let dollars_at = |cadence: usize| {
        last.spot
            .iter()
            .find(|&&(c, _)| c == cadence)
            .map(|(_, cell)| cell.expected_dollars)
            .expect("cadence is in the sweep")
    };
    let best = last.best_cadence();
    assert!(
        best != 1 && best != 0,
        "cadence optimum must be interior, got {best}"
    );
    assert!(dollars_at(best) < dollars_at(1), "too-frequent must lose");
    assert!(dollars_at(best) < dollars_at(0), "too-rare must lose");
    println!(
        "  checkpoint cadence sweet spot at {} ranks: every {} steps \
         ({:.2} $ vs {:.2} $ every step, {:.2} $ never)",
        last.ranks,
        best,
        dollars_at(best),
        dollars_at(1),
        dollars_at(0)
    );

    println!("\nartifacts: target/paper-artifacts/table3.{{txt,csv,json}}");
}
