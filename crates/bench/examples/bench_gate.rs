//! CI regression gate over kernel snapshots: compares a freshly measured
//! `BENCH_kernels*.json` against the committed baseline and exits nonzero
//! if any timing kernel regressed beyond the tolerance.
//!
//! ```text
//! cargo run --release -p hetero-bench --example bench_gate -- \
//!     BENCH_kernels_smoke.json target/BENCH_kernels_smoke.json [tolerance]
//! ```
//!
//! `tolerance` is fractional (default `0.25` = a kernel may be up to 25%
//! slower than the baseline before the build fails). Only `_ns` leaves are
//! gated; derived ratios and host descriptors are ignored, new kernels
//! pass, deleted kernels fail.

use hetero_bench::gate::compare_snapshots;
use std::process::ExitCode;

fn load(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("bench_gate: {path} is not JSON: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <current.json> [tolerance]");
            return ExitCode::from(2);
        }
    };
    let tolerance: f64 = args
        .get(2)
        .map(|t| t.parse().expect("tolerance must be a number like 0.25"))
        .unwrap_or(0.25);

    let report = compare_snapshots(&load(baseline_path), &load(current_path), tolerance);
    print!("{}", report.render());
    if report.checks.is_empty() {
        eprintln!("bench_gate: baseline {baseline_path} has no _ns kernels — wrong file?");
        return ExitCode::from(2);
    }
    if report.passed() {
        println!(
            "bench_gate: PASS ({} kernels within tolerance, {} skipped)",
            report.checks.len(),
            report.skipped.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_gate: FAIL ({} regressions)",
            report.regressions().len()
        );
        ExitCode::FAILURE
    }
}
