//! Emits `BENCH_kernels.json`: median host-time ns/op for the hot kernels
//! the PR-2 optimisations target — per-step matrix assembly (from-scratch
//! vs. symbolic-reuse, 1 vs. 4 threads), the symbolic/numeric matrix
//! rebuild split, and SpMV at explicit pool sizes — plus the fault-path
//! kernels of the PR-3 recovery loop (checkpoint capture/serialize and
//! parse/restore) and the PR-4 trace-recording overhead (a full numerical
//! run with the event sink off vs. on). The PR-7 kernel-floor additions:
//! SELL-C-σ / blocked-CSR SpMV (SIMD when built with `--features simd`),
//! the matrix-free per-step operator refresh, and incremental dirty-block
//! checkpoint deltas.
//!
//! Run from the repo root so the snapshot lands next to the other artifacts:
//!
//! ```text
//! cargo run --release --example bench_snapshot            # BENCH_kernels.json
//! cargo run --release --example bench_snapshot -- --smoke # BENCH_kernels_smoke.json
//! ```
//!
//! `--smoke` measures the same kernels at reduced sizes with fewer samples
//! — the CI-sized variant the bench-smoke job regenerates on every push
//! and gates against the committed `BENCH_kernels_smoke.json` via the
//! `bench_gate` example. The two snapshots use the same size-neutral key
//! names (sizes are recorded as data fields), so the gate compares smoke
//! to smoke and full to full without key translation.
//!
//! The `host_cores` field records how much hardware parallelism the machine
//! that produced the snapshot actually had: on a 1-core container the
//! 4-thread numbers cannot beat the serial ones, and the snapshot says so
//! rather than hiding it.

use hetero_fem::assembly::{assemble_matrix, scalar_kernels, MatrixAssembly};
use hetero_fem::dofmap::DofMap;
use hetero_fem::element::ElementOrder;
use hetero_hpc::snapshot::{Snapshot, SnapshotDelta};
use hetero_linalg::csr::TripletBuilder;
use hetero_linalg::precond::Identity;
use hetero_linalg::solver::{cg, SolveOptions, SolverVariant};
use hetero_linalg::{fused_dots, sell, BlockedCsr, DistMatrix, ExchangePlan, SellCs};
use hetero_mesh::{DistributedMesh, StructuredHexMesh};
use hetero_partition::{BlockPartitioner, Partitioner};
use hetero_plan::load_str;
use hetero_simmpi::{
    run_spmd, run_spmd_opts, ClusterTopology, ComputeModel, EngineOpts, FaultPlan, NetworkModel,
    Payload, SpmdConfig,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Median of `samples` timings of `iters` calls each, in ns per call. One
/// untimed warm-up call populates caches (and, for cached assembly, the
/// symbolic structure).
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut xs: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Triplet stream of the 7-point stencil on an `n^3` grid plus its values
/// in insertion order.
fn laplacian_triplets(n: usize) -> (TripletBuilder, Vec<f64>) {
    let total = n * n * n;
    let id = |i: usize, j: usize, k: usize| i + n * (j + n * k);
    let mut b = TripletBuilder::with_capacity(total, total, 7 * total);
    let mut vals = Vec::with_capacity(7 * total);
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let r = id(i, j, k);
                let mut add = |c: usize, v: f64| {
                    b.add(r, c, v);
                    vals.push(v);
                };
                add(r, 6.0);
                if i > 0 {
                    add(id(i - 1, j, k), -1.0);
                }
                if i + 1 < n {
                    add(id(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    add(id(i, j - 1, k), -1.0);
                }
                if j + 1 < n {
                    add(id(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    add(id(i, j, k - 1), -1.0);
                }
                if k + 1 < n {
                    add(id(i, j, k + 1), -1.0);
                }
            }
        }
    }
    (b, vals)
}

struct AssemblyTimes {
    from_scratch: f64,
    reuse_1t: f64,
    reuse_4t: f64,
}

/// Times Q2 system assembly on an `n^3`-cell mesh inside one simulated
/// rank, the way the BDF2 loops drive it every time step.
fn time_assembly(n: usize, samples: usize) -> AssemblyTimes {
    let cfg = SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    };
    let mesh = StructuredHexMesh::unit_cube(n);
    let assignment = Arc::new(BlockPartitioner.partition(&mesh, 1));
    run_spmd(cfg, move |comm| {
        let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), 0, 1);
        let dm = DofMap::build(&dmesh, ElementOrder::Q2, comm);
        let kern = scalar_kernels(ElementOrder::Q2, mesh.cell_size());
        let cell = |_i: usize, out: &mut [f64]| out.copy_from_slice(&kern.stiffness);

        let from_scratch = median_ns(samples, 2, || {
            black_box(assemble_matrix(&dm, &dm, comm, 2, cell));
        });

        let mut asm = MatrixAssembly::new(2);
        let reuse_1t = median_ns(samples, 2, || {
            black_box(asm.assemble(&dm, &dm, comm, cell));
        });

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("the vendored pool builder cannot fail");
        let mut asm4 = MatrixAssembly::new(2);
        let reuse_4t = pool.install(|| {
            median_ns(samples, 2, || {
                black_box(asm4.assemble(&dm, &dm, comm, cell));
            })
        });

        AssemblyTimes {
            from_scratch,
            reuse_1t,
            reuse_4t,
        }
    })
    .pop()
    .expect("one rank was launched")
    .value
}

struct MatFreeTimes {
    assembled: f64,
    matrix_free: f64,
}

/// Times one solve-step operator refresh of an RD-style Q2 system
/// (`m_coeff·M + k_coeff·K`, coefficients varying per step) two ways: the
/// assembled path (`MatrixAssembly::assemble`, which allocates a fresh
/// matrix every step) against the matrix-free backend
/// (`assemble_in_place`, quadrature-fused refresh of the retained
/// operator) — the per-step cost difference `KernelBackend::MatrixFree`
/// buys in the BDF loops.
fn time_matfree(n: usize, samples: usize) -> MatFreeTimes {
    let cfg = SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    };
    let mesh = StructuredHexMesh::unit_cube(n);
    let assignment = Arc::new(BlockPartitioner.partition(&mesh, 1));
    run_spmd(cfg, move |comm| {
        let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), 0, 1);
        let dm = DofMap::build(&dmesh, ElementOrder::Q2, comm);
        let kern = scalar_kernels(ElementOrder::Q2, mesh.cell_size());
        // Step-dependent coefficients so neither path can cache values.
        let mut step = 0usize;
        let kern = &kern;
        let cell_for = |step: usize| {
            let m_coeff = 1.0 + step as f64 * 0.125;
            let k_coeff = 0.75 + step as f64 * 0.0625;
            move |_i: usize, out: &mut [f64]| {
                for (o, (m, k)) in out.iter_mut().zip(kern.mass.iter().zip(&kern.stiffness)) {
                    *o = m_coeff * m + k_coeff * k;
                }
            }
        };

        let mut asm = MatrixAssembly::new(2);
        let assembled = median_ns(samples, 2, || {
            step += 1;
            black_box(asm.assemble(&dm, &dm, comm, cell_for(step)));
        });

        let mut asm_ip = MatrixAssembly::new(2);
        let matrix_free = median_ns(samples, 2, || {
            step += 1;
            black_box(asm_ip.assemble_in_place(&dm, &dm, comm, cell_for(step)));
        });

        MatFreeTimes {
            assembled,
            matrix_free,
        }
    })
    .pop()
    .expect("one rank was launched")
    .value
}

struct CheckpointTimes {
    capture: f64,
    serialize: f64,
    parse: f64,
    restore: f64,
    bytes: usize,
    /// Incremental path: diff against the last committed snapshot plus
    /// delta serialization (the per-commit host cost after the base).
    delta_write: f64,
    /// Incremental restart: parse the delta record and apply it to the base.
    delta_restore: f64,
    delta_bytes: usize,
}

/// Times the recovery-loop kernels on a Q2 field over an `n^3`-cell mesh:
/// capture (gather the distributed field into a dense snapshot), JSON
/// serialize (the on-disk write), parse, and restore (scatter back into the
/// local dof layout) — the per-checkpoint host cost `execute_resilient`
/// pays at every cadence tick and every restart.
fn time_checkpoint(n: usize, samples: usize) -> CheckpointTimes {
    let cfg = SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    };
    let mesh = StructuredHexMesh::unit_cube(n);
    let assignment = Arc::new(BlockPartitioner.partition(&mesh, 1));
    run_spmd(cfg, move |comm| {
        let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), 0, 1);
        let dm = DofMap::build(&dmesh, ElementOrder::Q2, comm);
        let u = dm.interpolate(|p| (p.x + 2.0 * p.y).sin() * (3.0 * p.z).cos());

        let capture = median_ns(samples, 4, || {
            let mut snap = Snapshot::new("RD", 0.0, 0);
            snap.capture("u", &dm, &u, comm);
            black_box(snap);
        });
        let mut snap = Snapshot::new("RD", 0.0, 0);
        snap.capture("u", &dm, &u, comm);
        let serialize = median_ns(samples, 4, || {
            black_box(snap.to_json());
        });
        let on_disk = snap.to_json();
        let parse = median_ns(samples, 4, || {
            black_box(Snapshot::from_json(black_box(&on_disk)).expect("checkpoint parses"));
        });
        let restored = Snapshot::from_json(&on_disk).expect("checkpoint parses");
        let restore = median_ns(samples, 4, || {
            black_box(restored.restore("u", &dm, comm));
        });

        // Incremental dirty-block checkpoint: the next step's field against
        // the committed one. A time stepper touches every dof, so this is
        // the worst case for the delta — fully dirty — and the win has to
        // come from the cheap bit-pattern wire form alone.
        let u2 = dm.interpolate(|p| (p.x + 2.0 * p.y).sin() * (3.0 * p.z).cos() * 1.0625 + 0.125);
        let mut snap2 = Snapshot::new("RD", 0.25, 1);
        snap2.capture("u", &dm, &u2, comm);
        let delta_write = median_ns(samples, 4, || {
            let delta = SnapshotDelta::diff(&snap, &snap2);
            black_box(delta.to_json());
        });
        let delta_disk = SnapshotDelta::diff(&snap, &snap2).to_json();
        let delta_restore = median_ns(samples, 4, || {
            let delta =
                SnapshotDelta::from_json(black_box(&delta_disk)).expect("delta record parses");
            black_box(delta.apply(&snap));
        });

        CheckpointTimes {
            capture,
            serialize,
            parse,
            restore,
            bytes: on_disk.len(),
            delta_write,
            delta_restore,
            delta_bytes: delta_disk.len(),
        }
    })
    .pop()
    .expect("one rank was launched")
    .value
}

/// Times one full numerical RD run (8 ranks, 3^3 cells each) with the
/// event sink off vs. on at the most verbose detail level — the recording
/// overhead the trace layer adds to a real workload. With `trace: None` no
/// sink exists at all, so the untraced time *is* the zero-overhead
/// baseline.
fn time_trace_overhead(samples: usize) -> (f64, f64) {
    use hetero_hpc::{execute, App, Fidelity, RunRequest, TraceSpec};
    use hetero_platform::catalog;
    let base = RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(catalog::puma(), App::paper_rd(2), 8, 3)
    };
    let traced = RunRequest {
        trace: Some(TraceSpec::messages()),
        ..base.clone()
    };
    let untraced = median_ns(samples, 1, || {
        black_box(execute(&base).expect("8 ranks fit on puma"));
    });
    let traced = median_ns(samples, 1, || {
        black_box(execute(&traced).expect("8 ranks fit on puma"));
    });
    (untraced, traced)
}

struct PrepTimes {
    fresh_ns: f64,
    hit_ns: f64,
    sweep_off_ns: f64,
    sweep_on_ns: f64,
}

/// Times the prepared-scenario cache (DESIGN.md §13) two ways. First the
/// single-run setup-reuse latency: the same numerical request with the
/// process-wide scenario cache bypassed vs warm — the delta is the mesh /
/// DofMap / symbolic-assembly setup the cache shares. Then the plans-lane
/// shape: a checkpoint-cadence sweep of modeled resilient runs, sharing
/// off vs on — with sharing on, all cadences of a `(platform, seed,
/// strategy)` cell reuse one memoized failure-free profile. Reports are
/// byte-identical either way (pinned by `tests/prep_sharing.rs`); only
/// wall-clock moves.
fn time_prep(ranks: usize, steps: usize, samples: usize) -> PrepTimes {
    use hetero_hpc::recovery::execute_resilient;
    use hetero_hpc::{execute, prep, App, Fidelity, ResilienceSpec, RunRequest};
    use hetero_platform::catalog;

    let numreq = RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(catalog::puma(), App::paper_rd(2), 8, 3)
    };
    let fresh_ns = median_ns(samples, 1, || {
        let _off = prep::disable_sharing_scoped();
        black_box(execute(&numreq).expect("8 ranks fit on puma"));
    });
    prep::clear_cache();
    // `median_ns` warms once untimed, so every timed call resolves a fully
    // populated scenario (geometry, rank preps) from the cache.
    let hit_ns = median_ns(samples, 1, || {
        black_box(execute(&numreq).expect("8 ranks fit on puma"));
    });

    let sweep = |share: bool| {
        let base = RunRequest {
            fidelity: Fidelity::Modeled,
            ..RunRequest::new(catalog::ec2(), App::paper_rd(steps), ranks, 20)
        };
        median_ns(samples, 1, move || {
            let _off = (!share).then(prep::disable_sharing_scoped);
            prep::clear_cache();
            for cadence in [1usize, 4, 16] {
                for s in 0..2u64 {
                    let req = RunRequest {
                        seed: base.seed.wrapping_add(s * 7919),
                        resilience: Some(ResilienceSpec::spot_with_restart(
                            &base.platform,
                            1.0,
                            cadence,
                            60,
                        )),
                        ..base.clone()
                    };
                    black_box(execute_resilient(&req).expect("modeled campaign is feasible"));
                }
            }
        })
    };
    let sweep_off_ns = sweep(false);
    let sweep_on_ns = sweep(true);
    PrepTimes {
        fresh_ns,
        hit_ns,
        sweep_off_ns,
        sweep_on_ns,
    }
}

/// Times the overlapped SpMV against the blocking one across a 2-rank
/// halo, the fused two-scalar reduction against two scalar ones, and a
/// fixed-iteration classic vs. pipelined CG solve — the host cost of the
/// communication-overlap machinery itself (the virtual-time savings are
/// asserted by the solver-equivalence suite, not measured here).
struct OverlapTimes {
    spmv_blocking: f64,
    spmv_overlapped: f64,
    two_dots: f64,
    fused_dot: f64,
    cg_classic: f64,
    cg_pipelined: f64,
}

fn time_overlap_kernels(
    n_rows: usize,
    dot_len: usize,
    cg_iters: usize,
    samples: usize,
) -> OverlapTimes {
    let cfg = SpmdConfig {
        size: 2,
        topo: ClusterTopology::uniform(2, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    };
    run_spmd(cfg, move |comm| {
        // Rank-local block of the global 1-D Laplacian: one ghost on the
        // shared edge, so interior/boundary classification is non-trivial.
        let rank = comm.rank();
        let first = rank * n_rows;
        let ghost_local = n_rows; // single ghost slot
        let mut b = TripletBuilder::with_capacity(n_rows, n_rows + 1, 3 * n_rows);
        for r in 0..n_rows {
            let g = first + r;
            b.add(r, r, 2.0);
            if r > 0 {
                b.add(r, r - 1, -1.0);
            }
            if r + 1 < n_rows {
                b.add(r, r + 1, -1.0);
            }
            if g > 0 && r == 0 {
                b.add(r, ghost_local, -1.0);
            }
            if g + 1 < 2 * n_rows && r == n_rows - 1 {
                b.add(r, ghost_local, -1.0);
            }
        }
        let mut plan = ExchangePlan::empty();
        let nb = 1 - rank;
        plan.neighbors.push(nb);
        plan.send_indices
            .push(vec![if rank == 0 { n_rows - 1 } else { 0 }]);
        plan.recv_indices.push(vec![ghost_local]);
        let a = DistMatrix::new(b.build(), plan);

        let mut x = a.new_vector();
        for (i, v) in x.owned_mut().iter_mut().enumerate() {
            *v = ((first + i) as f64 * 0.37).sin();
        }
        let mut y = a.new_vector();
        let spmv_blocking = median_ns(samples, 4, || {
            a.spmv(black_box(&mut x), &mut y, comm);
        });
        let spmv_overlapped = median_ns(samples, 4, || {
            a.spmv_overlapped(black_box(&mut x), &mut y, comm);
        });

        let v = hetero_linalg::DistVector::from_values(
            (0..dot_len).map(|i| (i as f64 * 0.1).sin()).collect(),
            dot_len,
        );
        let w = hetero_linalg::DistVector::from_values(
            (0..dot_len).map(|i| (i as f64 * 0.2).cos()).collect(),
            dot_len,
        );
        let two_dots = median_ns(samples, 4, || {
            black_box(v.dot(&v, comm) + v.dot(&w, comm));
        });
        let fused_dot = median_ns(samples, 4, || {
            black_box(fused_dots(&[(&v, &v), (&v, &w)], comm));
        });

        // Fixed-work CG: a tolerance no 1-D Laplacian reaches in cg_iters
        // iterations, so both variants run exactly cg_iters iterations.
        let rhs = {
            let mut r = a.new_vector();
            r.fill(1.0);
            r
        };
        let mut sol = a.new_vector();
        let solve_with = |variant: SolverVariant,
                          sol: &mut hetero_linalg::DistVector,
                          comm: &mut hetero_simmpi::SimComm| {
            let opts = SolveOptions {
                rel_tol: 1e-300,
                max_iters: cg_iters,
                variant,
                ..SolveOptions::default()
            };
            cg(&a, &rhs, sol, &Identity, opts, comm)
        };
        let cg_classic = median_ns(samples, 1, || {
            sol.fill(0.0);
            black_box(solve_with(SolverVariant::Blocking, &mut sol, comm));
        });
        let cg_pipelined = median_ns(samples, 1, || {
            sol.fill(0.0);
            black_box(solve_with(SolverVariant::Pipelined, &mut sol, comm));
        });

        OverlapTimes {
            spmv_blocking,
            spmv_overlapped,
            two_dots,
            fused_dot,
            cg_classic,
            cg_pipelined,
        }
    })
    .swap_remove(0)
    .value
}

struct EngineTimes {
    spawn_cooperative: f64,
    spawn_threads: f64,
    pingpong: f64,
}

/// Times the engines themselves: spawning and joining `ranks` do-nothing
/// ranks (coroutine creation + scheduling vs. OS-thread creation + join),
/// and the cooperative scheduler's per-hop cost via a single-worker 2-rank
/// ping-pong of `msgs` messages, where every message is one block and one
/// resume on each side — two context switches per hop by construction.
fn time_engine_kernels(ranks: usize, msgs: usize, samples: usize) -> EngineTimes {
    let cfg = |size: usize| SpmdConfig {
        size,
        topo: ClusterTopology::uniform(size.div_ceil(16).max(1), 16),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    };
    let spawn = |opts: EngineOpts| {
        let c = cfg(ranks);
        median_ns(samples, 1, || {
            let (r, _) =
                run_spmd_opts(c.clone(), opts, FaultPlan::none(), None, |comm| comm.rank());
            black_box(r.expect("no faults planned"));
        })
    };
    let spawn_cooperative = spawn(EngineOpts::default());
    let spawn_threads = spawn(EngineOpts::threads());

    let c = cfg(2);
    let pingpong = median_ns(samples, 1, || {
        let (r, _) = run_spmd_opts(
            c.clone(),
            EngineOpts::cooperative(1),
            FaultPlan::none(),
            None,
            move |comm| {
                let peer = 1 - comm.rank();
                for i in 0..msgs as u64 {
                    if comm.rank() == 0 {
                        comm.send(peer, i, Payload::Usize(vec![i as usize]));
                        black_box(comm.recv_usize(peer, i));
                    } else {
                        black_box(comm.recv_usize(peer, i));
                        comm.send(peer, i, Payload::Usize(vec![i as usize]));
                    }
                }
            },
        );
        black_box(r.expect("no faults planned"));
    });

    EngineTimes {
        spawn_cooperative,
        spawn_threads,
        pingpong,
    }
}

struct ServeTimes {
    cache_hit: f64,
    queue_per_job: f64,
}

/// Times the serving layer of PR 8: a content-addressed cache hit (the
/// hot path a repeated campaign submission takes — canonical key, index
/// probe, artifact verify, deserialize) and the end-to-end per-job cost of
/// pushing unique-key jobs through journal, queue, worker pool, and cache
/// write. The jobs themselves are the smallest real numerical run the
/// harness has, so the throughput leaf tracks the service machinery plus a
/// floor of real work, not an empty no-op loop.
fn time_serve(jobs: usize, samples: usize) -> ServeTimes {
    use hetero_hpc::{App, RunRequest};
    use hetero_platform::catalog;
    use hetero_serve::{ServeConfig, ServeHandle};

    let dir = std::env::temp_dir().join(format!("hetero-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let serve = ServeHandle::open(ServeConfig::new(&dir).with_workers(2)).expect("serve opens");
    let hot = RunRequest {
        seed: 424_242,
        ..RunRequest::new(catalog::puma(), App::smoke_rd(1), 1, 2)
    };
    serve.submit_wait(&hot).expect("within puma's limits");
    let cache_hit = median_ns(samples, 8, || {
        black_box(serve.submit_wait(&hot).expect("a verified cache hit"));
    });

    let mut next_seed = 1_000_000u64;
    let queue_per_job = median_ns(samples, 1, || {
        let ids: Vec<u64> = (0..jobs)
            .map(|_| {
                next_seed += 1;
                let req = RunRequest {
                    seed: next_seed,
                    ..hot.clone()
                };
                serve.submit(&req).expect("accepting")
            })
            .collect();
        for id in ids {
            black_box(serve.wait(id).expect("completes"));
        }
    }) / jobs as f64;

    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    ServeTimes {
        cache_hit,
        queue_per_job,
    }
}

struct Profile {
    schema: &'static str,
    out: &'static str,
    /// Cells per axis for the assembly timing.
    assembly_n: usize,
    /// Grid edge for the symbolic/numeric rebuild split.
    rebuild_n: usize,
    /// Grid edge for the SpMV pool-size sweep.
    spmv_n: usize,
    /// Cells per axis for the checkpoint kernels.
    ckpt_n: usize,
    /// Rows per rank for the overlapped-SpMV kernel.
    overlap_rows: usize,
    /// Local length of the fused-reduction vectors.
    dot_len: usize,
    /// Fixed iteration count for the classic-vs-pipelined CG timing.
    cg_iters: usize,
    /// Rank count for the engine spawn/join timing.
    spawn_ranks: usize,
    /// Message count for the scheduler ping-pong timing.
    pingpong_msgs: usize,
    /// Unique-key jobs per round for the serve queue-throughput timing.
    serve_jobs: usize,
    /// Rank count for the prepared-scenario cadence-sweep timing.
    prep_ranks: usize,
    /// Steps per modeled run in the prepared-scenario sweep.
    prep_steps: usize,
    /// Timing samples per kernel (the median is reported).
    samples: usize,
}

const FULL: Profile = Profile {
    schema: "hetero-hpc/bench-kernels/v6",
    out: "BENCH_kernels.json",
    assembly_n: 6,
    rebuild_n: 20,
    spmv_n: 32,
    ckpt_n: 6,
    overlap_rows: 32_768,
    dot_len: 65_536,
    cg_iters: 50,
    spawn_ranks: 256,
    pingpong_msgs: 4096,
    serve_jobs: 32,
    prep_ranks: 512,
    prep_steps: 150,
    samples: 9,
};

/// CI-sized: same kernels, smaller meshes, fewer samples — minutes become
/// seconds, and the committed smoke baseline is compared against smoke
/// remeasurements only.
const SMOKE: Profile = Profile {
    schema: "hetero-hpc/bench-kernels-smoke/v6",
    out: "BENCH_kernels_smoke.json",
    assembly_n: 4,
    rebuild_n: 12,
    spmv_n: 16,
    ckpt_n: 4,
    overlap_rows: 4096,
    dot_len: 8192,
    cg_iters: 20,
    spawn_ranks: 64,
    pingpong_msgs: 512,
    serve_jobs: 8,
    prep_ranks: 64,
    prep_steps: 40,
    samples: 5,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let p = if smoke { SMOKE } else { FULL };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Per-time-step system assembly, Q2 on assembly_n^3 cells.
    let asm = time_assembly(p.assembly_n, p.samples);

    // Symbolic/numeric rebuild split on a rebuild_n^3-row stencil matrix.
    // `build` consumes the builder, so the from-scratch path must clone the
    // triplet stream first; the clone is timed separately and subtracted.
    let (builder, vals) = laplacian_triplets(p.rebuild_n);
    let pattern = builder.symbolic();
    let clone_ns = median_ns(p.samples, 4, || {
        black_box(builder.clone());
    });
    let build_incl_clone_ns = median_ns(p.samples, 4, || {
        black_box(builder.clone().build());
    });
    let numeric_ns = median_ns(p.samples, 4, || {
        black_box(pattern.numeric(black_box(&vals)));
    });
    let build_ns = (build_incl_clone_ns - clone_ns).max(1.0);

    // SpMV at explicit pool sizes, spmv_n^3 rows.
    let (bs, _) = laplacian_triplets(p.spmv_n);
    let a = DistMatrix::new(bs.build(), ExchangePlan::empty());
    let x = vec![1.0f64; a.n_local()];
    let mut y = vec![0.0f64; a.n_owned()];
    let mut spmv_at = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("the vendored pool builder cannot fail");
        pool.install(|| {
            median_ns(p.samples, 8, || {
                a.local().spmv(black_box(&x), &mut y);
            })
        })
    };
    let spmv_1t = spmv_at(1);
    let spmv_4t = spmv_at(4);

    // Reordered-layout SpMV on the same matrix, serially (one lane per
    // row, no FMA — bitwise-pinned to the CSR result by construction).
    // With the `simd` feature the chunk kernel runs on core::arch vector
    // intrinsics; without it, the unrolled scalar fallback.
    let sell = SellCs::from_csr(a.local(), 8, sell::DEFAULT_SIGMA);
    let blocked = BlockedCsr::from_csr(a.local());
    let mut ys = vec![0.0f64; a.n_owned()];
    let sell_ns = median_ns(p.samples, 8, || {
        sell.spmv(black_box(&x), &mut ys);
    });
    let blocked_ns = median_ns(p.samples, 8, || {
        blocked.spmv(black_box(&x), &mut ys);
    });

    // Per-step matrix-free operator refresh vs. assembled rebuild.
    let mf = time_matfree(p.assembly_n, p.samples);

    // Recovery-loop kernels: one Q2 checkpoint on ckpt_n^3 cells.
    let ckpt = time_checkpoint(p.ckpt_n, p.samples);

    // Communication-overlap kernels: overlapped SpMV, fused reductions,
    // pipelined CG.
    let ov = time_overlap_kernels(p.overlap_rows, p.dot_len, p.cg_iters, p.samples);

    // Trace-recording overhead on a full numerical run.
    let (untraced_ns, traced_ns) = time_trace_overhead(p.samples);

    // Engine spawn/join and cooperative per-hop scheduling cost.
    let eng = time_engine_kernels(p.spawn_ranks, p.pingpong_msgs, p.samples);

    // Serving layer: cache-hit latency and queue throughput.
    let srv = time_serve(p.serve_jobs, p.samples);

    // Prepared-scenario cache: single-run setup reuse and the cadence-sweep
    // wall clock with sharing off vs on.
    let prep_t = time_prep(p.prep_ranks, p.prep_steps, p.samples);

    // Campaign-plan front end: parse + sweep expansion + DAG resolution of
    // the largest checked-in plan (Table III: 72 instances across four
    // stages). This is the fixed cost `plan_run` pays before any stage
    // executes, and the path the `plans` CI lane leans on.
    let plan_doc = include_str!("../../../plans/table3.toml");
    let plan_instances = load_str(plan_doc)
        .expect("the checked-in plan resolves")
        .instances
        .len();
    let plan_resolve_ns = median_ns(p.samples, 8, || {
        black_box(load_str(black_box(plan_doc)).expect("the checked-in plan resolves"));
    });

    let report = serde_json::json!({
        "schema": p.schema,
        "host_cores": host_cores,
        "note": "median ns/op; thread-scaling entries can only show a speedup when host_cores > 1",
        "assembly_q2": serde_json::json!({
            "cells": p.assembly_n * p.assembly_n * p.assembly_n,
            "from_scratch_ns": asm.from_scratch,
            "symbolic_reuse_1thread_ns": asm.reuse_1t,
            "symbolic_reuse_4threads_ns": asm.reuse_4t,
            "per_step_speedup_4threads": asm.from_scratch / asm.reuse_4t,
            "thread_scaling_4_over_1": asm.reuse_1t / asm.reuse_4t,
        }),
        "matrix_rebuild": serde_json::json!({
            "rows": p.rebuild_n * p.rebuild_n * p.rebuild_n,
            "triplet_build_ns": build_ns,
            "symbolic_numeric_ns": numeric_ns,
            "rebuild_speedup": build_ns / numeric_ns,
        }),
        "spmv": serde_json::json!({
            "rows": p.spmv_n * p.spmv_n * p.spmv_n,
            "pool_1thread_ns": spmv_1t,
            "pool_4threads_ns": spmv_4t,
            "thread_scaling_4_over_1": spmv_1t / spmv_4t,
        }),
        "spmv_sell": serde_json::json!({
            "rows": p.spmv_n * p.spmv_n * p.spmv_n,
            "simd": cfg!(feature = "simd"),
            "note": "SpMV is memory/gather-bound, so the layout win stays well \
                     below the lane count on the SSE2 baseline (2 lanes, scalar \
                     column gathers); the scalar fallback keeps its lane \
                     accumulators in a stack array so both builds beat serial \
                     CSR, and wider ISAs and denser rows move the ratio up",
            "chunk_height": sell.chunk_height(),
            "padding_ratio": sell.padding_ratio(a.local().nnz()),
            "sell_c8_ns": sell_ns,
            "blocked_csr_ns": blocked_ns,
            // Ratios against the serial CSR leaf above; derived, not gated.
            "sell_speedup_over_csr": spmv_1t / sell_ns,
            "blocked_speedup_over_csr": spmv_1t / blocked_ns,
        }),
        "matfree_apply_q2": serde_json::json!({
            "cells": p.assembly_n * p.assembly_n * p.assembly_n,
            "assembled_ns": mf.assembled,
            "matrix_free_ns": mf.matrix_free,
            "per_step_speedup": mf.assembled / mf.matrix_free,
        }),
        "checkpoint_q2": serde_json::json!({
            "cells": p.ckpt_n * p.ckpt_n * p.ckpt_n,
            "capture_ns": ckpt.capture,
            "serialize_ns": ckpt.serialize,
            "parse_ns": ckpt.parse,
            "restore_ns": ckpt.restore,
            "on_disk_bytes": ckpt.bytes,
            "write_path_ns": ckpt.capture + ckpt.serialize,
            "restart_path_ns": ckpt.parse + ckpt.restore,
        }),
        "checkpoint_incremental": serde_json::json!({
            "cells": p.ckpt_n * p.ckpt_n * p.ckpt_n,
            // Fully-dirty delta (a time stepper touches every dof): the
            // worst case for the incremental path. The monolithic reference
            // is `checkpoint_q2.serialize_ns`; repeated here without the
            // `_ns` suffix so the gate does not check the same number twice.
            "serialize_full_reference": ckpt.serialize,
            "serialize_delta_ns": ckpt.delta_write,
            "restore_delta_ns": ckpt.delta_restore,
            "delta_bytes": ckpt.delta_bytes,
            "full_bytes": ckpt.bytes,
            "delta_write_speedup": ckpt.serialize / ckpt.delta_write,
        }),
        "spmv_overlapped": serde_json::json!({
            "rows_per_rank": p.overlap_rows,
            "blocking_ns": ov.spmv_blocking,
            "overlapped_ns": ov.spmv_overlapped,
            "host_overhead_ratio": ov.spmv_overlapped / ov.spmv_blocking,
        }),
        "fused_dot": serde_json::json!({
            "len": p.dot_len,
            "two_dots_ns": ov.two_dots,
            "fused_ns": ov.fused_dot,
            "host_speedup": ov.two_dots / ov.fused_dot,
        }),
        "cg_pipelined": serde_json::json!({
            "rows_per_rank": p.overlap_rows,
            "iterations": p.cg_iters,
            "classic_ns": ov.cg_classic,
            "pipelined_ns": ov.cg_pipelined,
            "host_overhead_ratio": ov.cg_pipelined / ov.cg_classic,
        }),
        "trace_overhead_rd_8ranks": serde_json::json!({
            "untraced_ns": untraced_ns,
            "traced_messages_ns": traced_ns,
            "overhead_percent": (traced_ns / untraced_ns - 1.0) * 100.0,
        }),
        "engine_spawn": serde_json::json!({
            "ranks": p.spawn_ranks,
            "cooperative_ns": eng.spawn_cooperative,
            "threads_ns": eng.spawn_threads,
            "threads_over_cooperative": eng.spawn_threads / eng.spawn_cooperative,
        }),
        "scheduler_step": serde_json::json!({
            "messages": p.pingpong_msgs,
            "pingpong_ns": eng.pingpong,
            // Not a gated `_ns` leaf: it is derived from `pingpong_ns` and
            // gating both would double the flake surface.
            "ns_per_hop": eng.pingpong / (2.0 * p.pingpong_msgs as f64),
        }),
        "serve_cache_hit": serde_json::json!({
            "cache_hit_ns": srv.cache_hit,
            "note": "submit_wait of an already-cached key: canonical key + \
                     artifact verify + deserialize, no journal traffic",
        }),
        "serve_queue_throughput": serde_json::json!({
            "jobs": p.serve_jobs,
            "per_job_ns": srv.queue_per_job,
            // Derived from per_job_ns; not an independently gated leaf.
            "jobs_per_sec": 1e9 / srv.queue_per_job,
        }),
        "plan_resolve": serde_json::json!({
            "plan": "plans/table3.toml",
            "instances": plan_instances,
            "parse_resolve_ns": plan_resolve_ns,
        }),
        "prep_cache_hit": serde_json::json!({
            "ranks": 8,
            "note": "numerical RD on puma, same request twice: scenario cache \
                     bypassed vs warm — the delta is the shared mesh/DofMap/\
                     symbolic-assembly setup; outputs are byte-identical",
            "fresh_setup_ns": prep_t.fresh_ns,
            "shared_setup_ns": prep_t.hit_ns,
            // Derived from the two _ns leaves; not independently gated.
            "setup_reuse_speedup": prep_t.fresh_ns / prep_t.hit_ns,
        }),
        "sweep_setup_share": serde_json::json!({
            "ranks": p.prep_ranks,
            "steps": p.prep_steps,
            "sweep_runs": 6,
            "note": "modeled resilient RD on EC2, 3 cadences x 2 seeds: with \
                     sharing on, every cadence of a (platform, seed, strategy) \
                     cell reuses one memoized failure-free profile",
            "share_off_ns": prep_t.sweep_off_ns,
            "share_on_ns": prep_t.sweep_on_ns,
            // Derived from the two _ns leaves; not independently gated.
            "sweep_speedup": prep_t.sweep_off_ns / prep_t.sweep_on_ns,
        }),
    });
    let text = serde_json::to_string_pretty(&report).expect("the report is a finite JSON tree");
    std::fs::write(p.out, &text).unwrap_or_else(|e| panic!("writing {}: {e}", p.out));
    println!("{text}");
}
