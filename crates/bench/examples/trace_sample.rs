//! Emits a sample trace from a real (numerical-engine) traced run: the
//! Chrome `trace_event` JSON CI uploads as an artifact, the JSONL twin,
//! and the derived metrics/rollup tables on stdout.
//!
//! ```text
//! cargo run --release -p hetero-bench --example trace_sample
//! ```
//!
//! Open `target/paper-artifacts/trace_sample.chrome.json` in Perfetto
//! (<https://ui.perfetto.dev>) or `about://tracing`: one track per rank,
//! phase spans nested under each iteration, collective instants at their
//! virtual completion times.

use hetero_bench::write_artifact;
use hetero_hpc::report::outcome_phase_rollup;
use hetero_hpc::{execute, App, Fidelity, RunRequest, TraceSpec};
use hetero_platform::catalog;

fn main() {
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        discard: 1,
        trace: Some(TraceSpec::messages()),
        ..RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 4)
    };
    let out = execute(&req).expect("8 ranks fit on puma");
    let trace = out.trace.as_ref().expect("the request asked for a trace");

    let chrome = write_artifact("trace_sample.chrome.json", &trace.chrome_json());
    let jsonl = write_artifact("trace_sample.jsonl", &trace.jsonl());

    println!(
        "traced RD on puma: {} ranks, {} steps, {} events",
        req.ranks,
        req.app.steps(),
        trace.len()
    );
    println!("\n{}", out.trace.as_ref().unwrap().metrics().render_text());
    if let Some(table) = outcome_phase_rollup(&out, req.discard) {
        println!("{table}");
    }
    println!("artifacts:\n  {}\n  {}", chrome.display(), jsonl.display());
}
