//! The bench regression gate: a tolerance-aware comparator over two
//! `BENCH_kernels*.json` snapshots.
//!
//! The snapshots are JSON trees whose *timing* leaves all carry an `_ns`
//! key suffix (median host nanoseconds per op). The gate walks both trees
//! in parallel, compares every `_ns` leaf present in the baseline against
//! the freshly measured value, and flags a regression when the new time
//! exceeds the baseline by more than the tolerance. Non-timing leaves
//! (ratios, byte counts, core counts, notes) are ignored: they either
//! derive from the timings or describe the host. Timing kernels that are
//! *new* in the current snapshot pass silently — adding a kernel must not
//! fail the gate — but a kernel that *disappears* is a failure, since a
//! deleted measurement is indistinguishable from a hidden regression.
//!
//! One host-shape carve-out: when the **baseline** records `host_cores: 1`,
//! multi-thread-pool leaves (`*_4threads_ns` and anything under a
//! `thread_scaling` path) are not gated. On a single hardware thread a
//! 4-thread pool is pure oversubscription — its timing is scheduler noise,
//! and flagging it as a regression would make the gate flaky on exactly
//! the small CI hosts it is meant to protect.

use serde_json::Value;

/// One timing leaf compared by the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCheck {
    /// Dotted path of the leaf, e.g. `"spmv_32768rows.pool_1thread_ns"`.
    pub key: String,
    /// Baseline median ns/op (the committed snapshot).
    pub baseline_ns: f64,
    /// Freshly measured median ns/op; `None` when the kernel vanished.
    pub current_ns: Option<f64>,
}

impl KernelCheck {
    /// `current / baseline`; a missing current measurement counts as
    /// infinitely slow.
    pub fn ratio(&self) -> f64 {
        match self.current_ns {
            Some(c) if self.baseline_ns > 0.0 => c / self.baseline_ns,
            Some(_) => 1.0,
            None => f64::INFINITY,
        }
    }

    /// Whether this leaf regressed beyond `tolerance` (0.25 = 25% slower).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio() > 1.0 + tolerance
    }
}

/// A baseline timing leaf the gate deliberately did not compare, with the
/// reason. Skips are rare and always host-shape driven; listing them keeps
/// "this leaf was judged un-gateable here" distinguishable from "this leaf
/// was enforced and passed" in the CI log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCheck {
    /// Dotted path of the leaf, e.g. `"spmv.pool_4threads_ns"`.
    pub key: String,
    /// Why the gate refused to compare it.
    pub reason: String,
}

/// The outcome of comparing two snapshots.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Fractional slowdown allowed before a leaf fails (0.25 = 25%).
    pub tolerance: f64,
    /// Every `_ns` leaf of the baseline, in baseline order.
    pub checks: Vec<KernelCheck>,
    /// Baseline `_ns` leaves excluded from gating, with reasons.
    pub skipped: Vec<SkippedCheck>,
}

impl GateReport {
    /// The checks that exceeded the tolerance.
    pub fn regressions(&self) -> Vec<&KernelCheck> {
        self.checks
            .iter()
            .filter(|c| c.regressed(self.tolerance))
            .collect()
    }

    /// `true` when no baseline kernel regressed.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable table: one row per kernel, regressions marked.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench gate: {} kernels, tolerance +{:.0}%\n",
            self.checks.len(),
            self.tolerance * 100.0
        );
        for c in &self.checks {
            let (cur, ratio) = match c.current_ns {
                Some(v) => (format!("{v:>14.1}"), format!("{:>7.3}x", c.ratio())),
                None => (format!("{:>14}", "missing"), format!("{:>8}", "-")),
            };
            let verdict = if c.regressed(self.tolerance) {
                "REGRESSED"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  {:<55} {:>14.1} -> {cur} {ratio}  {verdict}\n",
                c.key, c.baseline_ns
            ));
        }
        for s in &self.skipped {
            out.push_str(&format!("  {:<55} SKIPPED: {}\n", s.key, s.reason));
        }
        out
    }
}

/// Compares a freshly measured snapshot against a committed baseline.
/// `tolerance` is the fractional slowdown allowed per kernel (0.25 = fail
/// only when a kernel is more than 25% slower than the baseline).
pub fn compare_snapshots(baseline: &Value, current: &Value, tolerance: f64) -> GateReport {
    // A 1-core baseline host cannot meaningfully time a 4-thread pool.
    let single_core = baseline.field("host_cores").as_u64() == Some(1);
    let mut checks = Vec::new();
    let mut skipped = Vec::new();
    walk(
        baseline,
        current,
        "",
        single_core,
        &mut checks,
        &mut skipped,
    );
    GateReport {
        tolerance,
        checks,
        skipped,
    }
}

/// Whether a leaf's timing only makes sense with real hardware parallelism.
fn needs_multicore(path: &str, key: &str) -> bool {
    key.ends_with("_4threads_ns")
        || path.contains("thread_scaling")
        || key.contains("thread_scaling")
}

fn walk(
    baseline: &Value,
    current: &Value,
    path: &str,
    single_core: bool,
    out: &mut Vec<KernelCheck>,
    skipped: &mut Vec<SkippedCheck>,
) {
    let Some(entries) = baseline.as_object() else {
        return;
    };
    for (key, b) in entries {
        let sub = if path.is_empty() {
            key.clone()
        } else {
            format!("{path}.{key}")
        };
        if b.as_object().is_some() {
            walk(b, current.field(key), &sub, single_core, out, skipped);
        } else if key.ends_with("_ns") {
            if single_core && needs_multicore(path, key) {
                skipped.push(SkippedCheck {
                    key: sub,
                    reason: "baseline host_cores=1: multi-thread pool timing is \
                             scheduler noise on a single hardware thread"
                        .to_string(),
                });
                continue;
            }
            if let Some(baseline_ns) = b.as_f64() {
                out.push(KernelCheck {
                    key: sub,
                    baseline_ns,
                    current_ns: current.field(key).as_f64(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(asm: f64, spmv: f64) -> Value {
        serde_json::json!({
            "schema": "hetero-hpc/bench-kernels/v1",
            "host_cores": 1,
            "assembly": serde_json::json!({ "from_scratch_ns": asm, "speedup": 17.0 }),
            "spmv": serde_json::json!({ "pool_1thread_ns": spmv }),
        })
    }

    #[test]
    fn identical_snapshots_pass() {
        let b = snap(100.0, 50.0);
        let r = compare_snapshots(&b, &b, 0.25);
        assert_eq!(r.checks.len(), 2, "only _ns leaves are gated");
        assert!(r.passed());
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let r = compare_snapshots(&snap(100.0, 50.0), &snap(124.0, 62.0), 0.25);
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_the_right_kernel() {
        let r = compare_snapshots(&snap(100.0, 50.0), &snap(126.0, 50.0), 0.25);
        assert!(!r.passed());
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "assembly.from_scratch_ns");
        assert!(r.render().contains("REGRESSED"));
    }

    #[test]
    fn missing_kernel_fails_but_new_kernel_passes() {
        let base = snap(100.0, 50.0);
        let current = serde_json::json!({
            "assembly": serde_json::json!({ "from_scratch_ns": 90.0, "brand_new_ns": 1.0 }),
            // spmv group vanished entirely
        });
        let r = compare_snapshots(&base, &current, 0.25);
        assert!(!r.passed());
        assert_eq!(r.regressions()[0].key, "spmv.pool_1thread_ns");
        assert_eq!(r.regressions()[0].current_ns, None);
        // The brand-new kernel is not a check at all.
        assert!(r.checks.iter().all(|c| !c.key.contains("brand_new")));
    }

    #[test]
    fn speedups_always_pass() {
        let r = compare_snapshots(&snap(100.0, 50.0), &snap(10.0, 5.0), 0.0);
        assert!(r.passed());
    }

    fn threaded_snap(cores: u64, four_thread: f64) -> Value {
        serde_json::json!({
            "host_cores": cores,
            "spmv": serde_json::json!({
                "pool_1thread_ns": 50.0,
                "pool_4threads_ns": four_thread,
                "thread_scaling_4_over_1": 50.0 / four_thread,
            }),
            "thread_scaling": serde_json::json!({ "spmv_4threads_over_1_ns": four_thread }),
        })
    }

    #[test]
    fn one_core_baseline_skips_multithread_leaves() {
        // On a 1-core host a 4-thread pool timing is scheduler noise: a 3x
        // "regression" there must not fail the gate, while the 1-thread
        // leaf is still enforced.
        let base = threaded_snap(1, 80.0);
        let r = compare_snapshots(&base, &threaded_snap(1, 240.0), 0.25);
        assert!(r.passed(), "{}", r.render());
        assert!(
            r.checks
                .iter()
                .all(|c| !c.key.contains("4threads") && !c.key.contains("thread_scaling")),
            "multithread leaves must not be checks on a 1-core baseline"
        );
        // The serial leaf stays gated.
        assert!(r.checks.iter().any(|c| c.key == "spmv.pool_1thread_ns"));
        // The skip is reported, not silent: both excluded leaves appear
        // with a reason, and the rendering names them.
        let skipped: Vec<&str> = r.skipped.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(
            skipped,
            vec![
                "spmv.pool_4threads_ns",
                "thread_scaling.spmv_4threads_over_1_ns"
            ]
        );
        assert!(r.skipped.iter().all(|s| s.reason.contains("host_cores=1")));
        assert!(r.render().contains("SKIPPED"));
    }

    #[test]
    fn multicore_baseline_skips_nothing() {
        let base = threaded_snap(8, 80.0);
        let r = compare_snapshots(&base, &threaded_snap(8, 80.0), 0.25);
        assert!(r.skipped.is_empty());
        assert!(!r.render().contains("SKIPPED"));
    }

    #[test]
    fn multicore_baseline_still_gates_multithread_leaves() {
        let base = threaded_snap(8, 80.0);
        let r = compare_snapshots(&base, &threaded_snap(8, 240.0), 0.25);
        assert!(!r.passed());
        assert!(r
            .regressions()
            .iter()
            .any(|c| c.key == "spmv.pool_4threads_ns"));
    }
}
