//! # hetero-bench
//!
//! The benchmark harness of the `hetero-hpc` reproduction. Each paper
//! artifact has a dedicated bench target that regenerates it:
//!
//! | target                  | artifact                                   |
//! |-------------------------|--------------------------------------------|
//! | `fig4_rd_weak_scaling`  | Figure 4 (RD weak scaling, 4 platforms)    |
//! | `fig5_ns_weak_scaling`  | Figure 5 (NS weak scaling)                 |
//! | `table2_placement`      | Table II (EC2 full vs spot mix)            |
//! | `fig6_rd_cost`          | Figure 6 (RD per-iteration cost)           |
//! | `fig7_ns_cost`          | Figure 7 (NS per-iteration cost)           |
//! | `table1_capabilities`   | Table I + Section VI provisioning effort   |
//! | `ablations`             | design-choice ablations (DESIGN.md Section 6) |
//! | `micro_kernels`         | criterion: real numerical kernel throughput |
//! | `micro_comm`            | criterion: simulator engine throughput     |
//!
//! Run everything with `cargo bench --workspace`. The figure/table targets
//! print the paper-style rows to stdout and write machine-readable copies
//! under `target/paper-artifacts/`.

pub mod gate;

/// Writes an artifact file under `target/paper-artifacts/`, creating the
/// directory as needed. Returns the path written.
pub fn write_artifact(name: &str, contents: &str) -> std::path::PathBuf {
    // Anchor at the workspace target dir regardless of the bench CWD.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("paper-artifacts");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write artifact");
    path
}

#[cfg(test)]
mod tests {
    #[test]
    fn artifact_roundtrip() {
        let p = super::write_artifact("selftest.txt", "hello");
        assert_eq!(std::fs::read_to_string(p).unwrap(), "hello");
    }
}
