//! The two benchmark applications, as the harness sees them.

use hetero_fem::element::ElementOrder;
use hetero_fem::ns::NsConfig;
use hetero_fem::rd::{PrecondKind, RdConfig};
use hetero_linalg::{KernelBackend, SolverVariant};
use serde::{Deserialize, Serialize};

/// One of the paper's applications with its configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum App {
    /// The reaction–diffusion test (paper Section IV-A).
    Rd(RdConfig),
    /// The Navier–Stokes / Ethier–Steinman test (Section IV-B).
    Ns(NsConfig),
}

impl App {
    /// The paper's RD configuration: order-2 elements, BDF2, ILU(0)
    /// preconditioning (a visible "preconditioner" phase, as in Figure 4).
    pub fn paper_rd(steps: usize) -> App {
        App::Rd(RdConfig {
            order: ElementOrder::Q2,
            precond: PrecondKind::Ilu0,
            steps,
            ..RdConfig::default()
        })
    }

    /// The paper's NS configuration: order-2 velocity / order-1 pressure,
    /// BDF2, Jacobi on the momentum blocks, ILU(0) on the pressure Poisson.
    pub fn paper_ns(steps: usize) -> App {
        App::Ns(NsConfig {
            precond_p: PrecondKind::Ilu0,
            steps,
            ..NsConfig::default()
        })
    }

    /// A cheap configuration for tests: order-1 RD.
    pub fn smoke_rd(steps: usize) -> App {
        App::Rd(RdConfig {
            order: ElementOrder::Q1,
            steps,
            ..RdConfig::default()
        })
    }

    /// Display name ("RD" / "NS").
    pub fn name(&self) -> &'static str {
        match self {
            App::Rd(_) => "RD",
            App::Ns(_) => "NS",
        }
    }

    /// Number of time steps (measured iterations).
    pub fn steps(&self) -> usize {
        match self {
            App::Rd(c) => c.steps,
            App::Ns(c) => c.steps,
        }
    }

    /// Returns a copy with the step count replaced.
    pub fn with_steps(&self, steps: usize) -> App {
        match self {
            App::Rd(c) => App::Rd(RdConfig { steps, ..c.clone() }),
            App::Ns(c) => App::Ns(NsConfig { steps, ..c.clone() }),
        }
    }

    /// The element order of the primary unknown (drives halo sizes).
    pub fn primary_order(&self) -> ElementOrder {
        match self {
            App::Rd(c) => c.order,
            App::Ns(c) => c.vel_order,
        }
    }

    /// Returns a copy with every Krylov solve switched to `variant`
    /// (RD: the CG solve; NS: momentum and pressure solves alike).
    pub fn with_solver_variant(&self, variant: SolverVariant) -> App {
        match self {
            App::Rd(c) => {
                let mut c = c.clone();
                c.solve.variant = variant;
                App::Rd(c)
            }
            App::Ns(c) => {
                let mut c = c.clone();
                c.solve_vel.variant = variant;
                c.solve_p.variant = variant;
                App::Ns(c)
            }
        }
    }

    /// The solver variant of the primary (most iteration-heavy) solve.
    pub fn solver_variant(&self) -> SolverVariant {
        match self {
            App::Rd(c) => c.solve.variant,
            App::Ns(c) => c.solve_vel.variant,
        }
    }

    /// Returns a copy with every per-step operator switched to `backend`
    /// (RD: the system matrix; NS: momentum and pressure operators alike).
    pub fn with_kernel_backend(&self, backend: KernelBackend) -> App {
        match self {
            App::Rd(c) => {
                let mut c = c.clone();
                c.solve.backend = backend;
                App::Rd(c)
            }
            App::Ns(c) => {
                let mut c = c.clone();
                c.solve_vel.backend = backend;
                c.solve_p.backend = backend;
                App::Ns(c)
            }
        }
    }

    /// The kernel backend of the primary per-step operator.
    pub fn kernel_backend(&self) -> KernelBackend {
        match self {
            App::Rd(c) => c.solve.backend,
            App::Ns(c) => c.solve_vel.backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_the_text() {
        let rd = App::paper_rd(10);
        assert_eq!(rd.name(), "RD");
        assert_eq!(rd.steps(), 10);
        assert_eq!(rd.primary_order(), ElementOrder::Q2);
        let ns = App::paper_ns(5);
        match &ns {
            App::Ns(c) => {
                assert_eq!(c.vel_order, ElementOrder::Q2);
                assert_eq!(c.p_order, ElementOrder::Q1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn with_steps_overrides() {
        let a = App::paper_rd(10).with_steps(3);
        assert_eq!(a.steps(), 3);
    }
}
