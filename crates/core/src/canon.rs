//! Canonical serialization and stable content hashing for [`RunRequest`].
//!
//! The serve layer caches run outcomes under a content-addressed key. That
//! key must be *stable*: refactoring a struct (renaming a field, reordering
//! declarations) must not silently change the key and orphan every cached
//! artifact. Deriving the key from `serde` output would do exactly that —
//! derived serialization mirrors the Rust declaration. So the canonical
//! encoding is written by hand against an explicit, versioned schema:
//! every field is emitted under a string-literal name in a fixed order,
//! floats are emitted as their exact IEEE-754 bit patterns, and the golden
//! fixtures in `tests/serve_keys.rs` pin the resulting bytes. Changing the
//! encoding intentionally means bumping [`KEY_SCHEMA`] — which retires the
//! old cache generation explicitly rather than corrupting it silently.
//!
//! What the key covers — and what it deliberately omits — follows the
//! repo's determinism batteries: computed reports are byte-identical
//! across `threads_per_rank`, `engine`, and `sched_workers` (host-only
//! knobs), and a request's `trace` spec never perturbs the measured
//! report, so none of them participate. Display-only strings
//! (`PlatformSpec::description`, `cpu_model`, `CostModel::note`,
//! `NetworkModel::name`) are likewise omitted; every number that feeds the
//! virtual clocks — and the platform `key`, which the outcome echoes — is
//! included. Over-inclusion merely costs a spurious cache miss;
//! under-inclusion would alias distinct outcomes under one key, so when in
//! doubt a field goes in.

use crate::apps::App;
use crate::recovery::ResilienceSpec;
use crate::run::{Fidelity, RunRequest};
use hetero_fault::{
    Backoff, CrashProcess, DegradationModel, FaultModel, RecoveryMode, ResiliencePolicy, SpotMarket,
};
use hetero_fem::bdf::BdfOrder;
use hetero_fem::element::ElementOrder;
use hetero_fem::ns::{MomentumSolver, NsConfig};
use hetero_fem::rd::{PrecondKind, RdConfig};
use hetero_linalg::{KernelBackend, SolveOptions, SolverVariant};
use hetero_platform::cost::{Billing, CostModel};
use hetero_platform::limits::ExecutionLimits;
use hetero_platform::scheduler::{QueueModel, SchedulerKind};
use hetero_platform::spec::AccessKind;
use hetero_platform::spot::FleetStrategy;
use hetero_platform::PlatformSpec;
use hetero_simmpi::{ClusterTopology, ComputeModel, NetworkModel};

/// Version tag of the canonical key schema. Doubles as the prefix of every
/// key string, so a key names the schema that produced it.
pub const KEY_SCHEMA: &str = "hetero-serve/key/v1";

/// The content-addressed cache key of a request: the schema tag followed
/// by the SHA-256 of [`canonical_request`]'s bytes.
pub fn request_key(req: &RunRequest) -> String {
    format!(
        "{KEY_SCHEMA}/{}",
        sha256_hex(canonical_request(req).as_bytes())
    )
}

/// The canonical text of a request under [`KEY_SCHEMA`] — the exact bytes
/// [`request_key`] hashes. Human-readable on purpose: a key mismatch
/// debugs by diffing two of these.
pub fn canonical_request(req: &RunRequest) -> String {
    let mut c = Canon::new();
    c.s("schema", KEY_SCHEMA);
    c.group("app", |c| canon_app(c, &req.app));
    c.group("platform", |c| canon_platform(c, &req.platform));
    c.u("ranks", req.ranks as u64);
    c.u("per_rank_axis", req.per_rank_axis as u64);
    c.u("seed", req.seed);
    c.u("discard", req.discard as u64);
    c.lit(
        "fidelity",
        match req.fidelity {
            Fidelity::Numerical => "numerical",
            Fidelity::Modeled => "modeled",
            Fidelity::Auto => "auto",
        },
    );
    match req.solver_variant {
        None => c.none("solver_variant"),
        Some(v) => c.lit("solver_variant", solver_variant_name(v)),
    }
    match req.kernel_backend {
        None => c.none("kernel_backend"),
        Some(b) => c.lit("kernel_backend", kernel_backend_name(b)),
    }
    c.opt(
        "topology_override",
        req.topology_override.as_ref(),
        |c, t| {
            canon_topology(c, t);
        },
    );
    c.opt("cost_override", req.cost_override.as_ref(), |c, m| {
        canon_cost(c, m);
    });
    c.opt("resilience", req.resilience.as_ref(), |c, r| {
        canon_resilience(c, r);
    });
    c.finish()
}

/// Version tag of the prepared-scenario sub-key schema (see
/// `crate::prep`). Like [`KEY_SCHEMA`], it prefixes every key it produces.
pub const PREP_KEY_SCHEMA: &str = "hetero-prep/key/v1";

/// The content-addressed key of a request's platform-independent setup:
/// the schema tag followed by the SHA-256 of [`prep_canonical`]'s bytes.
pub fn prep_key(req: &RunRequest) -> String {
    format!(
        "{PREP_KEY_SCHEMA}/{}",
        sha256_hex(prep_canonical(req).as_bytes())
    )
}

/// The canonical text of a request's *setup inputs* under
/// [`PREP_KEY_SCHEMA`] — the exact bytes [`prep_key`] hashes.
///
/// The prepared artifacts (mesh, partition, ghost plans, DoF maps,
/// symbolic assembly structures, modeled space views) are pure functions
/// of the mesh spec, the discretization's element orders, the rank count,
/// and the block-partition factors — nothing else. The encoding therefore
/// *deliberately excludes* the platform, the seed, the solver variant and
/// kernel backend, the checkpoint cadence and every other resilience
/// knob, the time-stepping parameters, and all host-only knobs
/// (`threads_per_rank`, `engine`, `sched_workers`, `trace`): instances
/// that differ only in those share one preparation. The golden fixtures
/// in `tests/prep_keys.rs` pin both the bytes and the exclusions.
pub fn prep_canonical(req: &RunRequest) -> String {
    let f = hetero_partition::block::near_cubic_factors(req.ranks);
    let mut c = Canon::new();
    c.s("schema", PREP_KEY_SCHEMA);
    c.group("mesh", |c| {
        // The generator: a unit cube of uniform hex cells, weak-scaled as
        // `near_cubic_factors(ranks) * per_rank_axis` per axis.
        c.lit("generator", "unit-cube-hex");
        c.u("cells_x", (f.0 * req.per_rank_axis) as u64);
        c.u("cells_y", (f.1 * req.per_rank_axis) as u64);
        c.u("cells_z", (f.2 * req.per_rank_axis) as u64);
    });
    c.group("discretization", |c| match &req.app {
        App::Rd(cfg) => {
            c.lit("app", "rd");
            c.lit("order", element_order_name(cfg.order));
        }
        App::Ns(cfg) => {
            c.lit("app", "ns");
            c.lit("vel_order", element_order_name(cfg.vel_order));
            c.lit("p_order", element_order_name(cfg.p_order));
        }
    });
    c.u("ranks", req.ranks as u64);
    c.u("per_rank_axis", req.per_rank_axis as u64);
    c.group("partition", |c| {
        c.lit("partitioner", "block");
        c.u("parts_x", f.0 as u64);
        c.u("parts_y", f.1 as u64);
        c.u("parts_z", f.2 as u64);
    });
    c.finish()
}

/// Lowercase-hex SHA-256 (FIPS 180-4) of `data`. Hand-rolled because the
/// build environment vendors no crypto crate; the test battery pins the
/// standard test vectors.
pub fn sha256_hex(data: &[u8]) -> String {
    #[rustfmt::skip]
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
        0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
        0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
        0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
        0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
        0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
        0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (wi, word) in w.iter_mut().zip(chunk.chunks_exact(4)) {
            *wi = u32::from_be_bytes(word.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for (ki, wi) in K.iter().zip(w.iter()) {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(*ki)
                .wrapping_add(*wi);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }
    let mut out = String::with_capacity(64);
    for v in h {
        out.push_str(&format!("{v:08x}"));
    }
    out
}

/// The canonical-text writer. Scalar kinds carry a one-letter type tag so
/// no two value spaces can collide (`i:` integer, `f:` IEEE-754 bits,
/// `b:` bool, `s:` length-prefixed string, `e:` enum variant, `-` absent);
/// nested records sit in `name={...};` groups.
struct Canon {
    buf: String,
}

impl Canon {
    fn new() -> Self {
        Canon { buf: String::new() }
    }

    fn finish(self) -> String {
        self.buf
    }

    fn u(&mut self, name: &str, v: u64) {
        self.buf.push_str(&format!("{name}=i:{v};"));
    }

    fn f(&mut self, name: &str, v: f64) {
        // Exact bit pattern: distinguishes -0.0 from 0.0 and never loses
        // precision to decimal formatting.
        self.buf
            .push_str(&format!("{name}=f:{:016x};", v.to_bits()));
    }

    fn b(&mut self, name: &str, v: bool) {
        self.buf.push_str(&format!("{name}=b:{};", u8::from(v)));
    }

    fn s(&mut self, name: &str, v: &str) {
        // Length prefix keeps adjacent strings unambiguous regardless of
        // their content (`;` or `=` inside a platform key cannot confuse
        // the framing).
        self.buf.push_str(&format!("{name}=s:{}:{v};", v.len()));
    }

    fn lit(&mut self, name: &str, variant: &str) {
        self.buf.push_str(&format!("{name}=e:{variant};"));
    }

    fn none(&mut self, name: &str) {
        self.buf.push_str(&format!("{name}=-;"));
    }

    fn group(&mut self, name: &str, f: impl FnOnce(&mut Self)) {
        self.buf.push_str(&format!("{name}={{"));
        f(self);
        self.buf.push_str("};");
    }

    fn opt<T>(&mut self, name: &str, v: Option<&T>, enc: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.none(name),
            Some(x) => self.group(name, |c| enc(c, x)),
        }
    }

    fn opt_u(&mut self, name: &str, v: Option<u64>) {
        match v {
            None => self.none(name),
            Some(x) => self.u(name, x),
        }
    }

    fn opt_f(&mut self, name: &str, v: Option<f64>) {
        match v {
            None => self.none(name),
            Some(x) => self.f(name, x),
        }
    }

    fn seq_u(&mut self, name: &str, items: impl Iterator<Item = u64>) {
        self.buf.push_str(&format!("{name}=["));
        for v in items {
            self.buf.push_str(&format!("i:{v},"));
        }
        self.buf.push_str("];");
    }
}

fn element_order_name(o: ElementOrder) -> &'static str {
    match o {
        ElementOrder::Q1 => "q1",
        ElementOrder::Q2 => "q2",
    }
}

fn bdf_name(o: BdfOrder) -> &'static str {
    match o {
        BdfOrder::One => "bdf1",
        BdfOrder::Two => "bdf2",
    }
}

fn precond_name(p: PrecondKind) -> &'static str {
    match p {
        PrecondKind::None => "none",
        PrecondKind::Jacobi => "jacobi",
        PrecondKind::Ssor => "ssor",
        PrecondKind::Ilu0 => "ilu0",
    }
}

fn solver_variant_name(v: SolverVariant) -> &'static str {
    match v {
        SolverVariant::Blocking => "blocking",
        SolverVariant::Overlapped => "overlapped",
        SolverVariant::Pipelined => "pipelined",
    }
}

fn kernel_backend_name(b: KernelBackend) -> &'static str {
    match b {
        KernelBackend::Assembled => "assembled",
        KernelBackend::MatrixFree => "matrix-free",
    }
}

fn canon_solve(c: &mut Canon, s: &SolveOptions) {
    c.f("rel_tol", s.rel_tol);
    c.f("abs_tol", s.abs_tol);
    c.u("max_iters", s.max_iters as u64);
    c.lit("variant", solver_variant_name(s.variant));
    c.lit("backend", kernel_backend_name(s.backend));
}

fn canon_rd(c: &mut Canon, cfg: &RdConfig) {
    c.lit("order", element_order_name(cfg.order));
    c.lit("bdf", bdf_name(cfg.bdf));
    c.f("t0", cfg.t0);
    c.f("dt", cfg.dt);
    c.u("steps", cfg.steps as u64);
    c.lit("precond", precond_name(cfg.precond));
    c.group("solve", |c| canon_solve(c, &cfg.solve));
}

fn canon_ns(c: &mut Canon, cfg: &NsConfig) {
    c.lit("vel_order", element_order_name(cfg.vel_order));
    c.lit("p_order", element_order_name(cfg.p_order));
    c.lit("bdf", bdf_name(cfg.bdf));
    c.f("t0", cfg.t0);
    c.f("dt", cfg.dt);
    c.u("steps", cfg.steps as u64);
    c.f("rho", cfg.rho);
    c.f("mu", cfg.mu);
    match cfg.momentum_solver {
        MomentumSolver::BiCgStab => c.lit("momentum_solver", "bicgstab"),
        MomentumSolver::Gmres { restart } => c.group("momentum_solver", |c| {
            c.lit("kind", "gmres");
            c.u("restart", restart as u64);
        }),
    }
    c.lit("precond_vel", precond_name(cfg.precond_vel));
    c.lit("precond_p", precond_name(cfg.precond_p));
    c.group("solve_vel", |c| canon_solve(c, &cfg.solve_vel));
    c.group("solve_p", |c| canon_solve(c, &cfg.solve_p));
}

fn canon_app(c: &mut Canon, app: &App) {
    match app {
        App::Rd(cfg) => c.group("rd", |c| canon_rd(c, cfg)),
        App::Ns(cfg) => c.group("ns", |c| canon_ns(c, cfg)),
    }
}

fn canon_compute(c: &mut Canon, m: ComputeModel) {
    c.f("flops_per_sec", m.flops_per_sec);
    c.f("mem_bw", m.mem_bw);
}

fn canon_network(c: &mut Canon, n: &NetworkModel) {
    // `n.name` is a display label; the numbers below are the fabric.
    c.f("latency", n.latency);
    c.f("latency_intra", n.latency_intra);
    c.f("node_bw", n.node_bw);
    c.f("intra_bw", n.intra_bw);
    c.u("switch_radix", n.switch_radix as u64);
    c.f("oversubscription", n.oversubscription);
    c.f("cross_group_lat_mult", n.cross_group_lat_mult);
    c.f("cross_group_bw_mult", n.cross_group_bw_mult);
    c.f("jitter_sigma", n.jitter_sigma);
}

fn canon_cost(c: &mut Canon, m: &CostModel) {
    // `m.note` is provenance prose; only the billing scheme prices runs.
    match m.billing {
        Billing::PerCoreHour(rate) => c.group("per_core_hour", |c| c.f("rate", rate)),
        Billing::PerNodeHour {
            rate,
            cores_per_node,
        } => c.group("per_node_hour", |c| {
            c.f("rate", rate);
            c.u("cores_per_node", cores_per_node as u64);
        }),
        Billing::EstimatedPerCoreHour(rate) => {
            c.group("estimated_per_core_hour", |c| c.f("rate", rate));
        }
    }
}

fn canon_limits(c: &mut Canon, l: &ExecutionLimits) {
    c.u("max_cores", l.max_cores as u64);
    c.opt_u(
        "max_launchable_ranks",
        l.max_launchable_ranks.map(|v| v as u64),
    );
    c.opt_f("adapter_volume_cap", l.adapter_volume_cap);
}

fn canon_queue(c: &mut Canon, q: &QueueModel) {
    c.f("base", q.base);
    c.f("per_node", q.per_node);
    c.f("spread", q.spread);
    c.f("size_exponent", q.size_exponent);
}

fn canon_platform(c: &mut Canon, p: &PlatformSpec) {
    // The outcome echoes `p.key`, so it is observable output, not a label.
    c.s("key", &p.key);
    c.u("cores_per_node", p.cores_per_node as u64);
    c.u("max_nodes", p.max_nodes as u64);
    c.f("ram_per_core_gib", p.ram_per_core_gib);
    c.group("compute", |c| canon_compute(c, p.compute));
    c.group("network", |c| canon_network(c, &p.network));
    c.lit(
        "access",
        match p.access {
            AccessKind::UserSpace => "user-space",
            AccessKind::Root => "root",
        },
    );
    c.lit(
        "scheduler",
        match p.scheduler {
            SchedulerKind::PbsTorque => "pbs-torque",
            SchedulerKind::SgeSerialOnly => "sge-serial-only",
            SchedulerKind::PbsPro => "pbs-pro",
            SchedulerKind::DirectShell => "direct-shell",
        },
    );
    c.group("queue", |c| canon_queue(c, &p.queue));
    c.group("cost", |c| canon_cost(c, &p.cost));
    c.group("limits", |c| canon_limits(c, &p.limits));
    c.f("node_mtbf_hours", p.node_mtbf_hours);
}

fn canon_topology(c: &mut Canon, t: &ClusterTopology) {
    c.u("cores_per_node", t.cores_per_node() as u64);
    c.seq_u(
        "groups",
        (0..t.num_nodes()).map(|n| t.group_of_node(n) as u64),
    );
}

fn canon_backoff(c: &mut Canon, b: &Backoff) {
    c.f("base_seconds", b.base_seconds);
    c.f("factor", b.factor);
    c.f("cap_seconds", b.cap_seconds);
}

fn canon_policy(c: &mut Canon, p: &ResiliencePolicy) {
    c.u("checkpoint_every", p.checkpoint_every as u64);
    c.f("io_bandwidth", p.io_bandwidth);
    match p.mode {
        RecoveryMode::FailFast => c.lit("mode", "fail-fast"),
        RecoveryMode::Restart { max_restarts } => c.group("mode", |c| {
            c.lit("kind", "restart");
            c.u("max_restarts", max_restarts as u64);
        }),
    }
    c.group("backoff", |c| canon_backoff(c, &p.backoff));
}

fn canon_crashes(c: &mut Canon, p: &CrashProcess) {
    c.f("node_mtbf_hours", p.node_mtbf_hours);
}

fn canon_spot(c: &mut Canon, m: &SpotMarket) {
    c.f("epoch_seconds", m.epoch_seconds);
    c.f("base_price", m.base_price);
    c.f("max_bid", m.max_bid);
    c.f("spike_probability", m.spike_probability);
    c.u("capacity_lo", m.capacity_range.0 as u64);
    c.u("capacity_hi", m.capacity_range.1 as u64);
}

fn canon_degradation(c: &mut Canon, d: &DegradationModel) {
    c.f("mean_interval_seconds", d.mean_interval_seconds);
    c.f("duration_seconds", d.duration_seconds);
    c.f("slowdown", d.slowdown);
}

fn canon_faults(c: &mut Canon, f: &FaultModel) {
    c.opt("crashes", f.crashes.as_ref(), canon_crashes);
    c.opt("spot", f.spot.as_ref(), canon_spot);
    c.opt("degradation", f.degradation.as_ref(), canon_degradation);
}

fn canon_strategy(c: &mut Canon, s: FleetStrategy) {
    match s {
        FleetStrategy::OnDemandSingleGroup => c.lit("strategy", "on-demand-single-group"),
        FleetStrategy::SpotMix { groups, max_bid } => c.group("strategy", |c| {
            c.lit("kind", "spot-mix");
            c.u("groups", groups as u64);
            c.f("max_bid", max_bid);
        }),
    }
}

fn canon_resilience(c: &mut Canon, r: &ResilienceSpec) {
    c.group("policy", |c| canon_policy(c, &r.policy));
    c.group("faults", |c| canon_faults(c, &r.faults));
    canon_strategy(c, r.strategy);
    c.b("incremental_checkpoints", r.incremental_checkpoints);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::catalog;

    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // A two-block message (padding boundary).
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn key_is_deterministic_and_schema_prefixed() {
        let req = RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3);
        let a = request_key(&req);
        let b = request_key(&req.clone());
        assert_eq!(a, b);
        assert!(a.starts_with("hetero-serve/key/v1/"));
        assert_eq!(a.len(), KEY_SCHEMA.len() + 1 + 64);
    }

    #[test]
    fn semantic_fields_change_the_key() {
        let base = RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3);
        let other_seed = RunRequest {
            seed: base.seed + 1,
            ..base.clone()
        };
        let other_size = RunRequest {
            ranks: 27,
            ..base.clone()
        };
        let other_app = RunRequest {
            app: App::paper_ns(3),
            ..base.clone()
        };
        let k = request_key(&base);
        assert_ne!(k, request_key(&other_seed));
        assert_ne!(k, request_key(&other_size));
        assert_ne!(k, request_key(&other_app));
    }

    #[test]
    fn host_only_knobs_do_not_change_the_key() {
        // The determinism batteries pin reports bitwise across these, so
        // the cache may legally serve across them.
        let base = RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3);
        let threaded = RunRequest {
            threads_per_rank: 4,
            sched_workers: 7,
            engine: hetero_simmpi::EngineKind::Threads,
            trace: Some(hetero_trace::TraceSpec::messages()),
            ..base.clone()
        };
        assert_eq!(request_key(&base), request_key(&threaded));
    }

    #[test]
    fn display_strings_do_not_change_the_key() {
        let base = RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3);
        let mut relabeled = base.clone();
        relabeled.platform.description = "same machine, new sign on the door".to_string();
        relabeled.platform.cpu_model = "Opteron (renamed)".to_string();
        relabeled.platform.cost.note = "different accountant".to_string();
        relabeled.platform.network.name = "1GbE (rebranded)".to_string();
        assert_eq!(request_key(&base), request_key(&relabeled));
    }

    #[test]
    fn float_encoding_distinguishes_bit_patterns() {
        let base = RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3);
        let mut nudged = base.clone();
        nudged.platform.network.latency =
            f64::from_bits(base.platform.network.latency.to_bits() + 1);
        assert_ne!(request_key(&base), request_key(&nudged));
    }

    #[test]
    fn resilience_participates_in_the_key() {
        let base = RunRequest::new(catalog::ec2(), App::paper_rd(3), 64, 20);
        let resilient = RunRequest {
            resilience: Some(ResilienceSpec::spot_with_restart(
                &catalog::ec2(),
                0.60,
                2,
                3,
            )),
            ..base.clone()
        };
        assert_ne!(request_key(&base), request_key(&resilient));
    }
}
