//! The "expense factor": the paper's qualitative platform characterization
//! made quantitative.
//!
//! The paper's abstract promises "preliminary insights into characterizing
//! these different types of platforms … in terms of deployment effort,
//! actual and nominal costs, application performance, and availability".
//! [`characterize`] computes all four axes for a (platform, application,
//! size) triple and combines them into a single comparable index for a
//! given campaign length.

use crate::apps::App;
use crate::run::{execute, RunOutcome, RunRequest};
use hetero_platform::limits::LimitViolation;
use hetero_platform::provision::{environment_of, plan};
use hetero_platform::PlatformSpec;

/// Default rate used to convert provisioning man-hours into dollars when
/// combining axes (a modest 2012 research-staff figure).
pub const DEFAULT_ENGINEER_RATE_PER_HOUR: f64 = 60.0;

/// The four axes of the paper's characterization, for one run
/// configuration.
#[derive(Debug, Clone)]
pub struct ExpenseFactor {
    /// Platform key.
    pub platform: String,
    /// Per-iteration wall time (performance axis).
    pub seconds_per_iteration: f64,
    /// Per-iteration dollars (cost axis).
    pub dollars_per_iteration: f64,
    /// One-time provisioning man-hours (deployment-effort axis).
    pub provisioning_hours: f64,
    /// Queue/boot wait before the job runs (availability axis).
    pub wait_seconds: f64,
    /// The underlying run outcome.
    pub outcome: RunOutcome,
}

impl ExpenseFactor {
    /// Total dollars to run a campaign of `iterations` iterations,
    /// amortizing provisioning effort at `rate_per_hour`.
    pub fn campaign_dollars(&self, iterations: usize, rate_per_hour: f64) -> f64 {
        self.provisioning_hours * rate_per_hour + self.dollars_per_iteration * iterations as f64
    }

    /// Total seconds from deciding to run to having `iterations` results
    /// (provisioning at one man ~ wall-clock, plus queue wait, plus
    /// compute).
    pub fn campaign_seconds(&self, iterations: usize) -> f64 {
        self.provisioning_hours * 3600.0
            + self.wait_seconds
            + self.seconds_per_iteration * iterations as f64
    }

    /// A single comparable index: campaign dollars plus time monetized at
    /// `rate_per_hour` (lower is better).
    pub fn index(&self, iterations: usize, rate_per_hour: f64) -> f64 {
        self.campaign_dollars(iterations, rate_per_hour)
            + self.campaign_seconds(iterations) / 3600.0 * rate_per_hour
    }
}

/// Characterizes one (platform, app, ranks) configuration.
///
/// # Errors
/// Propagates the platform's execution-limit violations.
pub fn characterize(
    platform: &PlatformSpec,
    app: App,
    ranks: usize,
    per_rank_axis: usize,
    seed: u64,
) -> Result<ExpenseFactor, LimitViolation> {
    let req = RunRequest {
        seed,
        ..RunRequest::new(platform.clone(), app, ranks, per_rank_axis)
    };
    let outcome = execute(&req)?;
    let provisioning_hours = environment_of(&platform.key)
        .and_then(|env| plan(&env).ok())
        .map(|p| p.total_hours())
        .unwrap_or(0.0);
    Ok(ExpenseFactor {
        platform: platform.key.clone(),
        seconds_per_iteration: outcome.phases.total,
        dollars_per_iteration: outcome.cost_per_iteration,
        provisioning_hours,
        wait_seconds: outcome.queue_wait_seconds,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::catalog;

    fn factor(p: &PlatformSpec, ranks: usize) -> ExpenseFactor {
        characterize(p, App::paper_rd(2), ranks, 20, 7).unwrap()
    }

    #[test]
    fn axes_are_populated() {
        let f = factor(&catalog::ec2(), 64);
        assert!(f.seconds_per_iteration > 0.0);
        assert!(f.dollars_per_iteration > 0.0);
        assert!(f.provisioning_hours > 8.0);
        assert!(f.wait_seconds > 0.0);
    }

    #[test]
    fn home_platform_wins_short_campaigns_at_small_size() {
        // For a handful of iterations at small scale, zero provisioning and
        // a short queue beat everything (the paper's status quo: codes stay
        // on their home platform).
        let puma = factor(&catalog::puma(), 64);
        let ec2 = factor(&catalog::ec2(), 64);
        let lagrange = factor(&catalog::lagrange(), 64);
        let r = DEFAULT_ENGINEER_RATE_PER_HOUR;
        assert!(puma.index(10, r) < ec2.index(10, r));
        assert!(puma.index(10, r) < lagrange.index(10, r));
    }

    #[test]
    fn provisioning_amortizes_over_long_campaigns() {
        // EC2's one-time day of provisioning matters less and less as the
        // campaign grows.
        let ec2 = factor(&catalog::ec2(), 64);
        let r = DEFAULT_ENGINEER_RATE_PER_HOUR;
        let short = ec2.index(10, r) / 10.0;
        let long = ec2.index(100_000, r) / 100_000.0;
        assert!(long < short / 10.0);
    }

    #[test]
    fn only_the_cloud_reaches_1000_ranks() {
        assert!(characterize(&catalog::puma(), App::paper_rd(2), 1000, 20, 7).is_err());
        assert!(characterize(&catalog::ellipse(), App::paper_rd(2), 1000, 20, 7).is_err());
        assert!(characterize(&catalog::lagrange(), App::paper_rd(2), 1000, 20, 7).is_err());
        assert!(characterize(&catalog::ec2(), App::paper_rd(2), 1000, 20, 7).is_ok());
    }
}
