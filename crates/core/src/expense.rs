//! The "expense factor": the paper's qualitative platform characterization
//! made quantitative.
//!
//! The paper's abstract promises "preliminary insights into characterizing
//! these different types of platforms … in terms of deployment effort,
//! actual and nominal costs, application performance, and availability".
//! [`characterize`] computes all four axes for a (platform, application,
//! size) triple and combines them into a single comparable index for a
//! given campaign length.

use crate::apps::App;
use crate::recovery::{execute_resilient, ResilienceSpec};
use crate::run::{execute, RunOutcome, RunRequest};
use hetero_fault::RecoveryStats;
use hetero_platform::limits::LimitViolation;
use hetero_platform::provision::{environment_of, plan};
use hetero_platform::PlatformSpec;

/// Default rate used to convert provisioning man-hours into dollars when
/// combining axes (a modest 2012 research-staff figure).
pub const DEFAULT_ENGINEER_RATE_PER_HOUR: f64 = 60.0;

/// The four axes of the paper's characterization, for one run
/// configuration.
#[derive(Debug, Clone)]
pub struct ExpenseFactor {
    /// Platform key.
    pub platform: String,
    /// Per-iteration wall time (performance axis).
    pub seconds_per_iteration: f64,
    /// Per-iteration dollars (cost axis).
    pub dollars_per_iteration: f64,
    /// One-time provisioning man-hours (deployment-effort axis).
    pub provisioning_hours: f64,
    /// Queue/boot wait before the job runs (availability axis).
    pub wait_seconds: f64,
    /// The underlying run outcome.
    pub outcome: RunOutcome,
}

impl ExpenseFactor {
    /// Total dollars to run a campaign of `iterations` iterations,
    /// amortizing provisioning effort at `rate_per_hour`.
    pub fn campaign_dollars(&self, iterations: usize, rate_per_hour: f64) -> f64 {
        self.provisioning_hours * rate_per_hour + self.dollars_per_iteration * iterations as f64
    }

    /// Total seconds from deciding to run to having `iterations` results
    /// (provisioning at one man ~ wall-clock, plus queue wait, plus
    /// compute).
    pub fn campaign_seconds(&self, iterations: usize) -> f64 {
        self.provisioning_hours * 3600.0
            + self.wait_seconds
            + self.seconds_per_iteration * iterations as f64
    }

    /// A single comparable index: campaign dollars plus time monetized at
    /// `rate_per_hour` (lower is better).
    pub fn index(&self, iterations: usize, rate_per_hour: f64) -> f64 {
        self.campaign_dollars(iterations, rate_per_hour)
            + self.campaign_seconds(iterations) / 3600.0 * rate_per_hour
    }
}

/// Characterizes one (platform, app, ranks) configuration.
///
/// # Errors
/// Propagates the platform's execution-limit violations.
pub fn characterize(
    platform: &PlatformSpec,
    app: App,
    ranks: usize,
    per_rank_axis: usize,
    seed: u64,
) -> Result<ExpenseFactor, LimitViolation> {
    let req = RunRequest {
        seed,
        ..RunRequest::new(platform.clone(), app, ranks, per_rank_axis)
    };
    let outcome = execute(&req)?;
    let provisioning_hours = environment_of(&platform.key)
        .and_then(|env| plan(&env).ok())
        .map(|p| p.total_hours())
        .unwrap_or(0.0);
    Ok(ExpenseFactor {
        platform: platform.key.clone(),
        seconds_per_iteration: outcome.phases.total,
        dollars_per_iteration: outcome.cost_per_iteration,
        provisioning_hours,
        wait_seconds: outcome.queue_wait_seconds,
        outcome,
    })
}

/// [`ExpenseFactor`] under faults: the same four axes, but every
/// per-iteration figure is the campaign *expectation* — waits, backoff,
/// lost work, and checkpoint I/O are all charged.
#[derive(Debug, Clone)]
pub struct ResilientExpense {
    /// Campaign accounting across all attempts.
    pub stats: RecoveryStats,
    /// Spot nodes the first attempt's fleet held.
    pub first_attempt_spot_nodes: usize,
    /// The four-axis factor, with the expected (fault-inclusive) figures on
    /// the performance and cost axes. `None` when the restart budget ran
    /// out — the campaign delivered no result at any price.
    pub factor: Option<ExpenseFactor>,
}

/// Characterizes one (platform, app, ranks) configuration under a fault
/// model and recovery policy, charging the full campaign (re-acquisition
/// waits, backoff, rolled-back work, checkpoint I/O) into the expense axes.
///
/// # Errors
/// Propagates the platform's execution-limit violations — checked before
/// the attempt loop, so an infeasible size never retries.
pub fn characterize_resilient(
    platform: &PlatformSpec,
    app: App,
    ranks: usize,
    per_rank_axis: usize,
    seed: u64,
    spec: ResilienceSpec,
) -> Result<ResilientExpense, LimitViolation> {
    let steps = app.steps().max(1) as f64;
    let req = RunRequest {
        seed,
        resilience: Some(spec),
        ..RunRequest::new(platform.clone(), app, ranks, per_rank_axis)
    };
    let out = execute_resilient(&req)?;
    let provisioning_hours = environment_of(&platform.key)
        .and_then(|env| plan(&env).ok())
        .map(|p| p.total_hours())
        .unwrap_or(0.0);
    let stats = out.stats;
    let factor = out.outcome.map(|outcome| ExpenseFactor {
        platform: platform.key.clone(),
        seconds_per_iteration: (stats.total_seconds - stats.wait_seconds) / steps,
        dollars_per_iteration: stats.total_dollars / steps,
        provisioning_hours,
        wait_seconds: stats.wait_seconds,
        outcome,
    });
    Ok(ResilientExpense {
        stats: out.stats,
        first_attempt_spot_nodes: out.first_attempt_spot_nodes,
        factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::catalog;

    fn factor(p: &PlatformSpec, ranks: usize) -> ExpenseFactor {
        characterize(p, App::paper_rd(2), ranks, 20, 7).unwrap()
    }

    #[test]
    fn axes_are_populated() {
        let f = factor(&catalog::ec2(), 64);
        assert!(f.seconds_per_iteration > 0.0);
        assert!(f.dollars_per_iteration > 0.0);
        assert!(f.provisioning_hours > 8.0);
        assert!(f.wait_seconds > 0.0);
    }

    #[test]
    fn home_platform_wins_short_campaigns_at_small_size() {
        // For a handful of iterations at small scale, zero provisioning and
        // a short queue beat everything (the paper's status quo: codes stay
        // on their home platform).
        let puma = factor(&catalog::puma(), 64);
        let ec2 = factor(&catalog::ec2(), 64);
        let lagrange = factor(&catalog::lagrange(), 64);
        let r = DEFAULT_ENGINEER_RATE_PER_HOUR;
        assert!(puma.index(10, r) < ec2.index(10, r));
        assert!(puma.index(10, r) < lagrange.index(10, r));
    }

    #[test]
    fn provisioning_amortizes_over_long_campaigns() {
        // EC2's one-time day of provisioning matters less and less as the
        // campaign grows.
        let ec2 = factor(&catalog::ec2(), 64);
        let r = DEFAULT_ENGINEER_RATE_PER_HOUR;
        let short = ec2.index(10, r) / 10.0;
        let long = ec2.index(100_000, r) / 100_000.0;
        assert!(long < short / 10.0);
    }

    #[test]
    fn resilient_spot_expense_beats_on_demand_at_small_scale() {
        let ec2 = catalog::ec2();
        let plain = factor(&ec2, 64);
        let spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 8, 40);
        let r = characterize_resilient(&ec2, App::paper_rd(2), 64, 20, 7, spec).unwrap();
        let f = r.factor.expect("calm market: campaign completes");
        assert!(r.stats.completed);
        assert!(r.first_attempt_spot_nodes > 0);
        // Expected spot dollars (waits and risk included) still undercut the
        // failure-free on-demand price at this scale.
        assert!(
            f.dollars_per_iteration < plain.dollars_per_iteration,
            "spot {} vs od {}",
            f.dollars_per_iteration,
            plain.dollars_per_iteration
        );
    }

    #[test]
    fn exhausted_campaign_has_no_expense_factor() {
        use hetero_fault::{FaultModel, SpotMarket};
        let ec2 = catalog::ec2();
        let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 2);
        spec.faults = FaultModel {
            crashes: None,
            spot: Some(SpotMarket {
                epoch_seconds: 1e-4,
                spike_probability: 1.0,
                ..SpotMarket::ec2_like(1.0)
            }),
            degradation: None,
        };
        let r = characterize_resilient(&ec2, App::paper_rd(2), 8, 3, 7, spec).unwrap();
        assert!(!r.stats.completed);
        assert!(r.factor.is_none());
        assert!(r.stats.total_dollars > 0.0, "failed attempts still bill");
    }

    #[test]
    fn only_the_cloud_reaches_1000_ranks() {
        assert!(characterize(&catalog::puma(), App::paper_rd(2), 1000, 20, 7).is_err());
        assert!(characterize(&catalog::ellipse(), App::paper_rd(2), 1000, 20, 7).is_err());
        assert!(characterize(&catalog::lagrange(), App::paper_rd(2), 1000, 20, 7).is_err());
        assert!(characterize(&catalog::ec2(), App::paper_rd(2), 1000, 20, 7).is_ok());
    }
}
