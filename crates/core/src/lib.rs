//! # hetero-hpc
//!
//! The experiment harness of the reproduction of *Experiences with
//! Target-Platform Heterogeneity in Clouds, Grids, and On-Premises
//! Resources* (Slawinski, Passerini, Villa, Veneziani, Sunderam — Emory
//! TR-2012-004 / IPPS 2012).
//!
//! The harness runs the paper's two FEM CFD applications (reaction–
//! diffusion and Navier–Stokes, from [`hetero_fem`]) on the four simulated
//! platforms (from [`hetero_platform`]) and reproduces every table and
//! figure of the paper's evaluation:
//!
//! | artifact  | entry point                      |
//! |-----------|----------------------------------|
//! | Table I   | [`scenarios::table1`]            |
//! | Figure 4  | [`scenarios::fig4`]              |
//! | Figure 5  | [`scenarios::fig5`]              |
//! | Table II  | [`scenarios::table2`]            |
//! | Figure 6  | [`scenarios::fig6`]              |
//! | Figure 7  | [`scenarios::fig7`]              |
//! | §VI effort| [`scenarios::table1`] (part 2)   |
//!
//! Two execution engines share one cost model:
//!
//! * [`run::execute`] with [`run::Fidelity::Numerical`] — every rank is an
//!   OS thread doing the real distributed numerics (verified against exact
//!   solutions), clocks advanced by the platform's network/compute models;
//! * [`run::Fidelity::Modeled`] — an analytic replay ([`modeled`]) of the
//!   same per-iteration communication/computation sequence, for the paper's
//!   1000-rank configurations that cannot be executed numerically on one
//!   host. `tests/model_validation.rs` pins the two engines together at
//!   small scale.

//! # Quick example
//!
//! ```
//! use hetero_hpc::{execute, App, Fidelity, RunRequest};
//! use hetero_platform::catalog;
//!
//! // Run the paper's RD benchmark numerically on the simulated home
//! // cluster: 8 ranks, 3^3 elements each.
//! let req = RunRequest {
//!     fidelity: Fidelity::Numerical,
//!     ..RunRequest::new(catalog::puma(), App::paper_rd(2), 8, 3)
//! };
//! let out = execute(&req).expect("within puma's limits");
//! // The distributed pipeline reproduces the exact solution...
//! assert!(out.verification.unwrap().linf < 1e-5);
//! // ...and the run has a simulated duration and a dollar cost.
//! assert!(out.phases.total > 0.0);
//! assert!(out.cost_per_iteration > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod canon;
pub mod expense;
pub mod modeled;
pub mod prep;
pub mod recovery;
pub mod report;
pub mod run;
pub mod scenarios;
pub mod snapshot;

pub use apps::App;
pub use prep::PreparedScenario;
pub use recovery::{
    execute_resilient, execute_resilient_with_prep, ResilienceOutcome, ResilienceSpec,
};
pub use run::{execute, execute_with_prep, Fidelity, RunOutcome, RunRequest};
// The tracing vocabulary, re-exported so harness users can request and
// consume traces without naming `hetero-trace` directly.
pub use hetero_trace::{Trace, TraceDetail, TraceEvent, TraceSpec};
