//! The analytic (modeled) execution engine for paper-scale runs.
//!
//! Replays the per-iteration communication/computation sequence of
//! [`hetero_fem::rd::solve_rd`] / [`hetero_fem::ns::solve_ns`] on a
//! [`hetero_simmpi::modeled::VirtualRank`], using
//!
//! * the real [`BlockLayout`] partition topology (neighbour sets and shared
//!   interface node counts, in closed form even at 1000 ranks),
//! * the shared work formulas of [`hetero_fem::profile`], and
//! * Krylov iteration counts from the calibrated laws in the same module.
//!
//! The replayed rank is the partition's **critical rank** (largest
//! halo footprint), matching the paper's "total maximal iteration time"
//! reduction. `tests/model_validation.rs` checks the replay against the
//! threaded numerical engine at small scale.

use hetero_fem::element::ElementOrder;
use hetero_fem::ns::NsConfig;
use hetero_fem::phase::PhaseTimes;
use hetero_fem::profile;
use hetero_fem::rd::RdConfig;
use hetero_linalg::SolverVariant;
use hetero_partition::BlockLayout;
use hetero_simmpi::modeled::{VirtualEnv, VirtualMsg, VirtualRank};
use hetero_simmpi::{ClusterTopology, ComputeModel, NetworkModel, Work};

use crate::apps::App;

/// A modeled run's result: per-iteration phase times of the critical rank
/// plus the aggregate traffic estimate used for limit checks.
#[derive(Debug, Clone)]
pub struct ModeledRun {
    /// Phase times for each simulated iteration.
    pub iterations: Vec<PhaseTimes>,
    /// Estimated aggregate bytes through the fabric per iteration (all
    /// ranks).
    pub bytes_per_iteration: f64,
    /// Krylov iterations per time step assumed by the replay (RD: CG; NS:
    /// summed momentum + pressure).
    pub krylov_iters: usize,
}

/// Mirror of one rank's view of the partition, in closed form.
#[derive(Clone)]
struct Spaces {
    cells: usize,
    /// For each element order used: (neighbors with shared-node counts,
    /// owned dofs, matrix nnz).
    q1: SpaceInfo,
    q2: SpaceInfo,
    n_axis: usize,
}

#[derive(Clone)]
struct SpaceInfo {
    neighbors: Vec<(usize, usize)>,
    n_owned: f64,
    nnz: f64,
    /// Stored entries in rows that reference ghost columns — the part of
    /// the SpMV that must wait for the halo under the overlapped schedule.
    boundary_nnz: f64,
}

fn space_info(layout: &BlockLayout, rank: usize, order: ElementOrder, ranks: usize) -> SpaceInfo {
    let q = order.q();
    let neighbors = layout.node_neighbors(rank, q);
    let (nx, ny, nz) = layout.cell_dims();
    let global = ((q * nx + 1) * (q * ny + 1) * (q * nz + 1)) as f64;
    let n_owned = global / ranks as f64;
    let stencil = profile::stencil_nnz_per_row(order);
    let nnz = n_owned * stencil;
    // One stencil layer of rows along each shared interface references
    // ghost columns; the interface node counts are exactly that layer.
    let shared: usize = neighbors.iter().map(|&(_, s)| s).sum();
    let boundary_nnz = (shared as f64 * stencil).min(nnz);
    SpaceInfo {
        neighbors,
        n_owned,
        nnz,
        boundary_nnz,
    }
}

/// The rank whose halo footprint is largest (ties to the lowest id).
fn critical_rank(layout: &BlockLayout, q: usize) -> usize {
    let mut best = (0usize, 0usize);
    for r in 0..layout.num_parts() {
        let total: usize = layout.node_neighbors(r, q).iter().map(|&(_, s)| s).sum();
        if total > best.1 {
            best = (r, total);
        }
    }
    best.0
}

/// The replay context: a virtual rank plus topology-aware message builders.
struct Replay {
    v: VirtualRank,
    topo: ClusterTopology,
    rank: usize,
    size: usize,
    /// Total bytes this rank received (proxy for fabric traffic).
    recv_bytes: f64,
}

impl Replay {
    fn msgs(&self, neighbors: &[(usize, usize)], bytes_per_node: f64) -> Vec<VirtualMsg> {
        neighbors
            .iter()
            .map(|&(peer, shared)| VirtualMsg {
                peer,
                bytes: shared as f64 * bytes_per_node,
                same_node: self.topo.same_node(peer, self.rank),
                same_group: self.topo.same_group(peer, self.rank),
            })
            .collect()
    }

    /// A ghost update on a space: every neighbour sends its shared values.
    fn halo(&mut self, info: &SpaceInfo) {
        let msgs = self.msgs(&info.neighbors, 8.0);
        self.recv_bytes += msgs.iter().map(|m| m.bytes).sum::<f64>();
        self.v.halo_exchange(&msgs);
    }

    /// Owner-shipping of assembled contributions: upper-coordinate
    /// neighbours ship `entry_bytes` per shared interface node to this rank
    /// (the ownership rule hands interfaces to the lower block).
    fn ship(&mut self, info: &SpaceInfo, entry_bytes: f64) {
        let msgs: Vec<VirtualMsg> = info
            .neighbors
            .iter()
            .map(|&(peer, shared)| VirtualMsg {
                peer,
                bytes: if peer > self.rank {
                    shared as f64 * entry_bytes
                } else {
                    64.0
                },
                same_node: self.topo.same_node(peer, self.rank),
                same_group: self.topo.same_group(peer, self.rank),
            })
            .collect();
        self.recv_bytes += msgs.iter().map(|m| m.bytes).sum::<f64>();
        self.v.halo_exchange(&msgs);
    }

    fn allreduce(&mut self, n: usize) {
        self.v.allreduce(n);
        if self.size > 1 {
            self.recv_bytes += 8.0 * n as f64 * 2.0;
        }
    }

    fn axpy(&mut self, n: f64) {
        self.v.compute(Work::new(2.0 * n, 24.0 * n));
    }

    fn spmv(&mut self, info: &SpaceInfo) {
        self.halo(info);
        self.v.compute(Work::new(2.0 * info.nnz, 20.0 * info.nnz));
    }

    /// An overlapped SpMV: the halo transfer progresses while the interior
    /// rows compute; only the boundary rows serialize behind the wait.
    fn spmv_overlapped(&mut self, info: &SpaceInfo) {
        let msgs = self.msgs(&info.neighbors, 8.0);
        self.recv_bytes += msgs.iter().map(|m| m.bytes).sum::<f64>();
        let interior = info.nnz - info.boundary_nnz;
        self.v
            .halo_exchange_overlapped(&msgs, Work::new(2.0 * interior, 20.0 * interior));
        self.v
            .compute(Work::new(2.0 * info.boundary_nnz, 20.0 * info.boundary_nnz));
    }

    fn sweep(&mut self, nnz: f64) {
        self.v.compute(Work::new(2.0 * nnz, 20.0 * nnz));
    }
}

/// Replays a preconditioned CG solve (initial residual plus `iters`
/// iterations) under the given communication schedule, mirroring the
/// per-iteration collective sequence of `hetero_linalg::solver::cg` /
/// `cg_pipelined`.
fn replay_cg(r: &mut Replay, info: &SpaceInfo, iters: usize, variant: SolverVariant) {
    match variant {
        SolverVariant::Blocking => {
            // Initial residual: spmv + norm + precond + dot.
            r.spmv(info);
            r.allreduce(1);
            r.sweep(info.nnz);
            r.allreduce(1);
            for _ in 0..iters {
                r.spmv(info);
                r.allreduce(1); // dot(p, q)
                r.axpy(2.0 * info.n_owned);
                r.allreduce(1); // norm(r)
                r.sweep(info.nnz); // precond apply
                r.allreduce(1); // dot(r, z)
                r.axpy(info.n_owned);
            }
        }
        SolverVariant::Overlapped => {
            r.spmv_overlapped(info);
            r.allreduce(1);
            r.sweep(info.nnz);
            r.allreduce(1);
            for _ in 0..iters {
                r.spmv_overlapped(info);
                r.allreduce(1); // dot(p, q)
                r.axpy(2.0 * info.n_owned);
                r.sweep(info.nnz); // precond apply (before the check)
                r.allreduce(2); // fused [||r||^2, (r, z)]
                r.axpy(info.n_owned);
            }
        }
        SolverVariant::Pipelined => {
            // Setup: residual + preconditioned direction + fused triple.
            r.spmv_overlapped(info);
            r.sweep(info.nnz);
            r.spmv_overlapped(info);
            r.allreduce(3);
            for _ in 0..iters {
                r.sweep(info.nnz); // m = M w
                r.spmv_overlapped(info); // n = A m
                r.axpy(8.0 * info.n_owned); // 4 xpby + 4 axpy recurrences
                r.allreduce(3); // the single fused reduction
            }
        }
    }
}

/// Replays one RD time step; returns its phase times.
fn rd_step(r: &mut Replay, s: &Spaces, cfg: &RdConfig) -> PhaseTimes {
    let order = cfg.order;
    let info = if order == ElementOrder::Q2 {
        &s.q2
    } else {
        &s.q1
    };
    let cells = s.cells as f64;
    let start = r.v.clock();

    // Assembly (ii): operator, history term, source, Dirichlet.
    r.v.compute(profile::assembly_matrix_work(order, order, 2) * cells);
    r.ship(info, 24.0 * order.nodes_per_element() as f64);
    r.axpy(2.0 * info.n_owned); // history combination
    r.spmv(info); // mass * history
    r.v.compute(profile::assembly_vector_work(order) * cells);
    r.ship(info, 16.0);
    r.axpy(info.n_owned); // b += source
    r.v.compute(Work::new(2.0 * info.nnz, 40.0 * info.nnz)); // constrain
    let t_assembly = r.v.clock();

    // Preconditioner (iiia): ILU(0) factorization (the paper-scenario
    // default) — see `App::paper_rd`.
    r.v.compute(Work::new(5.0 * info.nnz + info.n_owned, 24.0 * info.nnz));
    let t_precond = r.v.clock();

    // Solve (iiib): CG under the configured communication schedule.
    let iters = profile::rd_cg_iters(s.n_axis);
    replay_cg(r, info, iters, cfg.solve.variant);
    let t_solve = r.v.clock();

    // History rotation ghosts.
    r.halo(info);
    let end = r.v.clock();

    PhaseTimes {
        assembly: t_assembly - start,
        precond: t_precond - t_assembly,
        solve: t_solve - t_precond,
        total: end - start,
    }
}

/// Replays one NS time step.
fn ns_step(r: &mut Replay, s: &Spaces, cfg: &NsConfig) -> PhaseTimes {
    let v_info = &s.q2;
    let p_info = &s.q1;
    let cells = s.cells as f64;
    // Velocity-row x pressure-column gradient blocks: ~12 stored pressure
    // couplings per velocity row.
    let nnz_grad = v_info.n_owned * 12.0;
    let start = r.v.clock();

    // Assembly: extrapolation, momentum operator (mass+stiffness+convection),
    // pressure Laplacian, three right-hand sides, multi-component Dirichlet.
    r.axpy(3.0 * v_info.n_owned); // w extrapolation (3 components)
                                  // 8 operator terms: the monolithic vector-system assembly cost charged
                                  // by `hetero_fem::ns` (must stay in lockstep with it).
    r.v.compute(profile::assembly_matrix_work(ElementOrder::Q2, ElementOrder::Q2, 8) * cells);
    r.ship(v_info, 24.0 * 27.0);
    r.v.compute(profile::assembly_matrix_work(ElementOrder::Q1, ElementOrder::Q1, 1) * cells);
    r.ship(p_info, 24.0 * 8.0);
    for _ in 0..3 {
        r.axpy(2.0 * v_info.n_owned); // history combination
        r.spmv(v_info); // mass * history
                        // grad * pressure: pressure-space halo + rectangular spmv.
        r.halo(p_info);
        r.v.compute(Work::new(2.0 * nnz_grad, 20.0 * nnz_grad));
        r.axpy(v_info.n_owned);
    }
    r.v.compute(Work::new(4.0 * v_info.nnz, 80.0 * v_info.nnz)); // constrain x3
    let t_assembly = r.v.clock();

    // Preconditioners: Jacobi on the momentum block, ILU(0) on the
    // pressure Poisson.
    r.v.compute(Work::new(v_info.n_owned, 16.0 * v_info.n_owned));
    r.v.compute(Work::new(
        5.0 * p_info.nnz + p_info.n_owned,
        24.0 * p_info.nnz,
    ));
    let t_precond = r.v.clock();

    // Solve: 3 x BiCGStab (2 SpMV per iteration) + pressure CG + projection.
    let vel_overlapped = cfg.solve_vel.variant != SolverVariant::Blocking;
    let vel_iters = profile::ns_velocity_iters(s.n_axis);
    for _ in 0..3 {
        if vel_overlapped {
            r.spmv_overlapped(v_info); // initial residual
        } else {
            r.spmv(v_info);
        }
        r.allreduce(1);
        for _ in 0..vel_iters {
            for _ in 0..2 {
                if vel_overlapped {
                    r.spmv_overlapped(v_info);
                } else {
                    r.spmv(v_info);
                }
                r.axpy(v_info.n_owned); // Jacobi apply
            }
            if vel_overlapped {
                // rho and rhv stay scalar; (t,t)/(t,s) ride one fused pair.
                for _ in 0..2 {
                    r.allreduce(1);
                }
                r.allreduce(2);
            } else {
                for _ in 0..4 {
                    r.allreduce(1);
                }
            }
            r.axpy(6.0 * v_info.n_owned);
        }
    }
    // Pressure right-hand side: 3 divergence SpMVs over the velocity halo.
    for _ in 0..3 {
        r.halo(v_info);
        r.v.compute(Work::new(2.0 * nnz_grad, 20.0 * nnz_grad));
        r.axpy(p_info.n_owned);
    }
    let p_iters = profile::ns_pressure_iters(s.n_axis);
    match cfg.solve_p.variant {
        SolverVariant::Blocking => {
            r.spmv(p_info);
            r.allreduce(1);
            for _ in 0..p_iters {
                r.spmv(p_info);
                r.allreduce(1);
                r.axpy(2.0 * p_info.n_owned);
                r.allreduce(1);
                r.sweep(p_info.nnz);
                r.allreduce(1);
                r.axpy(p_info.n_owned);
            }
        }
        variant => replay_cg(r, p_info, p_iters, variant),
    }
    // Correction: 3 gradient SpMVs + lumped update; ghost refreshes.
    for _ in 0..3 {
        r.halo(p_info);
        r.v.compute(Work::new(2.0 * nnz_grad, 20.0 * nnz_grad));
        r.axpy(3.0 * v_info.n_owned);
        r.halo(v_info);
    }
    r.halo(p_info);
    let t_solve = r.v.clock();
    let end = r.v.clock();

    PhaseTimes {
        assembly: t_assembly - start,
        precond: t_precond - t_assembly,
        solve: t_solve - t_precond,
        total: end - start,
    }
}

/// The platform-independent setup of a modeled run: the block layout's
/// critical rank and its closed-form space views. A pure function of
/// `(ranks, cells, primary element order)` — platform, seed, solver
/// variant, and every host-only knob are irrelevant — so one prep serves
/// every instance of a sweep that shares the mesh and rank count.
#[derive(Clone)]
pub struct ModeledPrep {
    ranks: usize,
    cells: (usize, usize, usize),
    q: usize,
    rank: usize,
    spaces: Spaces,
}

/// Builds the modeled setup for the weak-scaling sizing used by
/// [`run_modeled`]: `cells = near_cubic_factors(ranks) * per_rank_axis`.
/// `q` is the primary element order's degree (`app.primary_order().q()`).
pub fn prepare_modeled(ranks: usize, per_rank_axis: usize, q: usize) -> ModeledPrep {
    assert!(ranks > 0 && per_rank_axis > 0);
    let factors = hetero_partition::block::near_cubic_factors(ranks);
    let cells = (
        factors.0 * per_rank_axis,
        factors.1 * per_rank_axis,
        factors.2 * per_rank_axis,
    );
    let (rank, spaces) = modeled_setup(ranks, cells, q);
    ModeledPrep {
        ranks,
        cells,
        q,
        rank,
        spaces,
    }
}

/// Critical rank + its space views for a `(ranks, cells, q)` partition.
fn modeled_setup(ranks: usize, cells: (usize, usize, usize), q: usize) -> (usize, Spaces) {
    let factors = hetero_partition::block::near_cubic_factors(ranks);
    assert!(
        factors.0 <= cells.0 && factors.1 <= cells.1 && factors.2 <= cells.2,
        "more ranks than the mesh can host"
    );
    let layout = BlockLayout::new(cells, factors);
    let rank = critical_rank(&layout, q);
    let spaces = Spaces {
        cells: layout.cells_in_rank(rank),
        q1: space_info(&layout, rank, ElementOrder::Q1, ranks),
        q2: space_info(&layout, rank, ElementOrder::Q2, ranks),
        n_axis: cells.0.max(cells.1).max(cells.2),
    };
    (rank, spaces)
}

/// Runs the modeled engine under the paper's weak-scaling sizing:
/// `per_rank_axis` is the paper's `m` (20), so the global mesh has
/// `m^3 * ranks` cells arranged by near-cubic factorization.
pub fn run_modeled(
    app: &App,
    ranks: usize,
    per_rank_axis: usize,
    topo: &ClusterTopology,
    net: &NetworkModel,
    compute: ComputeModel,
    seed: u64,
) -> ModeledRun {
    run_modeled_prepared(app, ranks, per_rank_axis, topo, net, compute, seed, None)
}

/// [`run_modeled`] with an optional prepared setup. A matching prep skips
/// the layout walk and space derivation; the replay itself — the only part
/// that touches platform, seed, or solver knobs — runs identically either
/// way, so the result is bitwise identical to a fresh setup.
#[allow(clippy::too_many_arguments)]
pub fn run_modeled_prepared(
    app: &App,
    ranks: usize,
    per_rank_axis: usize,
    topo: &ClusterTopology,
    net: &NetworkModel,
    compute: ComputeModel,
    seed: u64,
    prep: Option<&ModeledPrep>,
) -> ModeledRun {
    assert!(per_rank_axis > 0);
    let factors = hetero_partition::block::near_cubic_factors(ranks);
    let cells = (
        factors.0 * per_rank_axis,
        factors.1 * per_rank_axis,
        factors.2 * per_rank_axis,
    );
    run_modeled_sized_prepared(app, ranks, cells, topo, net, compute, seed, prep)
}

/// Runs the modeled engine on an explicit global mesh — used for strong
/// scaling, where the mesh stays fixed while ranks grow.
///
/// `topo` must have block placement compatible with `ranks`.
pub fn run_modeled_sized(
    app: &App,
    ranks: usize,
    cells: (usize, usize, usize),
    topo: &ClusterTopology,
    net: &NetworkModel,
    compute: ComputeModel,
    seed: u64,
) -> ModeledRun {
    run_modeled_sized_prepared(app, ranks, cells, topo, net, compute, seed, None)
}

/// [`run_modeled_sized`] with an optional prepared setup (see
/// [`run_modeled_prepared`]). A prep built for a different
/// `(ranks, cells, q)` is ignored and the setup is rebuilt fresh.
#[allow(clippy::too_many_arguments)]
pub fn run_modeled_sized_prepared(
    app: &App,
    ranks: usize,
    cells: (usize, usize, usize),
    topo: &ClusterTopology,
    net: &NetworkModel,
    compute: ComputeModel,
    seed: u64,
    prep: Option<&ModeledPrep>,
) -> ModeledRun {
    assert!(ranks > 0);
    let order = app.primary_order();
    let built;
    let (rank, spaces): (usize, &Spaces) = match prep {
        Some(p) if p.ranks == ranks && p.cells == cells && p.q == order.q() => (p.rank, &p.spaces),
        _ => {
            built = modeled_setup(ranks, cells, order.q());
            (built.0, &built.1)
        }
    };
    let spaces = spaces.clone();
    let env = VirtualEnv {
        net: net.clone(),
        compute,
        nic_sharers: topo.cores_per_node().min(ranks),
        nodes_active: topo.nodes_for_ranks(ranks),
        size: ranks,
        rank,
        seed,
    };
    let mut replay = Replay {
        v: VirtualRank::new(env),
        topo: topo.clone(),
        rank,
        size: ranks,
        recv_bytes: 0.0,
    };

    let steps = app.steps();
    let mut iterations = Vec::with_capacity(steps);
    let mut bytes_first_iter = 0.0;
    for i in 0..steps {
        let before = replay.recv_bytes;
        let times = match app {
            App::Rd(cfg) => rd_step(&mut replay, &spaces, cfg),
            App::Ns(cfg) => ns_step(&mut replay, &spaces, cfg),
        };
        if i == 0 {
            bytes_first_iter = replay.recv_bytes - before;
        }
        iterations.push(times);
    }

    let krylov_iters = match app {
        App::Rd(_) => profile::rd_cg_iters(spaces.n_axis),
        App::Ns(_) => {
            3 * profile::ns_velocity_iters(spaces.n_axis)
                + profile::ns_pressure_iters(spaces.n_axis)
        }
    };

    ModeledRun {
        iterations,
        // The critical rank's received bytes scaled to all ranks.
        bytes_per_iteration: bytes_first_iter * ranks as f64,
        krylov_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::catalog;

    fn run_on(platform: &hetero_platform::PlatformSpec, app: &App, ranks: usize) -> ModeledRun {
        let topo = platform.topology(ranks);
        run_modeled(
            app,
            ranks,
            20,
            &topo,
            &platform.network,
            platform.compute,
            42,
        )
    }

    #[test]
    fn phases_are_positive() {
        let r = run_on(&catalog::ec2(), &App::paper_rd(3), 64);
        assert_eq!(r.iterations.len(), 3);
        for it in &r.iterations {
            assert!(it.assembly > 0.0 && it.precond > 0.0 && it.solve > 0.0);
            assert!(it.total >= it.assembly + it.precond + it.solve - 1e-12);
        }
        assert!(r.bytes_per_iteration > 0.0);
    }

    #[test]
    fn ns_costs_more_than_rd() {
        let rd = run_on(&catalog::ec2(), &App::paper_rd(1), 27);
        let ns = run_on(&catalog::ec2(), &App::paper_ns(1), 27);
        assert!(ns.iterations[0].total > 2.0 * rd.iterations[0].total);
    }

    #[test]
    fn infiniband_scales_better_than_ethernet() {
        let t = |p: &hetero_platform::PlatformSpec, ranks: usize| {
            run_on(p, &App::paper_rd(1), ranks).iterations[0].total
        };
        let puma_growth = t(&catalog::puma(), 125) / t(&catalog::puma(), 8);
        let lagrange_growth = t(&catalog::lagrange(), 125) / t(&catalog::lagrange(), 8);
        assert!(
            lagrange_growth < puma_growth,
            "lagrange {lagrange_growth} vs puma {puma_growth}"
        );
    }

    #[test]
    fn single_rank_has_no_communication() {
        let r = run_on(&catalog::ec2(), &App::paper_rd(2), 1);
        assert_eq!(r.bytes_per_iteration, 0.0);
        assert!(r.iterations[0].total > 0.0);
    }

    #[test]
    fn thousand_ranks_run_fast_in_model() {
        // The whole point of the modeled engine: paper-scale in milliseconds.
        let r = run_on(&catalog::ec2(), &App::paper_rd(2), 1000);
        assert!(r.iterations[0].total > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = run_on(&catalog::ec2(), &App::paper_rd(2), 64);
        let b = run_on(&catalog::ec2(), &App::paper_rd(2), 64);
        assert_eq!(a.iterations[1], b.iterations[1]);
    }
}
