//! The prepared-scenario cache: cross-instance sharing of the
//! platform-independent setup work of a campaign sweep (DESIGN.md §13).
//!
//! A sweep re-runs the same FEM problem across platforms, solver variants,
//! kernel backends, checkpoint cadences, and seeds. All of those knobs
//! leave the *setup* untouched: the generated mesh, the block partition
//! and its ghost plans, the DoF maps, the symbolic assembly structures,
//! and the modeled engine's closed-form space views are pure functions of
//! `(mesh spec, discretization, ranks, partition params)` — exactly the
//! inputs hashed by [`crate::canon::prep_key`] (`hetero-prep/key/v1`). A
//! [`PreparedScenario`] bundles those artifacts immutably behind `Arc`s so
//! every instance that shares the sub-key shares one preparation.
//!
//! Two levels of reuse hang off the bundle:
//!
//! * **Setup artifacts** (this module's reason to exist): the modeled
//!   prep is built eagerly (closed form, tiny); the numerical geometry
//!   (mesh + partition assignment) is built lazily because the
//!   per-cell assignment vector is large at high rank counts and the
//!   numerical engine only runs below the auto-fidelity caps; the
//!   per-rank FEM artifacts (DoF maps + assembly structures) are
//!   harvested from the first numerical run of the scenario — there is no
//!   throwaway preparation pass.
//! * **A fast-forward profile memo** for [`crate::recovery`]: the
//!   failure-free reference replay `(probe, fleet0, ff)` is a pure
//!   function of the request minus its cadence/policy/host knobs, so
//!   cadence sweeps (Table III) reuse one replay per
//!   `(platform, ranks, seed, strategy, app)` combination. The memo key
//!   is the canonical text of the request with those knobs normalized
//!   out; see `ff_memo_key`.
//!
//! **Determinism.** Every shared artifact is immutable and every reuse
//! path replays the collective protocol of the fresh build bit-for-bit
//! (see [`hetero_fem::DofMap::replay_build`] and
//! [`hetero_fem::assembly::MatrixAssembly::with_structure`]) or memoizes
//! the result of a pure function — so reports are byte-identical to
//! fresh-setup execution at every worker-pool size and thread count.
//! Disabling sharing ([`disable_sharing_scoped`] or
//! `HETERO_PREP_SHARE=0`) can therefore only lose speed, never change a
//! result.

use crate::canon::{canonical_request, prep_key};
use crate::modeled::{prepare_modeled, ModeledPrep, ModeledRun};
use crate::recovery::ResilienceSpec;
use crate::run::{Fidelity, RunRequest};
use hetero_fault::{FaultModel, ResiliencePolicy};
use hetero_fem::ns::NsPrep;
use hetero_fem::rd::RdPrep;
use hetero_mesh::StructuredHexMesh;
use hetero_partition::block::{near_cubic_factors, BlockLayout};
use hetero_platform::spot::{FleetAllocation, FleetStrategy};
use hetero_simmpi::EngineKind;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Bound on the process-wide scenario LRU. Scenarios at numerical sizes
/// hold the partition assignment and per-rank DoF maps, so the cache is
/// kept small; a sweep touches few distinct `(mesh, ranks)` rungs at a
/// time and re-preparing on eviction is always correct.
const SCENARIO_CACHE_CAP: usize = 8;

/// Bound on the per-scenario fast-forward profile memo (distinct
/// `(platform, seed, strategy, app)` combinations per scenario).
const FF_MEMO_CAP: usize = 64;

/// The mesh and partition assignment shared by every numerical run of one
/// scenario. Built lazily: the per-cell assignment vector is proportional
/// to the global cell count.
pub(crate) struct NumGeometry {
    pub(crate) mesh: StructuredHexMesh,
    pub(crate) assignment: Arc<Vec<usize>>,
}

/// Per-rank FEM setup artifacts, harvested from the first numerical run.
#[derive(Clone)]
pub(crate) enum RankPreps {
    Rd(Arc<Vec<RdPrep>>),
    Ns(Arc<Vec<NsPrep>>),
}

/// The memoized failure-free reference profile of a resilient run: the
/// one-step traffic probe, the first-attempt fleet, and the full
/// fast-forward replay. All three are pure functions of the inputs hashed
/// by [`ff_memo_key`].
pub(crate) struct FfProfile {
    pub(crate) probe: ModeledRun,
    pub(crate) fleet0: FleetAllocation,
    pub(crate) ff: ModeledRun,
}

enum FfSlot {
    /// Another thread is computing this profile; wait on the condvar.
    InProgress,
    Ready(Arc<FfProfile>),
}

struct FfMemo {
    slots: HashMap<String, FfSlot>,
    /// Ready keys in insertion order, for FIFO eviction.
    order: VecDeque<String>,
}

/// An immutable, `Arc`-shared bundle of the platform-independent setup
/// artifacts of one scenario, keyed by [`crate::canon::prep_key`].
pub struct PreparedScenario {
    key: String,
    ranks: usize,
    per_rank_axis: usize,
    modeled: ModeledPrep,
    geometry: OnceLock<Arc<NumGeometry>>,
    rank_preps: Mutex<Option<RankPreps>>,
    ff: Mutex<FfMemo>,
    ff_cv: Condvar,
}

impl PreparedScenario {
    /// Builds the scenario for `req`: the modeled prep eagerly, everything
    /// else on demand.
    fn build(req: &RunRequest) -> Self {
        PreparedScenario {
            key: prep_key(req),
            ranks: req.ranks,
            per_rank_axis: req.per_rank_axis,
            modeled: prepare_modeled(req.ranks, req.per_rank_axis, req.app.primary_order().q()),
            geometry: OnceLock::new(),
            rank_preps: Mutex::new(None),
            ff: Mutex::new(FfMemo {
                slots: HashMap::new(),
                order: VecDeque::new(),
            }),
            ff_cv: Condvar::new(),
        }
    }

    /// The `hetero-prep/key/v1` sub-key this scenario was built for.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The modeled engine's prepared setup.
    pub(crate) fn modeled(&self) -> &ModeledPrep {
        &self.modeled
    }

    /// The shared mesh + partition assignment, built on first use.
    pub(crate) fn geometry(&self) -> Arc<NumGeometry> {
        Arc::clone(self.geometry.get_or_init(|| {
            let factors = near_cubic_factors(self.ranks);
            let cells = (
                factors.0 * self.per_rank_axis,
                factors.1 * self.per_rank_axis,
                factors.2 * self.per_rank_axis,
            );
            let mesh = StructuredHexMesh::new(
                cells.0,
                cells.1,
                cells.2,
                hetero_mesh::Point3::ZERO,
                hetero_mesh::Point3::splat(1.0),
            );
            let layout = BlockLayout::new(cells, factors);
            Arc::new(NumGeometry {
                mesh,
                assignment: Arc::new(layout.assignment()),
            })
        }))
    }

    /// The harvested per-rank FEM artifacts, if a numerical run of this
    /// scenario has completed.
    pub(crate) fn rank_preps(&self) -> Option<RankPreps> {
        self.rank_preps.lock().expect("rank_preps lock").clone()
    }

    /// Stores per-rank artifacts harvested by the first numerical run.
    /// Later stores are dropped: artifacts are pure functions of the
    /// scenario, so any complete harvest is as good as any other.
    pub(crate) fn store_rank_preps(&self, preps: RankPreps) {
        let mut slot = self.rank_preps.lock().expect("rank_preps lock");
        if slot.is_none() {
            *slot = Some(preps);
        }
    }

    /// Returns the memoized fast-forward profile for `memo_key`, computing
    /// it with `compute` on first use. Concurrent callers with the same
    /// key block until the first finishes, so a worker pool never computes
    /// one profile twice.
    pub(crate) fn ff_profile_or_compute(
        &self,
        memo_key: &str,
        compute: impl FnOnce() -> FfProfile,
    ) -> Arc<FfProfile> {
        let mut memo = self.ff.lock().expect("ff memo lock");
        loop {
            match memo.slots.get(memo_key) {
                Some(FfSlot::Ready(p)) => {
                    CACHE_FF_HITS.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(p);
                }
                Some(FfSlot::InProgress) => {
                    memo = self.ff_cv.wait(memo).expect("ff memo lock");
                }
                None => break,
            }
        }
        memo.slots.insert(memo_key.to_string(), FfSlot::InProgress);
        drop(memo);

        // Remove the in-progress marker if `compute` panics, so waiters
        // retry instead of deadlocking.
        struct Unwind<'a>(&'a PreparedScenario, &'a str, bool);
        impl Drop for Unwind<'_> {
            fn drop(&mut self) {
                if !self.2 {
                    let mut memo = self.0.ff.lock().expect("ff memo lock");
                    memo.slots.remove(self.1);
                    self.0.ff_cv.notify_all();
                }
            }
        }
        let mut guard = Unwind(self, memo_key, false);
        let profile = Arc::new(compute());
        guard.2 = true;

        let mut memo = self.ff.lock().expect("ff memo lock");
        while memo.order.len() >= FF_MEMO_CAP {
            if let Some(old) = memo.order.pop_front() {
                memo.slots.remove(&old);
            }
        }
        memo.order.push_back(memo_key.to_string());
        memo.slots
            .insert(memo_key.to_string(), FfSlot::Ready(Arc::clone(&profile)));
        drop(memo);
        self.ff_cv.notify_all();
        profile
    }
}

/// The memo key of the fast-forward profile: the canonical request text
/// with everything the profile does not depend on normalized to fixed
/// values — warm-up discard, host-only engine knobs, fidelity (the
/// profile is modeled regardless), tracing, and the entire resilience
/// policy and fault model. The fleet `strategy` stays (it picks
/// `fleet0`), as do platform, seed, app (solver options included — they
/// steer the replay), ranks, axis, and the overrides.
pub(crate) fn ff_memo_key(req: &RunRequest, strategy: FleetStrategy) -> String {
    let normalized = RunRequest {
        discard: 0,
        threads_per_rank: 1,
        engine: EngineKind::default(),
        sched_workers: 0,
        fidelity: Fidelity::Modeled,
        trace: None,
        resilience: Some(ResilienceSpec {
            policy: ResiliencePolicy::fail_fast(),
            faults: FaultModel::none(),
            strategy,
            incremental_checkpoints: false,
        }),
        ..req.clone()
    };
    canonical_request(&normalized)
}

// ---------------------------------------------------------------------------
// The process-wide scenario cache and its kill switch.

static ENV_ENABLED: OnceLock<bool> = OnceLock::new();
static DISABLE_DEPTH: AtomicUsize = AtomicUsize::new(0);
static CACHE: OnceLock<Mutex<Vec<Arc<PreparedScenario>>>> = OnceLock::new();
static CACHE_BUILDS: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_FF_HITS: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<Vec<Arc<PreparedScenario>>> {
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Whether prepared-scenario sharing is active: on by default, off while
/// any [`disable_sharing_scoped`] guard lives or when the process was
/// started with `HETERO_PREP_SHARE=0`.
pub fn sharing_enabled() -> bool {
    *ENV_ENABLED.get_or_init(|| std::env::var("HETERO_PREP_SHARE").as_deref() != Ok("0"))
        && DISABLE_DEPTH.load(Ordering::Relaxed) == 0
}

/// An RAII guard that disables sharing process-wide while it lives (the
/// off-lane of the byte-identity batteries and benches). Nesting is fine;
/// concurrent scopes from parallel tests only ever *disable* sharing,
/// which can lose speed but never changes any result.
pub struct UnsharedScope(());

impl Drop for UnsharedScope {
    fn drop(&mut self) {
        DISABLE_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disables prepared-scenario sharing until the returned guard drops.
pub fn disable_sharing_scoped() -> UnsharedScope {
    DISABLE_DEPTH.fetch_add(1, Ordering::Relaxed);
    UnsharedScope(())
}

/// Cache counters: `(scenarios built, scenario hits, ff profile hits)`.
pub fn cache_stats() -> (u64, u64, u64) {
    (
        CACHE_BUILDS.load(Ordering::Relaxed),
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_FF_HITS.load(Ordering::Relaxed),
    )
}

/// Empties the scenario cache (tests and cold-path benches).
pub fn clear_cache() {
    cache().lock().expect("scenario cache lock").clear();
}

/// The shared scenario for `req`, from the process-wide LRU — building
/// and inserting it on a miss. Returns `None` when sharing is disabled.
pub fn scenario_for(req: &RunRequest) -> Option<Arc<PreparedScenario>> {
    if !sharing_enabled() {
        return None;
    }
    let key = prep_key(req);
    let mut lru = cache().lock().expect("scenario cache lock");
    if let Some(pos) = lru.iter().position(|s| s.key == key) {
        let hit = lru.remove(pos);
        lru.insert(0, Arc::clone(&hit));
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Some(hit);
    }
    let built = Arc::new(PreparedScenario::build(req));
    lru.insert(0, Arc::clone(&built));
    lru.truncate(SCENARIO_CACHE_CAP);
    CACHE_BUILDS.fetch_add(1, Ordering::Relaxed);
    Some(built)
}

/// Resolves the scenario an execute path should use: the caller's pinned
/// `Arc` when it matches `req`'s sub-key, the LRU otherwise, `None` when
/// sharing is disabled.
pub(crate) fn resolve(
    req: &RunRequest,
    explicit: Option<Arc<PreparedScenario>>,
) -> Option<Arc<PreparedScenario>> {
    if !sharing_enabled() {
        return None;
    }
    if let Some(p) = explicit {
        if p.key == prep_key(req) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(p);
        }
    }
    scenario_for(req)
}
