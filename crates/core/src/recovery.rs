//! Resilient execution: the checkpoint → fault → rollback → re-acquire →
//! resume loop, in deterministic virtual time.
//!
//! [`execute_resilient`] wraps the two engines of [`crate::run`] with the
//! fault subsystem of [`hetero_fault`]:
//!
//! * each attempt acquires a fleet via [`acquire_fleet`] (restart **with
//!   re-acquisition**: a revoked spot fleet is re-bid from scratch under a
//!   fresh attempt seed),
//! * a [`FaultTimeline`] sampled for the attempt is lowered to the
//!   engine-level [`hetero_simmpi::FaultPlan`] and injected into the
//!   threaded engine, which surfaces the first node loss as a
//!   [`hetero_simmpi::RankFailed`] error instead of a deadlock,
//! * the numerical path checkpoints through [`Snapshot`] at the policy's
//!   cadence (rank 0 writes to a simulated shared filesystem that survives
//!   the attempt), charges the write to every rank's virtual clock, and
//!   resumes the solver **bitwise** from the last durable checkpoint, and
//! * the modeled path replays the identical campaign analytically through
//!   [`hetero_fault::replay_campaign`] for paper-scale rank counts.
//!
//! Everything — market epochs, crash times, checkpoint instants, restart
//! waits — is hash-derived from the experiment seed, so the same seed gives
//! a byte-identical [`RecoveryStats`] on any host at any thread count.

use crate::apps::App;
use crate::modeled::{run_modeled_prepared, ModeledRun};
use crate::prep::{ff_memo_key, FfProfile, PreparedScenario, RankPreps};
use crate::run::{
    resolve_fidelity, synthesize_phase_trace, Fidelity, RunOutcome, RunRequest, Verification,
};
use crate::snapshot::{Snapshot, SnapshotDelta};
use hetero_fault::{
    replay_campaign_observed, AttemptEnv, CampaignEvent, CrashProcess, FaultKind, FaultModel,
    FaultTimeline, RecoveryStats, ResiliencePolicy, SpotMarket,
};
use hetero_fem::element::ElementOrder;
use hetero_fem::ns::{solve_ns_prepared, NsPrep, NsResume, NsStepView};
use hetero_fem::phase::{summarize, PhaseTimes};
use hetero_fem::rd::{solve_rd_prepared, RdPrep, RdResume, RdStepView};
use hetero_mesh::{DistributedMesh, StructuredHexMesh};
use hetero_partition::block::near_cubic_factors;
use hetero_partition::BlockLayout;
use hetero_platform::limits::LimitViolation;
use hetero_platform::spot::{acquire_fleet, FleetAllocation, FleetStrategy};
use hetero_platform::PlatformSpec;
use hetero_simmpi::rng::splitmix64;
use hetero_simmpi::{run_spmd_opts, EngineOpts, SimComm, SpmdConfig};
use hetero_trace::{EventKind, Trace};
use serde::{Deserialize, Serialize, Value};
use std::sync::{Arc, Mutex};

/// How a run acquires its fleet, what can go wrong, and what it does about
/// it. Attached to [`RunRequest::resilience`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceSpec {
    /// Checkpoint cadence, restart budget, backoff, and store bandwidth.
    pub policy: ResiliencePolicy,
    /// The fault processes active during the run.
    pub faults: FaultModel,
    /// How each attempt's fleet is acquired.
    pub strategy: FleetStrategy,
    /// Incremental dirty-block checkpoints: after the first full snapshot,
    /// each commit serializes only a [`SnapshotDelta`] against the last
    /// committed state, and restarts replay the base-plus-deltas chain from
    /// the serialized log. The restored state is bitwise identical to the
    /// monolithic path (so every report stays byte-identical too); only the
    /// host-side serialization cost shrinks.
    pub incremental_checkpoints: bool,
}

impl ResilienceSpec {
    /// On-demand capacity with the platform's hardware crash process and no
    /// checkpoints: faults are rare and fatal (the failure-free baseline).
    pub fn on_demand(platform: &PlatformSpec) -> Self {
        ResilienceSpec {
            policy: ResiliencePolicy::fail_fast(),
            faults: FaultModel {
                crashes: Some(CrashProcess {
                    node_mtbf_hours: platform.node_mtbf_hours,
                }),
                spot: None,
                degradation: None,
            },
            strategy: FleetStrategy::OnDemandSingleGroup,
            incremental_checkpoints: false,
        }
    }

    /// A spot-mix fleet under a live revocation market plus the platform's
    /// crash process, protected by checkpoint/restart.
    pub fn spot_with_restart(
        platform: &PlatformSpec,
        max_bid: f64,
        checkpoint_every: usize,
        max_restarts: usize,
    ) -> Self {
        ResilienceSpec {
            policy: ResiliencePolicy::restart(checkpoint_every, max_restarts),
            faults: FaultModel {
                crashes: Some(CrashProcess {
                    node_mtbf_hours: platform.node_mtbf_hours,
                }),
                spot: Some(SpotMarket::ec2_like(max_bid)),
                degradation: None,
            },
            strategy: FleetStrategy::SpotMix { groups: 4, max_bid },
            incremental_checkpoints: false,
        }
    }

    /// Switches the checkpoint path to incremental dirty-block deltas.
    #[must_use]
    pub fn with_incremental_checkpoints(mut self) -> Self {
        self.incremental_checkpoints = true;
        self
    }
}

/// What a resilient campaign produced: the final run's outcome (when the
/// campaign finished within its restart budget) plus the full time/dollar
/// accounting across all attempts.
#[derive(Debug, Clone)]
pub struct ResilienceOutcome {
    /// The completed run, `None` if the restart budget ran out first.
    pub outcome: Option<RunOutcome>,
    /// Campaign accounting: attempts, faults, checkpoints, lost work,
    /// waits, and expected wall-clock/dollars.
    pub stats: RecoveryStats,
    /// Spot nodes held by the first attempt's fleet.
    pub first_attempt_spot_nodes: usize,
    /// The campaign timeline as a trace, when [`RunRequest::trace`] asked
    /// for one: attempt starts, revocations, rollbacks, durable checkpoint
    /// commits, per-attempt fleet expenses, and the closing time-account
    /// summary, all stamped in campaign-absolute virtual seconds. For the
    /// numerical engine the completed attempt's full per-rank trace is
    /// merged in (shifted to its campaign start); felled attempts
    /// contribute campaign-level events only — their partial per-rank
    /// spans describe work the rollback discarded, so the campaign keeps
    /// just the incident record.
    pub trace: Option<Trace>,
}

// Hand-written for the same reason as `RunOutcome`: the campaign trace
// holds borrowed labels and is a replay artifact, so it serializes as
// `null` and reads back as `None`.
impl Serialize for ResilienceOutcome {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("outcome".to_string(), self.outcome.serialize_value()),
            ("stats".to_string(), self.stats.serialize_value()),
            (
                "first_attempt_spot_nodes".to_string(),
                self.first_attempt_spot_nodes.serialize_value(),
            ),
            ("trace".to_string(), Value::Null),
        ])
    }
}

impl Deserialize for ResilienceOutcome {
    fn deserialize_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(ResilienceOutcome {
            outcome: Option::<RunOutcome>::deserialize_value(v.field("outcome"))?,
            stats: RecoveryStats::deserialize_value(v.field("stats"))?,
            first_attempt_spot_nodes: usize::deserialize_value(
                v.field("first_attempt_spot_nodes"),
            )?,
            trace: None,
        })
    }
}

/// Seed for restart attempt `attempt` (0 = the initial launch). Each
/// attempt re-samples the market, the crash process, and the network
/// jitter under an independent hash stream.
pub fn attempt_seed(seed: u64, attempt: usize) -> u64 {
    splitmix64(seed ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F))
}

fn global_dofs(order: ElementOrder, ranks: usize, per_rank_axis: usize) -> f64 {
    let f = near_cubic_factors(ranks);
    let q = order.q();
    ((q * f.0 * per_rank_axis + 1) * (q * f.1 * per_rank_axis + 1) * (q * f.2 * per_rank_axis + 1))
        as f64
}

/// Bytes one durable checkpoint of `app`'s full resume state occupies (the
/// dense global fields rank 0 writes through the shared store).
pub fn state_bytes(app: &App, ranks: usize, per_rank_axis: usize) -> f64 {
    match app {
        App::Rd(c) => global_dofs(c.order, ranks, per_rank_axis) * c.bdf.steps() as f64 * 8.0,
        App::Ns(c) => {
            let v = global_dofs(c.vel_order, ranks, per_rank_axis);
            let p = global_dofs(c.p_order, ranks, per_rank_axis);
            (v * 3.0 * c.bdf.steps() as f64 + p) * 8.0
        }
    }
}

/// The node-hour price the on-demand top-up pays on this platform.
fn on_demand_node_hour(platform: &PlatformSpec) -> f64 {
    platform.cost_of(platform.cores_per_node, 3600.0)
}

/// Executes a run under its [`ResilienceSpec`] (platform-default on-demand
/// fail-fast when the request carries none), returning the campaign
/// accounting alongside the final outcome.
///
/// # Errors
/// Platform limits are enforced *before* the attempt loop: an infeasible
/// size (e.g. `ellipse` above 512 ranks) is a [`LimitViolation`]
/// immediately — bounded backoff never retries a structurally impossible
/// launch.
pub fn execute_resilient(req: &RunRequest) -> Result<ResilienceOutcome, LimitViolation> {
    execute_resilient_with_prep(req, None)
}

/// [`execute_resilient`] with an optional pinned
/// [`crate::prep::PreparedScenario`]. Beyond the setup artifacts shared
/// with [`crate::run::execute_with_prep`], the resilient path memoizes its
/// failure-free reference profile `(probe, fleet0, ff)` in the scenario:
/// the profile is a pure function of the request minus its
/// cadence/policy/host knobs (see `prep::ff_memo_key`), so a
/// checkpoint-cadence sweep replays it once per
/// `(platform, ranks, seed, strategy, app)` combination. The per-call
/// derived quantities (`ckpt_seconds`, `horizon`, the limit checks) are
/// always recomputed from the request, so outcomes are byte-identical to
/// the fresh path.
pub fn execute_resilient_with_prep(
    req: &RunRequest,
    prep: Option<Arc<PreparedScenario>>,
) -> Result<ResilienceOutcome, LimitViolation> {
    // Fold the solver-variant and kernel-backend overrides into the app
    // config (as `execute` does) so every attempt and probe sees the same
    // schedule and operator path.
    let req = &RunRequest {
        app: req.resolved_app(),
        solver_variant: None,
        kernel_backend: None,
        ..req.clone()
    };
    let prep = crate::prep::resolve(req, prep);
    let spec = req
        .resilience
        .clone()
        .unwrap_or_else(|| ResilienceSpec::on_demand(&req.platform));

    // Capacity/launcher limits first, then the traffic probe — identical to
    // `execute`, and deliberately ahead of any acquisition: a launcher
    // failure is not a fault to retry.
    req.platform.check_limits(req.ranks, 0.0)?;
    let probe_topo = req.platform.topology(req.ranks);
    let nodes = probe_topo.num_nodes();
    let od_rate = on_demand_node_hour(&req.platform);

    // The failure-free reference profile: memoized in the scenario when
    // one is active, computed fresh otherwise. Either way the values are
    // those of the closed-form modeled replays below.
    let compute_profile = || {
        let probe = run_modeled_prepared(
            &req.app.with_steps(1),
            req.ranks,
            req.per_rank_axis,
            &probe_topo,
            &req.platform.network,
            req.platform.compute,
            req.seed,
            prep.as_deref().map(|p| p.modeled()),
        );
        let fleet0 = acquire_fleet(nodes, spec.strategy, od_rate, attempt_seed(req.seed, 0));
        let ff = run_modeled_prepared(
            &req.app,
            req.ranks,
            req.per_rank_axis,
            &fleet0.topology(req.platform.cores_per_node),
            &req.platform.network,
            req.platform.compute,
            req.seed,
            prep.as_deref().map(|p| p.modeled()),
        );
        FfProfile { probe, fleet0, ff }
    };
    enum Profile {
        Shared(Arc<FfProfile>),
        Fresh(FfProfile),
    }
    let profile = match &prep {
        Some(scen) => Profile::Shared(
            scen.ff_profile_or_compute(&ff_memo_key(req, spec.strategy), compute_profile),
        ),
        None => Profile::Fresh(compute_profile()),
    };
    let (probe, fleet0, ff) = match &profile {
        Profile::Shared(p) => (&p.probe, &p.fleet0, &p.ff),
        Profile::Fresh(p) => (&p.probe, &p.fleet0, &p.ff),
    };
    req.platform
        .check_limits(req.ranks, probe.bytes_per_iteration)?;

    let ckpt_seconds =
        state_bytes(&req.app, req.ranks, req.per_rank_axis) / spec.policy.io_bandwidth;

    // Failure-free duration estimate sizes the fault-sampling horizon (with
    // generous slack for restart-induced re-execution).
    let ff_total: f64 = ff.iterations.iter().map(|p| p.total).sum();
    let horizon = 4.0 * (ff_total + req.app.steps() as f64 * ckpt_seconds) + 7200.0;

    match resolve_fidelity(req) {
        Fidelity::Numerical => {
            run_resilient_numerical(req, &spec, nodes, horizon, od_rate, prep.as_deref())
        }
        Fidelity::Modeled | Fidelity::Auto => Ok(run_resilient_modeled(
            req,
            &spec,
            nodes,
            horizon,
            od_rate,
            ckpt_seconds,
            ff,
            fleet0,
        )),
    }
}

fn attempt_wait(req: &RunRequest, nodes: usize, attempt: usize) -> f64 {
    if attempt == 0 {
        req.platform.queue_wait(req.ranks, req.seed)
    } else {
        req.platform
            .queue
            .reacquisition_wait_seconds(nodes, req.seed, attempt)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_resilient_modeled(
    req: &RunRequest,
    spec: &ResilienceSpec,
    nodes: usize,
    horizon: f64,
    od_rate: f64,
    ckpt_seconds: f64,
    ff: &ModeledRun,
    fleet0: &FleetAllocation,
) -> ResilienceOutcome {
    let step_seconds: Vec<f64> = ff.iterations.iter().map(|p| p.total).collect();
    let traced = req.trace.is_some();
    // Per-attempt fatal node ids (captured while the env closure has the
    // attempt's timeline in hand) and the campaign incidents, both only
    // collected when a trace was requested.
    let mut fatal_nodes: Vec<Option<u32>> = Vec::new();
    let mut incidents: Vec<CampaignEvent> = Vec::new();
    let stats = replay_campaign_observed(
        &step_seconds,
        ckpt_seconds,
        &spec.policy,
        |attempt| {
            let aseed = attempt_seed(req.seed, attempt);
            let fleet = acquire_fleet(nodes, spec.strategy, od_rate, aseed);
            let timeline = FaultTimeline::generate(
                &spec.faults,
                nodes,
                &fleet.spot_node_indices(),
                horizon,
                aseed,
            );
            if traced {
                fatal_nodes.push(timeline.first_fatal().map(|e| match &e.kind {
                    FaultKind::NodeCrash { node } => *node as u32,
                    // A spot revocation fells the whole spot share at
                    // once; attribute it to the first spot node.
                    _ => fleet.spot_node_indices().first().copied().unwrap_or(0) as u32,
                }));
            }
            AttemptEnv {
                fatal_at: timeline.first_fatal().map(|e| e.time),
                wait_seconds: attempt_wait(req, nodes, attempt),
                hourly_cost: fleet.hourly_cost(),
            }
        },
        |e| {
            if traced {
                incidents.push(e);
            }
        },
    );

    let ckpt_bytes = state_bytes(&req.app, req.ranks, req.per_rank_axis);
    let trace = traced.then(|| {
        let mut t = Trace::default();
        push_campaign_incidents(&mut t, &incidents, &fatal_nodes, ckpt_bytes);
        push_time_accounts(&mut t, &stats);
        t.sort();
        t
    });

    let phases = summarize(&ff.iterations, req.discard.min(ff.iterations.len() - 1))
        .expect("modeled run produced no measurable iterations");
    let outcome = stats.completed.then(|| RunOutcome {
        platform: req.platform.key.clone(),
        app: req.app.name(),
        ranks: req.ranks,
        nodes,
        fidelity: Fidelity::Modeled,
        phases,
        cost_per_iteration: fleet0.cost(phases.total),
        queue_wait_seconds: req.platform.queue_wait(req.ranks, req.seed),
        krylov_iters: ff.krylov_iters as f64,
        verification: None,
        bytes_per_iteration: ff.bytes_per_iteration,
        trace: traced.then(|| synthesize_phase_trace(&ff.iterations)),
    });
    ResilienceOutcome {
        outcome,
        stats,
        first_attempt_spot_nodes: fleet0.spot_count(),
        trace,
    }
}

/// Lowers the analytic replay's campaign incidents to trace events.
fn push_campaign_incidents(
    trace: &mut Trace,
    incidents: &[CampaignEvent],
    fatal_nodes: &[Option<u32>],
    ckpt_bytes: f64,
) {
    for e in incidents {
        match *e {
            CampaignEvent::AttemptStart { attempt, at } => trace.push_campaign(
                at,
                EventKind::AttemptStart {
                    attempt: attempt as u32,
                },
            ),
            CampaignEvent::CheckpointCommit { step, at } => trace.push_campaign(
                at,
                EventKind::Checkpoint {
                    step: step as u32,
                    bytes: ckpt_bytes,
                },
            ),
            CampaignEvent::Fault { attempt, at } => trace.push_campaign(
                at,
                EventKind::Revocation {
                    node: fatal_nodes.get(attempt).copied().flatten().unwrap_or(0),
                },
            ),
            CampaignEvent::Rollback {
                to_step,
                lost_seconds,
                at,
            } => trace.push_campaign(
                at,
                EventKind::Rollback {
                    to_step: to_step as u32,
                    lost_seconds,
                },
            ),
            CampaignEvent::Billed { dollars, at, .. } => {
                trace.push_campaign(
                    at,
                    EventKind::Expense {
                        account: "fleet",
                        dollars,
                    },
                );
            }
        }
    }
}

/// Closes a campaign trace with the recovery accounting identity: one
/// time-account instant per bucket, stamped at the campaign's end.
fn push_time_accounts(trace: &mut Trace, stats: &RecoveryStats) {
    let at = stats.total_seconds;
    for (account, seconds) in [
        ("wait", stats.wait_seconds),
        ("backoff", stats.backoff_seconds),
        ("checkpoint", stats.checkpoint_seconds),
        ("lost_work", stats.lost_work_seconds),
        ("compute", stats.compute_seconds),
    ] {
        trace.push_campaign(at, EventKind::TimeAccount { account, seconds });
    }
}

/// The simulated shared filesystem: rank 0's durable checkpoint writes
/// survive the attempt that made them (the role the paper's HDF5 files on
/// shared storage play for LifeV restarts).
#[derive(Default)]
struct CheckpointStore {
    /// Last durable checkpoint, materialized (the base the next
    /// incremental diff is taken against).
    latest: Option<(usize, Snapshot)>,
    /// The serialized artifacts the shared filesystem holds in incremental
    /// mode: the full base followed by one delta record per later commit.
    /// Restarts replay this log; empty in monolithic mode.
    incremental_log: Vec<String>,
    writes: usize,
    /// Rank 0's virtual clock right after the last durable write of the
    /// *current* attempt (0 when the attempt has written nothing yet).
    attempt_ckpt_clock: f64,
}

enum ResumeState {
    Fresh,
    Rd(RdResume),
    Ns(NsResume),
}

fn build_resume(app: &App, store: &Mutex<CheckpointStore>) -> ResumeState {
    let guard = store.lock().expect("checkpoint store never poisoned");
    // Incremental mode restores from the serialized base-plus-deltas log —
    // exactly what the shared filesystem durably holds — not from the
    // in-memory materialization.
    let replayed: Option<(usize, Snapshot)> = if guard.incremental_log.is_empty() {
        None
    } else {
        let mut it = guard.incremental_log.iter();
        let mut acc =
            Snapshot::from_json(it.next().expect("non-empty log")).expect("base checkpoint parses");
        for rec in it {
            let delta = SnapshotDelta::from_json(rec).expect("delta record parses");
            acc = delta.apply(&acc);
        }
        Some((acc.step, acc))
    };
    let Some((step, snap)) = replayed.as_ref().or(guard.latest.as_ref()) else {
        return ResumeState::Fresh;
    };
    let dense = |name: &str| -> Vec<f64> {
        snap.field(name)
            .unwrap_or_else(|| panic!("checkpoint missing field {name}"))
            .values
            .clone()
    };
    match app {
        App::Rd(c) => ResumeState::Rd(RdResume {
            start_step: *step,
            history: (0..c.bdf.steps())
                .map(|j| dense(&format!("h{j}")))
                .collect(),
        }),
        App::Ns(c) => ResumeState::Ns(NsResume {
            start_step: *step,
            hist: (0..c.bdf.steps())
                .map(|j| [0, 1, 2].map(|k| dense(&format!("v{j}_{k}"))))
                .collect(),
            pressure: dense("p"),
        }),
    }
}

/// Setup artifacts one rank hands back for the scenario cache, tagged by
/// app (mirrors `run::run_numerical`'s local equivalent).
enum NumPrepOut {
    Rd(RdPrep),
    Ns(NsPrep),
}

struct RankOut {
    iterations: Vec<PhaseTimes>,
    kiters: f64,
    linf: f64,
    l2: f64,
    bytes: f64,
    prep: Option<NumPrepOut>,
}

fn run_resilient_numerical(
    req: &RunRequest,
    spec: &ResilienceSpec,
    nodes: usize,
    horizon: f64,
    od_rate: f64,
    prep: Option<&PreparedScenario>,
) -> Result<ResilienceOutcome, LimitViolation> {
    let (mesh, assignment) = match prep {
        Some(p) => {
            let g = p.geometry();
            (g.mesh.clone(), Arc::clone(&g.assignment))
        }
        None => {
            let factors = near_cubic_factors(req.ranks);
            let cells = (
                factors.0 * req.per_rank_axis,
                factors.1 * req.per_rank_axis,
                factors.2 * req.per_rank_axis,
            );
            let mesh = StructuredHexMesh::new(
                cells.0,
                cells.1,
                cells.2,
                hetero_mesh::Point3::ZERO,
                hetero_mesh::Point3::splat(1.0),
            );
            let layout = BlockLayout::new(cells, factors);
            (mesh, Arc::new(layout.assignment()))
        }
    };
    // Rank-level setup (DofMap + symbolic assembly structure) from the
    // scenario when a prior run populated it; the completed attempt of this
    // campaign harvests it otherwise. Felled attempts never harvest — only
    // the attempt whose results become the outcome does.
    let rank_preps: Option<RankPreps> = prep.and_then(|p| p.rank_preps());
    let harvest = prep.is_some() && rank_preps.is_none();
    let total_steps = req.app.steps();
    let io_seconds = state_bytes(&req.app, req.ranks, req.per_rank_axis) / spec.policy.io_bandwidth;
    let max_restarts = spec.policy.max_restarts();
    let ranks = req.ranks;

    let store: Arc<Mutex<CheckpointStore>> = Arc::default();
    let mut stats = RecoveryStats::default();
    let mut first_spot = 0usize;
    let mut final_run: Option<(Vec<hetero_simmpi::RankResult<RankOut>>, FleetAllocation)> = None;
    let ckpt_bytes = state_bytes(&req.app, req.ranks, req.per_rank_axis);
    let mut campaign: Option<Trace> = req.trace.map(|_| Trace::default());
    let mut final_trace: Option<Trace> = None;

    // One logical pool shared by all ranks; `install` binds the thread
    // count on each rank's own OS thread (see `run::run_numerical`).
    let pool = Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(req.threads_per_rank.max(1))
            .build()
            .expect("the vendored pool builder cannot fail"),
    );

    loop {
        let attempt = stats.attempts;
        let aseed = attempt_seed(req.seed, attempt);
        let fleet = acquire_fleet(nodes, spec.strategy, od_rate, aseed);
        if attempt == 0 {
            first_spot = fleet.spot_count();
        }
        let timeline = FaultTimeline::generate(
            &spec.faults,
            nodes,
            &fleet.spot_node_indices(),
            horizon,
            aseed,
        );
        let wait = attempt_wait(req, nodes, attempt);
        // Campaign-absolute time this attempt's compute starts.
        let start_abs = stats.total_seconds + wait;
        if let Some(c) = campaign.as_mut() {
            c.push_campaign(
                start_abs,
                EventKind::AttemptStart {
                    attempt: attempt as u32,
                },
            );
        }
        stats.attempts += 1;
        stats.wait_seconds += wait;
        store
            .lock()
            .expect("checkpoint store never poisoned")
            .attempt_ckpt_clock = 0.0;

        let resume = Arc::new(build_resume(&req.app, &store));
        let cfg = SpmdConfig {
            size: ranks,
            topo: fleet.topology(req.platform.cores_per_node),
            net: req.platform.network.clone(),
            compute: req.platform.compute,
            seed: aseed,
        };

        let app = req.app.clone();
        let mesh_c = mesh.clone();
        let asg = Arc::clone(&assignment);
        let store_c = Arc::clone(&store);
        let resume_c = Arc::clone(&resume);
        let pool_c = Arc::clone(&pool);
        let policy = spec.policy;
        let incremental = spec.incremental_checkpoints;
        let rank_preps_c = rank_preps.clone();

        let body = move |comm: &mut SimComm| {
            pool_c.install(|| {
                let dmesh =
                    DistributedMesh::new(mesh_c.clone(), Arc::clone(&asg), comm.rank(), ranks);
                match &app {
                    App::Rd(c) => {
                        let checkpoint = |view: &RdStepView<'_>, comm: &mut SimComm| {
                            let t = c.t0 + view.step as f64 * c.dt;
                            let mut snap = Snapshot::new("RD", t, view.step);
                            for (j, v) in view.history.iter().enumerate() {
                                snap.capture(&format!("h{j}"), view.dm, v, comm);
                            }
                            commit(
                                &store_c,
                                io_seconds,
                                ckpt_bytes,
                                view.step,
                                snap,
                                incremental,
                                comm,
                            );
                        };
                        let mut obs = |view: &RdStepView<'_>, comm: &mut SimComm| {
                            if policy.checkpoint_due(view.step, total_steps) {
                                checkpoint(view, comm);
                            }
                        };
                        let rd_resume = match resume_c.as_ref() {
                            ResumeState::Rd(r) => Some(r),
                            _ => None,
                        };
                        let rp = match &rank_preps_c {
                            Some(RankPreps::Rd(v)) => Some(&v[comm.rank()]),
                            _ => None,
                        };
                        let (r, built) =
                            solve_rd_prepared(&dmesh, c, rd_resume, Some(&mut obs), rp, comm);
                        RankOut {
                            iterations: r.iterations,
                            kiters: r.krylov_iters.iter().sum::<usize>() as f64
                                / r.krylov_iters.len() as f64,
                            linf: r.linf_error,
                            l2: r.l2_error,
                            bytes: comm.stats().bytes_received,
                            prep: harvest.then_some(NumPrepOut::Rd(built)),
                        }
                    }
                    App::Ns(c) => {
                        let checkpoint = |view: &NsStepView<'_>, comm: &mut SimComm| {
                            let t = c.t0 + view.step as f64 * c.dt;
                            let mut snap = Snapshot::new("NS", t, view.step);
                            for (j, comps) in view.hist.iter().enumerate() {
                                for (k, v) in comps.iter().enumerate() {
                                    snap.capture(&format!("v{j}_{k}"), view.vmap, v, comm);
                                }
                            }
                            snap.capture("p", view.pmap, view.pressure, comm);
                            commit(
                                &store_c,
                                io_seconds,
                                ckpt_bytes,
                                view.step,
                                snap,
                                incremental,
                                comm,
                            );
                        };
                        let mut obs = |view: &NsStepView<'_>, comm: &mut SimComm| {
                            if policy.checkpoint_due(view.step, total_steps) {
                                checkpoint(view, comm);
                            }
                        };
                        let ns_resume = match resume_c.as_ref() {
                            ResumeState::Ns(r) => Some(r),
                            _ => None,
                        };
                        let rp = match &rank_preps_c {
                            Some(RankPreps::Ns(v)) => Some(&v[comm.rank()]),
                            _ => None,
                        };
                        let (r, built) =
                            solve_ns_prepared(&dmesh, c, ns_resume, Some(&mut obs), rp, comm);
                        let total_k: usize =
                            r.vel_iters.iter().sum::<usize>() + r.p_iters.iter().sum::<usize>();
                        RankOut {
                            iterations: r.iterations,
                            kiters: total_k as f64 / r.vel_iters.len() as f64,
                            linf: r.vel_linf_error,
                            l2: r.vel_l2_error,
                            bytes: comm.stats().bytes_received,
                            prep: harvest.then_some(NumPrepOut::Ns(built)),
                        }
                    }
                }
            })
        };
        // A felled attempt's per-rank spans describe work the rollback
        // discards, so its trace is dropped; only the completed attempt's
        // trace is kept, and felled attempts contribute campaign-level
        // incident events alone.
        let opts = EngineOpts {
            engine: req.engine,
            workers: req.sched_workers,
            ..EngineOpts::default()
        };
        let (result, attempt_trace) = run_spmd_opts(cfg, opts, timeline.to_plan(), req.trace, body);

        match result {
            Ok(mut results) => {
                if harvest {
                    if let Some(scen) = prep {
                        // Engines return results in rank order already; the
                        // sort is a no-op safeguard for the indexed harvest.
                        results.sort_by_key(|r| r.rank);
                        let mut rds = Vec::new();
                        let mut nss = Vec::new();
                        for r in &mut results {
                            match r.value.prep.take() {
                                Some(NumPrepOut::Rd(p)) => rds.push(p),
                                Some(NumPrepOut::Ns(p)) => nss.push(p),
                                None => {}
                            }
                        }
                        if rds.len() == ranks {
                            scen.store_rank_preps(RankPreps::Rd(Arc::new(rds)));
                        } else if nss.len() == ranks {
                            scen.store_rank_preps(RankPreps::Ns(Arc::new(nss)));
                        }
                    }
                }
                let run_t = results.iter().map(|r| r.clock).fold(0.0, f64::max);
                stats.total_seconds += wait + run_t;
                stats.total_dollars += fleet.hourly_cost() * run_t / 3600.0;
                stats.completed = true;
                if let (Some(c), Some(t)) = (campaign.as_mut(), &attempt_trace) {
                    let mut shifted = t.clone();
                    shifted.shift(start_abs);
                    c.merge(shifted);
                    c.push_campaign(
                        start_abs + run_t,
                        EventKind::Expense {
                            account: "fleet",
                            dollars: fleet.hourly_cost() * run_t / 3600.0,
                        },
                    );
                }
                final_trace = attempt_trace;
                final_run = Some((results, fleet));
                break;
            }
            Err(failed) => {
                let (ckpt_clock, ckpt_step) = {
                    let s = store.lock().expect("checkpoint store never poisoned");
                    (
                        s.attempt_ckpt_clock,
                        s.latest.as_ref().map_or(0, |(step, _)| *step),
                    )
                };
                stats.faults_injected += 1;
                stats.total_seconds += wait + failed.at;
                stats.total_dollars += fleet.hourly_cost() * failed.at / 3600.0;
                stats.lost_work_seconds += (failed.at - ckpt_clock).max(0.0);
                if let Some(c) = campaign.as_mut() {
                    let fail_abs = start_abs + failed.at;
                    c.push_campaign(
                        fail_abs,
                        EventKind::Revocation {
                            node: failed.node as u32,
                        },
                    );
                    c.push_campaign(
                        fail_abs,
                        EventKind::Rollback {
                            to_step: ckpt_step as u32,
                            lost_seconds: (failed.at - ckpt_clock).max(0.0),
                        },
                    );
                    c.push_campaign(
                        fail_abs,
                        EventKind::Expense {
                            account: "fleet",
                            dollars: fleet.hourly_cost() * failed.at / 3600.0,
                        },
                    );
                }
                let restarts_used = stats.attempts - 1;
                if restarts_used >= max_restarts {
                    break;
                }
                let delay = spec.policy.backoff.delay(restarts_used);
                stats.backoff_seconds += delay;
                stats.total_seconds += delay;
            }
        }
    }

    {
        let s = store.lock().expect("checkpoint store never poisoned");
        stats.checkpoints_written = s.writes;
        stats.checkpoint_seconds = s.writes as f64 * io_seconds;
    }
    let run_seconds = stats.total_seconds - stats.wait_seconds - stats.backoff_seconds;
    stats.compute_seconds = run_seconds - stats.lost_work_seconds - stats.checkpoint_seconds;
    if let Some(c) = campaign.as_mut() {
        push_time_accounts(c, &stats);
        c.sort();
    }

    let outcome = final_run.map(|(results, fleet)| {
        let steps_run = results[0].value.iterations.len();
        let mut per_iter = vec![PhaseTimes::default(); steps_run];
        for r in &results {
            for (acc, &t) in per_iter.iter_mut().zip(&r.value.iterations) {
                *acc = acc.max(t);
            }
        }
        let phases = summarize(&per_iter, req.discard.min(steps_run.saturating_sub(1)))
            .expect("final attempt ran at least one step");
        RunOutcome {
            platform: req.platform.key.clone(),
            app: req.app.name(),
            ranks,
            nodes,
            fidelity: Fidelity::Numerical,
            phases,
            cost_per_iteration: fleet.cost(phases.total),
            queue_wait_seconds: req.platform.queue_wait(req.ranks, req.seed),
            krylov_iters: results[0].value.kiters,
            verification: Some(Verification {
                linf: results[0].value.linf,
                l2: results[0].value.l2,
            }),
            bytes_per_iteration: results.iter().map(|r| r.value.bytes).sum::<f64>()
                / steps_run as f64,
            trace: final_trace,
        }
    });

    Ok(ResilienceOutcome {
        outcome,
        stats,
        first_attempt_spot_nodes: first_spot,
        trace: campaign,
    })
}

/// Charges the durable write to every rank's virtual clock and commits it
/// on rank 0. A rank felled *during* the charge unwinds before the commit,
/// so an interrupted checkpoint is never durable.
///
/// In incremental mode the first commit serializes the full snapshot and
/// every later one appends only a [`SnapshotDelta`] record; the simulated
/// store bandwidth charge is unchanged (the model prices the dense state
/// either way), so both modes produce byte-identical reports while the
/// host-side serialization work shrinks to the dirty blocks.
fn commit(
    store: &Mutex<CheckpointStore>,
    io_seconds: f64,
    bytes: f64,
    step: usize,
    snap: Snapshot,
    incremental: bool,
    comm: &mut SimComm,
) {
    comm.advance(io_seconds);
    if comm.rank() == 0 {
        let mut s = store.lock().expect("checkpoint store never poisoned");
        if incremental {
            match &s.latest {
                None => s.incremental_log.push(snap.to_json()),
                Some((_, base)) => {
                    let delta = SnapshotDelta::diff(base, &snap);
                    s.incremental_log.push(delta.to_json());
                }
            }
        }
        s.latest = Some((step, snap));
        s.writes += 1;
        s.attempt_ckpt_clock = comm.clock();
        comm.trace_instant(EventKind::Checkpoint {
            step: step as u32,
            bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_fault::{Backoff, RecoveryMode};
    use hetero_platform::catalog;

    fn flaky_market(epoch_seconds: f64, spike_probability: f64) -> SpotMarket {
        SpotMarket {
            epoch_seconds,
            spike_probability,
            ..SpotMarket::ec2_like(1.0)
        }
    }

    fn small_spot_req(steps: usize, cadence: usize, epoch: f64, spike: f64) -> RunRequest {
        let ec2 = catalog::ec2();
        let spec = ResilienceSpec {
            policy: ResiliencePolicy {
                io_bandwidth: 500e6,
                backoff: Backoff {
                    base_seconds: 5.0,
                    factor: 2.0,
                    cap_seconds: 60.0,
                },
                ..ResiliencePolicy::restart(cadence, 50)
            },
            faults: FaultModel {
                crashes: None,
                spot: Some(flaky_market(epoch, spike)),
                degradation: None,
            },
            strategy: FleetStrategy::SpotMix {
                groups: 2,
                max_bid: 1.0,
            },
            incremental_checkpoints: false,
        };
        RunRequest {
            fidelity: Fidelity::Numerical,
            resilience: Some(spec),
            ..RunRequest::new(ec2, App::paper_rd(steps), 8, 3)
        }
    }

    #[test]
    fn fault_free_resilient_run_matches_plain_execute_accuracy() {
        let mut req = small_spot_req(3, 1, 1e9, 0.0);
        // An epoch of 1e9 s never revokes within the horizon.
        let out = execute_resilient(&req).unwrap();
        assert!(out.stats.completed);
        assert_eq!(out.stats.attempts, 1);
        assert_eq!(out.stats.faults_injected, 0);
        assert!(out.stats.checkpoints_written >= 1);
        let v = out.outcome.unwrap().verification.unwrap();
        req.resilience = None;
        let plain = crate::run::execute(&req).unwrap().verification.unwrap();
        assert_eq!(v.linf, plain.linf, "checkpointing must not change numerics");
        assert_eq!(v.l2, plain.l2);
    }

    #[test]
    fn revoked_run_recovers_with_exact_accuracy() {
        // A fast, nasty market: revocations every simulated second or so,
        // on a run whose virtual duration spans several epochs.
        let req = small_spot_req(6, 1, 0.012, 0.35);
        let out = execute_resilient(&req).unwrap();
        assert!(
            out.stats.completed,
            "restart budget must suffice: {:?}",
            out.stats
        );
        assert!(
            out.stats.faults_injected >= 1,
            "market never fired: {:?}",
            out.stats
        );
        assert!(out.stats.lost_work_seconds > 0.0);
        let v = out.outcome.unwrap().verification.unwrap();
        let mut plain = small_spot_req(6, 1, 0.012, 0.35);
        plain.resilience = None;
        let ff = crate::run::execute(&plain).unwrap().verification.unwrap();
        assert!(
            (v.linf - ff.linf).abs() <= 1e-12,
            "{} vs {}",
            v.linf,
            ff.linf
        );
        assert!((v.l2 - ff.l2).abs() <= 1e-12, "{} vs {}", v.l2, ff.l2);
    }

    #[test]
    fn incremental_checkpoints_restore_bitwise_under_fault_injection() {
        // Same nasty market as `revoked_run_recovers_with_exact_accuracy`,
        // but every durable write after the first is a dirty-block delta
        // and every restart replays the serialized base-plus-deltas chain.
        // The campaign must be byte-identical to the monolithic store.
        let mono = small_spot_req(6, 1, 0.012, 0.35);
        let mut incr = mono.clone();
        if let Some(spec) = &mut incr.resilience {
            spec.incremental_checkpoints = true;
        }
        let a = execute_resilient(&mono).unwrap();
        let b = execute_resilient(&incr).unwrap();
        assert!(
            b.stats.faults_injected >= 1,
            "market never fired: {:?}",
            b.stats
        );
        assert!(
            b.stats.checkpoints_written >= 2,
            "need at least one delta after the base: {:?}",
            b.stats
        );
        assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
        assert_eq!(
            format!("{:?}", a.outcome),
            format!("{:?}", b.outcome),
            "delta-chain restore must not change a byte of the outcome"
        );
    }

    #[test]
    fn incremental_checkpoints_restore_ns_bitwise() {
        // The four-field NS state (3 velocity components x BDF levels +
        // pressure) through the delta chain, against the monolithic store.
        let spec = |incremental: bool| {
            let mut s = small_spot_req(4, 1, 0.03, 0.4);
            s.app = App::paper_ns(4);
            if let Some(r) = &mut s.resilience {
                r.incremental_checkpoints = incremental;
            }
            s
        };
        let a = execute_resilient(&spec(false)).unwrap();
        let b = execute_resilient(&spec(true)).unwrap();
        assert!(b.stats.checkpoints_written >= 2, "{:?}", b.stats);
        assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
        assert_eq!(format!("{:?}", a.outcome), format!("{:?}", b.outcome));
    }

    #[test]
    fn fail_fast_surfaces_the_fault_without_retrying() {
        let mut req = small_spot_req(6, 0, 0.012, 0.35);
        if let Some(spec) = &mut req.resilience {
            spec.policy.mode = RecoveryMode::FailFast;
            spec.policy.checkpoint_every = 0;
        }
        let out = execute_resilient(&req).unwrap();
        assert!(!out.stats.completed);
        assert_eq!(out.stats.attempts, 1);
        assert_eq!(out.stats.faults_injected, 1);
        assert!(out.outcome.is_none());
        let rerun = out.stats.total_seconds - out.stats.wait_seconds;
        assert!(
            (out.stats.lost_work_seconds - rerun).abs() < 1e-9,
            "without checkpoints every run second is lost: {} vs {rerun}",
            out.stats.lost_work_seconds
        );
    }

    #[test]
    fn exhausted_restart_budget_terminates() {
        // Revocations far faster than any step completes: no attempt makes
        // progress, and the bounded budget must stop the loop.
        let mut req = small_spot_req(4, 1, 1e-4, 1.0);
        if let Some(spec) = &mut req.resilience {
            spec.policy.mode = RecoveryMode::Restart { max_restarts: 3 };
        }
        let out = execute_resilient(&req).unwrap();
        assert!(!out.stats.completed);
        assert_eq!(out.stats.attempts, 4); // 1 + 3 restarts
        assert_eq!(out.stats.faults_injected, 4);
        assert!(out.outcome.is_none());
    }

    #[test]
    fn limit_violations_preempt_the_attempt_loop() {
        let ellipse = catalog::ellipse();
        let req = RunRequest {
            resilience: Some(ResilienceSpec::spot_with_restart(&ellipse, 1.0, 4, 100)),
            ..RunRequest::new(ellipse, App::paper_rd(2), 729, 20)
        };
        assert!(matches!(
            execute_resilient(&req),
            Err(LimitViolation::LauncherFailure { .. })
        ));
    }

    #[test]
    fn modeled_path_accounts_like_the_replay() {
        let ec2 = catalog::ec2();
        let req = RunRequest {
            fidelity: Fidelity::Modeled,
            resilience: Some(ResilienceSpec::spot_with_restart(&ec2, 1.0, 8, 40)),
            ..RunRequest::new(ec2, App::paper_rd(40), 216, 20)
        };
        let out = execute_resilient(&req).unwrap();
        assert!(out.stats.completed);
        assert!(out.stats.total_dollars > 0.0);
        assert!(out.stats.total_seconds > 0.0);
        let o = out.outcome.unwrap();
        assert_eq!(o.fidelity, Fidelity::Modeled);
        assert!(o.verification.is_none());
        // Deterministic: same request, same campaign, bitwise.
        let again = execute_resilient(&req).unwrap();
        assert_eq!(format!("{:?}", out.stats), format!("{:?}", again.stats));
    }

    #[test]
    fn state_bytes_grow_with_order_and_history() {
        let rd = App::paper_rd(4);
        let ns = App::paper_ns(4);
        assert!(state_bytes(&ns, 8, 3) > state_bytes(&rd, 8, 3));
        assert!(state_bytes(&rd, 27, 3) > state_bytes(&rd, 8, 3));
    }
}
