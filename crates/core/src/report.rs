//! Text/CSV/JSON renderers for the reproduced tables and figures.

use crate::run::RunOutcome;
use crate::scenarios::{
    CostCurve, SolverVariantRow, Table1, Table2Row, Table3Row, WeakScalingTable,
};
use hetero_platform::catalog;
use hetero_platform::cost::Billing;
use hetero_trace::Trace;

fn fmt_time(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:8.1}")
    } else if t >= 1.0 {
        format!("{t:8.2}")
    } else {
        format!("{:8.4}", t)
    }
}

/// Renders a weak-scaling figure as a per-phase text table (the data behind
/// Figure 4 / Figure 5).
pub fn render_weak_scaling(table: &WeakScalingTable) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Weak scaling, {} application (per-iteration seconds; assembly/precond/solve/total)\n",
        table.app
    ));
    out.push_str(&format!("{:>6} |", "ranks"));
    for (key, _) in &table.rows[0].cells {
        out.push_str(&format!(" {key:^37} |"));
    }
    out.push('\n');
    for row in &table.rows {
        out.push_str(&format!("{:>6} |", row.ranks));
        for (_, cell) in &row.cells {
            match cell {
                Ok(o) => out.push_str(&format!(
                    "{}{}{}{} |",
                    fmt_time(o.phases.assembly),
                    fmt_time(o.phases.precond),
                    fmt_time(o.phases.solve),
                    fmt_time(o.phases.total),
                )),
                Err(e) => {
                    let reason = match e {
                        hetero_platform::limits::LimitViolation::InsufficientCapacity {
                            ..
                        } => "— (capacity)",
                        hetero_platform::limits::LimitViolation::LauncherFailure { .. } => {
                            "— (mpiexec launch failed)"
                        }
                        hetero_platform::limits::LimitViolation::AdapterVolumeExceeded {
                            ..
                        } => "— (IB volume limit)",
                    };
                    out.push_str(&format!(" {reason:^37} |"));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the per-phase rollup table recomputed from a structured trace:
/// the span-level view behind the Fig. 4 assembly/precond/solve split, plus
/// the unattributed remainder of each iteration. Returns `None` when the
/// trace holds no phase span that survives the discard.
pub fn render_phase_rollup(trace: &Trace, discard: usize) -> Option<String> {
    trace.phase_rollup(discard).map(|r| r.render())
}

/// Per-phase rollup for a traced run. Returns `None` when the run was not
/// traced (the request's `trace` was `None`) or recorded no phase spans.
///
/// The rollup is recomputed purely from span records, yet matches the
/// outcome's reported [`PhaseTimes`](hetero_fem::phase::PhaseTimes)
/// bitwise — the reduction mirrors the report pipeline operation for
/// operation.
pub fn outcome_phase_rollup(outcome: &RunOutcome, discard: usize) -> Option<String> {
    outcome
        .trace
        .as_ref()
        .and_then(|t| render_phase_rollup(t, discard))
}

/// Renders a weak-scaling figure as CSV
/// (`app,ranks,platform,assembly,precond,solve,total,cost,status`).
pub fn weak_scaling_csv(table: &WeakScalingTable) -> String {
    let mut out =
        String::from("app,ranks,platform,assembly_s,precond_s,solve_s,total_s,cost_usd,status\n");
    for row in &table.rows {
        for (key, cell) in &row.cells {
            match cell {
                Ok(o) => out.push_str(&format!(
                    "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},ok\n",
                    table.app,
                    row.ranks,
                    key,
                    o.phases.assembly,
                    o.phases.precond,
                    o.phases.solve,
                    o.phases.total,
                    o.cost_per_iteration
                )),
                Err(_) => out.push_str(&format!(
                    "{},{},{},,,,,,infeasible\n",
                    table.app, row.ranks, key
                )),
            }
        }
    }
    out
}

/// Renders Table II in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table II: EC2 cc2.8xlarge assemblies, full (single placement group, on-demand)\n",
    );
    out.push_str("vs mix (spot requests over 4 placement groups + on-demand top-up)\n\n");
    out.push_str(
        "  #mpi    #  |  full: time[s]  real cost[$] |  mix: time[s]  est. cost[$]  (spot nodes)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6} {:>4}  | {:>14.2} {:>13.4} | {:>13.2} {:>13.4}  ({})\n",
            r.ranks,
            r.nodes,
            r.full_time,
            r.full_cost,
            r.mix_time,
            r.mix_est_cost,
            r.mix_spot_nodes
        ));
    }
    out
}

/// Renders the resilience sweep (Table III): expected campaign cost of
/// on-demand vs spot-with-restart per checkpoint cadence, with the
/// per-row cadence sweet spot starred.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III: RD on EC2 under faults — expected campaign cost [$]\n");
    out.push_str("on-demand (crashes only, restart from scratch) vs spot-with-restart\n");
    out.push_str("(live revocation market, checkpoint cadence swept; * = cheapest cadence)\n\n");
    let cadences: Vec<usize> = rows
        .first()
        .map(|r| r.spot.iter().map(|&(c, _)| c).collect())
        .unwrap_or_default();
    out.push_str(&format!(
        "{:>6} {:>5} | {:>12} |",
        "ranks", "nodes", "on-demand"
    ));
    for c in &cadences {
        let label = if *c == 0 {
            "no ckpt".to_string()
        } else {
            format!("every {c}")
        };
        out.push_str(&format!(" {label:>12} |"));
    }
    out.push_str(" done%\n");
    for row in rows {
        let best = row.best_cadence();
        out.push_str(&format!(
            "{:>6} {:>5} | {:>12.2} |",
            row.ranks, row.nodes, row.on_demand.expected_dollars
        ));
        let mut min_rate: f64 = 1.0;
        for (c, cell) in &row.spot {
            let star = if *c == best { "*" } else { " " };
            out.push_str(&format!(" {:>11.2}{star} |", cell.expected_dollars));
            min_rate = min_rate.min(cell.completion_rate);
        }
        out.push_str(&format!(" {:>4.0}\n", min_rate * 100.0));
    }
    out
}

/// Serializes the resilience sweep to JSON (for EXPERIMENTS.md artifacts).
pub fn table3_json(rows: &[Table3Row]) -> serde_json::Value {
    serde_json::json!({
        "rows": rows.iter().map(|row| {
            let cell = |c: &crate::scenarios::Table3Cell| serde_json::json!({
                "expected_seconds": c.expected_seconds,
                "expected_dollars": c.expected_dollars,
                "completion_rate": c.completion_rate,
                "mean_attempts": c.mean_attempts,
                "mean_lost_work": c.mean_lost_work,
                "mean_checkpoint_seconds": c.mean_checkpoint_seconds,
            });
            serde_json::json!({
                "ranks": row.ranks,
                "nodes": row.nodes,
                "on_demand": cell(&row.on_demand),
                "best_cadence": row.best_cadence(),
                "spot": row.spot.iter().map(|(cadence, c)| serde_json::json!({
                    "cadence": cadence,
                    "cell": cell(c),
                })).collect::<Vec<_>>(),
            })
        }).collect::<Vec<_>>(),
    })
}

/// Renders the solver-schedule comparison (the "Communication overlap"
/// table) in the exact layout the `solver_variants` example prints.
pub fn render_solver_variants(rows: &[SolverVariantRow]) -> String {
    let mut out = String::new();
    out.push_str("RD solve phase, s/iteration (paper sizing: 20^3 elements/rank, seed 2012)\n");
    out.push('\n');
    out.push_str("| platform | ranks | blocking | overlapped | pipelined | best saving |\n");
    out.push_str("|----------|------:|---------:|-----------:|----------:|------------:|\n");
    for r in rows {
        let best = r.times[1].min(r.times[2]);
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.1}% |\n",
            r.platform,
            r.ranks,
            r.times[0],
            r.times[1],
            r.times[2],
            (1.0 - best / r.times[0]) * 100.0
        ));
    }
    out
}

/// Renders a cost figure (Figure 6 / 7) as a text table.
pub fn render_cost_curves(app: &str, curves: &[CostCurve]) -> String {
    let mut out = format!("Per-iteration cost, {app} application [$ per iteration]\n");
    out.push_str(&format!("{:>6} |", "ranks"));
    for c in curves {
        out.push_str(&format!(" {:^12} |", c.label));
    }
    out.push('\n');
    // Collect the union of rank counts.
    let mut all_ranks: Vec<usize> = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|&(r, _)| r))
        .collect();
    all_ranks.sort_unstable();
    all_ranks.dedup();
    for ranks in all_ranks {
        out.push_str(&format!("{ranks:>6} |"));
        for c in curves {
            match c.points.iter().find(|&&(r, _)| r == ranks) {
                Some(&(_, cost)) => out.push_str(&format!(" {cost:>12.4} |")),
                None => out.push_str(&format!(" {:^12} |", "—")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders Table I: the platform capability matrix with the remediation
/// annotations, followed by the Section VI effort summary.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    let keys: Vec<&str> = t.platforms.iter().map(|p| p.key.as_str()).collect();
    out.push_str("Table I: specification of the test architectures\n\n");
    let row = |label: &str, values: Vec<String>| -> String {
        let mut line = format!("{label:<16}");
        for v in values {
            line.push_str(&format!(" | {v:<24}"));
        }
        line.push('\n');
        line
    };
    out.push_str(&row("", keys.iter().map(|k| k.to_string()).collect()));
    out.push_str(&row(
        "cpu arch.",
        t.platforms.iter().map(|p| p.cpu_model.clone()).collect(),
    ));
    out.push_str(&row(
        "cores/node",
        t.platforms
            .iter()
            .map(|p| p.cores_per_node.to_string())
            .collect(),
    ));
    out.push_str(&row(
        "RAM/core",
        t.platforms
            .iter()
            .map(|p| format!("{} GiB", p.ram_per_core_gib))
            .collect(),
    ));
    out.push_str(&row(
        "network",
        t.platforms.iter().map(|p| p.network.name.clone()).collect(),
    ));
    out.push_str(&row(
        "access",
        t.platforms
            .iter()
            .map(|p| match p.access {
                hetero_platform::AccessKind::UserSpace => "user space".to_string(),
                hetero_platform::AccessKind::Root => "root".to_string(),
            })
            .collect(),
    ));
    out.push_str(&row(
        "support",
        t.platforms
            .iter()
            .map(|p| {
                hetero_platform::provision::environment_of(&p.key)
                    .map(|e| e.support)
                    .unwrap_or_default()
            })
            .collect(),
    ));
    out.push_str(&row(
        "execution",
        t.platforms
            .iter()
            .map(|p| p.scheduler.name().to_string())
            .collect(),
    ));
    out.push_str(&row(
        "cost",
        t.platforms
            .iter()
            .map(|p| match p.cost.billing {
                Billing::PerCoreHour(r) | Billing::EstimatedPerCoreHour(r) => {
                    format!("{:.2} c/core-h", r * 100.0)
                }
                Billing::PerNodeHour { rate, .. } => format!("${rate:.2}/node-h"),
            })
            .collect(),
    ));
    out.push('\n');
    out.push_str("Section VI: provisioning plans and effort\n\n");
    for plan in &t.plans {
        out.push_str(&plan.render());
        out.push('\n');
    }
    out.push_str("Effort totals (man-hours): ");
    for plan in &t.plans {
        out.push_str(&format!("{} = {:.1}  ", plan.platform, plan.total_hours()));
    }
    out.push('\n');
    out
}

/// Serializes a weak-scaling table to JSON (for EXPERIMENTS.md artifacts).
pub fn weak_scaling_json(table: &WeakScalingTable) -> serde_json::Value {
    let platforms: Vec<String> = catalog::all_platforms()
        .into_iter()
        .map(|p| p.key)
        .collect();
    serde_json::json!({
        "app": table.app,
        "platforms": platforms,
        "rows": table.rows.iter().map(|row| {
            serde_json::json!({
                "ranks": row.ranks,
                "cells": row.cells.iter().map(|(key, cell)| match cell {
                    Ok(o) => serde_json::json!({
                        "platform": key,
                        "assembly": o.phases.assembly,
                        "precond": o.phases.precond,
                        "solve": o.phases.solve,
                        "total": o.phases.total,
                        "cost": o.cost_per_iteration,
                    }),
                    Err(e) => serde_json::json!({
                        "platform": key,
                        "infeasible": e.to_string(),
                    }),
                }).collect::<Vec<_>>(),
            })
        }).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{fig4, table1, table2, ScenarioOptions};

    fn tiny_opts() -> ScenarioOptions {
        ScenarioOptions {
            max_k: 2,
            steps: 2,
            discard: 0,
            fidelity: crate::run::Fidelity::Modeled,
            ..ScenarioOptions::paper()
        }
    }

    #[test]
    fn weak_scaling_render_contains_platforms_and_ranks() {
        let t = fig4(&tiny_opts());
        let text = render_weak_scaling(&t);
        for key in ["puma", "ellipse", "lagrange", "ec2"] {
            assert!(text.contains(key), "missing {key}");
        }
        assert!(text.contains("     8 |"));
    }

    #[test]
    fn csv_has_a_row_per_cell() {
        let t = fig4(&tiny_opts());
        let csv = weak_scaling_csv(&t);
        // Header + 2 rank rows x 4 platforms.
        assert_eq!(csv.lines().count(), 1 + 8);
        assert!(csv.starts_with("app,ranks,platform"));
    }

    #[test]
    fn table2_render_matches_shape() {
        let rows = table2(&tiny_opts());
        let text = render_table2(&rows);
        assert!(text.contains("est. cost"));
        assert!(text.lines().count() >= rows.len() + 3);
    }

    #[test]
    fn table1_render_includes_effort_totals() {
        let text = render_table1(&table1());
        assert!(text.contains("cpu arch."));
        assert!(text.contains("Effort totals"));
        assert!(text.contains("puma = 0.0"));
    }

    #[test]
    fn table3_render_stars_the_sweet_spot() {
        use crate::scenarios::{table3, ResilienceOptions};
        let opts = ResilienceOptions::smoke();
        let rows = table3(&opts);
        let text = render_table3(&rows);
        assert!(text.contains("on-demand"));
        assert!(text.contains("no ckpt"));
        assert!(text.contains('*'), "no cadence starred:\n{text}");
        let v = table3_json(&rows);
        assert_eq!(v["rows"].as_array().unwrap().len(), rows.len());
        assert!(v["rows"][0]["best_cadence"].as_u64().is_some());
    }

    #[test]
    fn phase_rollup_renders_for_traced_runs_only() {
        use crate::run::{execute, RunRequest};
        use hetero_trace::TraceSpec;
        let plain = RunRequest {
            discard: 1,
            ..RunRequest::new(catalog::ec2(), crate::apps::App::paper_rd(3), 64, 8)
        };
        let traced = RunRequest {
            trace: Some(TraceSpec::phases()),
            ..plain.clone()
        };
        let out = execute(&plain).unwrap();
        assert!(outcome_phase_rollup(&out, plain.discard).is_none());
        let out = execute(&traced).unwrap();
        let table = outcome_phase_rollup(&out, traced.discard).expect("traced run has spans");
        for needle in ["assembly", "precond", "solve", "other", "total", "100.0%"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
        assert!(table.contains("2 iterations, first 1 discarded"));
    }

    #[test]
    fn json_roundtrip_has_rows() {
        let t = fig4(&tiny_opts());
        let v = weak_scaling_json(&t);
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["app"], "RD");
    }
}
