//! The unified run executor: one request, either engine, one outcome shape.

use crate::apps::App;
use crate::modeled::run_modeled_prepared;
use crate::prep::{PreparedScenario, RankPreps};
use crate::recovery::ResilienceSpec;
use hetero_fem::ns::{solve_ns_prepared, NsPrep};
use hetero_fem::phase::{summarize, PhaseTimes};
use hetero_fem::rd::{solve_rd_prepared, RdPrep};
use hetero_linalg::{KernelBackend, SolverVariant};
use hetero_mesh::{DistributedMesh, StructuredHexMesh};
use hetero_partition::block::near_cubic_factors;
use hetero_partition::BlockLayout;
use hetero_platform::limits::LimitViolation;
use hetero_platform::{CostModel, PlatformSpec};
use hetero_simmpi::{
    run_spmd_opts, ClusterTopology, EngineKind, EngineOpts, FaultPlan, SpmdConfig,
};
use hetero_trace::{EventKind, Phase as TracePhase, Trace, TraceEvent, TraceSpec};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Which engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Real distributed numerics on OS threads (verifiable, small scale).
    Numerical,
    /// Analytic replay (paper scale).
    Modeled,
    /// Numerical when affordable, modeled otherwise.
    Auto,
}

/// Auto switches to the modeled engine above this rank count...
pub const AUTO_MAX_NUMERICAL_RANKS: usize = 27;
/// ...or above this per-rank mesh edge.
pub const AUTO_MAX_NUMERICAL_AXIS: usize = 5;

/// A run request: application x platform x size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRequest {
    /// Target platform.
    pub platform: PlatformSpec,
    /// Application and configuration.
    pub app: App,
    /// MPI ranks.
    pub ranks: usize,
    /// Cells per axis owned by each rank (the paper uses 20).
    pub per_rank_axis: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Warm-up iterations discarded from averages (the paper discards 5).
    pub discard: usize,
    /// Intra-rank threads for the numerical engine's kernels (assembly,
    /// SpMV, reductions, preconditioner sweeps). The fixed-chunk
    /// parallelism is bitwise deterministic, so the computed report is
    /// identical at any value; only host wall time changes.
    pub threads_per_rank: usize,
    /// SPMD engine for the numerical path: the M:N cooperative scheduler
    /// (the default) or the legacy one-OS-thread-per-rank engine kept for
    /// A/B pinning. The computed report is bitwise identical either way;
    /// only host resource usage differs.
    pub engine: EngineKind,
    /// Worker threads for the cooperative scheduler (`0` = auto-size from
    /// host parallelism). Ignored by the thread engine. Reports are bitwise
    /// identical at any pool size.
    pub sched_workers: usize,
    /// Engine selection.
    pub fidelity: Fidelity,
    /// Overrides the solver communication schedule of **every** Krylov
    /// solve in the app (see [`SolverVariant`]). `None` keeps whatever the
    /// app's own [`hetero_linalg::SolveOptions`] say — the default blocking
    /// schedule unless the config was built otherwise.
    pub solver_variant: Option<SolverVariant>,
    /// Overrides the per-step operator backend of **every** assembled
    /// system in the app (see [`KernelBackend`]). `None` keeps whatever the
    /// app's own [`hetero_linalg::SolveOptions`] say — the default
    /// assemble-from-scratch path unless the config was built otherwise.
    /// Both backends produce bitwise-identical reports; `MatrixFree`
    /// refreshes a retained operator in place and skips the per-step
    /// matrix construction on the host.
    pub kernel_backend: Option<KernelBackend>,
    /// Replaces the platform's default topology (placement-group fleets).
    pub topology_override: Option<ClusterTopology>,
    /// Replaces the platform's cost model (spot pricing).
    pub cost_override: Option<CostModel>,
    /// Fault processes and recovery policy — `None` runs failure-free.
    /// Consumed by [`crate::recovery::execute_resilient`]; the plain
    /// [`execute`] path ignores it.
    pub resilience: Option<ResilienceSpec>,
    /// Structured-event tracing — `None` (the default) records nothing and
    /// costs nothing. With a spec, the numerical engine records per-rank
    /// phase/collective/message events in virtual time, and the modeled
    /// engine synthesizes the equivalent phase spans; either way the
    /// outcome carries a [`Trace`] whose rollup matches `phases` bitwise.
    pub trace: Option<TraceSpec>,
}

impl RunRequest {
    /// A request with platform defaults and `Auto` fidelity.
    pub fn new(platform: PlatformSpec, app: App, ranks: usize, per_rank_axis: usize) -> Self {
        RunRequest {
            platform,
            app,
            ranks,
            per_rank_axis,
            seed: 2012,
            discard: 0,
            threads_per_rank: 1,
            engine: EngineKind::default(),
            sched_workers: 0,
            fidelity: Fidelity::Auto,
            solver_variant: None,
            kernel_backend: None,
            topology_override: None,
            cost_override: None,
            resilience: None,
            trace: None,
        }
    }

    /// The app with [`RunRequest::solver_variant`] and
    /// [`RunRequest::kernel_backend`] applied (identity when both are
    /// `None`).
    pub fn resolved_app(&self) -> App {
        let app = match self.solver_variant {
            Some(v) => self.app.with_solver_variant(v),
            None => self.app.clone(),
        };
        match self.kernel_backend {
            Some(b) => app.with_kernel_backend(b),
            None => app,
        }
    }
}

/// Numerical verification against the exact solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verification {
    /// Nodal max error.
    pub linf: f64,
    /// Discrete L2 error.
    pub l2: f64,
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Platform key.
    pub platform: String,
    /// Application name ("RD"/"NS").
    pub app: &'static str,
    /// Ranks used.
    pub ranks: usize,
    /// Nodes occupied.
    pub nodes: usize,
    /// Engine actually used.
    pub fidelity: Fidelity,
    /// Per-iteration phase times (max over ranks, averaged after discard).
    pub phases: PhaseTimes,
    /// Dollars per iteration at the platform's (or overridden) rates.
    pub cost_per_iteration: f64,
    /// Simulated queue wait before the job starts.
    pub queue_wait_seconds: f64,
    /// Krylov iterations per time step (RD: CG; NS: momentum + pressure).
    pub krylov_iters: f64,
    /// Exact-solution errors (numerical engine only).
    pub verification: Option<Verification>,
    /// Aggregate fabric traffic per iteration (bytes, all ranks).
    pub bytes_per_iteration: f64,
    /// The structured event trace, when [`RunRequest::trace`] asked for
    /// one. Deterministic: a pure function of the request.
    pub trace: Option<Trace>,
}

// Hand-written because `app` is a `&'static str` (interned "RD"/"NS") and
// `trace` holds borrowed event labels that cannot round-trip through JSON.
// A trace is a deterministic replay artifact, not part of the measured
// report, so serialization always writes `trace: null` and deserialization
// restores `None`; callers that persist outcomes (the serve cache) must
// strip traces from the request first.
impl Serialize for RunOutcome {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("platform".to_string(), self.platform.serialize_value()),
            ("app".to_string(), Value::String(self.app.to_string())),
            ("ranks".to_string(), self.ranks.serialize_value()),
            ("nodes".to_string(), self.nodes.serialize_value()),
            ("fidelity".to_string(), self.fidelity.serialize_value()),
            ("phases".to_string(), self.phases.serialize_value()),
            (
                "cost_per_iteration".to_string(),
                self.cost_per_iteration.serialize_value(),
            ),
            (
                "queue_wait_seconds".to_string(),
                self.queue_wait_seconds.serialize_value(),
            ),
            (
                "krylov_iters".to_string(),
                self.krylov_iters.serialize_value(),
            ),
            (
                "verification".to_string(),
                self.verification.serialize_value(),
            ),
            (
                "bytes_per_iteration".to_string(),
                self.bytes_per_iteration.serialize_value(),
            ),
            ("trace".to_string(), Value::Null),
        ])
    }
}

impl Deserialize for RunOutcome {
    fn deserialize_value(v: &Value) -> Result<Self, serde::Error> {
        let app = match v.field("app").as_str() {
            Some("RD") => "RD",
            Some("NS") => "NS",
            other => {
                return Err(serde::Error::new(format!(
                    "unknown application name {other:?} (expected \"RD\" or \"NS\")"
                )))
            }
        };
        Ok(RunOutcome {
            platform: String::deserialize_value(v.field("platform"))?,
            app,
            ranks: usize::deserialize_value(v.field("ranks"))?,
            nodes: usize::deserialize_value(v.field("nodes"))?,
            fidelity: Fidelity::deserialize_value(v.field("fidelity"))?,
            phases: PhaseTimes::deserialize_value(v.field("phases"))?,
            cost_per_iteration: f64::deserialize_value(v.field("cost_per_iteration"))?,
            queue_wait_seconds: f64::deserialize_value(v.field("queue_wait_seconds"))?,
            krylov_iters: f64::deserialize_value(v.field("krylov_iters"))?,
            verification: Option::<Verification>::deserialize_value(v.field("verification"))?,
            bytes_per_iteration: f64::deserialize_value(v.field("bytes_per_iteration"))?,
            trace: None,
        })
    }
}

pub(crate) fn resolve_fidelity(req: &RunRequest) -> Fidelity {
    match req.fidelity {
        Fidelity::Auto => {
            if req.ranks <= AUTO_MAX_NUMERICAL_RANKS && req.per_rank_axis <= AUTO_MAX_NUMERICAL_AXIS
            {
                Fidelity::Numerical
            } else {
                Fidelity::Modeled
            }
        }
        f => f,
    }
}

/// Executes a run, enforcing the platform's limits first.
///
/// # Errors
/// Returns the paper's observed failure modes: capacity exhaustion (puma
/// above 125 of the ladder), launcher failure (ellipse above 512), adapter
/// volume cap (lagrange above 343).
pub fn execute(req: &RunRequest) -> Result<RunOutcome, LimitViolation> {
    execute_with_prep(req, None)
}

/// [`execute`] with an optional pinned [`PreparedScenario`]. With `None`
/// the process-wide scenario cache is consulted (a no-op while sharing is
/// disabled — see [`crate::prep`]); a pinned scenario whose sub-key does
/// not match `req` falls back to the cache. Reports are byte-identical to
/// the fresh-setup path either way.
pub fn execute_with_prep(
    req: &RunRequest,
    prep: Option<Arc<PreparedScenario>>,
) -> Result<RunOutcome, LimitViolation> {
    // Normalize the solver-variant and kernel-backend overrides into the
    // app config so both engines see them through the ordinary
    // SolveOptions path.
    let req = &RunRequest {
        app: req.resolved_app(),
        solver_variant: None,
        kernel_backend: None,
        ..req.clone()
    };
    let prep = crate::prep::resolve(req, prep);
    // Capacity and launcher limits are independent of traffic: check them
    // before even building the topology (an oversubscribed topology cannot
    // be constructed).
    req.platform.check_limits(req.ranks, 0.0)?;
    let topo = req
        .topology_override
        .clone()
        .unwrap_or_else(|| req.platform.topology(req.ranks));
    assert!(
        topo.total_cores() >= req.ranks,
        "override topology too small"
    );

    // Traffic estimate from a one-step modeled probe (cheap, closed form).
    let probe = run_modeled_prepared(
        &req.app.with_steps(1),
        req.ranks,
        req.per_rank_axis,
        &topo,
        &req.platform.network,
        req.platform.compute,
        req.seed,
        prep.as_deref().map(|p| p.modeled()),
    );
    req.platform
        .check_limits(req.ranks, probe.bytes_per_iteration)?;

    let fidelity = resolve_fidelity(req);
    let cost_model = req
        .cost_override
        .clone()
        .unwrap_or_else(|| req.platform.cost.clone());
    let nodes = topo.nodes_for_ranks(req.ranks);
    let queue_wait_seconds = req.platform.queue_wait(req.ranks, req.seed);

    let (phases, krylov_iters, verification, bytes_per_iteration, trace) = match fidelity {
        Fidelity::Numerical => run_numerical(req, topo, prep.as_deref())?,
        Fidelity::Modeled | Fidelity::Auto => {
            let m = run_modeled_prepared(
                &req.app,
                req.ranks,
                req.per_rank_axis,
                &topo,
                &req.platform.network,
                req.platform.compute,
                req.seed,
                prep.as_deref().map(|p| p.modeled()),
            );
            let phases = summarize(&m.iterations, req.discard)
                .expect("modeled run produced no measurable iterations");
            let trace = req.trace.map(|_| synthesize_phase_trace(&m.iterations));
            (
                phases,
                m.krylov_iters as f64,
                None,
                m.bytes_per_iteration,
                trace,
            )
        }
    };

    Ok(RunOutcome {
        platform: req.platform.key.clone(),
        app: match &req.app {
            App::Rd(_) => "RD",
            App::Ns(_) => "NS",
        },
        ranks: req.ranks,
        nodes,
        fidelity,
        phases,
        cost_per_iteration: cost_model.cost(req.ranks, phases.total),
        queue_wait_seconds,
        krylov_iters,
        verification,
        bytes_per_iteration,
        trace,
    })
}

/// The trace the modeled engine implies: rank-0 phase spans per step with
/// the exact per-step durations, laid out on a cumulative virtual clock.
/// Rolling the result up reproduces `summarize(&iterations, d)` bitwise —
/// one span per `(step, phase)`, critical-rank max over the single rank,
/// then the identical sum-and-scale.
pub(crate) fn synthesize_phase_trace(iterations: &[PhaseTimes]) -> Trace {
    let mut events = Vec::with_capacity(iterations.len() * 5);
    let mut seq = 0u64;
    let mut clock = 0.0f64;
    for (i, it) in iterations.iter().enumerate() {
        let step = (i + 1) as u32;
        let named = it.assembly + it.precond + it.solve;
        let mut at = clock;
        for (dur, phase) in [
            (it.assembly, TracePhase::Assembly),
            (it.precond, TracePhase::Precond),
            (it.solve, TracePhase::Solve),
            (it.total - named, TracePhase::Other),
        ] {
            events.push(TraceEvent {
                at,
                dur,
                rank: 0,
                seq,
                kind: EventKind::Phase { phase, step },
            });
            seq += 1;
            at += dur;
        }
        events.push(TraceEvent {
            at: clock,
            dur: it.total,
            rank: 0,
            seq,
            kind: EventKind::Phase {
                phase: TracePhase::Iteration,
                step,
            },
        });
        seq += 1;
        clock += it.total;
    }
    let mut trace = Trace { events };
    trace.sort();
    trace
}

type NumericalResult = (PhaseTimes, f64, Option<Verification>, f64, Option<Trace>);

fn run_numerical(
    req: &RunRequest,
    topo: ClusterTopology,
    prep: Option<&PreparedScenario>,
) -> Result<NumericalResult, LimitViolation> {
    // Mesh + partition assignment: shared from the scenario when present
    // (both are pure functions of the prep sub-key), rebuilt otherwise.
    let (mesh, assignment) = match prep {
        Some(p) => {
            let g = p.geometry();
            (g.mesh.clone(), Arc::clone(&g.assignment))
        }
        None => {
            let factors = near_cubic_factors(req.ranks);
            let cells = (
                factors.0 * req.per_rank_axis,
                factors.1 * req.per_rank_axis,
                factors.2 * req.per_rank_axis,
            );
            let mesh = StructuredHexMesh::new(
                cells.0,
                cells.1,
                cells.2,
                hetero_mesh::Point3::ZERO,
                hetero_mesh::Point3::splat(1.0),
            );
            let layout = BlockLayout::new(cells, factors);
            (mesh, Arc::new(layout.assignment()))
        }
    };
    let ranks = req.ranks;
    let app = req.app.clone();
    let cfg = SpmdConfig {
        size: ranks,
        topo,
        net: req.platform.network.clone(),
        compute: req.platform.compute,
        seed: req.seed,
    };

    // Per-rank FEM setup: reused from the scenario's harvest when a prior
    // numerical run stored it; otherwise this run harvests its own
    // (resolved once, so every rank of this run agrees).
    let rank_preps: Option<RankPreps> = prep.and_then(|p| p.rank_preps());
    let harvest = prep.is_some() && rank_preps.is_none();

    enum PrepOut {
        Rd(RdPrep),
        Ns(NsPrep),
    }

    struct RankOut {
        iterations: Vec<PhaseTimes>,
        kiters: f64,
        linf: f64,
        l2: f64,
        bytes: f64,
        prep: Option<PrepOut>,
    }

    // One logical pool shared by all ranks; `install` binds the thread
    // count on each rank's own OS thread, so it must run inside the rank
    // closure.
    let pool = Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(req.threads_per_rank.max(1))
            .build()
            .expect("the vendored pool builder cannot fail"),
    );

    let body = move |comm: &mut hetero_simmpi::SimComm| {
        pool.install(|| {
            let dmesh =
                DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), ranks);
            match &app {
                App::Rd(c) => {
                    let rp = match &rank_preps {
                        Some(RankPreps::Rd(v)) => Some(&v[comm.rank()]),
                        _ => None,
                    };
                    let (r, built) = solve_rd_prepared(&dmesh, c, None, None, rp, comm);
                    RankOut {
                        iterations: r.iterations,
                        kiters: r.krylov_iters.iter().sum::<usize>() as f64
                            / r.krylov_iters.len() as f64,
                        linf: r.linf_error,
                        l2: r.l2_error,
                        bytes: comm.stats().bytes_received,
                        prep: harvest.then_some(PrepOut::Rd(built)),
                    }
                }
                App::Ns(c) => {
                    let rp = match &rank_preps {
                        Some(RankPreps::Ns(v)) => Some(&v[comm.rank()]),
                        _ => None,
                    };
                    let (r, built) = solve_ns_prepared(&dmesh, c, None, None, rp, comm);
                    let total_k: usize =
                        r.vel_iters.iter().sum::<usize>() + r.p_iters.iter().sum::<usize>();
                    RankOut {
                        iterations: r.iterations,
                        kiters: total_k as f64 / r.vel_iters.len() as f64,
                        linf: r.vel_linf_error,
                        l2: r.vel_l2_error,
                        bytes: comm.stats().bytes_received,
                        prep: harvest.then_some(PrepOut::Ns(built)),
                    }
                }
            }
        })
    };
    let opts = EngineOpts {
        engine: req.engine,
        workers: req.sched_workers,
        ..EngineOpts::default()
    };
    let (res, trace) = run_spmd_opts(cfg, opts, FaultPlan::none(), req.trace, body);
    let mut results = res.expect("a trivial fault plan cannot fail a rank");

    // Seed the scenario with this run's harvested per-rank setup.
    if harvest {
        if let Some(scen) = prep {
            results.sort_by_key(|r| r.rank);
            let mut rds = Vec::with_capacity(results.len());
            let mut nss = Vec::with_capacity(results.len());
            for r in &mut results {
                match r.value.prep.take() {
                    Some(PrepOut::Rd(p)) => rds.push(p),
                    Some(PrepOut::Ns(p)) => nss.push(p),
                    None => {}
                }
            }
            if rds.len() == results.len() {
                scen.store_rank_preps(RankPreps::Rd(Arc::new(rds)));
            } else if nss.len() == results.len() {
                scen.store_rank_preps(RankPreps::Ns(Arc::new(nss)));
            }
        }
    }

    // Critical-rank reduction: per-iteration max across ranks.
    let steps = results[0].value.iterations.len();
    let mut per_iter = vec![PhaseTimes::default(); steps];
    for r in &results {
        for (acc, &t) in per_iter.iter_mut().zip(&r.value.iterations) {
            *acc = acc.max(t);
        }
    }
    let phases = summarize(&per_iter, req.discard).expect("no measurable iterations");
    let kiters = results[0].value.kiters;
    let verification = Some(Verification {
        linf: results[0].value.linf,
        l2: results[0].value.l2,
    });
    let bytes: f64 = results.iter().map(|r| r.value.bytes).sum::<f64>() / steps as f64;
    Ok((phases, kiters, verification, bytes, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::catalog;

    #[test]
    fn numerical_run_verifies_against_exact_solution() {
        let req = RunRequest {
            discard: 1,
            ..RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3)
        };
        let out = execute(&req).unwrap();
        assert_eq!(out.fidelity, Fidelity::Numerical);
        let v = out.verification.unwrap();
        assert!(v.linf < 5e-6, "linf = {}", v.linf);
        assert!(out.phases.total > 0.0);
        assert!(out.cost_per_iteration > 0.0);
        assert_eq!(out.nodes, 2);
    }

    #[test]
    fn auto_switches_to_modeled_at_scale() {
        let req = RunRequest::new(catalog::ec2(), App::paper_rd(2), 216, 20);
        let out = execute(&req).unwrap();
        assert_eq!(out.fidelity, Fidelity::Modeled);
        assert!(out.verification.is_none());
        assert_eq!(out.nodes, 14); // Table II's instance count for 216 ranks
    }

    #[test]
    fn puma_cannot_run_216_ranks() {
        let req = RunRequest::new(catalog::puma(), App::paper_rd(2), 216, 20);
        assert!(matches!(
            execute(&req),
            Err(LimitViolation::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn ellipse_cannot_launch_729_ranks() {
        let req = RunRequest::new(catalog::ellipse(), App::paper_rd(2), 729, 20);
        assert!(matches!(
            execute(&req),
            Err(LimitViolation::LauncherFailure { .. })
        ));
    }

    #[test]
    fn lagrange_hits_the_ib_volume_cap_beyond_343() {
        let ok = RunRequest::new(catalog::lagrange(), App::paper_rd(2), 343, 20);
        assert!(execute(&ok).is_ok());
        let too_big = RunRequest::new(catalog::lagrange(), App::paper_rd(2), 512, 20);
        assert!(matches!(
            execute(&too_big),
            Err(LimitViolation::AdapterVolumeExceeded { .. })
        ));
    }

    #[test]
    fn cost_override_changes_price_not_time() {
        let base = RunRequest::new(catalog::ec2(), App::paper_rd(2), 64, 20);
        let spot = RunRequest {
            cost_override: Some(catalog::ec2_spot_cost()),
            ..base.clone()
        };
        let a = execute(&base).unwrap();
        let b = execute(&spot).unwrap();
        assert_eq!(a.phases.total, b.phases.total);
        assert!(b.cost_per_iteration < a.cost_per_iteration / 3.0);
    }

    #[test]
    fn deterministic_outcomes() {
        let req = RunRequest::new(catalog::ellipse(), App::paper_rd(2), 64, 20);
        let a = execute(&req).unwrap();
        let b = execute(&req).unwrap();
        assert_eq!(a.phases.total, b.phases.total);
        assert_eq!(a.cost_per_iteration, b.cost_per_iteration);
    }

    #[test]
    fn traced_numerical_rollup_matches_report_bitwise() {
        let base = RunRequest {
            discard: 1,
            ..RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3)
        };
        let traced = RunRequest {
            trace: Some(TraceSpec::messages()),
            ..base.clone()
        };
        let plain = execute(&base).unwrap();
        let out = execute(&traced).unwrap();
        assert!(plain.trace.is_none(), "no spec, no trace");
        // Tracing observes; it must not perturb the run.
        assert_eq!(out.phases, plain.phases);
        let trace = out.trace.as_ref().unwrap();
        assert!(!trace.is_empty());
        let r = trace.phase_rollup(traced.discard).unwrap();
        assert_eq!(r.assembly, out.phases.assembly);
        assert_eq!(r.precond, out.phases.precond);
        assert_eq!(r.solve, out.phases.solve);
        assert_eq!(r.total, out.phases.total);
    }

    #[test]
    fn modeled_trace_rollup_matches_summarized_phases() {
        let req = RunRequest {
            discard: 1,
            trace: Some(TraceSpec::collectives()),
            ..RunRequest::new(catalog::ec2(), App::paper_rd(4), 216, 20)
        };
        let out = execute(&req).unwrap();
        assert_eq!(out.fidelity, Fidelity::Modeled);
        let r = out
            .trace
            .as_ref()
            .unwrap()
            .phase_rollup(req.discard)
            .unwrap();
        assert_eq!(r.assembly, out.phases.assembly);
        assert_eq!(r.precond, out.phases.precond);
        assert_eq!(r.solve, out.phases.solve);
        assert_eq!(r.total, out.phases.total);
    }
}
