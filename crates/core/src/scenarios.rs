//! Canned reproductions of every table and figure in the paper's
//! evaluation.

use crate::apps::App;
use crate::recovery::{execute_resilient, ResilienceSpec};
use crate::run::{execute, Fidelity, RunOutcome, RunRequest};
use hetero_fault::ResiliencePolicy;
use hetero_linalg::SolverVariant;
use hetero_platform::limits::LimitViolation;
use hetero_platform::provision::{environment_of, plan, ProvisionPlan};
use hetero_platform::spot::{acquire_fleet, FleetAllocation, FleetStrategy};
use hetero_platform::{catalog, PlatformSpec};
use hetero_simmpi::{ClusterTopology, EngineKind};
use hetero_trace::TraceSpec;
use serde::{Deserialize, Serialize};

/// Shared knobs for the scenario sweeps.
#[derive(Debug, Clone)]
pub struct ScenarioOptions {
    /// Cells per axis per rank (the paper's 20).
    pub per_rank_axis: usize,
    /// Largest `k` of the `k^3`-rank ladder (the paper's 10).
    pub max_k: usize,
    /// Time steps simulated per run.
    pub steps: usize,
    /// Warm-up iterations discarded (the paper's 5).
    pub discard: usize,
    /// Engine selection.
    pub fidelity: Fidelity,
    /// Experiment seed.
    pub seed: u64,
    /// Structured-event tracing for every weak-scaling cell (`None`
    /// records nothing). Benches use this to emit trace artifacts
    /// alongside the snapshots.
    pub trace: Option<TraceSpec>,
}

impl ScenarioOptions {
    /// The paper's configuration: `20^3` cells/rank, ranks `1..=1000`,
    /// 5 discarded + 3 measured iterations, modeled engine.
    pub fn paper() -> Self {
        ScenarioOptions {
            per_rank_axis: 20,
            max_k: 10,
            steps: 8,
            discard: 5,
            fidelity: Fidelity::Modeled,
            seed: 2012,
            trace: None,
        }
    }

    /// A cheap configuration for tests: tiny meshes, numerical engine where
    /// affordable.
    pub fn smoke() -> Self {
        ScenarioOptions {
            per_rank_axis: 3,
            max_k: 2,
            steps: 3,
            discard: 1,
            fidelity: Fidelity::Auto,
            seed: 2012,
            trace: None,
        }
    }

    /// The rank ladder `k^3`.
    pub fn ladder(&self) -> Vec<usize> {
        (1..=self.max_k).map(|k| k * k * k).collect()
    }
}

/// One platform's cell in a weak-scaling table: an outcome or the limit
/// that prevented the run (the paper's truncated curves).
pub type Cell = Result<RunOutcome, LimitViolation>;

/// One rung of a weak-scaling figure.
#[derive(Debug)]
pub struct WeakScalingRow {
    /// Rank count.
    pub ranks: usize,
    /// Per-platform outcome, ordered as [`catalog::all_platforms`].
    pub cells: Vec<(String, Cell)>,
}

/// A full weak-scaling figure (Figure 4 or 5).
#[derive(Debug)]
pub struct WeakScalingTable {
    /// "RD" or "NS".
    pub app: &'static str,
    /// One row per rank count.
    pub rows: Vec<WeakScalingRow>,
}

impl WeakScalingTable {
    /// The outcome for (ranks, platform), if the run was feasible.
    pub fn outcome(&self, ranks: usize, platform: &str) -> Option<&RunOutcome> {
        self.rows
            .iter()
            .find(|r| r.ranks == ranks)?
            .cells
            .iter()
            .find(|(p, _)| p == platform)?
            .1
            .as_ref()
            .ok()
    }

    /// Largest feasible rank count for a platform.
    pub fn max_feasible_ranks(&self, platform: &str) -> usize {
        self.rows
            .iter()
            .filter(|r| r.cells.iter().any(|(p, c)| p == platform && c.is_ok()))
            .map(|r| r.ranks)
            .max()
            .unwrap_or(0)
    }
}

fn weak_scaling(app_for: impl Fn(usize) -> App, opts: &ScenarioOptions) -> WeakScalingTable {
    let platforms = catalog::all_platforms();
    let mut rows = Vec::new();
    let mut app_name = "RD";
    for ranks in opts.ladder() {
        let mut cells = Vec::new();
        for platform in &platforms {
            let app = app_for(opts.steps);
            app_name = match &app {
                App::Rd(_) => "RD",
                App::Ns(_) => "NS",
            };
            let req = RunRequest {
                platform: platform.clone(),
                app,
                ranks,
                per_rank_axis: opts.per_rank_axis,
                seed: opts.seed,
                discard: opts.discard,
                threads_per_rank: 1,
                engine: EngineKind::default(),
                sched_workers: 0,
                fidelity: opts.fidelity,
                solver_variant: None,
                kernel_backend: None,
                topology_override: None,
                cost_override: None,
                resilience: None,
                trace: opts.trace,
            };
            cells.push((platform.key.clone(), execute(&req)));
        }
        rows.push(WeakScalingRow { ranks, cells });
    }
    WeakScalingTable {
        app: app_name,
        rows,
    }
}

/// **Figure 4**: weak scaling of the RD application on the four platforms.
pub fn fig4(opts: &ScenarioOptions) -> WeakScalingTable {
    weak_scaling(App::paper_rd, opts)
}

/// **Figure 5**: weak scaling of the Navier–Stokes application.
pub fn fig5(opts: &ScenarioOptions) -> WeakScalingTable {
    weak_scaling(App::paper_ns, opts)
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// MPI ranks.
    pub ranks: usize,
    /// cc2.8xlarge instances.
    pub nodes: usize,
    /// Per-iteration time, full-price single placement group.
    pub full_time: f64,
    /// Real cost per iteration of the full configuration.
    pub full_cost: f64,
    /// Per-iteration time, spot/on-demand mix over four placement groups.
    pub mix_time: f64,
    /// Estimated (all-spot-rate) cost per iteration of the mix.
    pub mix_est_cost: f64,
    /// Spot instances actually obtained for the mix fleet.
    pub mix_spot_nodes: usize,
}

/// **Table II**: EC2 full vs mix assemblies for the RD application.
pub fn table2(opts: &ScenarioOptions) -> Vec<Table2Row> {
    let ec2 = catalog::ec2();
    let mut rows = Vec::new();
    for ranks in opts.ladder() {
        let nodes = ec2.nodes_for(ranks);
        let base = RunRequest {
            platform: ec2.clone(),
            app: App::paper_rd(opts.steps),
            ranks,
            per_rank_axis: opts.per_rank_axis,
            seed: opts.seed,
            discard: opts.discard,
            threads_per_rank: 1,
            engine: EngineKind::default(),
            sched_workers: 0,
            fidelity: opts.fidelity,
            solver_variant: None,
            kernel_backend: None,
            topology_override: None,
            cost_override: None,
            resilience: None,
            trace: None,
        };
        let full = execute(&base).expect("EC2 runs the whole ladder");

        let fleet = acquire_fleet(
            nodes,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            opts.seed,
        );
        let mix_req = RunRequest {
            topology_override: Some(fleet.topology(16)),
            cost_override: Some(catalog::ec2_spot_cost()),
            ..base
        };
        let mix = execute(&mix_req).expect("EC2 mix runs the whole ladder");

        rows.push(Table2Row {
            ranks,
            nodes,
            full_time: full.phases.total,
            full_cost: full.cost_per_iteration,
            mix_time: mix.phases.total,
            mix_est_cost: mix.cost_per_iteration,
            mix_spot_nodes: fleet.spot_count(),
        });
    }
    rows
}

/// One platform's cost curve for Figures 6/7.
#[derive(Debug, Clone)]
pub struct CostCurve {
    /// Curve label ("puma", ..., "ec2 mix").
    pub label: String,
    /// `(ranks, dollars per iteration)`; infeasible sizes omitted.
    pub points: Vec<(usize, f64)>,
}

/// Builds the per-iteration cost figures from a weak-scaling table,
/// appending the "ec2 mix" cost-aware curve (real mixed-fleet prices, which
/// converge toward the full-price curve once spot capacity runs out — the
/// paper's observation).
pub fn cost_curves(table: &WeakScalingTable, opts: &ScenarioOptions) -> Vec<CostCurve> {
    let mut curves: Vec<CostCurve> = Vec::new();
    for platform in catalog::all_platforms() {
        let mut points = Vec::new();
        for row in &table.rows {
            if let Some(out) = table.outcome(row.ranks, &platform.key) {
                points.push((row.ranks, out.cost_per_iteration));
            }
        }
        curves.push(CostCurve {
            label: platform.key.clone(),
            points,
        });
    }
    // ec2 mix: the same times priced at the actually-acquired fleet mix.
    let ec2 = catalog::ec2();
    let mut points = Vec::new();
    for row in &table.rows {
        if let Some(out) = table.outcome(row.ranks, "ec2") {
            let fleet: FleetAllocation = acquire_fleet(
                ec2.nodes_for(row.ranks),
                FleetStrategy::SpotMix {
                    groups: 4,
                    max_bid: 1.0,
                },
                2.40,
                opts.seed,
            );
            points.push((row.ranks, fleet.cost(out.phases.total)));
        }
    }
    curves.push(CostCurve {
        label: "ec2 mix".into(),
        points,
    });
    curves
}

/// **Figure 6**: per-iteration cost of the RD weak-scaling runs.
pub fn fig6(opts: &ScenarioOptions) -> (WeakScalingTable, Vec<CostCurve>) {
    let table = fig4(opts);
    let curves = cost_curves(&table, opts);
    (table, curves)
}

/// **Figure 7**: per-iteration cost of the NS weak-scaling runs.
pub fn fig7(opts: &ScenarioOptions) -> (WeakScalingTable, Vec<CostCurve>) {
    let table = fig5(opts);
    let curves = cost_curves(&table, opts);
    (table, curves)
}

/// One rung of a strong-scaling study (an *extension* beyond the paper's
/// weak-scaling-only evaluation).
#[derive(Debug, Clone)]
pub struct StrongScalingPoint {
    /// Rank count.
    pub ranks: usize,
    /// Per-iteration phase times.
    pub phases: hetero_fem::phase::PhaseTimes,
    /// `t(1) / t(p)`.
    pub speedup: f64,
    /// `speedup / p`.
    pub efficiency: f64,
}

/// Strong scaling: a **fixed** `global_axis^3`-cell mesh solved with growing
/// rank counts on one platform (modeled engine). The paper only studies
/// weak scaling; this extension answers the complementary question its
/// Section VIII raises — how far extra cloud cores can push time-to-solution
/// for a fixed problem.
pub fn strong_scaling(
    platform: &PlatformSpec,
    app_for: impl Fn(usize) -> App,
    global_axis: usize,
    opts: &ScenarioOptions,
) -> Vec<StrongScalingPoint> {
    let mut out = Vec::new();
    let mut t1 = None;
    for ranks in opts.ladder() {
        if platform.check_limits(ranks, 0.0).is_err() {
            break; // capacity or launcher limit
        }
        let factors = hetero_partition::block::near_cubic_factors(ranks);
        if factors.2 > global_axis {
            break; // more rank columns than cells along an axis
        }
        let topo = platform.topology(ranks);
        let app = app_for(opts.steps);
        let run = crate::modeled::run_modeled_sized(
            &app,
            ranks,
            (global_axis, global_axis, global_axis),
            &topo,
            &platform.network,
            platform.compute,
            opts.seed,
        );
        if platform
            .check_limits(ranks, run.bytes_per_iteration)
            .is_err()
        {
            break; // adapter volume limit
        }
        let phases = hetero_fem::phase::summarize(&run.iterations, opts.discard)
            .expect("strong-scaling run produced iterations");
        let t1 = *t1.get_or_insert(phases.total);
        let speedup = t1 / phases.total;
        out.push(StrongScalingPoint {
            ranks,
            phases,
            speedup,
            efficiency: speedup / ranks as f64,
        });
    }
    out
}

/// **Table I** + Section VI: the capability matrix and per-platform
/// provisioning plans with effort totals.
pub struct Table1 {
    /// The four platform specs.
    pub platforms: Vec<PlatformSpec>,
    /// Provisioning plans, one per platform.
    pub plans: Vec<ProvisionPlan>,
}

/// Builds Table I's data.
pub fn table1() -> Table1 {
    let platforms = catalog::all_platforms();
    let plans = platforms
        .iter()
        .map(|p| plan(&environment_of(&p.key).expect("catalog platform")).expect("satisfiable"))
        .collect();
    Table1 { platforms, plans }
}

/// Knobs for the resilience sweep (the "Table III" the paper could not
/// produce: expected time and dollars of RD on EC2 spot-with-restart vs
/// on-demand, across checkpoint cadences).
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// Mesh size, rank ladder, step count, engine, and base seed.
    pub base: ScenarioOptions,
    /// Checkpoint cadences swept for the spot campaigns (`0` = never).
    pub cadences: Vec<usize>,
    /// Independent market/crash seeds averaged into each cell.
    pub seeds: usize,
    /// Restart budget per campaign.
    pub max_restarts: usize,
    /// Spot bid as a multiple of the spot base price.
    pub max_bid: f64,
}

impl ResilienceOptions {
    /// The full sweep: 600-step campaigns over the paper ladder, five
    /// cadences bracketing the Young/Daly optimum, eight seeds per cell.
    pub fn paper() -> Self {
        ResilienceOptions {
            base: ScenarioOptions {
                steps: 600,
                ..ScenarioOptions::paper()
            },
            cadences: vec![1, 4, 16, 64, 0],
            seeds: 8,
            max_restarts: 60,
            max_bid: 1.0,
        }
    }

    /// A cheap configuration for tests.
    pub fn smoke() -> Self {
        ResilienceOptions {
            base: ScenarioOptions {
                steps: 40,
                max_k: 2,
                fidelity: Fidelity::Modeled,
                ..ScenarioOptions::paper()
            },
            cadences: vec![1, 8, 0],
            seeds: 2,
            max_restarts: 20,
            max_bid: 1.0,
        }
    }
}

/// One campaign configuration's expected outcome, averaged over the seeds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table3Cell {
    /// Mean campaign wall-clock (waits + backoff + all attempts), seconds.
    pub expected_seconds: f64,
    /// Mean campaign cost, dollars.
    pub expected_dollars: f64,
    /// Fraction of seeds whose campaign finished within the restart budget.
    pub completion_rate: f64,
    /// Mean attempts per campaign.
    pub mean_attempts: f64,
    /// Mean re-executed (rolled-back) seconds per campaign.
    pub mean_lost_work: f64,
    /// Mean checkpoint I/O seconds per campaign.
    pub mean_checkpoint_seconds: f64,
}

/// One rung of the resilience table.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// MPI ranks.
    pub ranks: usize,
    /// cc2.8xlarge instances.
    pub nodes: usize,
    /// The on-demand baseline (hardware crashes only, restart from scratch).
    pub on_demand: Table3Cell,
    /// Spot-with-restart cells, one per checkpoint cadence.
    pub spot: Vec<(usize, Table3Cell)>,
}

impl Table3Row {
    /// The swept cadence with the lowest expected dollars (completed
    /// campaigns preferred over cheap failures).
    pub fn best_cadence(&self) -> usize {
        let best_rate = self
            .spot
            .iter()
            .map(|(_, c)| c.completion_rate)
            .fold(0.0, f64::max);
        self.spot
            .iter()
            .filter(|(_, c)| c.completion_rate >= best_rate)
            .min_by(|(_, a), (_, b)| {
                a.expected_dollars
                    .partial_cmp(&b.expected_dollars)
                    .expect("expected dollars are finite")
            })
            .map(|&(cadence, _)| cadence)
            .expect("at least one cadence was swept")
    }
}

fn resilience_cell(
    base: &RunRequest,
    spec: &ResilienceSpec,
    opts: &ResilienceOptions,
) -> Table3Cell {
    let mut cell = Table3Cell::default();
    for s in 0..opts.seeds {
        let req = RunRequest {
            seed: base.seed.wrapping_add(s as u64 * 7919),
            resilience: Some(spec.clone()),
            ..base.clone()
        };
        let out = execute_resilient(&req).expect("the caller stays within EC2 limits");
        cell.expected_seconds += out.stats.total_seconds;
        cell.expected_dollars += out.stats.total_dollars;
        cell.completion_rate += f64::from(out.stats.completed);
        cell.mean_attempts += out.stats.attempts as f64;
        cell.mean_lost_work += out.stats.lost_work_seconds;
        cell.mean_checkpoint_seconds += out.stats.checkpoint_seconds;
    }
    let n = opts.seeds.max(1) as f64;
    cell.expected_seconds /= n;
    cell.expected_dollars /= n;
    cell.completion_rate /= n;
    cell.mean_attempts /= n;
    cell.mean_lost_work /= n;
    cell.mean_checkpoint_seconds /= n;
    cell
}

/// **Table III** (extension): expected time/cost of the RD application on
/// EC2, on-demand vs spot-with-restart across checkpoint cadences.
pub fn table3(opts: &ResilienceOptions) -> Vec<Table3Row> {
    let ec2 = catalog::ec2();
    let mut rows = Vec::new();
    for ranks in opts.base.ladder() {
        let nodes = ec2.nodes_for(ranks);
        let base = RunRequest {
            platform: ec2.clone(),
            app: App::paper_rd(opts.base.steps),
            ranks,
            per_rank_axis: opts.base.per_rank_axis,
            seed: opts.base.seed,
            discard: opts.base.discard,
            threads_per_rank: 1,
            engine: EngineKind::default(),
            sched_workers: 0,
            fidelity: opts.base.fidelity,
            solver_variant: None,
            kernel_backend: None,
            topology_override: None,
            cost_override: None,
            resilience: None,
            trace: None,
        };
        // On-demand: only hardware crashes, no checkpoints (a crash restarts
        // the run from scratch, like the paper's unprotected LifeV jobs).
        let od_spec = ResilienceSpec {
            policy: ResiliencePolicy::restart(0, opts.max_restarts),
            ..ResilienceSpec::on_demand(&ec2)
        };
        let on_demand = resilience_cell(&base, &od_spec, opts);
        let spot = opts
            .cadences
            .iter()
            .map(|&cadence| {
                let spec = ResilienceSpec::spot_with_restart(
                    &ec2,
                    opts.max_bid,
                    cadence,
                    opts.max_restarts,
                );
                (cadence, resilience_cell(&base, &spec, opts))
            })
            .collect();
        rows.push(Table3Row {
            ranks,
            nodes,
            on_demand,
            spot,
        });
    }
    rows
}

/// The per-iteration phase times of one *what-if* cell: the application
/// driven through the modeled engine on an uncapped uniform topology —
/// enough nodes for the rank count even where the real platform tops out.
/// The question such a cell answers is what the platform's *interconnect*
/// would do, not whether its machine room has the nodes (capacity limits,
/// queue waits, and billing are all skipped).
pub fn uncapped_cell(
    platform: &PlatformSpec,
    app: &App,
    ranks: usize,
    opts: &ScenarioOptions,
) -> hetero_fem::phase::PhaseTimes {
    let topo = ClusterTopology::uniform(
        ranks.div_ceil(platform.cores_per_node),
        platform.cores_per_node,
    );
    let m = crate::modeled::run_modeled(
        app,
        ranks,
        opts.per_rank_axis,
        &topo,
        &platform.network,
        platform.compute,
        opts.seed,
    );
    hetero_fem::phase::summarize(&m.iterations, opts.discard)
        .expect("the modeled engine keeps at least one iteration past the discard")
}

/// One row of the solver-schedule comparison table (the "Communication
/// overlap" extension): RD solve time per iteration for the blocking,
/// overlapped, and pipelined schedules on one platform at one rank count.
#[derive(Debug, Clone)]
pub struct SolverVariantRow {
    /// Platform key.
    pub platform: String,
    /// MPI ranks.
    pub ranks: usize,
    /// Solve seconds per iteration: `[blocking, overlapped, pipelined]`.
    pub times: [f64; 3],
}

/// The solve-phase time of one solver-variant what-if cell (see
/// [`uncapped_cell`]).
pub fn solver_variant_cell(
    platform: &PlatformSpec,
    ranks: usize,
    variant: SolverVariant,
    opts: &ScenarioOptions,
) -> f64 {
    let app = App::paper_rd(opts.steps).with_solver_variant(variant);
    uncapped_cell(platform, &app, ranks, opts).solve
}

/// The solver-schedule comparison behind EXPERIMENTS.md's "Communication
/// overlap" table: every catalog platform crossed with `ranks_list` and the
/// three solver schedules.
pub fn solver_variants(ranks_list: &[usize], opts: &ScenarioOptions) -> Vec<SolverVariantRow> {
    let variants = [
        SolverVariant::Blocking,
        SolverVariant::Overlapped,
        SolverVariant::Pipelined,
    ];
    let mut rows = Vec::new();
    for p in catalog::all_platforms() {
        for &ranks in ranks_list {
            let times = variants.map(|v| solver_variant_cell(&p, ranks, v, opts));
            rows.push(SolverVariantRow {
                platform: p.key.clone(),
                ranks,
                times,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig4_truncates_where_the_paper_does() {
        // With max_k = 2 nothing truncates; use a modeled paper ladder.
        let opts = ScenarioOptions {
            steps: 2,
            discard: 0,
            ..ScenarioOptions::paper()
        };
        let t = fig4(&opts);
        assert_eq!(t.max_feasible_ranks("puma"), 125);
        assert_eq!(t.max_feasible_ranks("ellipse"), 512);
        assert_eq!(t.max_feasible_ranks("lagrange"), 343);
        assert_eq!(t.max_feasible_ranks("ec2"), 1000);
    }

    #[test]
    fn table2_shape_matches_the_paper() {
        let opts = ScenarioOptions {
            steps: 2,
            discard: 0,
            ..ScenarioOptions::paper()
        };
        let rows = table2(&opts);
        assert_eq!(rows.len(), 10);
        let nodes: Vec<usize> = rows.iter().map(|r| r.nodes).collect();
        assert_eq!(nodes, vec![1, 1, 2, 4, 8, 14, 22, 32, 46, 63]);
        for r in &rows {
            // Times statistically equal; est cost ~4.4x cheaper.
            let rel = (r.mix_time - r.full_time).abs() / r.full_time;
            assert!(
                rel < 0.25,
                "ranks {}: {} vs {}",
                r.ranks,
                r.full_time,
                r.mix_time
            );
            let ratio = r.full_cost / r.mix_est_cost * (r.mix_time / r.full_time);
            assert!(
                (3.5..=5.5).contains(&ratio),
                "ranks {}: cost ratio {ratio}",
                r.ranks
            );
        }
        // Large mixes never fill from spot alone.
        assert!(rows.last().unwrap().mix_spot_nodes < 63);
    }

    #[test]
    fn cost_curves_include_ec2_mix() {
        let opts = ScenarioOptions {
            steps: 2,
            discard: 0,
            max_k: 3,
            ..ScenarioOptions::paper()
        };
        let (_, curves) = fig6(&opts);
        let labels: Vec<&str> = curves.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["puma", "ellipse", "lagrange", "ec2", "ec2 mix"]
        );
        // Mix is never pricier than full ec2.
        let ec2 = &curves[3];
        let mix = &curves[4];
        for ((r1, full), (r2, m)) in ec2.points.iter().zip(&mix.points) {
            assert_eq!(r1, r2);
            assert!(m <= full, "ranks {r1}: mix {m} vs full {full}");
        }
    }

    #[test]
    fn strong_scaling_speeds_up_then_saturates() {
        use hetero_platform::catalog;
        let opts = ScenarioOptions {
            steps: 2,
            discard: 0,
            max_k: 8,
            ..ScenarioOptions::paper()
        };
        let points = strong_scaling(&catalog::lagrange(), App::paper_rd, 64, &opts);
        assert!(points.len() >= 4);
        assert_eq!(points[0].ranks, 1);
        assert!((points[0].efficiency - 1.0).abs() < 1e-12);
        // Speedup is real at small scale...
        assert!(
            points[1].speedup > 2.0,
            "speedup at 8 ranks: {}",
            points[1].speedup
        );
        // ...but efficiency decays monotonically-ish with rank count.
        assert!(points.last().unwrap().efficiency < points[1].efficiency);
        // On InfiniBand the mid-range stays efficient.
        let p64 = points.iter().find(|p| p.ranks == 64).unwrap();
        assert!(p64.efficiency > 0.5, "efficiency at 64: {}", p64.efficiency);
    }

    #[test]
    fn strong_scaling_is_worse_on_slow_fabrics() {
        use hetero_platform::catalog;
        let opts = ScenarioOptions {
            steps: 2,
            discard: 0,
            max_k: 5,
            ..ScenarioOptions::paper()
        };
        let ib = strong_scaling(&catalog::lagrange(), App::paper_rd, 40, &opts);
        let eth = strong_scaling(&catalog::ellipse(), App::paper_rd, 40, &opts);
        let eff = |pts: &[StrongScalingPoint], r: usize| {
            pts.iter().find(|p| p.ranks == r).unwrap().efficiency
        };
        assert!(
            eff(&ib, 64) > eff(&eth, 64),
            "ib {} vs eth {}",
            eff(&ib, 64),
            eff(&eth, 64)
        );
    }

    #[test]
    fn smoke_table3_prefers_spot_at_small_scale() {
        let opts = ResilienceOptions::smoke();
        let rows = table3(&opts);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.spot.len(), opts.cadences.len());
            assert!(row.on_demand.completion_rate > 0.0);
            // Small fleets fill from spot capacity and revocations are rare
            // price spikes: protected spot is cheaper in expectation.
            let best = row
                .spot
                .iter()
                .find(|&&(c, _)| c == row.best_cadence())
                .unwrap();
            assert!(
                best.1.expected_dollars < row.on_demand.expected_dollars,
                "ranks {}: spot {} vs od {}",
                row.ranks,
                best.1.expected_dollars,
                row.on_demand.expected_dollars
            );
        }
    }

    #[test]
    fn table3_is_deterministic() {
        let opts = ResilienceOptions {
            base: ScenarioOptions {
                max_k: 1,
                ..ResilienceOptions::smoke().base
            },
            seeds: 1,
            ..ResilienceOptions::smoke()
        };
        let a = table3(&opts);
        let b = table3(&opts);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn table1_covers_all_platforms() {
        let t = table1();
        assert_eq!(t.platforms.len(), 4);
        assert_eq!(t.plans.len(), 4);
        assert_eq!(t.plans[0].total_hours(), 0.0); // puma
        assert!(t.plans[3].total_hours() > t.plans[1].total_hours()); // ec2 > ellipse
    }
}
