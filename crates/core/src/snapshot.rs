//! Solution snapshots — the role HDF5 plays in the paper's stack ("for the
//! storage of large data on file").
//!
//! A [`Snapshot`] collects a distributed field (owned DoF values keyed by
//! global ids) onto rank 0, which can serialize it to disk and later
//! redistribute it onto a *different* partition — the checkpoint/restart
//! and postprocessing-export workflow of the paper's applications (their
//! step (iv) hands solutions to ParaView through exactly such files).

use hetero_fem::dofmap::DofMap;
use hetero_linalg::DistVector;
use hetero_simmpi::SimComm;
use serde::{Deserialize, Serialize};

/// One named scalar field captured at a simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSnapshot {
    /// Field name ("u", "velocity_x", "pressure"...).
    pub name: String,
    /// Global DoF count of the field's space.
    pub n_global: usize,
    /// Dense global values, indexed by global DoF id.
    pub values: Vec<f64>,
}

/// A collection of fields at one time/step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Application name.
    pub app: String,
    /// Simulation time.
    pub time: f64,
    /// Time-step index.
    pub step: usize,
    /// Captured fields.
    pub fields: Vec<FieldSnapshot>,
}

impl Snapshot {
    /// Creates an empty snapshot header.
    pub fn new(app: &str, time: f64, step: usize) -> Self {
        Snapshot {
            app: app.into(),
            time,
            step,
            fields: Vec::new(),
        }
    }

    /// Gathers a distributed field onto rank 0 and appends it (collective;
    /// non-root ranks append nothing). The transfer is charged to the
    /// simulated clock like any other communication.
    pub fn capture(&mut self, name: &str, dm: &DofMap, v: &DistVector, comm: &mut SimComm) {
        // Interleave (global id, value) pairs; rank 0 scatters them into a
        // dense array.
        let pairs: Vec<f64> = (0..dm.n_owned())
            .flat_map(|l| [dm.global_id(l) as f64, v.owned()[l]])
            .collect();
        if let Some(all) = comm.gather(0, &pairs) {
            let mut values = vec![0.0; dm.n_global()];
            let mut seen = 0usize;
            for rank_pairs in all {
                for chunk in rank_pairs.chunks_exact(2) {
                    values[chunk[0] as usize] = chunk[1];
                    seen += 1;
                }
            }
            assert_eq!(seen, dm.n_global(), "owned dofs must tile the global space");
            self.fields.push(FieldSnapshot {
                name: name.into(),
                n_global: dm.n_global(),
                values,
            });
        }
    }

    /// Looks a captured field up by name.
    pub fn field(&self, name: &str) -> Option<&FieldSnapshot> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Restores a field into a vector on a (possibly different) partition:
    /// rank 0 broadcasts the dense data; every rank fills its owned and
    /// ghost slots. Collective.
    pub fn restore(&self, name: &str, dm: &DofMap, comm: &mut SimComm) -> DistVector {
        let data = if comm.rank() == 0 {
            self.field(name)
                .unwrap_or_else(|| panic!("snapshot has no field {name}"))
                .values
                .clone()
        } else {
            Vec::new()
        };
        let data = comm.bcast(0, data);
        assert_eq!(data.len(), dm.n_global(), "snapshot space mismatch");
        let mut v = dm.new_vector();
        for l in 0..dm.n_local() {
            v.as_mut_slice()[l] = data[dm.global_id(l)];
        }
        v
    }

    /// Serializes to the on-disk format (pretty JSON; the role HDF5 plays
    /// for LifeV).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Dirty-block granularity of [`SnapshotDelta`]: values per block.
///
/// Small enough that a localized update (a few boundary dofs, one BDF
/// level) touches few blocks; large enough that the per-block index
/// overhead stays negligible against 256 x 8 bytes of payload.
pub const DELTA_BLOCK: usize = 256;

/// One field's dirty blocks relative to the base snapshot: block index plus
/// the block's values as raw IEEE-754 bit patterns. Bit patterns — not
/// floats — so the wire form is exact by construction and serializes
/// through fast integer formatting instead of shortest-roundtrip float
/// printing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDelta {
    /// Field name, matching the base snapshot's field.
    pub name: String,
    /// Dirty blocks: `(block_index, bits)` with `bits.len() <= DELTA_BLOCK`
    /// (the final block of a field may be short).
    pub blocks: Vec<(usize, Vec<u64>)>,
}

/// An incremental checkpoint: only the [`DELTA_BLOCK`]-sized blocks whose
/// bit patterns changed since the last committed snapshot, plus the new
/// header. `apply` onto that base reproduces the full snapshot bitwise, so
/// a chain `base, d1, d2, ...` replayed in order restores exactly the
/// state a monolithic checkpoint would have stored — at a fraction of the
/// serialization cost (see `bench_snapshot`'s `checkpoint_incremental`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Application name (matches the base).
    pub app: String,
    /// Simulation time of the new state.
    pub time: f64,
    /// Time-step index of the new state.
    pub step: usize,
    /// Time-step index of the base snapshot this delta applies to.
    pub base_step: usize,
    /// Per-field dirty blocks, in the base's field order.
    pub fields: Vec<FieldDelta>,
}

impl SnapshotDelta {
    /// Diffs `next` against `base`. Both snapshots must capture the same
    /// fields (name, order, and size): a checkpoint cadence always writes
    /// the same state set, so a shape change means the caller should have
    /// written a fresh full base instead.
    pub fn diff(base: &Snapshot, next: &Snapshot) -> SnapshotDelta {
        assert_eq!(base.app, next.app, "delta across applications");
        assert_eq!(
            base.fields.len(),
            next.fields.len(),
            "delta across different field sets"
        );
        let fields = base
            .fields
            .iter()
            .zip(&next.fields)
            .map(|(bf, nf)| {
                assert_eq!(bf.name, nf.name, "field order changed under the delta");
                assert_eq!(
                    bf.n_global, nf.n_global,
                    "field size changed under the delta"
                );
                let blocks = bf
                    .values
                    .chunks(DELTA_BLOCK)
                    .zip(nf.values.chunks(DELTA_BLOCK))
                    .enumerate()
                    .filter(|(_, (b, n))| {
                        b.iter()
                            .zip(n.iter())
                            .any(|(x, y)| x.to_bits() != y.to_bits())
                    })
                    .map(|(i, (_, n))| (i, n.iter().map(|x| x.to_bits()).collect()))
                    .collect();
                FieldDelta {
                    name: nf.name.clone(),
                    blocks,
                }
            })
            .collect();
        SnapshotDelta {
            app: next.app.clone(),
            time: next.time,
            step: next.step,
            base_step: base.step,
            fields,
        }
    }

    /// Applies the delta onto its base, reproducing the full snapshot the
    /// diff was taken against — bitwise.
    pub fn apply(&self, base: &Snapshot) -> Snapshot {
        assert_eq!(base.app, self.app, "delta across applications");
        assert_eq!(base.step, self.base_step, "delta applied to the wrong base");
        let mut out = base.clone();
        out.time = self.time;
        out.step = self.step;
        assert_eq!(out.fields.len(), self.fields.len(), "field set mismatch");
        for (f, d) in out.fields.iter_mut().zip(&self.fields) {
            assert_eq!(f.name, d.name, "field order mismatch");
            for (bi, bits) in &d.blocks {
                let start = bi * DELTA_BLOCK;
                let dst = &mut f.values[start..start + bits.len()];
                for (v, &b) in dst.iter_mut().zip(bits) {
                    *v = f64::from_bits(b);
                }
            }
        }
        out
    }

    /// Total dirty blocks across all fields.
    pub fn num_dirty_blocks(&self) -> usize {
        self.fields.iter().map(|f| f.blocks.len()).sum()
    }

    /// Serializes to the on-disk format (compact JSON of integer bit
    /// patterns — the cheap-to-format delta record appended after the
    /// full base).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("delta serializes")
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_fem::element::ElementOrder;
    use hetero_mesh::{DistributedMesh, StructuredHexMesh};
    use hetero_partition::{BlockPartitioner, Partitioner, RcbPartitioner};
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
    use std::sync::Arc;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 0,
        }
    }

    #[test]
    fn capture_then_restore_roundtrips_across_partitions() {
        // Capture on a block partition, restore on an RCB partition: the
        // field must survive the re-distribution exactly.
        let mesh = StructuredHexMesh::unit_cube(4);
        let block = Arc::new(BlockPartitioner.partition(&mesh, 4));
        let rcb = Arc::new(RcbPartitioner.partition(&mesh, 4));
        let f = |p: hetero_mesh::Point3| 1.0 + p.x + 2.0 * p.y * p.z;

        let results = run_spmd(cfg(4), move |comm| {
            let d1 = DistributedMesh::new(mesh.clone(), Arc::clone(&block), comm.rank(), 4);
            let m1 = DofMap::build(&d1, ElementOrder::Q2, comm);
            let v1 = m1.interpolate(f);
            let mut snap = Snapshot::new("RD", 1.25, 7);
            snap.capture("u", &m1, &v1, comm);

            // Ship the snapshot "to disk and back" on rank 0.
            let snap = if comm.rank() == 0 {
                Snapshot::from_json(&snap.to_json()).unwrap()
            } else {
                snap
            };

            let d2 = DistributedMesh::new(mesh.clone(), Arc::clone(&rcb), comm.rank(), 4);
            let m2 = DofMap::build(&d2, ElementOrder::Q2, comm);
            let v2 = snap.restore("u", &m2, comm);
            m2.nodal_linf_error(&v2, f, comm)
        });
        for r in &results {
            assert!(r.value < 1e-14, "restore error {}", r.value);
        }
    }

    #[test]
    fn snapshot_header_and_lookup() {
        let mut s = Snapshot::new("NS", 0.5, 3);
        assert_eq!(s.app, "NS");
        s.fields.push(FieldSnapshot {
            name: "p".into(),
            n_global: 8,
            values: vec![0.0; 8],
        });
        assert!(s.field("p").is_some());
        assert!(s.field("q").is_none());
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut s = Snapshot::new("RD", 2.0, 11);
        s.fields.push(FieldSnapshot {
            name: "u".into(),
            n_global: 3,
            values: vec![1.5, -2.25, 0.125],
        });
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Snapshot::from_json("{not json").is_err());
    }

    fn synthetic_snapshot(step: usize, n: usize, f: impl Fn(usize) -> f64) -> Snapshot {
        let mut s = Snapshot::new("RD", step as f64 * 0.25, step);
        s.fields.push(FieldSnapshot {
            name: "u".into(),
            n_global: n,
            values: (0..n).map(&f).collect(),
        });
        s.fields.push(FieldSnapshot {
            name: "w".into(),
            n_global: n,
            values: (0..n).map(|i| f(i) - 3.0).collect(),
        });
        s
    }

    #[test]
    fn delta_apply_reproduces_the_next_snapshot_bitwise() {
        // Spans multiple blocks including a short tail block; perturb a few
        // scattered values, among them a sign flip on zero.
        let n = 3 * DELTA_BLOCK + 17;
        let base = synthetic_snapshot(4, n, |i| (i as f64 * 0.37).sin());
        let mut next = synthetic_snapshot(5, n, |i| (i as f64 * 0.37).sin());
        next.fields[0].values[3] = -0.0;
        next.fields[0].values[2 * DELTA_BLOCK + 1] *= 1.0000001;
        next.fields[1].values[n - 1] = f64::MIN_POSITIVE / 2.0; // subnormal
        let delta = SnapshotDelta::diff(&base, &next);
        // Only the touched blocks travel: 2 in "u", 1 in "w".
        assert_eq!(delta.fields[0].blocks.len(), 2);
        assert_eq!(delta.fields[1].blocks.len(), 1);
        let restored = delta.apply(&base);
        assert_eq!(restored.step, 5);
        for (rf, nf) in restored.fields.iter().zip(&next.fields) {
            for (a, b) in rf.values.iter().zip(&nf.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn delta_json_roundtrip_is_lossless() {
        let n = DELTA_BLOCK + 5;
        let base = synthetic_snapshot(0, n, |i| i as f64);
        let next = synthetic_snapshot(1, n, |i| i as f64 + 0.125);
        let delta = SnapshotDelta::diff(&base, &next);
        let parsed = SnapshotDelta::from_json(&delta.to_json()).unwrap();
        assert_eq!(parsed, delta);
        let via_disk = parsed.apply(&base);
        assert_eq!(via_disk, next);
    }

    #[test]
    fn identical_snapshots_produce_an_empty_delta() {
        let base = synthetic_snapshot(2, 100, |i| 1.0 / (i + 1) as f64);
        let next = Snapshot {
            step: 3,
            ..base.clone()
        };
        let delta = SnapshotDelta::diff(&base, &next);
        assert_eq!(delta.num_dirty_blocks(), 0);
        assert_eq!(delta.apply(&base).step, 3);
    }

    #[test]
    #[should_panic(expected = "wrong base")]
    fn delta_refuses_the_wrong_base() {
        let base = synthetic_snapshot(2, 10, |i| i as f64);
        let next = synthetic_snapshot(3, 10, |i| i as f64 + 1.0);
        let delta = SnapshotDelta::diff(&base, &next);
        let other = synthetic_snapshot(7, 10, |i| i as f64);
        let _ = delta.apply(&other);
    }

    #[test]
    #[should_panic(expected = "no field missing")]
    fn restoring_a_missing_field_panics() {
        let mesh = StructuredHexMesh::unit_cube(2);
        let asg = Arc::new(vec![0usize; mesh.num_cells()]);
        run_spmd(cfg(1), move |comm| {
            let d = DistributedMesh::new(mesh.clone(), Arc::clone(&asg), 0, 1);
            let m = DofMap::build(&d, ElementOrder::Q1, comm);
            let s = Snapshot::new("RD", 0.0, 0);
            let _ = s.restore("missing", &m, comm);
        });
    }
}
