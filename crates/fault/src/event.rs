//! Fault events in virtual time.

use serde::{Deserialize, Serialize};

/// What went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The spot market revoked the fleet's spot capacity (price crossed the
    /// bid, or the capacity pool shrank below the fleet's spot share). All
    /// spot nodes of the attempt are lost at once.
    SpotRevocation {
        /// How many nodes the revocation removes.
        nodes_lost: usize,
    },
    /// A single node failed (hardware MTBF process).
    NodeCrash {
        /// Topology node index that died.
        node: usize,
    },
    /// The fabric is transiently degraded: messages in flight during the
    /// window are slowed by `factor`.
    NetworkDegradation {
        /// Window length, virtual seconds.
        duration: f64,
        /// Multiplicative slowdown on latency and drain (>= 1).
        factor: f64,
    },
}

impl FaultKind {
    /// Whether the event fells nodes (ends the attempt) rather than merely
    /// slowing it.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, FaultKind::NetworkDegradation { .. })
    }
}

/// One scheduled fault: when (virtual seconds from attempt start) and what.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time of the event, seconds from attempt start.
    pub time: f64,
    /// The fault itself.
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality_classification() {
        assert!(FaultKind::SpotRevocation { nodes_lost: 50 }.is_fatal());
        assert!(FaultKind::NodeCrash { node: 3 }.is_fatal());
        assert!(!FaultKind::NetworkDegradation {
            duration: 30.0,
            factor: 4.0
        }
        .is_fatal());
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = FaultEvent {
            time: 120.5,
            kind: FaultKind::NodeCrash { node: 7 },
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: FaultEvent = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
