//! # hetero-fault
//!
//! Deterministic virtual-time fault processes and checkpoint/restart
//! resilience policies for the `hetero-hpc` reproduction.
//!
//! The paper's spot-instance experience — "we never succeeded in
//! establishing a full 63-host configuration of spot request instances" —
//! is invisible to a failure-free simulator. This crate supplies the
//! missing half of the spot story:
//!
//! * **Fault processes** ([`process`]): per-platform event generators for
//!   spot revocations (a price/capacity-crossing model over the same
//!   bid machinery `platform::spot` uses), node crashes (per-platform
//!   MTBF), and transient network-degradation windows. All sampling is
//!   hash-derived from the experiment seed, exactly like network jitter:
//!   the same seed yields the same faults, bitwise, on any host.
//! * **Timelines** ([`timeline`]): the merged, time-sorted
//!   `(virtual_time, FaultEvent)` stream for one attempt, convertible to
//!   the [`hetero_simmpi::FaultPlan`] the engine injects.
//! * **Policies** ([`policy`]): what a run does about faults — checkpoint
//!   cadence, restart with re-acquisition under bounded exponential
//!   backoff, or fail-fast.
//! * **Replay** ([`replay`]): the analytic checkpoint→fault→rollback→
//!   resume accounting used by the modeled (paper-scale) engine, charging
//!   checkpoint I/O, lost work, backoff, and re-acquisition waits into
//!   expected time and dollars.
//!
//! The crate deliberately depends only on `hetero-simmpi` (for the plan
//! type and the hash RNG); `hetero-hpc` composes it with the platform
//! catalog and fleet machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod policy;
pub mod process;
pub mod replay;
pub mod timeline;

pub use event::{FaultEvent, FaultKind};
pub use policy::{Backoff, RecoveryMode, ResiliencePolicy};
pub use process::{CrashProcess, DegradationModel, FaultModel, SpotMarket};
pub use replay::{
    replay_campaign, replay_campaign_observed, AttemptEnv, CampaignEvent, RecoveryStats,
};
pub use timeline::FaultTimeline;
