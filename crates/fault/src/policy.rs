//! What a run does about faults: checkpoint cadence, restart policy, and
//! backoff.

use serde::{Deserialize, Serialize};

/// Bounded exponential backoff between restart attempts — the "do not
/// hammer the scheduler" delay, charged as wall-clock (and for clouds,
/// unbilled) time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retry, seconds.
    pub base_seconds: f64,
    /// Multiplier per subsequent retry.
    pub factor: f64,
    /// Upper bound on any single delay, seconds.
    pub cap_seconds: f64,
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based), seconds.
    pub fn delay(&self, attempt: usize) -> f64 {
        let mut d = self.base_seconds;
        for _ in 0..attempt {
            d *= self.factor;
            if d >= self.cap_seconds {
                return self.cap_seconds;
            }
        }
        d.min(self.cap_seconds)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_seconds: 30.0,
            factor: 2.0,
            cap_seconds: 1800.0,
        }
    }
}

/// What happens after a fault fells the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// Report the failure; no restart.
    FailFast,
    /// Re-acquire resources and resume from the last checkpoint, at most
    /// `max_restarts` times.
    Restart {
        /// Upper bound on restart attempts (the first attempt is free).
        max_restarts: usize,
    },
}

/// The complete resilience policy of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Checkpoint after every `checkpoint_every` completed steps
    /// (0 = never checkpoint; a restart then replays from step 0).
    pub checkpoint_every: usize,
    /// Sustained bandwidth of the checkpoint store, bytes/second — the
    /// shared filesystem every node writes through.
    pub io_bandwidth: f64,
    /// Restart or fail-fast.
    pub mode: RecoveryMode,
    /// Delay schedule between restart attempts.
    pub backoff: Backoff,
}

impl ResiliencePolicy {
    /// No checkpoints, no restarts: surface the first fault as the result.
    pub fn fail_fast() -> Self {
        ResiliencePolicy {
            checkpoint_every: 0,
            io_bandwidth: 150e6,
            mode: RecoveryMode::FailFast,
            backoff: Backoff::default(),
        }
    }

    /// Checkpoint every `checkpoint_every` steps and restart up to
    /// `max_restarts` times.
    pub fn restart(checkpoint_every: usize, max_restarts: usize) -> Self {
        ResiliencePolicy {
            checkpoint_every,
            io_bandwidth: 150e6,
            mode: RecoveryMode::Restart { max_restarts },
            backoff: Backoff::default(),
        }
    }

    /// The restart budget (0 under fail-fast).
    pub fn max_restarts(&self) -> usize {
        match self.mode {
            RecoveryMode::FailFast => 0,
            RecoveryMode::Restart { max_restarts } => max_restarts,
        }
    }

    /// Whether `completed_steps` (out of `total_steps`) is a checkpoint
    /// boundary. The final step is never checkpointed: the run is done.
    pub fn checkpoint_due(&self, completed_steps: usize, total_steps: usize) -> bool {
        self.checkpoint_every > 0
            && completed_steps > 0
            && completed_steps < total_steps
            && completed_steps.is_multiple_of(self.checkpoint_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff {
            base_seconds: 10.0,
            factor: 3.0,
            cap_seconds: 200.0,
        };
        assert_eq!(b.delay(0), 10.0);
        assert_eq!(b.delay(1), 30.0);
        assert_eq!(b.delay(2), 90.0);
        assert_eq!(b.delay(3), 200.0);
        assert_eq!(b.delay(50), 200.0); // no overflow from repeated multiply
    }

    #[test]
    fn checkpoint_due_skips_never_and_final() {
        let p = ResiliencePolicy::restart(4, 3);
        assert!(!p.checkpoint_due(0, 12));
        assert!(p.checkpoint_due(4, 12));
        assert!(!p.checkpoint_due(5, 12));
        assert!(p.checkpoint_due(8, 12));
        assert!(!p.checkpoint_due(12, 12)); // final step: nothing to resume
        let never = ResiliencePolicy::fail_fast();
        assert!(!never.checkpoint_due(4, 12));
    }

    #[test]
    fn max_restarts_by_mode() {
        assert_eq!(ResiliencePolicy::fail_fast().max_restarts(), 0);
        assert_eq!(ResiliencePolicy::restart(10, 7).max_restarts(), 7);
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = ResiliencePolicy::restart(16, 5);
        let s = serde_json::to_string(&p).unwrap();
        let back: ResiliencePolicy = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
