//! Per-platform fault processes, all sampled by hashing the experiment
//! seed — the same mechanism (and guarantee) as network jitter: identical
//! seeds give identical fault schedules on any host.

use hetero_simmpi::fault::SlowWindow;
use hetero_simmpi::rng::{hash_msg, to_unit};
use serde::{Deserialize, Serialize};

// Distinct salts keep the fault streams independent of each other and of
// the message-jitter stream (which hashes rank pairs).
const SALT_SPIKE: u64 = 0x5107_0001;
const SALT_FACTOR: u64 = 0x5107_0002;
const SALT_CAPACITY: u64 = 0x5107_0003;
const SALT_SUB_EPOCH: u64 = 0x5107_0004;
const SALT_CRASH: u64 = 0xC4A5_0001;
const SALT_DEGRADE_GAP: u64 = 0xDE64_0001;

/// Epochs scanned before a spot market is declared fault-free for the run.
/// At 15-minute epochs this covers ~5.7 simulated years.
const MAX_EPOCHS: u64 = 200_000;

/// The spot-market revocation process: per-epoch price and capacity
/// redraws, with a revocation the first epoch where the price crosses the
/// bid or the capacity pool shrinks below the fleet's spot share.
///
/// This is the dynamic counterpart of `platform::spot::acquire_fleet`,
/// which draws capacity once at acquisition time; the market keeps drawing
/// every `epoch_seconds` thereafter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMarket {
    /// Seconds between market redraws (EC2 repriced spot every few
    /// minutes; we default to 15-minute epochs).
    pub epoch_seconds: f64,
    /// Baseline spot price, $/node-hour.
    pub base_price: f64,
    /// The bid; a price above it revokes the fleet's spot share.
    pub max_bid: f64,
    /// Probability per epoch of a demand spike that sends the price past
    /// any reasonable bid.
    pub spike_probability: f64,
    /// Capacity pool redraw range (inclusive), in nodes — mirrors
    /// `platform::spot::SPOT_CAPACITY_RANGE`.
    pub capacity_range: (usize, usize),
}

impl SpotMarket {
    /// An EC2-like market: $0.54/node-h base (the paper's cc1.4xlarge spot
    /// price), 15-minute epochs, 6% spike chance per epoch, and the
    /// 40–60-node capacity pool the fleet acquisition draws from.
    pub fn ec2_like(max_bid: f64) -> Self {
        SpotMarket {
            epoch_seconds: 900.0,
            base_price: 0.54,
            max_bid,
            spike_probability: 0.06,
            capacity_range: (40, 60),
        }
    }

    /// The market price during `epoch`, $/node-hour. Spikes multiply the
    /// base by 2–8x; calm epochs wander in [0.65, 1.35]x.
    pub fn price_at(&self, epoch: u64, seed: u64) -> f64 {
        let spike = to_unit(hash_msg(seed, SALT_SPIKE, epoch, 0)) < self.spike_probability;
        let u = to_unit(hash_msg(seed, SALT_FACTOR, epoch, 0));
        let factor = if spike { 2.0 + 6.0 * u } else { 0.65 + 0.7 * u };
        self.base_price * factor
    }

    /// The spot capacity pool during `epoch`, nodes.
    pub fn capacity_at(&self, epoch: u64, seed: u64) -> usize {
        let (lo, hi) = self.capacity_range;
        lo + (to_unit(hash_msg(seed, SALT_CAPACITY, epoch, 0)) * (hi - lo + 1) as f64) as usize
    }

    /// Virtual time of the first revocation for a fleet holding
    /// `spot_nodes` spot nodes, or `None` if the market never revokes
    /// within the scan horizon (or the fleet holds no spot capacity).
    ///
    /// Epoch 0 is acquisition time (the fleet exists, so it survived it);
    /// scanning starts at epoch 1. The revocation lands at a hash-derived
    /// offset inside the epoch, so events do not pile up on epoch
    /// boundaries.
    pub fn first_revocation(&self, spot_nodes: usize, seed: u64) -> Option<f64> {
        if spot_nodes == 0 {
            return None;
        }
        (1..=MAX_EPOCHS).find_map(|epoch| {
            let revoked = self.price_at(epoch, seed) > self.max_bid
                || self.capacity_at(epoch, seed) < spot_nodes;
            revoked.then(|| {
                let frac = to_unit(hash_msg(seed, SALT_SUB_EPOCH, epoch, 0));
                (epoch as f64 + frac) * self.epoch_seconds
            })
        })
    }
}

/// Per-node hardware crash process: exponential time-to-failure with a
/// per-platform MTBF, independently hashed per node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashProcess {
    /// Mean time between failures of one node, hours.
    pub node_mtbf_hours: f64,
}

impl CrashProcess {
    /// The first crash time of `node`, virtual seconds (inverse-CDF sample
    /// of the exponential distribution).
    pub fn node_crash_time(&self, node: usize, seed: u64) -> f64 {
        let u = to_unit(hash_msg(seed, SALT_CRASH, node as u64, 0));
        -self.node_mtbf_hours * 3600.0 * (1.0 - u).ln()
    }

    /// The earliest crash among `nodes` nodes within `horizon` seconds:
    /// `(node, time)`, or `None` if every node outlives the horizon.
    pub fn first_crash(&self, nodes: usize, horizon: f64, seed: u64) -> Option<(usize, f64)> {
        (0..nodes)
            .map(|n| (n, self.node_crash_time(n, seed)))
            .filter(|&(_, t)| t < horizon)
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }
}

/// Transient fabric-degradation process: exponentially spaced windows of
/// fixed length during which message transfers are slowed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationModel {
    /// Mean seconds between window starts.
    pub mean_interval_seconds: f64,
    /// Window length, seconds.
    pub duration_seconds: f64,
    /// Multiplicative slowdown on latency and drain (>= 1).
    pub slowdown: f64,
}

impl DegradationModel {
    /// The degradation windows starting within `horizon` seconds.
    pub fn windows(&self, horizon: f64, seed: u64) -> Vec<SlowWindow> {
        let mut out = Vec::new();
        let mut t = 0.0;
        for k in 0u64.. {
            let u = to_unit(hash_msg(seed, SALT_DEGRADE_GAP, k, 0));
            t += -self.mean_interval_seconds * (1.0 - u).ln();
            if t >= horizon {
                break;
            }
            out.push(SlowWindow {
                start: t,
                end: t + self.duration_seconds,
                factor: self.slowdown,
            });
        }
        out
    }
}

/// A platform's complete fault environment: what can go wrong during one
/// attempt of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultModel {
    /// Hardware crash process (`None` = crash-free hardware).
    pub crashes: Option<CrashProcess>,
    /// Spot-market revocation process (`None` = no spot exposure).
    pub spot: Option<SpotMarket>,
    /// Transient network-degradation process.
    pub degradation: Option<DegradationModel>,
}

impl FaultModel {
    /// The fault-free environment.
    pub fn none() -> Self {
        FaultModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_is_deterministic_and_seed_sensitive() {
        let m = SpotMarket::ec2_like(1.0);
        assert_eq!(m.first_revocation(50, 7), m.first_revocation(50, 7));
        // Different seeds move the revocation (50 spot nodes revoke within
        // a couple of epochs with overwhelming probability, so both exist).
        let a = m.first_revocation(50, 1).unwrap();
        let b = m.first_revocation(50, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn bigger_spot_share_revokes_sooner() {
        let m = SpotMarket::ec2_like(1.0);
        for seed in 0..20u64 {
            let small = m.first_revocation(10, seed).unwrap_or(f64::INFINITY);
            let large = m.first_revocation(55, seed).unwrap_or(f64::INFINITY);
            assert!(large <= small, "seed {seed}: {large} vs {small}");
        }
    }

    #[test]
    fn no_spot_nodes_no_revocation() {
        assert_eq!(SpotMarket::ec2_like(1.0).first_revocation(0, 3), None);
    }

    #[test]
    fn capacity_crossing_fires_even_under_an_infinite_bid() {
        // A fleet needing more than the pool's lower bound is revoked by a
        // capacity redraw alone.
        let m = SpotMarket {
            max_bid: f64::INFINITY,
            ..SpotMarket::ec2_like(1.0)
        };
        assert!(m.first_revocation(55, 11).is_some());
        // A fleet within the guaranteed pool floor never sees a capacity
        // revocation, and the infinite bid absorbs every spike.
        assert_eq!(m.first_revocation(40, 11), None);
    }

    #[test]
    fn crash_times_are_exponential_ish() {
        let c = CrashProcess {
            node_mtbf_hours: 100.0,
        };
        let n = 4000;
        let mean = (0..n).map(|node| c.node_crash_time(node, 5)).sum::<f64>() / n as f64;
        let expected = 100.0 * 3600.0;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn first_crash_respects_horizon() {
        let c = CrashProcess {
            node_mtbf_hours: 1000.0,
        };
        assert_eq!(c.first_crash(8, 0.0, 3), None);
        let (node, t) = c.first_crash(8, f64::INFINITY, 3).unwrap();
        assert!(node < 8);
        assert!(t > 0.0);
        // Tightening the horizon to just above the winner keeps it.
        assert_eq!(c.first_crash(8, t * 1.001, 3), Some((node, t)));
    }

    #[test]
    fn degradation_windows_fit_the_horizon() {
        let d = DegradationModel {
            mean_interval_seconds: 600.0,
            duration_seconds: 30.0,
            slowdown: 4.0,
        };
        let ws = d.windows(7200.0, 9);
        assert!(!ws.is_empty());
        for w in &ws {
            assert!(w.start < 7200.0);
            assert_eq!(w.end, w.start + 30.0);
            assert_eq!(w.factor, 4.0);
        }
        // Sorted by construction.
        for pair in ws.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }
}
