//! Analytic checkpoint→fault→rollback→resume accounting.
//!
//! The numerical engine executes recovery for real (threads, snapshots,
//! re-partitioning); the modeled engine at paper scale replays the same
//! campaign analytically from the failure-free per-step times. Both charge
//! the same ingredients — checkpoint I/O, lost work, backoff, and
//! re-acquisition waits — so their reports agree on what resilience costs.

use crate::policy::ResiliencePolicy;
use serde::{Deserialize, Serialize};

/// One attempt's environment: when it dies (if at all), how long acquiring
/// its resources took, and what its fleet costs while running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptEnv {
    /// Virtual time (seconds from attempt start) at which a fatal fault
    /// fells the attempt; `None` = the attempt can run to completion.
    pub fatal_at: Option<f64>,
    /// Queue/boot/re-acquisition wait before the attempt starts, seconds
    /// (wall-clock, not billed).
    pub wait_seconds: f64,
    /// Fleet cost while the attempt runs, $/hour.
    pub hourly_cost: f64,
}

/// What a resilient campaign cost, in time and dollars.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Whether the campaign finished all steps within the restart budget.
    pub completed: bool,
    /// Attempts launched (1 = no restart was needed).
    pub attempts: usize,
    /// Fatal faults that fell an attempt.
    pub faults_injected: usize,
    /// Durable checkpoints written.
    pub checkpoints_written: usize,
    /// Total time spent writing durable checkpoints, seconds.
    pub checkpoint_seconds: f64,
    /// Work re-done because it post-dated the last durable checkpoint,
    /// seconds.
    pub lost_work_seconds: f64,
    /// Backoff delays between restarts, seconds.
    pub backoff_seconds: f64,
    /// Queue/boot/re-acquisition waits, seconds.
    pub wait_seconds: f64,
    /// Run time that produced durable forward progress, seconds.
    pub compute_seconds: f64,
    /// Expected wall-clock of the whole campaign, seconds.
    pub total_seconds: f64,
    /// Expected dollars billed (fleet-hours actually run).
    pub total_dollars: f64,
}

/// A campaign-level incident [`replay_campaign_observed`] reports as it
/// replays. Times are campaign-absolute seconds (acquisition waits and
/// backoff delays included), so observers can place the incidents on one
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignEvent {
    /// An attempt's compute begins (its acquisition wait has elapsed).
    AttemptStart {
        /// 0-based attempt index (0 = the initial launch).
        attempt: usize,
        /// Campaign-absolute start time, seconds.
        at: f64,
    },
    /// A durable checkpoint write finished.
    CheckpointCommit {
        /// Step the snapshot covers.
        step: usize,
        /// Campaign-absolute commit time, seconds.
        at: f64,
    },
    /// A fatal fault felled the running attempt.
    Fault {
        /// The felled attempt.
        attempt: usize,
        /// Campaign-absolute fault time, seconds.
        at: f64,
    },
    /// Work after the last durable checkpoint is discarded; the next
    /// attempt (if any) resumes from `to_step`.
    Rollback {
        /// Step the campaign rolls back to.
        to_step: usize,
        /// Virtual seconds of work the rollback discards.
        lost_seconds: f64,
        /// Campaign-absolute time, seconds.
        at: f64,
    },
    /// What the attempt's fleet billed for its run time (an expense
    /// delta, charged when the attempt ends).
    Billed {
        /// The billed attempt.
        attempt: usize,
        /// Dollars charged.
        dollars: f64,
        /// Campaign-absolute time, seconds.
        at: f64,
    },
}

/// Replays a campaign of `step_seconds` (the failure-free per-step times)
/// under `policy`, drawing each attempt's fate from `env_for(attempt)`.
///
/// Within an attempt the clock walks the remaining steps from the last
/// durable checkpoint; a fault lands mid-step or mid-checkpoint at its
/// exact virtual time (a checkpoint interrupted by the fault is not
/// durable). Billing covers run time only; waits and backoff are unbilled
/// wall-clock.
pub fn replay_campaign(
    step_seconds: &[f64],
    checkpoint_seconds: f64,
    policy: &ResiliencePolicy,
    env_for: impl FnMut(usize) -> AttemptEnv,
) -> RecoveryStats {
    replay_campaign_observed(step_seconds, checkpoint_seconds, policy, env_for, |_| {})
}

/// [`replay_campaign`] with a hook that observes every campaign-level
/// incident (attempt launches, durable checkpoint commits, faults,
/// rollbacks, billing) as the replay walks the timeline. The stats are
/// identical to the unobserved replay — observation never changes the
/// accounting.
pub fn replay_campaign_observed(
    step_seconds: &[f64],
    checkpoint_seconds: f64,
    policy: &ResiliencePolicy,
    mut env_for: impl FnMut(usize) -> AttemptEnv,
    mut observe: impl FnMut(CampaignEvent),
) -> RecoveryStats {
    let total_steps = step_seconds.len();
    let mut stats = RecoveryStats::default();
    let mut resume_step = 0usize;
    let max_restarts = policy.max_restarts();

    loop {
        let attempt = stats.attempts;
        let env = env_for(attempt);
        // Campaign-absolute time the attempt's compute starts: everything
        // booked so far plus this attempt's acquisition wait.
        let start_abs = stats.total_seconds + env.wait_seconds;
        observe(CampaignEvent::AttemptStart {
            attempt,
            at: start_abs,
        });
        stats.attempts += 1;
        stats.wait_seconds += env.wait_seconds;
        let fatal = env.fatal_at.map(|t| t.max(0.0));

        // Attempt-local clock; checkpoints are durable the instant their
        // write finishes.
        let mut t = 0.0f64;
        let mut last_ckpt_t = 0.0f64;
        let mut last_ckpt_step = resume_step;
        let mut died_at: Option<f64> = None;

        for (i, &s) in step_seconds.iter().enumerate().skip(resume_step) {
            if let Some(fa) = fatal {
                if t + s > fa {
                    died_at = Some(fa);
                    break;
                }
            }
            t += s;
            if policy.checkpoint_due(i + 1, total_steps) {
                if let Some(fa) = fatal {
                    if t + checkpoint_seconds > fa {
                        died_at = Some(fa);
                        break;
                    }
                }
                t += checkpoint_seconds;
                stats.checkpoints_written += 1;
                stats.checkpoint_seconds += checkpoint_seconds;
                last_ckpt_t = t;
                last_ckpt_step = i + 1;
                observe(CampaignEvent::CheckpointCommit {
                    step: i + 1,
                    at: start_abs + t,
                });
            }
        }

        match died_at {
            None => {
                stats.total_seconds += env.wait_seconds + t;
                stats.total_dollars += env.hourly_cost * t / 3600.0;
                stats.completed = true;
                observe(CampaignEvent::Billed {
                    attempt,
                    dollars: env.hourly_cost * t / 3600.0,
                    at: start_abs + t,
                });
                break;
            }
            Some(fa) => {
                stats.faults_injected += 1;
                stats.total_seconds += env.wait_seconds + fa;
                stats.total_dollars += env.hourly_cost * fa / 3600.0;
                stats.lost_work_seconds += fa - last_ckpt_t;
                resume_step = last_ckpt_step;
                observe(CampaignEvent::Fault {
                    attempt,
                    at: start_abs + fa,
                });
                observe(CampaignEvent::Rollback {
                    to_step: last_ckpt_step,
                    lost_seconds: fa - last_ckpt_t,
                    at: start_abs + fa,
                });
                observe(CampaignEvent::Billed {
                    attempt,
                    dollars: env.hourly_cost * fa / 3600.0,
                    at: start_abs + fa,
                });
                let restarts_used = stats.attempts - 1;
                if restarts_used >= max_restarts {
                    break;
                }
                let delay = policy.backoff.delay(restarts_used);
                stats.backoff_seconds += delay;
                stats.total_seconds += delay;
            }
        }
    }

    // Durable-progress time = everything run minus re-done work; the
    // checkpoint writes themselves are reported separately.
    let run_seconds = stats.total_seconds - stats.wait_seconds - stats.backoff_seconds;
    stats.compute_seconds = run_seconds - stats.lost_work_seconds - stats.checkpoint_seconds;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Backoff;

    fn steps(n: usize, each: f64) -> Vec<f64> {
        vec![each; n]
    }

    fn quiet(hourly: f64) -> impl FnMut(usize) -> AttemptEnv {
        move |_| AttemptEnv {
            fatal_at: None,
            wait_seconds: 60.0,
            hourly_cost: hourly,
        }
    }

    #[test]
    fn fault_free_campaign_is_just_steps_plus_checkpoints() {
        let policy = ResiliencePolicy::restart(4, 3);
        let s = replay_campaign(&steps(12, 10.0), 2.0, &policy, quiet(36.0));
        assert!(s.completed);
        assert_eq!(s.attempts, 1);
        assert_eq!(s.faults_injected, 0);
        assert_eq!(s.checkpoints_written, 2); // after steps 4 and 8; never after 12
        assert_eq!(s.total_seconds, 60.0 + 120.0 + 4.0);
        assert_eq!(s.compute_seconds, 120.0);
        assert!((s.total_dollars - 36.0 * 124.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn fail_fast_reports_one_attempt() {
        let policy = ResiliencePolicy::fail_fast();
        let s = replay_campaign(&steps(10, 10.0), 2.0, &policy, |_| AttemptEnv {
            fatal_at: Some(35.0),
            wait_seconds: 0.0,
            hourly_cost: 36.0,
        });
        assert!(!s.completed);
        assert_eq!(s.attempts, 1);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.lost_work_seconds, 35.0); // no checkpoints: all of it
        assert_eq!(s.total_seconds, 35.0);
    }

    #[test]
    fn restart_resumes_from_last_durable_checkpoint() {
        // 12 steps of 10 s, checkpoint every 4 (2 s each). First attempt
        // dies at t = 95: checkpoints at 42 and 84 exist, so 11 s are lost
        // (95 - 84) and the retry resumes from step 8.
        let policy = ResiliencePolicy {
            backoff: Backoff {
                base_seconds: 30.0,
                factor: 2.0,
                cap_seconds: 1800.0,
            },
            ..ResiliencePolicy::restart(4, 3)
        };
        let mut fates = vec![Some(95.0), None].into_iter();
        let s = replay_campaign(&steps(12, 10.0), 2.0, &policy, |_| AttemptEnv {
            fatal_at: fates.next().unwrap(),
            wait_seconds: 10.0,
            hourly_cost: 0.0,
        });
        assert!(s.completed);
        assert_eq!(s.attempts, 2);
        assert_eq!(s.lost_work_seconds, 95.0 - 84.0);
        assert_eq!(s.backoff_seconds, 30.0);
        // Retry runs steps 9..12 = 40 s, no further checkpoint boundaries
        // except step... 8 already done; step 12 is final. Wait: step 8 is
        // the resume point, so boundaries 12 is final -> no checkpoint.
        assert_eq!(s.total_seconds, 10.0 + 95.0 + 30.0 + 10.0 + 40.0);
        assert_eq!(s.checkpoints_written, 2);
    }

    #[test]
    fn restart_budget_bounds_the_campaign() {
        let policy = ResiliencePolicy::restart(0, 5); // never checkpoints
        let s = replay_campaign(&steps(10, 10.0), 2.0, &policy, |_| AttemptEnv {
            fatal_at: Some(50.0),
            wait_seconds: 0.0,
            hourly_cost: 36.0,
        });
        assert!(!s.completed);
        assert_eq!(s.attempts, 6); // 1 + 5 restarts, then gives up
        assert_eq!(s.faults_injected, 6);
        assert_eq!(s.lost_work_seconds, 300.0);
    }

    #[test]
    fn checkpoint_interrupted_by_the_fault_is_not_durable() {
        // Checkpoint after step 4 runs over t in [40, 45]; a fault at 43
        // interrupts it, so the retry replays from step 0.
        let policy = ResiliencePolicy::restart(4, 1);
        let mut fates = vec![Some(43.0), None].into_iter();
        let s = replay_campaign(&steps(8, 10.0), 5.0, &policy, |_| AttemptEnv {
            fatal_at: fates.next().unwrap(),
            wait_seconds: 0.0,
            hourly_cost: 0.0,
        });
        assert!(s.completed);
        assert_eq!(s.lost_work_seconds, 43.0);
        // Retry: 8 steps + one durable checkpoint after step 4.
        assert_eq!(s.checkpoints_written, 1);
    }

    #[test]
    fn observed_replay_reports_the_campaign_it_accounts() {
        // Same scenario as `restart_resumes_from_last_durable_checkpoint`:
        // one fault at t = 95, checkpoints after steps 4 and 8, one retry.
        let policy = ResiliencePolicy {
            backoff: Backoff {
                base_seconds: 30.0,
                factor: 2.0,
                cap_seconds: 1800.0,
            },
            ..ResiliencePolicy::restart(4, 3)
        };
        let mut fates = vec![Some(95.0), None].into_iter();
        let mut events = Vec::new();
        let s = replay_campaign_observed(
            &steps(12, 10.0),
            2.0,
            &policy,
            |_| AttemptEnv {
                fatal_at: fates.next().unwrap(),
                wait_seconds: 10.0,
                hourly_cost: 36.0,
            },
            |e| events.push(e),
        );
        assert!(s.completed);
        // Attempt 0 starts after its wait; attempt 1 after wait + fault
        // time + backoff + its own wait.
        assert!(matches!(
            events[0],
            CampaignEvent::AttemptStart { attempt: 0, at } if at == 10.0
        ));
        let ckpts: Vec<(usize, f64)> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::CheckpointCommit { step, at } => Some((*step, *at)),
                _ => None,
            })
            .collect();
        // Attempt 0 commits after steps 4 (t=42) and 8 (t=84); the retry
        // resumes from step 8 and hits no further cadence boundary.
        assert_eq!(ckpts, vec![(4, 52.0), (8, 94.0)]);
        assert!(events.iter().any(|e| matches!(
            e,
            CampaignEvent::Rollback { to_step: 8, lost_seconds, at }
                if *lost_seconds == 11.0 && *at == 105.0
        )));
        let billed: f64 = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::Billed { dollars, .. } => Some(*dollars),
                _ => None,
            })
            .sum();
        assert!((billed - s.total_dollars).abs() < 1e-12);
        // Observation must not change the accounting.
        let mut fates2 = vec![Some(95.0), None].into_iter();
        let unobserved = replay_campaign(&steps(12, 10.0), 2.0, &policy, |_| AttemptEnv {
            fatal_at: fates2.next().unwrap(),
            wait_seconds: 10.0,
            hourly_cost: 36.0,
        });
        assert_eq!(s, unobserved);
    }

    #[test]
    fn moderate_cadence_beats_extremes_under_recurring_faults() {
        // Faults every ~500 s on 100 steps of 10 s: never checkpointing
        // loses everything each time; checkpointing every step drowns in
        // I/O; a moderate cadence wins.
        let total_of = |every: usize| {
            let policy = ResiliencePolicy {
                backoff: Backoff {
                    base_seconds: 0.0,
                    factor: 1.0,
                    cap_seconds: 0.0,
                },
                ..ResiliencePolicy::restart(every, 400)
            };
            let s = replay_campaign(&steps(100, 10.0), 6.0, &policy, |k| AttemptEnv {
                fatal_at: Some(500.0 + 7.0 * k as f64),
                wait_seconds: 0.0,
                hourly_cost: 36.0,
            });
            assert!(s.completed, "cadence {every} must finish");
            s.total_seconds
        };
        let never = total_of(0);
        let every_step = total_of(1);
        let moderate = total_of(10);
        assert!(moderate < never, "{moderate} vs never {never}");
        assert!(
            moderate < every_step,
            "{moderate} vs every-step {every_step}"
        );
    }
}
