//! The merged fault stream for one attempt, and its conversion to the
//! engine-level injection plan.

use crate::event::{FaultEvent, FaultKind};
use crate::process::FaultModel;
use hetero_simmpi::fault::{FaultPlan, SlowWindow};
use serde::{Deserialize, Serialize};

/// Everything scheduled to go wrong during one attempt: a time-sorted
/// event stream plus the identity of the attempt's spot nodes (needed to
/// know *which* nodes a revocation removes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTimeline {
    /// Scheduled events, sorted by time (ties broken by generation order:
    /// revocation, crash, degradation).
    pub events: Vec<FaultEvent>,
    /// Topology node indices held as spot capacity this attempt.
    pub spot_nodes: Vec<usize>,
    /// Total nodes in the attempt's topology.
    pub num_nodes: usize,
}

impl FaultTimeline {
    /// Samples the timeline for one attempt: the first spot revocation
    /// (if the fleet holds spot capacity), the first node crash within
    /// `horizon`, and every degradation window starting before `horizon`.
    ///
    /// Only *first* fatal events are materialized — a second crash after
    /// the attempt is already dead cannot be observed, and each restart
    /// attempt samples a fresh timeline under a different seed.
    pub fn generate(
        model: &FaultModel,
        num_nodes: usize,
        spot_nodes: &[usize],
        horizon: f64,
        seed: u64,
    ) -> Self {
        let mut events = Vec::new();
        if let Some(market) = &model.spot {
            if let Some(t) = market.first_revocation(spot_nodes.len(), seed) {
                if t < horizon {
                    events.push(FaultEvent {
                        time: t,
                        kind: FaultKind::SpotRevocation {
                            nodes_lost: spot_nodes.len(),
                        },
                    });
                }
            }
        }
        if let Some(crashes) = &model.crashes {
            if let Some((node, t)) = crashes.first_crash(num_nodes, horizon, seed) {
                events.push(FaultEvent {
                    time: t,
                    kind: FaultKind::NodeCrash { node },
                });
            }
        }
        if let Some(deg) = &model.degradation {
            for w in deg.windows(horizon, seed) {
                events.push(FaultEvent {
                    time: w.start,
                    kind: FaultKind::NetworkDegradation {
                        duration: w.end - w.start,
                        factor: w.factor,
                    },
                });
            }
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        FaultTimeline {
            events,
            spot_nodes: spot_nodes.to_vec(),
            num_nodes,
        }
    }

    /// The earliest fatal event (node-felling), if any.
    pub fn first_fatal(&self) -> Option<&FaultEvent> {
        self.events.iter().find(|e| e.kind.is_fatal())
    }

    /// Lowers the timeline to the per-node injection plan the simmpi
    /// engine consumes: each node's earliest death time plus the
    /// degradation windows.
    pub fn to_plan(&self) -> FaultPlan {
        let mut down = vec![f64::INFINITY; self.num_nodes];
        let mut windows = Vec::new();
        for e in &self.events {
            match e.kind {
                FaultKind::SpotRevocation { .. } => {
                    for &n in &self.spot_nodes {
                        if n < down.len() {
                            down[n] = down[n].min(e.time);
                        }
                    }
                }
                FaultKind::NodeCrash { node } => {
                    if node < down.len() {
                        down[node] = down[node].min(e.time);
                    }
                }
                FaultKind::NetworkDegradation { duration, factor } => {
                    windows.push(SlowWindow {
                        start: e.time,
                        end: e.time + duration,
                        factor,
                    });
                }
            }
        }
        FaultPlan {
            node_down_at: down,
            slow_windows: windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{CrashProcess, DegradationModel, SpotMarket};

    fn model() -> FaultModel {
        FaultModel {
            crashes: Some(CrashProcess {
                node_mtbf_hours: 50.0,
            }),
            spot: Some(SpotMarket::ec2_like(1.0)),
            degradation: Some(DegradationModel {
                mean_interval_seconds: 3600.0,
                duration_seconds: 60.0,
                slowdown: 3.0,
            }),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = FaultTimeline::generate(&m, 8, &[4, 5, 6, 7], 1e6, 42);
        let b = FaultTimeline::generate(&m, 8, &[4, 5, 6, 7], 1e6, 42);
        assert_eq!(a, b);
        let c = FaultTimeline::generate(&m, 8, &[4, 5, 6, 7], 1e6, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_sorted_and_fatal_lookup_works() {
        let tl = FaultTimeline::generate(&model(), 8, &[4, 5, 6, 7], 1e7, 11);
        for pair in tl.events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        let fatal = tl
            .first_fatal()
            .expect("50 h MTBF over 10^7 s must fell a node");
        assert!(fatal.kind.is_fatal());
    }

    #[test]
    fn plan_lowers_revocations_to_spot_nodes_only() {
        let tl = FaultTimeline {
            events: vec![
                FaultEvent {
                    time: 100.0,
                    kind: FaultKind::SpotRevocation { nodes_lost: 2 },
                },
                FaultEvent {
                    time: 50.0,
                    kind: FaultKind::NodeCrash { node: 0 },
                },
                FaultEvent {
                    time: 10.0,
                    kind: FaultKind::NetworkDegradation {
                        duration: 5.0,
                        factor: 2.0,
                    },
                },
            ],
            spot_nodes: vec![2, 3],
            num_nodes: 4,
        };
        let plan = tl.to_plan();
        assert_eq!(plan.node_down_at, vec![50.0, f64::INFINITY, 100.0, 100.0]);
        assert_eq!(plan.slow_windows.len(), 1);
        assert_eq!(plan.earliest_down(4), Some((0, 50.0)));
    }

    #[test]
    fn empty_model_yields_trivial_plan() {
        let tl = FaultTimeline::generate(&FaultModel::none(), 8, &[], 1e9, 1);
        assert!(tl.events.is_empty());
        assert!(tl.first_fatal().is_none());
        assert!(tl.to_plan().is_trivial());
    }
}
