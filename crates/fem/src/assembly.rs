//! Distributed FEM assembly — the paper's step (ii).
//!
//! Each rank integrates over **its own cells only** and ships contributions
//! to rows owned by other ranks to their owners (Trilinos'
//! `GlobalAssemble`). This makes the assembly phase the most
//! communication-heavy of the three measured phases, matching the paper's
//! observation that "the assembly phase needs more data than preconditioning
//! which needs more data than the solver".
//!
//! Because the meshes are uniform bricks, the reference element matrices
//! are identical for every cell; [`ElementKernels`] precomputes them once.
//! The simulator is nevertheless charged the full per-cell quadrature cost
//! (see [`crate::profile`]), because a general-geometry code — like the
//! paper's — recomputes them per cell.
//!
//! The cell loop is parallel across the rank's installed rayon pool:
//! cells are integrated in fixed-size chunks into per-chunk staging
//! buffers that are merged in chunk order, so the assembled values are
//! bitwise identical to a serial walk at any thread count (DESIGN.md
//! "Threading model & determinism"). [`MatrixAssembly`] additionally
//! caches the symbolic structure (sparsity pattern + scatter permutation)
//! across time steps, so BDF2 stepping stops re-sorting triplets every
//! step.

use crate::dofmap::DofMap;
use crate::element::ElementOrder;
use crate::profile;
use crate::quadrature::{GaussRule3d, ShapeTable};
use hetero_linalg::csr::{SparsityPattern, TripletBuilder};
use hetero_linalg::{DistMatrix, DistVector};
use hetero_mesh::Point3;
use hetero_simmpi::{Payload, SimComm};
use std::sync::Arc;

const TAG_MAT_IDX: u64 = 9_600;
const TAG_MAT_VAL: u64 = 9_601;
const TAG_VEC_IDX: u64 = 9_602;
const TAG_VEC_VAL: u64 = 9_603;

/// Cells per parallel assembly chunk. Chunk boundaries depend only on the
/// cell count — never on the thread count — and per-chunk staging buffers
/// are merged in chunk order (= cell order), so the assembled triplet
/// sequence is identical to a serial cell walk at any pool size.
const ASSEMBLY_CHUNK_CELLS: usize = 32;

/// Precomputed element matrices for a uniform brick cell of size
/// `(hx, hy, hz)`, stored row-major `npe x npe` (or `npe_row x npe_col` for
/// mixed-space kernels).
#[derive(Debug, Clone)]
pub struct ElementKernels {
    /// `int phi_a phi_b` over one cell.
    pub mass: Vec<f64>,
    /// `int grad(phi_a) . grad(phi_b)`.
    pub stiffness: Vec<f64>,
    /// `int phi_a` (constant-forcing load vector).
    pub load: Vec<f64>,
    /// Nodes per element.
    pub npe: usize,
}

/// Builds the scalar kernels for `order` on a cell of size `h`.
pub fn scalar_kernels(order: ElementOrder, h: Point3) -> ElementKernels {
    let npe = order.nodes_per_element();
    let rule = GaussRule3d::new(order.quadrature_points_per_axis());
    let tab = ShapeTable::new(order, &rule, h);
    let vol = h.x * h.y * h.z;
    let mut mass = vec![0.0; npe * npe];
    let mut stiffness = vec![0.0; npe * npe];
    let mut load = vec![0.0; npe];
    for (qi, &w) in tab.weights.iter().enumerate() {
        let shapes = tab.shapes_at(qi);
        let grads = tab.grads_at(qi);
        for a in 0..npe {
            load[a] += w * vol * shapes[a];
            for b in 0..npe {
                mass[a * npe + b] += w * vol * shapes[a] * shapes[b];
                stiffness[a * npe + b] += w
                    * vol
                    * (grads[a][0] * grads[b][0]
                        + grads[a][1] * grads[b][1]
                        + grads[a][2] * grads[b][2]);
            }
        }
    }
    ElementKernels {
        mass,
        stiffness,
        load,
        npe,
    }
}

/// Builds the mixed gradient kernel `G_d[a][b] = int phi^row_a
/// d(phi^col_b)/dx_d` for direction `d`, `npe_row x npe_col` row-major.
/// Used for the pressure-gradient (row = velocity space, col = pressure
/// space) and divergence (transposed roles) operators.
pub fn gradient_kernel(
    row_order: ElementOrder,
    col_order: ElementOrder,
    dir: usize,
    h: Point3,
) -> Vec<f64> {
    assert!(dir < 3);
    let nr = row_order.nodes_per_element();
    let nc = col_order.nodes_per_element();
    let npts = row_order
        .quadrature_points_per_axis()
        .max(col_order.quadrature_points_per_axis());
    let rule = GaussRule3d::new(npts);
    let row_tab = ShapeTable::new(row_order, &rule, h);
    let col_tab = ShapeTable::new(col_order, &rule, h);
    let vol = h.x * h.y * h.z;
    let mut out = vec![0.0; nr * nc];
    for (qi, &w) in rule.weights.iter().enumerate() {
        for a in 0..nr {
            let na = row_tab.shape(qi, a);
            for b in 0..nc {
                // The tabulated gradient is already physical (scaled 1/h_d).
                out[a * nc + b] += w * vol * na * col_tab.grad(qi, b)[dir];
            }
        }
    }
    out
}

/// Per-chunk staging buffers produced by one parallel assembly task:
/// local triplet entries plus per-plan-neighbour remote contributions,
/// all in cell order within the chunk.
struct MatChunk {
    /// Owned-row triplet coordinates (structural pass only).
    coords: Vec<(usize, usize)>,
    /// Owned-row triplet values.
    vals: Vec<f64>,
    /// Per plan-neighbour `(global row, global col)` pairs (structural
    /// pass only).
    remote_idx: Vec<Vec<usize>>,
    /// Per plan-neighbour remote values.
    remote_vals: Vec<Vec<f64>>,
}

/// Integrates all owned cells in fixed-size chunks (parallel across the
/// installed rayon pool) and returns the per-chunk staging buffers in
/// chunk order. Concatenating them reproduces the serial cell walk
/// exactly, at any thread count.
fn integrate_matrix_chunks<F>(
    row_map: &DofMap,
    col_map: &DofMap,
    rank: usize,
    record_structure: bool,
    cell_matrix: &F,
) -> Vec<MatChunk>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let nr = row_map.order().nodes_per_element();
    let nc = col_map.order().nodes_per_element();
    let ncells = row_map.num_cells();
    let neighbors = &row_map.plan().neighbors;
    let nchunks = ncells.div_ceil(ASSEMBLY_CHUNK_CELLS);
    rayon::fixed::map_tasks(nchunks, |chunk| {
        let begin = chunk * ASSEMBLY_CHUNK_CELLS;
        let end = (begin + ASSEMBLY_CHUNK_CELLS).min(ncells);
        let mut local = vec![0.0; nr * nc];
        let mut out = MatChunk {
            coords: Vec::with_capacity(if record_structure {
                (end - begin) * nr * nc
            } else {
                0
            }),
            vals: Vec::with_capacity((end - begin) * nr * nc),
            remote_idx: vec![Vec::new(); neighbors.len()],
            remote_vals: vec![Vec::new(); neighbors.len()],
        };
        for i in begin..end {
            local.fill(0.0);
            cell_matrix(i, &mut local);
            let rows = row_map.cell_dofs(i);
            let cols = col_map.cell_dofs(i);
            for (a, &r_loc) in rows.iter().enumerate() {
                let owner = row_map.owner(r_loc);
                if owner == rank {
                    debug_assert!(r_loc < row_map.n_owned());
                    for (b, &c_loc) in cols.iter().enumerate() {
                        if record_structure {
                            out.coords.push((r_loc, c_loc));
                        }
                        out.vals.push(local[a * nc + b]);
                    }
                } else {
                    let nb = neighbors
                        .iter()
                        .position(|&n| n == owner)
                        .expect("contribution shipped to a non-neighbour rank");
                    let gr = row_map.global_id(r_loc);
                    for (b, &c_loc) in cols.iter().enumerate() {
                        if record_structure {
                            out.remote_idx[nb].push(gr);
                            out.remote_idx[nb].push(col_map.global_id(c_loc));
                        }
                        out.remote_vals[nb].push(local[a * nc + b]);
                    }
                }
            }
        }
        out
    })
}

/// The cached structure of a repeated matrix assembly: the sparsity
/// pattern (with its triplet scatter permutation) plus the structural
/// index batches shipped to each neighbour.
///
/// Immutable once built, so it can be `Arc`-shared across assemblies of
/// the same `(row_map, col_map)` pair — and, through the prepared-scenario
/// cache in `core`, across run instances that share a mesh partition.
pub struct AssemblyStructure {
    pattern: SparsityPattern,
    /// Per plan-neighbour `(global row, global col)` pairs sent each call.
    send_idx: Vec<Vec<usize>>,
    /// Per plan-neighbour received-value counts.
    recv_counts: Vec<usize>,
    ncells: usize,
}

/// A reusable distributed matrix assembly (Trilinos' `FECrsMatrix` reuse
/// idiom): the first [`MatrixAssembly::assemble`] call performs the full
/// symbolic build — cell walk, remote exchange, triplet sort — and caches
/// the sparsity pattern plus scatter permutation; later calls with the
/// same maps only re-integrate values and scatter them through the cached
/// pattern, skipping the per-step sort entirely.
///
/// The wire traffic (index and value batches per neighbour) and the
/// simulated compute charge are identical on every call, so simulated
/// phase times are unaffected by the caching; only host time improves.
/// The cached numeric path reproduces a from-scratch
/// [`TripletBuilder::build`] bitwise (see `hetero_linalg::csr`).
pub struct MatrixAssembly {
    charged_ops: usize,
    structure: Option<Arc<AssemblyStructure>>,
    /// The live operator of the in-place path ([`Self::assemble_in_place`]):
    /// kept across steps so refreshes reuse its value buffer, exchange plan,
    /// and interior/boundary row split instead of rebuilding them.
    retained: Option<DistMatrix>,
    /// Reusable triplet-value staging for the in-place path.
    tvals: Vec<f64>,
}

impl MatrixAssembly {
    /// A fresh assembly charging `charged_ops` operator terms per cell
    /// (see [`profile::assembly_matrix_work`]).
    pub fn new(charged_ops: usize) -> Self {
        MatrixAssembly {
            charged_ops,
            structure: None,
            retained: None,
            tvals: Vec::new(),
        }
    }

    /// An assembly preloaded with a structure built by an earlier assembly
    /// over the same maps: the first [`Self::assemble`] call takes the
    /// cached numeric path directly, skipping the symbolic build. The wire
    /// traffic and the simulated compute charge of the cached path are
    /// identical to a first call (see [`Self::assemble_cached`]), so
    /// preloading never changes a simulated clock — only host time.
    pub fn with_structure(charged_ops: usize, structure: Arc<AssemblyStructure>) -> Self {
        MatrixAssembly {
            charged_ops,
            structure: Some(structure),
            retained: None,
            tvals: Vec::new(),
        }
    }

    /// Whether the symbolic structure has been built yet.
    pub fn has_structure(&self) -> bool {
        self.structure.is_some()
    }

    /// The symbolic structure, shareable with other assemblies over the
    /// same maps (`None` before the first assemble call).
    pub fn shared_structure(&self) -> Option<Arc<AssemblyStructure>> {
        self.structure.clone()
    }

    /// Assembles a distributed matrix: `cell_matrix(i, out)` fills the
    /// `npe_row x npe_col` local matrix of the `i`-th owned cell
    /// (row-major). Collective: all ranks must call with consistent
    /// closures. Off-rank row contributions are shipped to their owners.
    ///
    /// Every call must use the same maps (same mesh partition); the
    /// structure cached by the first call is reused afterwards.
    pub fn assemble<F>(
        &mut self,
        row_map: &DofMap,
        col_map: &DofMap,
        comm: &mut SimComm,
        cell_matrix: F,
    ) -> DistMatrix
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        let rank = comm.rank();
        assert_eq!(
            row_map.num_cells(),
            col_map.num_cells(),
            "maps must share the mesh partition"
        );
        let ncells = row_map.num_cells();
        let first = self.structure.is_none();
        let chunks = integrate_matrix_chunks(row_map, col_map, rank, first, &cell_matrix);

        // Charge quadrature + scatter cost for the cells integrated.
        comm.compute(
            profile::assembly_matrix_work(row_map.order(), col_map.order(), self.charged_ops)
                * ncells as f64,
        );

        if first {
            self.assemble_first(row_map, col_map, comm, chunks)
        } else {
            self.assemble_cached(row_map, col_map, comm, chunks)
        }
    }

    /// First call: full symbolic + numeric build, caching the structure.
    fn assemble_first(
        &mut self,
        row_map: &DofMap,
        col_map: &DofMap,
        comm: &mut SimComm,
        chunks: Vec<MatChunk>,
    ) -> DistMatrix {
        let nr = row_map.order().nodes_per_element();
        let nc = col_map.order().nodes_per_element();
        let ncells = row_map.num_cells();
        let neighbors = &row_map.plan().neighbors;
        let mut triplets =
            TripletBuilder::with_capacity(row_map.n_owned(), col_map.n_local(), ncells * nr * nc);
        let mut send_idx: Vec<Vec<usize>> = vec![Vec::new(); neighbors.len()];
        let mut send_vals: Vec<Vec<f64>> = vec![Vec::new(); neighbors.len()];
        for mut ch in chunks {
            for (&(r, c), &v) in ch.coords.iter().zip(&ch.vals) {
                triplets.add(r, c, v);
            }
            for nb in 0..neighbors.len() {
                send_idx[nb].append(&mut ch.remote_idx[nb]);
                send_vals[nb].append(&mut ch.remote_vals[nb]);
            }
        }

        // Ship remote contributions: one (possibly empty) batch per plan
        // neighbour, both directions.
        for (i, &nb) in neighbors.iter().enumerate() {
            comm.send(nb, TAG_MAT_IDX, Payload::Usize(send_idx[i].clone()));
            comm.send(
                nb,
                TAG_MAT_VAL,
                Payload::F64(std::mem::take(&mut send_vals[i])),
            );
        }
        let mut recv_counts = Vec::with_capacity(neighbors.len());
        for &nb in neighbors {
            let idx = comm.recv_usize(nb, TAG_MAT_IDX);
            let vals = comm.recv_f64(nb, TAG_MAT_VAL);
            assert_eq!(idx.len(), 2 * vals.len());
            recv_counts.push(vals.len());
            for (pair, &v) in idx.chunks_exact(2).zip(&vals) {
                let r_loc = row_map
                    .local_id(pair[0])
                    .expect("shipped row must be locally known");
                debug_assert!(r_loc < row_map.n_owned(), "shipped row must be owned here");
                let c_loc = col_map
                    .local_id(pair[1])
                    .expect("shipped column must be in the local stencil");
                triplets.add(r_loc, c_loc, v);
            }
        }

        let pattern = triplets.symbolic();
        self.structure = Some(Arc::new(AssemblyStructure {
            pattern,
            send_idx,
            recv_counts,
            ncells,
        }));
        DistMatrix::rectangular(triplets.build(), col_map.plan().clone(), col_map.n_owned())
    }

    /// Later calls: numeric-only scatter through the cached pattern. The
    /// same index batches are still shipped alongside the values, so the
    /// wire traffic — and hence the simulated assembly time — matches the
    /// first call exactly.
    fn assemble_cached(
        &self,
        row_map: &DofMap,
        col_map: &DofMap,
        comm: &mut SimComm,
        chunks: Vec<MatChunk>,
    ) -> DistMatrix {
        let s = self
            .structure
            .as_ref()
            .expect("structure cached by the first call");
        assert_eq!(
            s.ncells,
            row_map.num_cells(),
            "cached assembly reused with a different mesh partition"
        );
        let neighbors = &row_map.plan().neighbors;
        let mut tvals: Vec<f64> = Vec::with_capacity(s.pattern.num_triplets());
        let mut send_vals: Vec<Vec<f64>> = vec![Vec::new(); neighbors.len()];
        for mut ch in chunks {
            tvals.append(&mut ch.vals);
            for (dst, src) in send_vals.iter_mut().zip(&mut ch.remote_vals) {
                dst.append(src);
            }
        }
        for (i, &nb) in neighbors.iter().enumerate() {
            comm.send(nb, TAG_MAT_IDX, Payload::Usize(s.send_idx[i].clone()));
            comm.send(
                nb,
                TAG_MAT_VAL,
                Payload::F64(std::mem::take(&mut send_vals[i])),
            );
        }
        for (i, &nb) in neighbors.iter().enumerate() {
            let idx = comm.recv_usize(nb, TAG_MAT_IDX);
            let vals = comm.recv_f64(nb, TAG_MAT_VAL);
            assert_eq!(idx.len(), 2 * vals.len());
            assert_eq!(
                vals.len(),
                s.recv_counts[i],
                "cached assembly structure changed between calls"
            );
            tvals.extend_from_slice(&vals);
        }
        assert_eq!(tvals.len(), s.pattern.num_triplets());
        DistMatrix::rectangular(
            s.pattern.numeric(&tvals),
            col_map.plan().clone(),
            col_map.n_owned(),
        )
    }

    /// The quadrature-fused `KernelBackend::MatrixFree` path: assembles
    /// into a matrix *retained across calls*, so solve-heavy steps skip
    /// the global CSR rebuild entirely — no value-array allocation, no
    /// pattern `row_ptr`/`col_idx` clones, no exchange-plan clone, no
    /// interior/boundary row rescan. Per-cell local matrices flow from the
    /// chunked integration straight into the live value buffer through the
    /// frozen sorted scatter ([`SparsityPattern::numeric_into`]).
    ///
    /// The cell chunking, the per-neighbour wire traffic, and the charged
    /// quadrature work are exactly those of [`Self::assemble`], and the
    /// scatter accumulates in the same sorted order, so the refreshed
    /// operator — and every simulated clock — is bitwise identical to the
    /// assembled path at any thread count. Callers may constrain the
    /// returned matrix freely (Dirichlet row/column surgery); the next
    /// refresh overwrites every stored value.
    pub fn assemble_in_place<F>(
        &mut self,
        row_map: &DofMap,
        col_map: &DofMap,
        comm: &mut SimComm,
        cell_matrix: F,
    ) -> &mut DistMatrix
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        let rank = comm.rank();
        assert_eq!(
            row_map.num_cells(),
            col_map.num_cells(),
            "maps must share the mesh partition"
        );
        let ncells = row_map.num_cells();
        let symbolic = self.structure.is_none();
        let chunks = integrate_matrix_chunks(row_map, col_map, rank, symbolic, &cell_matrix);

        comm.compute(
            profile::assembly_matrix_work(row_map.order(), col_map.order(), self.charged_ops)
                * ncells as f64,
        );

        if symbolic {
            let m = self.assemble_first(row_map, col_map, comm, chunks);
            self.retained = Some(m);
        } else if self.retained.is_none() {
            // Structure preloaded (shared from another assembly over the
            // same maps) but no live operator yet: take the cached numeric
            // path — traffic-identical to a first build — and retain it.
            let m = self.assemble_cached(row_map, col_map, comm, chunks);
            self.retained = Some(m);
        } else {
            let s = self
                .structure
                .as_ref()
                .expect("structure cached by the first call");
            assert_eq!(
                s.ncells,
                row_map.num_cells(),
                "cached assembly reused with a different mesh partition"
            );
            let neighbors = &row_map.plan().neighbors;
            self.tvals.clear();
            let mut send_vals: Vec<Vec<f64>> = vec![Vec::new(); neighbors.len()];
            for mut ch in chunks {
                self.tvals.append(&mut ch.vals);
                for (dst, src) in send_vals.iter_mut().zip(&mut ch.remote_vals) {
                    dst.append(src);
                }
            }
            for (i, &nb) in neighbors.iter().enumerate() {
                comm.send(nb, TAG_MAT_IDX, Payload::Usize(s.send_idx[i].clone()));
                comm.send(
                    nb,
                    TAG_MAT_VAL,
                    Payload::F64(std::mem::take(&mut send_vals[i])),
                );
            }
            for (i, &nb) in neighbors.iter().enumerate() {
                let idx = comm.recv_usize(nb, TAG_MAT_IDX);
                let vals = comm.recv_f64(nb, TAG_MAT_VAL);
                assert_eq!(idx.len(), 2 * vals.len());
                assert_eq!(
                    vals.len(),
                    s.recv_counts[i],
                    "cached assembly structure changed between calls"
                );
                self.tvals.extend_from_slice(&vals);
            }
            let m = self
                .retained
                .as_mut()
                .expect("retained operator exists after the first call");
            s.pattern
                .numeric_into(&self.tvals, m.local_mut().values_mut());
        }
        self.retained
            .as_mut()
            .expect("retained operator exists after the first call")
    }
}

/// Assembles a distributed matrix once — a [`MatrixAssembly`] without
/// structure reuse. See [`MatrixAssembly::assemble`] for the contract;
/// the simulated cost charged is the full per-cell quadrature work for
/// the operator class given by `charged_ops`.
pub fn assemble_matrix<F>(
    row_map: &DofMap,
    col_map: &DofMap,
    comm: &mut SimComm,
    charged_ops: usize,
    cell_matrix: F,
) -> DistMatrix
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    MatrixAssembly::new(charged_ops).assemble(row_map, col_map, comm, cell_matrix)
}

/// Assembles a distributed vector: `cell_vector(i, out)` fills the `npe`
/// local load vector of the `i`-th owned cell. Collective, like
/// [`assemble_matrix`], and chunk-parallel the same way: per-chunk
/// staging merged in cell order keeps the accumulation order — and the
/// floating-point result — identical at any thread count.
pub fn assemble_vector<F>(dm: &DofMap, comm: &mut SimComm, cell_vector: F) -> DistVector
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    struct VecChunk {
        rows: Vec<usize>,
        vals: Vec<f64>,
        remote_idx: Vec<Vec<usize>>,
        remote_vals: Vec<Vec<f64>>,
    }

    let rank = comm.rank();
    let npe = dm.order().nodes_per_element();
    let ncells = dm.num_cells();
    let neighbors = &dm.plan().neighbors;
    let nchunks = ncells.div_ceil(ASSEMBLY_CHUNK_CELLS);
    let chunks = rayon::fixed::map_tasks(nchunks, |chunk| {
        let begin = chunk * ASSEMBLY_CHUNK_CELLS;
        let end = (begin + ASSEMBLY_CHUNK_CELLS).min(ncells);
        let mut local = vec![0.0; npe];
        let mut out = VecChunk {
            rows: Vec::with_capacity((end - begin) * npe),
            vals: Vec::with_capacity((end - begin) * npe),
            remote_idx: vec![Vec::new(); neighbors.len()],
            remote_vals: vec![Vec::new(); neighbors.len()],
        };
        for i in begin..end {
            local.fill(0.0);
            cell_vector(i, &mut local);
            for (a, &r_loc) in dm.cell_dofs(i).iter().enumerate() {
                let owner = dm.owner(r_loc);
                if owner == rank {
                    out.rows.push(r_loc);
                    out.vals.push(local[a]);
                } else {
                    let nb = neighbors
                        .iter()
                        .position(|&n| n == owner)
                        .expect("contribution shipped to a non-neighbour rank");
                    out.remote_idx[nb].push(dm.global_id(r_loc));
                    out.remote_vals[nb].push(local[a]);
                }
            }
        }
        out
    });

    let mut out = dm.new_vector();
    let mut send_idx: Vec<Vec<usize>> = vec![Vec::new(); neighbors.len()];
    let mut send_vals: Vec<Vec<f64>> = vec![Vec::new(); neighbors.len()];
    for mut ch in chunks {
        for (&r, &v) in ch.rows.iter().zip(&ch.vals) {
            out.owned_mut()[r] += v;
        }
        for nb in 0..neighbors.len() {
            send_idx[nb].append(&mut ch.remote_idx[nb]);
            send_vals[nb].append(&mut ch.remote_vals[nb]);
        }
    }
    comm.compute(profile::assembly_vector_work(dm.order()) * ncells as f64);

    for ((&nb, idx), vals) in neighbors.iter().zip(send_idx).zip(send_vals) {
        comm.send(nb, TAG_VEC_IDX, Payload::Usize(idx));
        comm.send(nb, TAG_VEC_VAL, Payload::F64(vals));
    }
    for &nb in neighbors {
        let idx = comm.recv_usize(nb, TAG_VEC_IDX);
        let vals = comm.recv_f64(nb, TAG_VEC_VAL);
        for (&g, &v) in idx.iter().zip(&vals) {
            let r_loc = dm.local_id(g).expect("shipped row must be local");
            debug_assert!(r_loc < dm.n_owned());
            out.owned_mut()[r_loc] += v;
        }
    }
    out
}

/// Symmetrically imposes constrained values (Dirichlet conditions or a
/// pinned pressure dof): moves known values to the right-hand side, zeroes
/// the constrained rows *and columns*, places 1 on constrained diagonals,
/// and sets the right-hand side to the constrained value — preserving
/// symmetry for CG.
///
/// `mask`/`values` cover all local dofs (owned + ghost), so each rank can
/// eliminate ghost columns without communication.
pub fn constrain_system(
    a: &mut DistMatrix,
    b: &mut DistVector,
    mask: &[bool],
    values: &[f64],
    comm: &mut SimComm,
) {
    constrain_system_multi(a, &mut [(b, values)], mask, comm);
}

/// Imposes Dirichlet data on one matrix shared by several right-hand sides
/// (e.g. the three velocity components of a momentum solve, each with its
/// own boundary trace). All right-hand-side lifts are computed against the
/// *original* matrix before its constrained rows/columns are zeroed —
/// constraining the matrix first and fixing the other right-hand sides
/// afterwards would silently drop their boundary contributions.
pub fn constrain_system_multi(
    a: &mut DistMatrix,
    systems: &mut [(&mut DistVector, &[f64])],
    mask: &[bool],
    comm: &mut SimComm,
) {
    let n_owned = a.n_owned();
    let n_local = a.n_local();
    assert_eq!(mask.len(), n_local);
    for (b, values) in systems.iter() {
        assert_eq!(values.len(), n_local);
        assert_eq!(b.n_owned(), n_owned);
    }

    // Lift every right-hand side against the unmodified matrix.
    {
        let local = a.local();
        for (b, values) in systems.iter_mut() {
            for r in 0..n_owned {
                if mask[r] {
                    continue;
                }
                let (cols, vals) = local.row(r);
                let mut shift = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    if mask[c] {
                        shift += v * values[c];
                    }
                }
                b.owned_mut()[r] -= shift;
            }
        }
    }
    // Zero constrained rows/columns once; pin the right-hand sides.
    let nnz = a.nnz();
    let local = a.local_mut();
    for r in 0..n_owned {
        if mask[r] {
            local.set_dirichlet_row(r, 1.0);
            for (b, values) in systems.iter_mut() {
                b.owned_mut()[r] = values[r];
            }
        } else {
            let (cols, vals) = local.row_values_mut(r);
            for (i, &c) in cols.iter().enumerate() {
                if mask[c] {
                    vals[i] = 0.0;
                }
            }
        }
    }
    comm.compute(hetero_simmpi::Work::new(
        (systems.len() + 1) as f64 * nnz as f64,
        (systems.len() + 1) as f64 * 20.0 * nnz as f64,
    ));
}

/// Builds the Dirichlet mask/values for the whole domain boundary from `g`
/// and applies [`constrain_system`].
pub fn apply_dirichlet(
    a: &mut DistMatrix,
    b: &mut DistVector,
    dm: &DofMap,
    g: impl Fn(Point3) -> f64,
    comm: &mut SimComm,
) {
    let n_local = dm.n_local();
    let mut mask = vec![false; n_local];
    let mut values = vec![0.0; n_local];
    for l in 0..n_local {
        if dm.on_boundary(l) {
            mask[l] = true;
            values[l] = g(dm.coord(l));
        }
    }
    constrain_system(a, b, &mask, &values, comm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_linalg::precond::Identity;
    use hetero_linalg::solver::{cg, SolveOptions};
    use hetero_mesh::{DistributedMesh, StructuredHexMesh};
    use hetero_partition::{BlockPartitioner, Partitioner};
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
    use std::sync::Arc;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 0,
        }
    }

    fn run_fem<T: Send + 'static>(
        n: usize,
        p: usize,
        order: ElementOrder,
        f: impl Fn(&DofMap, &mut SimComm) -> T + Send + Sync,
    ) -> Vec<T> {
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, p));
        run_spmd(cfg(p), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), p);
            let dm = DofMap::build(&dmesh, order, comm);
            f(&dm, comm)
        })
        .into_iter()
        .map(|r| r.value)
        .collect()
    }

    #[test]
    fn element_mass_kernel_integrates_volume() {
        for order in [ElementOrder::Q1, ElementOrder::Q2] {
            let h = Point3::new(0.5, 0.25, 0.2);
            let k = scalar_kernels(order, h);
            // Sum of all mass entries = int 1*1 = cell volume.
            let total: f64 = k.mass.iter().sum();
            assert!((total - 0.025).abs() < 1e-14, "{order:?}: {total}");
            // Load vector sums to the volume too.
            let load: f64 = k.load.iter().sum();
            assert!((load - 0.025).abs() < 1e-14);
        }
    }

    #[test]
    fn element_stiffness_annihilates_constants() {
        for order in [ElementOrder::Q1, ElementOrder::Q2] {
            let k = scalar_kernels(order, Point3::splat(0.5));
            let npe = k.npe;
            for a in 0..npe {
                let row_sum: f64 = (0..npe).map(|b| k.stiffness[a * npe + b]).sum();
                assert!(row_sum.abs() < 1e-13, "{order:?} row {a}: {row_sum}");
            }
        }
    }

    #[test]
    fn gradient_kernel_exact_on_linear_pressure() {
        // For p = x, int phi_a dp/dx = int phi_a = load vector.
        let h = Point3::splat(0.5);
        let g0 = gradient_kernel(ElementOrder::Q2, ElementOrder::Q1, 0, h);
        let kern = scalar_kernels(ElementOrder::Q2, h);
        let nc = 8;
        // p nodal values for p = x on the reference cell corners.
        let p_vals: Vec<f64> = (0..nc)
            .map(|b| ElementOrder::Q1.node_point(b)[0] * h.x)
            .collect();
        for a in 0..27 {
            let v: f64 = (0..nc).map(|b| g0[a * nc + b] * p_vals[b]).sum();
            assert!(
                (v - kern.load[a]).abs() < 1e-14,
                "row {a}: {v} vs {}",
                kern.load[a]
            );
        }
    }

    #[test]
    fn assembled_mass_matrix_row_sums_to_volume() {
        // Global mass matrix rows sum (over all columns) to int phi_a; the
        // grand total over all ranks is the domain volume 1.
        for order in [ElementOrder::Q1, ElementOrder::Q2] {
            for p in [1usize, 4] {
                let r = run_fem(3, p, order, move |dm, comm| {
                    let mesh_h = Point3::splat(1.0 / 3.0);
                    let kern = scalar_kernels(order, mesh_h);
                    let m = assemble_matrix(dm, dm, comm, 1, |_i, out| {
                        out.copy_from_slice(&kern.mass);
                    });
                    let local_total: f64 = m.local().iter().map(|(_, _, v)| v).sum();
                    comm.allreduce_scalar(hetero_simmpi::collectives::ReduceOp::Sum, local_total)
                });
                for &total in &r {
                    assert!(
                        (total - 1.0).abs() < 1e-12,
                        "order {order:?} p = {p}: {total}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_assembly_matches_serial() {
        // Assemble the stiffness matrix on 1 and 8 ranks and compare the
        // action A*v on a deterministic vector via gather.
        let order = ElementOrder::Q1;
        let n = 4;
        let action = |p: usize| -> Vec<f64> {
            let mesh = StructuredHexMesh::unit_cube(n);
            let assignment = Arc::new(BlockPartitioner.partition(&mesh, p));
            let results = run_spmd(cfg(p), move |comm| {
                let dmesh =
                    DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), p);
                let dm = DofMap::build(&dmesh, order, comm);
                let kern = scalar_kernels(order, mesh.cell_size());
                let a = assemble_matrix(&dm, &dm, comm, 1, |_i, out| {
                    out.copy_from_slice(&kern.stiffness);
                });
                let mut x = dm.interpolate(|pt| (3.1 * pt.x).sin() + pt.y * pt.z);
                let mut y = a.new_vector();
                a.spmv(&mut x, &mut y, comm);
                // Return (global_id, value) pairs for owned dofs.
                let pairs: Vec<f64> = (0..dm.n_owned())
                    .flat_map(|l| [dm.global_id(l) as f64, y.owned()[l]])
                    .collect();
                pairs
            });
            let mut global = vec![0.0; (n + 1) * (n + 1) * (n + 1)];
            for r in results {
                for pair in r.value.chunks_exact(2) {
                    global[pair[0] as usize] = pair[1];
                }
            }
            global
        };
        let serial = action(1);
        let dist = action(8);
        for (i, (s, d)) in serial.iter().zip(&dist).enumerate() {
            assert!((s - d).abs() < 1e-12, "dof {i}: serial {s} vs dist {d}");
        }
    }

    #[test]
    fn assembled_vector_matches_serial() {
        let order = ElementOrder::Q2;
        let n = 2;
        let build = |p: usize| -> Vec<f64> {
            let mesh = StructuredHexMesh::unit_cube(n);
            let assignment = Arc::new(BlockPartitioner.partition(&mesh, p));
            let results = run_spmd(cfg(p), move |comm| {
                let dmesh =
                    DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), p);
                let dm = DofMap::build(&dmesh, order, comm);
                let kern = scalar_kernels(order, mesh.cell_size());
                let v = assemble_vector(&dm, comm, |_i, out| out.copy_from_slice(&kern.load));
                (0..dm.n_owned())
                    .flat_map(|l| [dm.global_id(l) as f64, v.owned()[l]])
                    .collect::<Vec<f64>>()
            });
            let mut global = vec![0.0; (2 * n + 1usize).pow(3)];
            for r in results {
                for pair in r.value.chunks_exact(2) {
                    global[pair[0] as usize] = pair[1];
                }
            }
            global
        };
        let serial = build(1);
        let dist = build(8);
        for (s, d) in serial.iter().zip(&dist) {
            assert!((s - d).abs() < 1e-13);
        }
        // Total load = volume.
        let total: f64 = serial.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_with_dirichlet_reproduces_linear_solution() {
        // -lap(u) = 0 with u = x on the boundary has exact solution u = x,
        // representable in Q1: the solve must reproduce it to tolerance.
        for p in [1usize, 8] {
            let r = run_fem(3, p, ElementOrder::Q1, move |dm, comm| {
                let h = Point3::splat(1.0 / 3.0);
                let kern = scalar_kernels(ElementOrder::Q1, h);
                let mut a = assemble_matrix(dm, dm, comm, 1, |_i, out| {
                    out.copy_from_slice(&kern.stiffness);
                });
                let mut b = dm.new_vector();
                apply_dirichlet(&mut a, &mut b, dm, |pt| pt.x, comm);
                let mut x = a.new_vector();
                let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
                assert!(stats.converged, "{stats:?}");
                dm.nodal_linf_error(&x, |pt| pt.x, comm)
            });
            for &err in &r {
                assert!(err < 1e-7, "p = {p}: err = {err}");
            }
        }
    }

    #[test]
    fn cached_assembly_matches_from_scratch_bitwise() {
        // After the structural first call, numeric-only rebuilds through the
        // cached pattern must reproduce a from-scratch build exactly.
        let order = ElementOrder::Q1;
        run_fem(3, 2, order, move |dm, comm| {
            let kern = scalar_kernels(order, Point3::splat(1.0 / 3.0));
            let mut asm = MatrixAssembly::new(2);
            let _warm = asm.assemble(dm, dm, comm, |_i, out| {
                for (o, (m, k)) in out.iter_mut().zip(kern.mass.iter().zip(&kern.stiffness)) {
                    *o = 3.0 * m + 0.5 * k;
                }
            });
            assert!(asm.has_structure());
            let cell = |_i: usize, out: &mut [f64]| {
                for (o, (m, k)) in out.iter_mut().zip(kern.mass.iter().zip(&kern.stiffness)) {
                    *o = 7.25 * m - 1.5 * k;
                }
            };
            let cached = asm.assemble(dm, dm, comm, cell);
            let scratch = assemble_matrix(dm, dm, comm, 2, cell);
            let (a, b) = (cached.local(), scratch.local());
            assert_eq!(a.nnz(), b.nnz());
            for ((r1, c1, v1), (r2, c2, v2)) in a.iter().zip(b.iter()) {
                assert_eq!((r1, c1, v1.to_bits()), (r2, c2, v2.to_bits()));
            }
        });
    }

    #[test]
    fn in_place_assembly_matches_from_scratch_bitwise() {
        // The matrix-free refresh path must reproduce a from-scratch build
        // exactly on every step, including the structural first one.
        let order = ElementOrder::Q1;
        run_fem(3, 2, order, move |dm, comm| {
            let kern = scalar_kernels(order, Point3::splat(1.0 / 3.0));
            let mut asm = MatrixAssembly::new(2);
            for step in 0..3 {
                let mc = 1.0 + 0.75 * step as f64;
                let kc = 0.5 - 0.125 * step as f64;
                let cell = |_i: usize, out: &mut [f64]| {
                    for (o, (m, k)) in out.iter_mut().zip(kern.mass.iter().zip(&kern.stiffness)) {
                        *o = mc * m + kc * k;
                    }
                };
                let scratch = assemble_matrix(dm, dm, comm, 2, cell);
                let retained = asm.assemble_in_place(dm, dm, comm, cell);
                let (a, b) = (retained.local(), scratch.local());
                assert_eq!(a.nnz(), b.nnz());
                for ((r1, c1, v1), (r2, c2, v2)) in a.iter().zip(b.iter()) {
                    assert_eq!(
                        (r1, c1, v1.to_bits()),
                        (r2, c2, v2.to_bits()),
                        "step {step}"
                    );
                }
            }
        });
    }

    #[test]
    fn in_place_assembly_is_bitwise_identical_across_thread_counts() {
        // The refresh path reuses the same fixed-chunk cell loop, so its
        // scattered values are a function of the data alone.
        let order = ElementOrder::Q1;
        let bits = |threads: usize| -> Vec<Vec<Vec<u64>>> {
            run_fem(4, 2, order, move |dm, comm| {
                let kern = scalar_kernels(order, Point3::splat(0.25));
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                pool.install(|| {
                    let mut asm = MatrixAssembly::new(2);
                    let mut out = Vec::new();
                    for step in 0..2 {
                        let mc = 2.0 + step as f64;
                        let a = asm.assemble_in_place(dm, dm, comm, |_i, vals| {
                            for (o, (m, k)) in
                                vals.iter_mut().zip(kern.mass.iter().zip(&kern.stiffness))
                            {
                                *o = mc * m + 0.25 * k;
                            }
                        });
                        out.push(
                            a.local()
                                .iter()
                                .map(|(_, _, x)| x.to_bits())
                                .collect::<Vec<u64>>(),
                        );
                    }
                    out
                })
            })
        };
        let serial = bits(1);
        for t in [2usize, 4] {
            assert_eq!(serial, bits(t), "threads = {t}");
        }
    }

    #[test]
    fn assembly_is_bitwise_identical_across_thread_counts() {
        // Chunk merging in cell order makes the parallel cell loop exactly
        // reproduce the serial walk, whatever the installed pool size.
        let order = ElementOrder::Q1;
        let bits = |threads: usize| -> Vec<Vec<u64>> {
            run_fem(5, 2, order, move |dm, comm| {
                let kern = scalar_kernels(order, Point3::splat(0.2));
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                pool.install(|| {
                    let a = assemble_matrix(dm, dm, comm, 1, |_i, out| {
                        out.copy_from_slice(&kern.stiffness);
                    });
                    let v = assemble_vector(dm, comm, |_i, out| {
                        out.copy_from_slice(&kern.load);
                    });
                    let mut out: Vec<u64> = a.local().iter().map(|(_, _, x)| x.to_bits()).collect();
                    out.extend(v.owned().iter().map(|x| x.to_bits()));
                    out
                })
            })
        };
        let serial = bits(1);
        for t in [2usize, 4] {
            assert_eq!(serial, bits(t), "threads = {t}");
        }
    }

    #[test]
    fn constrain_preserves_symmetry() {
        run_fem(2, 1, ElementOrder::Q1, |dm, comm| {
            let kern = scalar_kernels(ElementOrder::Q1, Point3::splat(0.5));
            let mut a = assemble_matrix(dm, dm, comm, 1, |_i, out| {
                out.copy_from_slice(&kern.stiffness);
            });
            let mut b = dm.new_vector();
            apply_dirichlet(&mut a, &mut b, dm, |p| p.norm_sq(), comm);
            // Check symmetry of the local (serial) matrix.
            let local = a.local();
            for (r, c, v) in local.iter() {
                assert!(
                    (local.get(c, r) - v).abs() < 1e-13,
                    "asymmetry at ({r}, {c})"
                );
            }
        });
    }
}
