//! Backward Difference Formula (BDF) time integrators.
//!
//! The paper discretizes the time derivative of both test cases with "a
//! second order Backward Difference Formula". For `du/dt ~ (alpha u^n -
//! sum_j c_j u^{n-j}) / dt`:
//!
//! * BDF1: `alpha = 1`, history `c = [1]`;
//! * BDF2: `alpha = 3/2`, history `c = [2, -1/2]`.
//!
//! Semi-implicit treatment of the Navier–Stokes convection uses the matching
//! extrapolation `u* = sum_j e_j u^{n-j}` (BDF2: `e = [2, -1]`), second-order
//! accurate.

use serde::{Deserialize, Serialize};

/// Order of the BDF scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BdfOrder {
    /// Backward Euler.
    One,
    /// Second-order BDF — the paper's choice.
    Two,
}

impl BdfOrder {
    /// Leading coefficient `alpha`.
    #[inline]
    pub fn alpha(self) -> f64 {
        match self {
            BdfOrder::One => 1.0,
            BdfOrder::Two => 1.5,
        }
    }

    /// History coefficients `c_j` for `u^{n-1}, u^{n-2}, ...`.
    #[inline]
    pub fn history(self) -> &'static [f64] {
        match self {
            BdfOrder::One => &[1.0],
            BdfOrder::Two => &[2.0, -0.5],
        }
    }

    /// Extrapolation coefficients `e_j` predicting `u^n` from the history.
    #[inline]
    pub fn extrapolation(self) -> &'static [f64] {
        match self {
            BdfOrder::One => &[1.0],
            BdfOrder::Two => &[2.0, -1.0],
        }
    }

    /// Number of history states required.
    #[inline]
    pub fn steps(self) -> usize {
        self.history().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BDF applied to u(t) must reproduce u'(t_n) exactly for polynomials up
    /// to the scheme's order.
    fn bdf_derivative(order: BdfOrder, u: impl Fn(f64) -> f64, t: f64, dt: f64) -> f64 {
        let mut v = order.alpha() * u(t);
        for (j, c) in order.history().iter().enumerate() {
            v -= c * u(t - (j as f64 + 1.0) * dt);
        }
        v / dt
    }

    #[test]
    fn bdf1_exact_for_linear() {
        let d = bdf_derivative(BdfOrder::One, |t| 3.0 * t + 1.0, 2.0, 0.1);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bdf2_exact_for_quadratic() {
        // This is what makes the paper's RD test (u ~ t^2) integrate exactly.
        let d = bdf_derivative(BdfOrder::Two, |t| t * t, 2.0, 0.1);
        assert!((d - 4.0).abs() < 1e-11);
        let d = bdf_derivative(BdfOrder::Two, |t| 5.0 * t * t - t + 3.0, 1.0, 0.05);
        assert!((d - 9.0).abs() < 1e-10);
    }

    #[test]
    fn bdf2_not_exact_for_cubic() {
        let d = bdf_derivative(BdfOrder::Two, |t| t * t * t, 1.0, 0.1);
        assert!((d - 3.0).abs() > 1e-4);
    }

    #[test]
    fn coefficients_are_consistent() {
        // alpha - sum(history) = 0 (derivative of a constant is 0).
        for order in [BdfOrder::One, BdfOrder::Two] {
            let s: f64 = order.history().iter().sum();
            assert!((order.alpha() - s).abs() < 1e-14);
            // Extrapolation reproduces constants.
            let e: f64 = order.extrapolation().iter().sum();
            assert!((e - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn extrapolation_exact_for_linear() {
        let u = |t: f64| 2.0 * t - 1.0;
        let (t, dt) = (3.0, 0.2);
        let e = BdfOrder::Two.extrapolation();
        let pred = e[0] * u(t - dt) + e[1] * u(t - 2.0 * dt);
        assert!((pred - u(t)).abs() < 1e-12);
    }
}
