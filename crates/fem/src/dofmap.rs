//! Distributed degree-of-freedom numbering and halo-exchange plans.
//!
//! An order-`q` discretization places DoFs on the global tensor lattice with
//! `q * n + 1` nodes per axis. Each rank:
//!
//! * **owns** the lattice nodes the partition's ownership rule assigns to it
//!   (see [`hetero_mesh::DistributedMesh::node_owner`]);
//! * holds **ghost** copies of (a) every DoF of its owned cells and (b)
//!   every DoF coupled through a cell to one of its owned DoFs — exactly the
//!   column space of its owned matrix rows (a Trilinos/Epetra column map);
//! * builds a symmetric [`ExchangePlan`] by requesting its ghost lists from
//!   their owners at setup time, the way production codes bootstrap their
//!   import/export structures.

use crate::element::ElementOrder;
use hetero_linalg::{DistVector, ExchangePlan};
use hetero_mesh::distributed::cells_touching_node;
use hetero_mesh::{DistributedMesh, Index3, Point3};
use hetero_simmpi::{Payload, SimComm, Work};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Tag used by the one-time ghost-request protocol.
const TAG_DOF_REQUEST: u64 = 9_500;

/// A rank's view of the distributed DoF space of one element order.
#[derive(Debug, Clone)]
pub struct DofMap {
    order: ElementOrder,
    dof_dims: (usize, usize, usize),
    /// This rank's id (used by assembly to split owned vs shipped rows).
    pub(crate) rank: usize,
    n_owned: usize,
    /// Local -> global dof ids: owned ascending, then ghosts ascending.
    global_ids: Vec<usize>,
    global_to_local: HashMap<usize, usize>,
    /// Local dof ids of each owned cell's nodes (stride = nodes/element),
    /// cell order matching `DistributedMesh::owned_cells`.
    cell_dofs: Vec<usize>,
    /// Owner rank per local dof.
    owners: Vec<usize>,
    /// Whether each local dof lies on the domain boundary.
    boundary: Vec<bool>,
    /// Physical coordinates per local dof.
    coords: Vec<Point3>,
    plan: ExchangePlan,
}

impl DofMap {
    /// Builds the DoF map collectively (all ranks of `comm` must call this
    /// with their own `dmesh` views and the same `order`).
    pub fn build(dmesh: &DistributedMesh, order: ElementOrder, comm: &mut SimComm) -> Self {
        let mesh = dmesh.mesh();
        let q = order.q();
        let (nx, ny, nz) = mesh.cell_dims();
        let dof_dims = (q * nx + 1, q * ny + 1, q * nz + 1);
        let npe = order.nodes_per_element();
        let rank = dmesh.rank();

        // Global dof ids of one cell, tensor order.
        let nodes_of_cell = |c: Index3| -> Vec<usize> {
            let mut out = Vec::with_capacity(npe);
            for dc in 0..=q {
                for db in 0..=q {
                    for da in 0..=q {
                        let node = Index3::new(q * c.i + da, q * c.j + db, q * c.k + dc);
                        out.push(node.linear(dof_dims));
                    }
                }
            }
            out
        };

        // 1. Owned dofs: nodes of owned cells whose owner is this rank.
        let mut owned: BTreeSet<usize> = BTreeSet::new();
        let mut cell_global: Vec<usize> = Vec::with_capacity(dmesh.owned_cells().len() * npe);
        for &cell in dmesh.owned_cells() {
            for g in nodes_of_cell(mesh.cell_index(cell)) {
                let node = Index3::from_linear(g, dof_dims);
                if dmesh.node_owner(q, node) == rank {
                    owned.insert(g);
                }
                cell_global.push(g);
            }
        }

        // 2. Local set: dofs of owned cells plus everything coupled to an
        //    owned dof (dofs of cells touching an owned dof).
        let mut local_set: BTreeSet<usize> = cell_global.iter().copied().collect();
        for &g in &owned {
            let node = Index3::from_linear(g, dof_dims);
            for cell in cells_touching_node(mesh.cell_dims(), q, node) {
                for h in nodes_of_cell(cell) {
                    local_set.insert(h);
                }
            }
        }

        // 3. Local numbering: owned ascending, then ghosts ascending.
        let ghosts: Vec<usize> = local_set.difference(&owned).copied().collect();
        let mut global_ids: Vec<usize> = owned.iter().copied().collect();
        let n_owned = global_ids.len();
        global_ids.extend(ghosts.iter().copied());
        let global_to_local: HashMap<usize, usize> = global_ids
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l))
            .collect();

        // 4. Per-dof metadata.
        let mut owners = Vec::with_capacity(global_ids.len());
        let mut boundary = Vec::with_capacity(global_ids.len());
        let mut coords = Vec::with_capacity(global_ids.len());
        let cell_size = mesh.cell_size();
        let lo = mesh.lo();
        for &g in &global_ids {
            let node = Index3::from_linear(g, dof_dims);
            owners.push(dmesh.node_owner(q, node));
            boundary.push(
                node.i == 0
                    || node.i + 1 == dof_dims.0
                    || node.j == 0
                    || node.j + 1 == dof_dims.1
                    || node.k == 0
                    || node.k + 1 == dof_dims.2,
            );
            coords.push(Point3::new(
                lo.x + cell_size.x * node.i as f64 / q as f64,
                lo.y + cell_size.y * node.j as f64 / q as f64,
                lo.z + cell_size.z * node.k as f64 / q as f64,
            ));
        }

        let cell_dofs: Vec<usize> = cell_global.iter().map(|g| global_to_local[g]).collect();

        // 5. Exchange plan via the request protocol.
        let mut requests: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (slot, &g) in global_ids.iter().enumerate().skip(n_owned) {
            requests.entry(owners[slot]).or_default().push(g);
        }
        // Everyone announces whom they request from.
        let my_targets: Vec<usize> = requests.keys().copied().collect();
        let all_targets = comm.allgather_usize(&my_targets);
        let requesters: Vec<usize> = all_targets
            .iter()
            .enumerate()
            .filter(|&(r, targets)| r != rank && targets.contains(&rank))
            .map(|(r, _)| r)
            .collect();
        // Send my wanted-lists; receive others' wanted-lists.
        for (&owner, wanted) in &requests {
            comm.send(owner, TAG_DOF_REQUEST, Payload::Usize(wanted.clone()));
        }
        let mut send_map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &req in &requesters {
            let wanted = comm.recv_usize(req, TAG_DOF_REQUEST);
            let locals: Vec<usize> = wanted
                .iter()
                .map(|g| {
                    let l = *global_to_local
                        .get(g)
                        .unwrap_or_else(|| panic!("rank {rank} asked for unknown dof {g}"));
                    assert!(l < n_owned, "rank {req} requested non-owned dof {g}");
                    l
                })
                .collect();
            send_map.insert(req, locals);
        }
        // Neighbours are the union of the ranks I pull ghosts from and the
        // ranks pulling from me (almost always the same set; one-sided
        // entries get an empty list on the other side).
        let neighbor_set: BTreeSet<usize> =
            requests.keys().chain(send_map.keys()).copied().collect();
        let neighbors: Vec<usize> = neighbor_set.into_iter().collect();
        let plan = ExchangePlan {
            neighbors: neighbors.clone(),
            send_indices: neighbors
                .iter()
                .map(|r| send_map.get(r).cloned().unwrap_or_default())
                .collect(),
            recv_indices: neighbors
                .iter()
                .map(|r| {
                    requests
                        .get(r)
                        .map(|gs| gs.iter().map(|g| global_to_local[g]).collect())
                        .unwrap_or_default()
                })
                .collect(),
        };
        plan.validate(n_owned, global_ids.len());

        // Charge the setup cost (sorting/hashing the local space).
        comm.compute(Work::new(
            20.0 * global_ids.len() as f64,
            64.0 * global_ids.len() as f64,
        ));

        DofMap {
            order,
            dof_dims,
            rank,
            n_owned,
            global_ids,
            global_to_local,
            cell_dofs,
            owners,
            boundary,
            coords,
            plan,
        }
    }

    /// Replays the collective side of [`Self::build`] against `comm` and
    /// returns the prepared map unchanged.
    ///
    /// A `DofMap` is a pure function of `(mesh, partition, order, rank)`,
    /// so a map built by an earlier run of the same scenario can be reused
    /// wholesale — but the build's request protocol (allgather of target
    /// owners, wanted-list sends/receives, setup compute charge) is part of
    /// the simulated clock and must still be driven. This method re-issues
    /// exactly those collective operations, reconstructed from the stored
    /// plan:
    ///
    /// * targets = plan neighbours with a non-empty receive list, ascending
    ///   (fresh build: `requests.keys()` of a `BTreeMap`);
    /// * the wanted-list sent to each owner is `recv_indices` mapped back
    ///   through `global_ids` (ghost ids ascend, preserving order);
    /// * requesters are recomputed from the live allgather exactly as the
    ///   fresh path does.
    ///
    /// Virtual time and wire traffic are therefore bit-identical to a
    /// fresh build; only the host-side construction (steps 1–4, which
    /// perform no communication) is skipped.
    pub fn replay_build(prepared: &Arc<DofMap>, comm: &mut SimComm) -> Arc<DofMap> {
        let dm = prepared.as_ref();
        let rank = comm.rank();
        assert_eq!(dm.rank, rank, "prepared DofMap replayed on a wrong rank");

        let mut my_targets: Vec<usize> = Vec::new();
        let mut wanted_lists: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &nb) in dm.plan.neighbors.iter().enumerate() {
            let recv = &dm.plan.recv_indices[i];
            if !recv.is_empty() {
                my_targets.push(nb);
                wanted_lists.push((nb, recv.iter().map(|&l| dm.global_ids[l]).collect()));
            }
        }
        let all_targets = comm.allgather_usize(&my_targets);
        let requesters: Vec<usize> = all_targets
            .iter()
            .enumerate()
            .filter(|&(r, targets)| r != rank && targets.contains(&rank))
            .map(|(r, _)| r)
            .collect();
        for (owner, wanted) in wanted_lists {
            comm.send(owner, TAG_DOF_REQUEST, Payload::Usize(wanted));
        }
        for &req in &requesters {
            let _ = comm.recv_usize(req, TAG_DOF_REQUEST);
        }
        comm.compute(Work::new(
            20.0 * dm.global_ids.len() as f64,
            64.0 * dm.global_ids.len() as f64,
        ));
        Arc::clone(prepared)
    }

    /// Element order of this space.
    #[inline]
    pub fn order(&self) -> ElementOrder {
        self.order
    }

    /// The rank whose view this is.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Owned DoF count on this rank.
    #[inline]
    pub fn n_owned(&self) -> usize {
        self.n_owned
    }

    /// Owned + ghost DoF count.
    #[inline]
    pub fn n_local(&self) -> usize {
        self.global_ids.len()
    }

    /// Global DoF count across all ranks.
    #[inline]
    pub fn n_global(&self) -> usize {
        self.dof_dims.0 * self.dof_dims.1 * self.dof_dims.2
    }

    /// Global lattice dimensions.
    #[inline]
    pub fn dof_dims(&self) -> (usize, usize, usize) {
        self.dof_dims
    }

    /// Global id of local dof `l`.
    #[inline]
    pub fn global_id(&self, l: usize) -> usize {
        self.global_ids[l]
    }

    /// Local id of global dof `g`, if present on this rank.
    #[inline]
    pub fn local_id(&self, g: usize) -> Option<usize> {
        self.global_to_local.get(&g).copied()
    }

    /// Owner rank of local dof `l`.
    #[inline]
    pub fn owner(&self, l: usize) -> usize {
        self.owners[l]
    }

    /// Whether local dof `l` lies on the domain boundary.
    #[inline]
    pub fn on_boundary(&self, l: usize) -> bool {
        self.boundary[l]
    }

    /// Coordinates of local dof `l`.
    #[inline]
    pub fn coord(&self, l: usize) -> Point3 {
        self.coords[l]
    }

    /// Local dof ids of the `i`-th owned cell (tensor order), `i` indexing
    /// `DistributedMesh::owned_cells`.
    #[inline]
    pub fn cell_dofs(&self, i: usize) -> &[usize] {
        let npe = self.order.nodes_per_element();
        &self.cell_dofs[i * npe..(i + 1) * npe]
    }

    /// Number of owned cells (rows of `cell_dofs`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cell_dofs.len() / self.order.nodes_per_element()
    }

    /// The halo-exchange plan for vectors on this space.
    #[inline]
    pub fn plan(&self) -> &ExchangePlan {
        &self.plan
    }

    /// A zero vector on this space (owned + ghosts).
    pub fn new_vector(&self) -> DistVector {
        DistVector::zeros(self.n_owned, self.n_local() - self.n_owned)
    }

    /// Nodal interpolation of `f` into a vector (owned and ghost slots are
    /// both filled directly — no communication needed).
    pub fn interpolate<F: Fn(Point3) -> f64>(&self, f: F) -> DistVector {
        let values: Vec<f64> = self.coords.iter().map(|&p| f(p)).collect();
        DistVector::from_values(values, self.n_owned)
    }

    /// Max-norm of `v - f` over owned dofs, reduced across ranks.
    pub fn nodal_linf_error<F: Fn(Point3) -> f64>(
        &self,
        v: &DistVector,
        f: F,
        comm: &mut SimComm,
    ) -> f64 {
        let local = v
            .owned()
            .iter()
            .zip(&self.coords)
            .map(|(&vi, &p)| (vi - f(p)).abs())
            .fold(0.0f64, f64::max);
        comm.allreduce_scalar(hetero_simmpi::collectives::ReduceOp::Max, local)
    }

    /// Discrete (lattice-weighted) L2 error `sqrt(sum (v - f)^2 / N)` over
    /// all owned dofs, reduced across ranks.
    pub fn nodal_l2_error<F: Fn(Point3) -> f64>(
        &self,
        v: &DistVector,
        f: F,
        comm: &mut SimComm,
    ) -> f64 {
        let local: f64 = v
            .owned()
            .iter()
            .zip(&self.coords)
            .map(|(&vi, &p)| (vi - f(p)).powi(2))
            .sum();
        let global = comm.allreduce_scalar(hetero_simmpi::collectives::ReduceOp::Sum, local);
        (global / self.n_global() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mesh::StructuredHexMesh;
    use hetero_partition::{BlockPartitioner, Partitioner};
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
    use std::sync::Arc;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 0,
        }
    }

    fn with_dofmaps<T: Send + 'static>(
        n: usize,
        p: usize,
        order: ElementOrder,
        f: impl Fn(&DofMap, &mut SimComm) -> T + Send + Sync,
    ) -> Vec<T> {
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, p));
        let results = run_spmd(cfg(p), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), p);
            let dm = DofMap::build(&dmesh, order, comm);
            f(&dm, comm)
        });
        results.into_iter().map(|r| r.value).collect()
    }

    #[test]
    fn owned_dofs_partition_global_space() {
        for order in [ElementOrder::Q1, ElementOrder::Q2] {
            for p in [1usize, 2, 4, 8] {
                let owned = with_dofmaps(4, p, order, |dm, _| {
                    (
                        dm.n_owned(),
                        dm.n_global(),
                        (0..dm.n_owned())
                            .map(|l| dm.global_id(l))
                            .collect::<Vec<_>>(),
                    )
                });
                let total: usize = owned.iter().map(|(n, _, _)| n).sum();
                assert_eq!(total, owned[0].1, "order {order:?} p = {p}");
                // No dof owned twice.
                let mut all: Vec<usize> =
                    owned.iter().flat_map(|(_, _, ids)| ids.clone()).collect();
                all.sort_unstable();
                all.dedup();
                assert_eq!(all.len(), owned[0].1);
            }
        }
    }

    #[test]
    fn q1_and_q2_global_counts() {
        let q1 = with_dofmaps(3, 1, ElementOrder::Q1, |dm, _| dm.n_global());
        assert_eq!(q1[0], 64); // 4^3
        let q2 = with_dofmaps(3, 1, ElementOrder::Q2, |dm, _| dm.n_global());
        assert_eq!(q2[0], 343); // 7^3
    }

    #[test]
    fn serial_map_has_no_ghosts() {
        let r = with_dofmaps(3, 1, ElementOrder::Q2, |dm, _| {
            (dm.n_owned(), dm.n_local(), dm.plan().neighbors.len())
        });
        assert_eq!(r[0].0, r[0].1);
        assert_eq!(r[0].2, 0);
    }

    #[test]
    fn cell_dofs_are_local_and_complete() {
        let r = with_dofmaps(4, 8, ElementOrder::Q2, |dm, _| {
            let npe = dm.order().nodes_per_element();
            let mut ok = true;
            for i in 0..dm.num_cells() {
                let dofs = dm.cell_dofs(i);
                ok &= dofs.len() == npe;
                ok &= dofs.iter().all(|&d| d < dm.n_local());
            }
            ok
        });
        assert!(r.iter().all(|&ok| ok));
    }

    #[test]
    fn ghost_exchange_delivers_owner_values() {
        // Fill each dof with its global id (owned only), exchange, and
        // check ghosts received the right values.
        for order in [ElementOrder::Q1, ElementOrder::Q2] {
            let r = with_dofmaps(4, 8, order, move |dm, comm| {
                let mut v = dm.new_vector();
                for l in 0..dm.n_owned() {
                    v.owned_mut()[l] = dm.global_id(l) as f64;
                }
                v.update_ghosts(dm.plan(), comm);
                let mut errors = 0;
                for l in dm.n_owned()..dm.n_local() {
                    if v.as_slice()[l] != dm.global_id(l) as f64 {
                        errors += 1;
                    }
                }
                errors
            });
            assert!(r.iter().all(|&e| e == 0), "order {order:?}");
        }
    }

    #[test]
    fn interpolation_is_exact_at_nodes() {
        let r = with_dofmaps(3, 8, ElementOrder::Q2, |dm, comm| {
            let v = dm.interpolate(|p| p.x + 2.0 * p.y - p.z);
            dm.nodal_linf_error(&v, |p| p.x + 2.0 * p.y - p.z, comm)
        });
        assert!(r.iter().all(|&e| e < 1e-14));
    }

    #[test]
    fn boundary_flags_match_geometry() {
        let r = with_dofmaps(3, 8, ElementOrder::Q1, |dm, _| {
            (0..dm.n_local()).all(|l| {
                let p = dm.coord(l);
                let on_geom = [p.x, p.y, p.z]
                    .iter()
                    .any(|&c| c.abs() < 1e-12 || (c - 1.0).abs() < 1e-12);
                on_geom == dm.on_boundary(l)
            })
        });
        assert!(r.iter().all(|&ok| ok));
    }

    #[test]
    fn l2_error_of_interpolant_is_zero() {
        let r = with_dofmaps(2, 2, ElementOrder::Q1, |dm, comm| {
            let v = dm.interpolate(|p| p.norm_sq());
            dm.nodal_l2_error(&v, |p| p.norm_sq(), comm)
        });
        assert!(r.iter().all(|&e| e < 1e-14));
    }

    #[test]
    fn neighbor_plans_are_symmetric_in_size() {
        let r = with_dofmaps(4, 8, ElementOrder::Q1, |dm, _| {
            dm.plan()
                .neighbors
                .iter()
                .enumerate()
                .map(|(i, &nb)| {
                    (
                        nb,
                        dm.plan().send_indices[i].len(),
                        dm.plan().recv_indices[i].len(),
                    )
                })
                .collect::<Vec<_>>()
        });
        // For every (a -> b, send s), the matching (b -> a) entry has recv s.
        for (a, plan) in r.iter().enumerate() {
            for &(b, s, rx) in plan {
                let back = r[b].iter().find(|&&(t, _, _)| t == a).expect("symmetric");
                assert_eq!(back.2, s, "send {a}->{b}");
                assert_eq!(back.1, rx, "recv {a}<-{b}");
            }
        }
    }
}
