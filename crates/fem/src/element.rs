//! Tensor-product hexahedral reference elements (Q1 and Q2).
//!
//! The reference cell is the unit cube `[0,1]^3`. An order-`q` element has
//! `(q+1)^3` nodes on the uniform tensor lattice; node `(a, b, c)` has local
//! index `a + (q+1) (b + (q+1) c)`, matching the global lattice ordering
//! used by [`crate::dofmap`].

use serde::{Deserialize, Serialize};

/// Polynomial order of the element space. The paper's applications use
/// "the FEM of order 2" for the RD unknown and the velocity, and order 1 for
/// the pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementOrder {
    /// Trilinear (8-node) hexahedron.
    Q1,
    /// Triquadratic (27-node) hexahedron.
    Q2,
}

impl ElementOrder {
    /// The lattice order `q` (nodes per axis minus one).
    #[inline]
    pub fn q(self) -> usize {
        match self {
            ElementOrder::Q1 => 1,
            ElementOrder::Q2 => 2,
        }
    }

    /// Nodes per axis (`q + 1`).
    #[inline]
    pub fn nodes_per_axis(self) -> usize {
        self.q() + 1
    }

    /// Nodes per element (`(q+1)^3`).
    #[inline]
    pub fn nodes_per_element(self) -> usize {
        self.nodes_per_axis().pow(3)
    }

    /// Gauss points per axis needed to integrate mass-matrix entries
    /// exactly (degree `2q` integrands need `q + 1` points).
    #[inline]
    pub fn quadrature_points_per_axis(self) -> usize {
        self.q() + 1
    }

    /// 1-D shape function `a` (of `q+1`) at `x` in `[0,1]`.
    pub fn shape_1d(self, a: usize, x: f64) -> f64 {
        match self {
            ElementOrder::Q1 => match a {
                0 => 1.0 - x,
                1 => x,
                _ => panic!("Q1 node index out of range: {a}"),
            },
            ElementOrder::Q2 => match a {
                // Lagrange basis on {0, 1/2, 1}.
                0 => 2.0 * (x - 0.5) * (x - 1.0),
                1 => 4.0 * x * (1.0 - x),
                2 => 2.0 * x * (x - 0.5),
                _ => panic!("Q2 node index out of range: {a}"),
            },
        }
    }

    /// Derivative of the 1-D shape function `a` at `x`.
    pub fn dshape_1d(self, a: usize, x: f64) -> f64 {
        match self {
            ElementOrder::Q1 => match a {
                0 => -1.0,
                1 => 1.0,
                _ => panic!("Q1 node index out of range: {a}"),
            },
            ElementOrder::Q2 => match a {
                0 => 4.0 * x - 3.0,
                1 => 4.0 - 8.0 * x,
                2 => 4.0 * x - 1.0,
                _ => panic!("Q2 node index out of range: {a}"),
            },
        }
    }

    /// Decomposes a local node index into per-axis indices `(a, b, c)`.
    #[inline]
    pub fn node_abc(self, local: usize) -> (usize, usize, usize) {
        let n = self.nodes_per_axis();
        debug_assert!(local < n * n * n);
        (local % n, (local / n) % n, local / (n * n))
    }

    /// 3-D shape function of local node `local` at reference point
    /// `(x, y, z)` in `[0,1]^3`.
    pub fn shape(self, local: usize, x: f64, y: f64, z: f64) -> f64 {
        let (a, b, c) = self.node_abc(local);
        self.shape_1d(a, x) * self.shape_1d(b, y) * self.shape_1d(c, z)
    }

    /// Reference-space gradient of shape function `local` at `(x, y, z)`.
    pub fn grad_shape(self, local: usize, x: f64, y: f64, z: f64) -> [f64; 3] {
        let (a, b, c) = self.node_abc(local);
        let (na, nb, nc) = (
            self.shape_1d(a, x),
            self.shape_1d(b, y),
            self.shape_1d(c, z),
        );
        [
            self.dshape_1d(a, x) * nb * nc,
            na * self.dshape_1d(b, y) * nc,
            na * nb * self.dshape_1d(c, z),
        ]
    }

    /// Reference coordinates of local node `local`.
    pub fn node_point(self, local: usize) -> [f64; 3] {
        let (a, b, c) = self.node_abc(local);
        let q = self.q() as f64;
        [a as f64 / q, b as f64 / q, c as f64 / q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORDERS: [ElementOrder; 2] = [ElementOrder::Q1, ElementOrder::Q2];

    #[test]
    fn node_counts() {
        assert_eq!(ElementOrder::Q1.nodes_per_element(), 8);
        assert_eq!(ElementOrder::Q2.nodes_per_element(), 27);
    }

    #[test]
    fn kronecker_property() {
        // Shape function i equals 1 at node i and 0 at the others.
        for order in ORDERS {
            for i in 0..order.nodes_per_element() {
                for j in 0..order.nodes_per_element() {
                    let [x, y, z] = order.node_point(j);
                    let v = order.shape(i, x, y, z);
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (v - expect).abs() < 1e-14,
                        "{order:?} N_{i} at node {j}: {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_of_unity() {
        for order in ORDERS {
            for &(x, y, z) in &[(0.3, 0.7, 0.1), (0.0, 0.5, 1.0), (0.25, 0.25, 0.25)] {
                let sum: f64 = (0..order.nodes_per_element())
                    .map(|i| order.shape(i, x, y, z))
                    .sum();
                assert!(
                    (sum - 1.0).abs() < 1e-13,
                    "{order:?} at ({x},{y},{z}): {sum}"
                );
                // Gradients of a constant sum to zero.
                let mut g = [0.0; 3];
                for i in 0..order.nodes_per_element() {
                    let gi = order.grad_shape(i, x, y, z);
                    for (acc, gd) in g.iter_mut().zip(gi) {
                        *acc += gd;
                    }
                }
                for gd in g {
                    assert!(gd.abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn linear_completeness() {
        // Nodal interpolation reproduces x exactly for both orders.
        for order in ORDERS {
            let (x, y, z) = (0.37, 0.61, 0.93);
            let mut val = 0.0;
            for i in 0..order.nodes_per_element() {
                let p = order.node_point(i);
                val += p[0] * order.shape(i, x, y, z);
            }
            assert!((val - x).abs() < 1e-13, "{order:?}: {val}");
        }
    }

    #[test]
    fn quadratic_completeness_q2() {
        // Q2 reproduces x^2 exactly; Q1 does not.
        let f = |p: [f64; 3]| p[0] * p[0];
        let (x, y, z) = (0.3, 0.8, 0.45);
        let interp = |order: ElementOrder| -> f64 {
            (0..order.nodes_per_element())
                .map(|i| f(order.node_point(i)) * order.shape(i, x, y, z))
                .sum()
        };
        assert!((interp(ElementOrder::Q2) - x * x).abs() < 1e-13);
        assert!((interp(ElementOrder::Q1) - x * x).abs() > 1e-3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let eps = 1e-6;
        for order in ORDERS {
            for i in 0..order.nodes_per_element() {
                let (x, y, z) = (0.41, 0.17, 0.66);
                let g = order.grad_shape(i, x, y, z);
                let fd = [
                    (order.shape(i, x + eps, y, z) - order.shape(i, x - eps, y, z)) / (2.0 * eps),
                    (order.shape(i, x, y + eps, z) - order.shape(i, x, y - eps, z)) / (2.0 * eps),
                    (order.shape(i, x, y, z + eps) - order.shape(i, x, y, z - eps)) / (2.0 * eps),
                ];
                for d in 0..3 {
                    assert!((g[d] - fd[d]).abs() < 1e-8, "{order:?} N_{i} axis {d}");
                }
            }
        }
    }

    #[test]
    fn node_abc_roundtrip() {
        for order in ORDERS {
            let n = order.nodes_per_axis();
            for local in 0..order.nodes_per_element() {
                let (a, b, c) = order.node_abc(local);
                assert_eq!(a + n * (b + n * c), local);
            }
        }
    }
}
