//! Exact solutions used to verify the two applications — "exact solution is
//! used for checking the mathematical correctness of the code execution".

use hetero_mesh::Point3;

/// Exact solution of the paper's reaction–diffusion test (equation (1)):
///
/// `du/dt - (1/t^2) lap(u) - (2/t) u = -6`, with
/// `u(x, t) = t^2 (x1^2 + x2^2 + x3^2)`.
///
/// Boundary and initial conditions are read off the exact solution, as in
/// the paper (see Formaggia–Saleri–Veneziani, Chap. 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct RdExact;

impl RdExact {
    /// The exact solution `u(x, t)`.
    #[inline]
    pub fn u(&self, p: Point3, t: f64) -> f64 {
        t * t * p.norm_sq()
    }

    /// The constant source term (right-hand side) of the PDE.
    #[inline]
    pub fn source(&self) -> f64 {
        -6.0
    }

    /// Diffusion coefficient `1 / t^2` at time `t`.
    #[inline]
    pub fn diffusion(&self, t: f64) -> f64 {
        1.0 / (t * t)
    }

    /// Reaction coefficient `-2 / t` at time `t` (the `- (2/t) u` term).
    #[inline]
    pub fn reaction(&self, t: f64) -> f64 {
        -2.0 / t
    }
}

/// The Ethier–Steinman exact fully-3D Navier–Stokes solution
/// (Int. J. Numer. Meth. Fluids 19:369–375, 1994) — "a popular non-trivial
/// benchmark for CFD solvers", the paper's second test case.
///
/// With `nu = mu / rho` the kinematic viscosity, the divergence-free
/// velocity field and the pressure decay as `exp(-nu d^2 t)` and
/// `exp(-2 nu d^2 t)` respectively, and satisfy the incompressible NSE with
/// zero forcing.
#[derive(Debug, Clone, Copy)]
pub struct EthierSteinman {
    /// Spatial frequency parameter (classically `pi / 4`).
    pub a: f64,
    /// Second frequency parameter (classically `pi / 2`).
    pub d: f64,
    /// Kinematic viscosity `nu = mu / rho`.
    pub nu: f64,
}

impl EthierSteinman {
    /// The classical parameter choice `a = pi/4`, `d = pi/2`.
    pub fn classical(nu: f64) -> Self {
        EthierSteinman {
            a: std::f64::consts::FRAC_PI_4,
            d: std::f64::consts::FRAC_PI_2,
            nu,
        }
    }

    /// Exact velocity `[u1, u2, u3]` at `(p, t)`.
    pub fn velocity(&self, p: Point3, t: f64) -> [f64; 3] {
        let (a, d) = (self.a, self.d);
        let e = (-self.nu * d * d * t).exp();
        let (x, y, z) = (p.x, p.y, p.z);
        [
            -a * ((a * x).exp() * (a * y + d * z).sin() + (a * z).exp() * (a * x + d * y).cos())
                * e,
            -a * ((a * y).exp() * (a * z + d * x).sin() + (a * x).exp() * (a * y + d * z).cos())
                * e,
            -a * ((a * z).exp() * (a * x + d * y).sin() + (a * y).exp() * (a * z + d * x).cos())
                * e,
        ]
    }

    /// Exact pressure at `(p, t)` (zero-mean gauge constant included as in
    /// the original paper's formula).
    pub fn pressure(&self, p: Point3, t: f64) -> f64 {
        let (a, d) = (self.a, self.d);
        let e2 = (-2.0 * self.nu * d * d * t).exp();
        let (x, y, z) = (p.x, p.y, p.z);
        -0.5 * a
            * a
            * ((2.0 * a * x).exp()
                + (2.0 * a * y).exp()
                + (2.0 * a * z).exp()
                + 2.0 * (a * x + d * y).sin() * (a * z + d * x).cos() * (a * (y + z)).exp()
                + 2.0 * (a * y + d * z).sin() * (a * x + d * y).cos() * (a * (z + x)).exp()
                + 2.0 * (a * z + d * x).sin() * (a * y + d * z).cos() * (a * (x + y)).exp())
            * e2
    }

    /// One velocity component (0, 1, or 2).
    pub fn velocity_component(&self, i: usize, p: Point3, t: f64) -> f64 {
        self.velocity(p, t)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd_satisfies_its_pde() {
        // du/dt - (1/t^2) lap(u) - (2/t) u must equal -6 identically:
        // check by finite differences at a few points.
        let ex = RdExact;
        let eps = 1e-5;
        for &(p, t) in &[
            (Point3::new(0.3, 0.7, 0.2), 1.5),
            (Point3::new(1.0, 0.0, 0.5), 2.0),
            (Point3::new(0.1, 0.1, 0.9), 0.7),
        ] {
            let dudt = (ex.u(p, t + eps) - ex.u(p, t - eps)) / (2.0 * eps);
            let lap = {
                let mut s = 0.0;
                for d in 0..3 {
                    let mut hi = p;
                    let mut lo = p;
                    match d {
                        0 => {
                            hi.x += eps;
                            lo.x -= eps;
                        }
                        1 => {
                            hi.y += eps;
                            lo.y -= eps;
                        }
                        _ => {
                            hi.z += eps;
                            lo.z -= eps;
                        }
                    }
                    s += (ex.u(hi, t) - 2.0 * ex.u(p, t) + ex.u(lo, t)) / (eps * eps);
                }
                s
            };
            let residual = dudt - ex.diffusion(t) * lap + ex.reaction(t) * ex.u(p, t);
            assert!(
                (residual - ex.source()).abs() < 1e-4,
                "residual = {residual}"
            );
        }
    }

    #[test]
    fn ethier_steinman_is_divergence_free() {
        let es = EthierSteinman::classical(0.1);
        let eps = 1e-6;
        for &(p, t) in &[
            (Point3::new(0.25, 0.5, 0.75), 0.0),
            (Point3::new(0.1, 0.9, 0.3), 0.01),
            (Point3::new(0.6, 0.2, 0.8), 0.05),
        ] {
            let mut div = 0.0;
            for i in 0..3 {
                let mut hi = p;
                let mut lo = p;
                match i {
                    0 => {
                        hi.x += eps;
                        lo.x -= eps;
                    }
                    1 => {
                        hi.y += eps;
                        lo.y -= eps;
                    }
                    _ => {
                        hi.z += eps;
                        lo.z -= eps;
                    }
                }
                div += (es.velocity(hi, t)[i] - es.velocity(lo, t)[i]) / (2.0 * eps);
            }
            assert!(div.abs() < 1e-7, "div = {div} at {p:?}");
        }
    }

    #[test]
    fn ethier_steinman_satisfies_momentum() {
        // Check the i-th momentum residual du/dt + (u.grad)u + grad(p)/rho
        // - nu lap(u) = 0 by finite differences (rho = 1).
        let nu = 0.3;
        let es = EthierSteinman::classical(nu);
        let eps = 1e-5;
        let p0 = Point3::new(0.4, 0.3, 0.6);
        let t0 = 0.02;
        let vel = |p: Point3, t: f64, i: usize| es.velocity(p, t)[i];
        let shift = |p: Point3, d: usize, s: f64| -> Point3 {
            let mut q = p;
            match d {
                0 => q.x += s,
                1 => q.y += s,
                _ => q.z += s,
            }
            q
        };
        for i in 0..3 {
            let dudt = (vel(p0, t0 + eps, i) - vel(p0, t0 - eps, i)) / (2.0 * eps);
            let u = es.velocity(p0, t0);
            let mut conv = 0.0;
            let mut lap = 0.0;
            #[allow(clippy::needless_range_loop)] // d is a spatial axis, not just an index
            for d in 0..3 {
                let grad =
                    (vel(shift(p0, d, eps), t0, i) - vel(shift(p0, d, -eps), t0, i)) / (2.0 * eps);
                conv += u[d] * grad;
                lap += (vel(shift(p0, d, eps), t0, i) - 2.0 * vel(p0, t0, i)
                    + vel(shift(p0, d, -eps), t0, i))
                    / (eps * eps);
            }
            let gradp = (es.pressure(shift(p0, i, eps), t0) - es.pressure(shift(p0, i, -eps), t0))
                / (2.0 * eps);
            let residual = dudt + conv + gradp - nu * lap;
            assert!(
                residual.abs() < 1e-4,
                "component {i}: residual = {residual}"
            );
        }
    }

    #[test]
    fn velocity_decays_in_time() {
        let es = EthierSteinman::classical(1.0);
        let p = Point3::new(0.5, 0.5, 0.5);
        let v0 = es.velocity(p, 0.0);
        let v1 = es.velocity(p, 1.0);
        let n0 = (v0[0] * v0[0] + v0[1] * v0[1] + v0[2] * v0[2]).sqrt();
        let n1 = (v1[0] * v1[0] + v1[1] * v1[1] + v1[2] * v1[2]).sqrt();
        assert!(n1 < n0 * 0.2);
    }
}
