//! # hetero-fem
//!
//! The finite element library of the `hetero-hpc` reproduction — the LifeV
//! stand-in. It implements the discretizations the paper's two applications
//! use:
//!
//! * **RD**: the 3-D reaction–diffusion equation
//!   `du/dt - (1/t^2) lap(u) - (2/t) u = -6` with exact solution
//!   `u = t^2 (x1^2 + x2^2 + x3^2)` ([`rd`], [`exact::RdExact`]) — BDF2 in
//!   time, order-2 elements in space, exactly as the paper describes;
//! * **NS**: the incompressible Navier–Stokes equations on the
//!   Ethier–Steinman benchmark ([`ns`], [`exact::EthierSteinman`]) — BDF2,
//!   order-2 velocity / order-1 pressure, solved with a BDF2 incremental
//!   pressure-correction (projection) scheme.
//!
//! Supporting machinery:
//!
//! * [`element`] — Q1 (trilinear) and Q2 (triquadratic) tensor-product hex
//!   elements;
//! * [`quadrature`] — tensor Gauss–Legendre rules;
//! * [`dofmap`] — distributed degree-of-freedom numbering with
//!   matrix-stencil ghost layers and halo-exchange plans;
//! * [`assembly`] — distributed matrix/vector assembly with owner-shipping
//!   of off-rank row contributions (the paper's step (ii));
//! * [`bdf`] — BDF1/BDF2 time-integrator coefficients;
//! * [`phase`] — per-iteration phase timing (assembly / preconditioner /
//!   solve), the quantity every figure of the paper plots;
//! * [`profile`] — analytic per-cell work formulas shared by the real
//!   assembler and the large-scale modeled engine.
//!
//! The RD solution is *exactly representable* in the Q2 space and BDF2 is
//! exact for its quadratic time dependence, so the test suite verifies the
//! full distributed pipeline to solver tolerance — the same "exact solution
//! is used for checking the mathematical correctness of the code execution"
//! methodology the paper uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembly;
pub mod bdf;
pub mod dofmap;
pub mod element;
pub mod exact;
pub mod ns;
pub mod phase;
pub mod profile;
pub mod quadrature;
pub mod rd;

pub use dofmap::DofMap;
pub use element::ElementOrder;
pub use phase::{PhaseRecorder, PhaseTimes};
