//! The paper's second test case: incompressible Navier–Stokes on the
//! Ethier–Steinman benchmark.
//!
//! Discretization mirrors the paper: BDF2 in time, order-2 velocity /
//! order-1 pressure in space. The nonlinear term is handled semi-implicitly
//! with BDF2 extrapolation of the advecting field, and the saddle-point
//! system is decoupled by an incremental pressure-correction (projection)
//! scheme:
//!
//! 1. **momentum**: solve, per component,
//!    `(rho alpha/dt) M u* + mu K u* + rho C(w) u* = (rho/dt) M h - G p^{n-1}`
//!    with Dirichlet data from the exact solution;
//! 2. **pressure Poisson**: `L phi = -(rho alpha/dt) div(u*)`, with one
//!    pinned pressure DoF;
//! 3. **correction**: `u^n = u* - dt/(rho alpha) Ml^{-1} G phi`,
//!    `p^n = p^{n-1} + phi` (lumped velocity mass `Ml`).
//!
//! This is "by far more challenging than RD ... a vector problem involving
//! four scalar fields" — per iteration it assembles a convection-dependent
//! operator and solves four linear systems, exchanging roughly 4x the halo
//! data, which is exactly why the paper's NS weak scaling is worse on every
//! platform.

use crate::assembly::{
    assemble_vector, constrain_system, constrain_system_multi, gradient_kernel, scalar_kernels,
    AssemblyStructure, MatrixAssembly,
};
use crate::bdf::BdfOrder;
use crate::dofmap::DofMap;
use crate::element::ElementOrder;
use crate::exact::EthierSteinman;
use crate::phase::{PhaseRecorder, PhaseTimes};
use crate::quadrature::{GaussRule3d, ShapeTable};
use crate::rd::PrecondKind;
use hetero_linalg::solver::{
    bicgstab_with_workspace, cg, gmres_with_workspace, KernelBackend, SolveOptions, SolverWorkspace,
};
use hetero_linalg::{DistMatrix, DistVector};
use hetero_mesh::DistributedMesh;
use hetero_simmpi::SimComm;
use hetero_trace::{EventKind, Phase as TracePhase};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Krylov method used for the nonsymmetric momentum systems — the choice an
/// AztecOO user makes in the paper's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MomentumSolver {
    /// BiCGStab: two SpMVs per iteration, short recurrences.
    BiCgStab,
    /// Restarted GMRES(m): one SpMV per iteration, `m` stored basis
    /// vectors.
    Gmres {
        /// Restart length.
        restart: usize,
    },
}

/// Configuration of an NS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsConfig {
    /// Velocity element order (paper: order 2).
    pub vel_order: ElementOrder,
    /// Pressure element order (paper: order 1).
    pub p_order: ElementOrder,
    /// Time integrator.
    pub bdf: BdfOrder,
    /// Initial time.
    pub t0: f64,
    /// Time-step size.
    pub dt: f64,
    /// Number of time steps.
    pub steps: usize,
    /// Fluid density `rho`.
    pub rho: f64,
    /// Dynamic viscosity `mu`.
    pub mu: f64,
    /// Krylov method for the (nonsymmetric) momentum solves.
    pub momentum_solver: MomentumSolver,
    /// Momentum-solve preconditioner.
    pub precond_vel: PrecondKind,
    /// Pressure-solve preconditioner.
    pub precond_p: PrecondKind,
    /// Momentum Krylov controls (BiCGStab).
    pub solve_vel: SolveOptions,
    /// Pressure Krylov controls (CG).
    pub solve_p: SolveOptions,
}

impl Default for NsConfig {
    fn default() -> Self {
        NsConfig {
            vel_order: ElementOrder::Q2,
            p_order: ElementOrder::Q1,
            bdf: BdfOrder::Two,
            t0: 0.0,
            dt: 0.01,
            steps: 6,
            rho: 1.0,
            mu: 0.05,
            momentum_solver: MomentumSolver::BiCgStab,
            precond_vel: PrecondKind::Jacobi,
            precond_p: PrecondKind::Ssor,
            solve_vel: SolveOptions {
                rel_tol: 1e-9,
                abs_tol: 1e-13,
                max_iters: 400,
                ..SolveOptions::default()
            },
            solve_p: SolveOptions {
                rel_tol: 1e-9,
                abs_tol: 1e-13,
                max_iters: 800,
                ..SolveOptions::default()
            },
        }
    }
}

impl NsConfig {
    /// The exact solution for these fluid parameters.
    pub fn exact(&self) -> EthierSteinman {
        EthierSteinman::classical(self.mu / self.rho)
    }
}

/// Results of an NS run on one rank.
#[derive(Debug, Clone)]
pub struct NsReport {
    /// Phase times per time step.
    pub iterations: Vec<PhaseTimes>,
    /// Summed momentum-solve Krylov iterations per step (3 components).
    pub vel_iters: Vec<usize>,
    /// Pressure-solve Krylov iterations per step.
    pub p_iters: Vec<usize>,
    /// Velocity nodal max error at the final time (all 3 components).
    pub vel_linf_error: f64,
    /// Velocity discrete L2 error at the final time.
    pub vel_l2_error: f64,
    /// Global velocity DoFs (scalar space; the vector field has 3x).
    pub n_global_vel_dofs: usize,
    /// Global pressure DoFs.
    pub n_global_p_dofs: usize,
}

/// Restart state for [`solve_ns_with`]: dense global velocity history and
/// pressure, exactly as a checkpoint stores them (see
/// [`crate::rd::RdResume`] for the bitwise-resume argument).
#[derive(Debug, Clone)]
pub struct NsResume {
    /// Completed time steps (the checkpointed step index).
    pub start_step: usize,
    /// Dense global velocity history, newest first; one `[x, y, z]`
    /// component triple per BDF level.
    pub hist: Vec<[Vec<f64>; 3]>,
    /// Dense global pressure at the checkpointed step.
    pub pressure: Vec<f64>,
}

/// What a step observer sees after each completed NS time step.
pub struct NsStepView<'a> {
    /// The just-completed (absolute, 1-based) step index.
    pub step: usize,
    /// Velocity DoF map.
    pub vmap: &'a DofMap,
    /// Pressure DoF map.
    pub pmap: &'a DofMap,
    /// Velocity history, newest first.
    pub hist: &'a [[DistVector; 3]],
    /// Current pressure.
    pub pressure: &'a DistVector,
    /// Phase times of the steps this attempt has executed so far.
    pub iterations: &'a [PhaseTimes],
}

/// Per-step callback for checkpointing hooks.
pub type NsObserver<'a> = &'a mut dyn FnMut(&NsStepView<'_>, &mut SimComm);

/// The platform-independent setup artifacts of one NS rank: the velocity
/// and pressure DoF maps plus the four symbolic assembly structures
/// (velocity–velocity, pressure–pressure, and the two mixed-space
/// gradient/divergence pairs). Immutable and `Arc`-shared; see
/// `core::prep`.
#[derive(Clone)]
pub struct NsPrep {
    /// Velocity-space DoF map.
    pub vmap: Arc<DofMap>,
    /// Pressure-space DoF map.
    pub pmap: Arc<DofMap>,
    /// Structure of `(vmap, vmap)` assemblies (mass, momentum).
    pub vv: Arc<AssemblyStructure>,
    /// Structure of `(pmap, pmap)` assemblies (pressure Poisson).
    pub pp: Arc<AssemblyStructure>,
    /// Structure of `(vmap, pmap)` assemblies (the three gradients).
    pub vp: Arc<AssemblyStructure>,
    /// Structure of `(pmap, vmap)` assemblies (the three divergences).
    pub pv: Arc<AssemblyStructure>,
}

/// Runs the NS application. Collective over all ranks of `comm`.
pub fn solve_ns(dmesh: &DistributedMesh, cfg: &NsConfig, comm: &mut SimComm) -> NsReport {
    solve_ns_with(dmesh, cfg, None, None, comm)
}

/// Runs the NS application, optionally resuming from checkpointed state
/// and/or observing each completed step (the fault-tolerance entry point).
/// Collective over all ranks of `comm`.
pub fn solve_ns_with(
    dmesh: &DistributedMesh,
    cfg: &NsConfig,
    resume: Option<&NsResume>,
    observer: Option<NsObserver<'_>>,
    comm: &mut SimComm,
) -> NsReport {
    solve_ns_prepared(dmesh, cfg, resume, observer, None, comm).0
}

/// [`solve_ns_with`] with optional prepared setup artifacts. With
/// `prep = Some(..)` both DoF maps are reused via [`DofMap::replay_build`]
/// and every assembly starts from its shared symbolic structure; virtual
/// time, wire traffic, and every computed value are bitwise identical to
/// the fresh path. Always returns the rank's [`NsPrep`] (cheap `Arc`
/// clones) so first runs can seed the prepared-scenario cache.
pub fn solve_ns_prepared(
    dmesh: &DistributedMesh,
    cfg: &NsConfig,
    resume: Option<&NsResume>,
    mut observer: Option<NsObserver<'_>>,
    prep: Option<&NsPrep>,
    comm: &mut SimComm,
) -> (NsReport, NsPrep) {
    assert!(cfg.dt > 0.0 && cfg.steps > 0 && cfg.rho > 0.0 && cfg.mu > 0.0);
    let es = cfg.exact();
    let (vmap, pmap) = match prep {
        Some(p) => (
            DofMap::replay_build(&p.vmap, comm),
            DofMap::replay_build(&p.pmap, comm),
        ),
        None => (
            Arc::new(DofMap::build(dmesh, cfg.vel_order, comm)),
            Arc::new(DofMap::build(dmesh, cfg.p_order, comm)),
        ),
    };
    let h = dmesh.mesh().cell_size();
    let kern_v = scalar_kernels(cfg.vel_order, h);
    let kern_p = scalar_kernels(cfg.p_order, h);
    let npe_v = cfg.vel_order.nodes_per_element();
    let _npe_p = cfg.p_order.nodes_per_element();

    // Constant operators, assembled once. Each space pair shares one
    // symbolic structure, so the three gradients (and divergences) reuse
    // the structure of their first assembly — cached calls are
    // traffic-identical and bitwise-pinned, see `MatrixAssembly`.
    let mut mass_asm = match prep {
        Some(p) => MatrixAssembly::with_structure(1, Arc::clone(&p.vv)),
        None => MatrixAssembly::new(1),
    };
    let mass_v = mass_asm.assemble(&vmap, &vmap, comm, |_i, out| {
        out.copy_from_slice(&kern_v.mass)
    });
    let mut grad_asm = match prep {
        Some(p) => MatrixAssembly::with_structure(1, Arc::clone(&p.vp)),
        None => MatrixAssembly::new(1),
    };
    let grad: Vec<_> = (0..3)
        .map(|d| {
            let gk = gradient_kernel(cfg.vel_order, cfg.p_order, d, h);
            grad_asm.assemble(&vmap, &pmap, comm, |_i, out| out.copy_from_slice(&gk))
        })
        .collect();
    let mut div_asm = match prep {
        Some(p) => MatrixAssembly::with_structure(1, Arc::clone(&p.pv)),
        None => MatrixAssembly::new(1),
    };
    let div: Vec<_> = (0..3)
        .map(|d| {
            let dk = gradient_kernel(cfg.p_order, cfg.vel_order, d, h);
            div_asm.assemble(&pmap, &vmap, comm, |_i, out| out.copy_from_slice(&dk))
        })
        .collect();
    // Lumped velocity mass (row sums = load vector entries).
    let lumped = assemble_vector(&vmap, comm, |_i, out| out.copy_from_slice(&kern_v.load));

    // Quadrature tables for the convection kernel.
    let rule = GaussRule3d::new(cfg.vel_order.quadrature_points_per_axis());
    let nq = rule.len();
    let tab_v = ShapeTable::new(cfg.vel_order, &rule, h);
    let vol = h.x * h.y * h.z;

    // Velocity history [newest, older], each 3 components; pressure state.
    // On restart both are refilled from the checkpoint's dense global
    // fields (owned and ghost slots alike, matching a post-update_ghosts
    // state).
    let nhist = cfg.bdf.steps();
    let fill = |dm: &DofMap, dense: &[f64]| {
        assert_eq!(dense.len(), dm.n_global(), "resume field size");
        let mut v = dm.new_vector();
        for l in 0..dm.n_local() {
            v.as_mut_slice()[l] = dense[dm.global_id(l)];
        }
        v
    };
    let start_step = match resume {
        Some(r) => {
            assert!(r.start_step < cfg.steps, "resume beyond the final step");
            assert_eq!(r.hist.len(), nhist, "resume history depth");
            r.start_step
        }
        None => 0,
    };
    let mut hist: Vec<[DistVector; 3]> = match resume {
        Some(r) => r
            .hist
            .iter()
            .map(|comps| std::array::from_fn(|i| fill(&vmap, &comps[i])))
            .collect(),
        None => (0..nhist)
            .map(|j| {
                let t = cfg.t0 - j as f64 * cfg.dt;
                [
                    vmap.interpolate(|p| es.velocity_component(0, p, t)),
                    vmap.interpolate(|p| es.velocity_component(1, p, t)),
                    vmap.interpolate(|p| es.velocity_component(2, p, t)),
                ]
            })
            .collect(),
    };
    let mut pressure = match resume {
        Some(r) => fill(&pmap, &r.pressure),
        None => pmap.interpolate(|p| es.pressure(p, cfg.t0)),
    };

    let alpha = cfg.bdf.alpha();
    let hist_c = cfg.bdf.history();
    let extr_c = cfg.bdf.extrapolation();

    // The pinned pressure DoF: global lattice node 0 (a domain corner).
    let pin_local = pmap.local_id(0);

    let mut iterations = Vec::with_capacity(cfg.steps - start_step);
    let mut vel_iters = Vec::with_capacity(cfg.steps - start_step);
    let mut p_iters = Vec::with_capacity(cfg.steps - start_step);
    // Both per-step operators keep a fixed sparsity structure: cache the
    // symbolic phase and only re-scatter values each step. The momentum
    // structure is the velocity mass matrix's (same maps, full dense
    // blocks); the pressure structure comes from the prep when present.
    let mut momentum_asm = match mass_asm.shared_structure() {
        Some(s) => MatrixAssembly::with_structure(8, s),
        None => MatrixAssembly::new(8),
    };
    let mut pressure_asm = match prep {
        Some(p) => MatrixAssembly::with_structure(1, Arc::clone(&p.pp)),
        None => MatrixAssembly::new(1),
    };
    // Solver scratch shared by the three momentum solves of every step:
    // after the first step no solver vector is allocated again.
    let mut solver_ws = SolverWorkspace::new();

    for step in (start_step + 1)..=cfg.steps {
        let t = cfg.t0 + step as f64 * cfg.dt;
        let mut rec = PhaseRecorder::start(comm.clock());

        // -- Assembly (ii) --------------------------------------------------
        // Extrapolated advecting field w (all local slots valid: histories
        // keep their ghosts fresh).
        let w: [Vec<f64>; 3] = std::array::from_fn(|i| {
            let mut out = vec![0.0; vmap.n_local()];
            for (j, &c) in extr_c.iter().enumerate() {
                for (o, v) in out.iter_mut().zip(hist[j][i].as_slice()) {
                    *o += c * v;
                }
            }
            out
        });
        comm.compute(hetero_simmpi::Work::new(
            6.0 * vmap.n_local() as f64,
            72.0 * vmap.n_local() as f64,
        ));

        // Momentum operator: (rho alpha/dt) M + mu K + rho C(w). The
        // charged cost (8 operator terms) reflects the paper's monolithic
        // vector-system assembly — three momentum blocks with convection
        // plus the gradient/divergence coupling — even though the projection
        // scheme shares one scalar block across components.
        let m_coeff = cfg.rho * alpha / cfg.dt;
        let momentum_cell = |i: usize, out: &mut [f64]| {
            for (o, (m, k)) in out
                .iter_mut()
                .zip(kern_v.mass.iter().zip(&kern_v.stiffness))
            {
                *o = m_coeff * m + cfg.mu * k;
            }
            // Convection: C[a][b] += rho * int (w . grad phi_b) phi_a.
            let dofs = vmap.cell_dofs(i);
            for qi in 0..nq {
                let wq = rule.weights[qi] * vol;
                // w at this quadrature point.
                let mut wvec = [0.0f64; 3];
                for (a, &dof) in dofs.iter().enumerate() {
                    let s = tab_v.shape(qi, a);
                    wvec[0] += w[0][dof] * s;
                    wvec[1] += w[1][dof] * s;
                    wvec[2] += w[2][dof] * s;
                }
                for a in 0..npe_v {
                    let sa = tab_v.shape(qi, a);
                    let coeff = cfg.rho * wq * sa;
                    for b in 0..npe_v {
                        let gb = tab_v.grad(qi, b);
                        out[a * npe_v + b] +=
                            coeff * (wvec[0] * gb[0] + wvec[1] * gb[1] + wvec[2] * gb[2]);
                    }
                }
            }
        };
        let mut a_v_owned;
        let a_v: &mut DistMatrix = match cfg.solve_vel.backend {
            KernelBackend::MatrixFree => {
                momentum_asm.assemble_in_place(&vmap, &vmap, comm, momentum_cell)
            }
            KernelBackend::Assembled => {
                a_v_owned = momentum_asm.assemble(&vmap, &vmap, comm, momentum_cell);
                &mut a_v_owned
            }
        };

        // Pressure Laplacian (assembled per step, as a general-coefficient
        // code would; values are constant here).
        let pressure_cell = |_i: usize, out: &mut [f64]| out.copy_from_slice(&kern_p.stiffness);
        let mut l_p_owned;
        let l_p: &mut DistMatrix = match cfg.solve_p.backend {
            KernelBackend::MatrixFree => {
                pressure_asm.assemble_in_place(&pmap, &pmap, comm, pressure_cell)
            }
            KernelBackend::Assembled => {
                l_p_owned = pressure_asm.assemble(&pmap, &pmap, comm, pressure_cell);
                &mut l_p_owned
            }
        };

        // Momentum right-hand sides.
        let mut rhs: Vec<DistVector> = Vec::with_capacity(3);
        for i in 0..3 {
            let mut hcombo = vmap.new_vector();
            for (j, &c) in hist_c.iter().enumerate() {
                for (o, v) in hcombo.as_mut_slice().iter_mut().zip(hist[j][i].as_slice()) {
                    *o += cfg.rho * c / cfg.dt * v;
                }
            }
            let mut b = vmap.new_vector();
            mass_v.spmv(&mut hcombo, &mut b, comm);
            // - G_i p^{n-1}
            let mut gp = vmap.new_vector();
            grad[i].spmv(&mut pressure, &mut gp, comm);
            b.axpy(-1.0, &gp, comm);
            rhs.push(b);
        }
        // Impose the three components' boundary traces in one pass so every
        // right-hand side is lifted against the unmodified matrix.
        {
            let mut mask = vec![false; vmap.n_local()];
            let mut values: [Vec<f64>; 3] = std::array::from_fn(|_| vec![0.0; vmap.n_local()]);
            for l in 0..vmap.n_local() {
                if vmap.on_boundary(l) {
                    mask[l] = true;
                    for (i, v) in values.iter_mut().enumerate() {
                        v[l] = es.velocity_component(i, vmap.coord(l), t);
                    }
                }
            }
            let mut rhs_iter = rhs.iter_mut();
            let (r0, r1, r2) = (
                rhs_iter.next().unwrap(),
                rhs_iter.next().unwrap(),
                rhs_iter.next().unwrap(),
            );
            constrain_system_multi(
                &mut *a_v,
                &mut [(r0, &values[0]), (r1, &values[1]), (r2, &values[2])],
                &mask,
                comm,
            );
        }
        let seg = rec.mark();
        rec.end_assembly(comm.clock());
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Assembly,
                step: step as u32,
            },
        );

        // -- Preconditioner (iiia) -------------------------------------------
        let seg = rec.mark();
        let pre_v = cfg.precond_vel.build(&*a_v, comm);
        rec.end_precond(comm.clock());
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Precond,
                step: step as u32,
            },
        );

        // -- Solve (iiib) ----------------------------------------------------
        // Momentum: three component solves, warm-started.
        let mut ustar: Vec<DistVector> = Vec::with_capacity(3);
        let mut vits = 0usize;
        for (i, rhs_i) in rhs.iter().enumerate() {
            let mut x = vmap.new_vector();
            x.copy_from(&hist[0][i], comm);
            let stats = match cfg.momentum_solver {
                MomentumSolver::BiCgStab => bicgstab_with_workspace(
                    &*a_v,
                    rhs_i,
                    &mut x,
                    pre_v.as_ref(),
                    cfg.solve_vel,
                    &mut solver_ws,
                    comm,
                ),
                MomentumSolver::Gmres { restart } => gmres_with_workspace(
                    &*a_v,
                    rhs_i,
                    &mut x,
                    pre_v.as_ref(),
                    restart,
                    cfg.solve_vel,
                    &mut solver_ws,
                    comm,
                ),
            };
            assert!(
                stats.converged,
                "NS momentum solve {i} failed at step {step}: {stats:?}"
            );
            vits += stats.iterations;
            ustar.push(x);
        }

        // Pressure Poisson: L phi = -(rho alpha/dt) sum_i D_i u*_i.
        let mut rhs_p = pmap.new_vector();
        for i in 0..3 {
            let mut dterm = pmap.new_vector();
            div[i].spmv(&mut ustar[i], &mut dterm, comm);
            rhs_p.axpy(-cfg.rho * alpha / cfg.dt, &dterm, comm);
        }
        // Pin one pressure DoF to the exact increment to fix the gauge.
        let pin_value = es.pressure(hetero_mesh::Point3::ZERO, t)
            - es.pressure(hetero_mesh::Point3::ZERO, t - cfg.dt);
        {
            let mut mask = vec![false; pmap.n_local()];
            let mut values = vec![0.0; pmap.n_local()];
            if let Some(l) = pin_local {
                mask[l] = true;
                values[l] = pin_value;
            }
            constrain_system(&mut *l_p, &mut rhs_p, &mask, &values, comm);
        }
        let pre_p = cfg.precond_p.build(&*l_p, comm);
        let mut phi = pmap.new_vector();
        let stats_p = cg(&*l_p, &rhs_p, &mut phi, pre_p.as_ref(), cfg.solve_p, comm);
        assert!(
            stats_p.converged,
            "NS pressure solve failed at step {step}: {stats_p:?}"
        );

        // Correction: u^n = u* - dt/(rho alpha) Ml^{-1} G phi; p += phi.
        let corr = cfg.dt / (cfg.rho * alpha);
        for i in 0..3 {
            let mut gphi = vmap.new_vector();
            grad[i].spmv(&mut phi, &mut gphi, comm);
            for ((u, g), ml) in ustar[i]
                .owned_mut()
                .iter_mut()
                .zip(gphi.owned())
                .zip(lumped.owned())
            {
                *u -= corr * g / ml;
            }
        }
        comm.compute(hetero_simmpi::Work::new(
            9.0 * vmap.n_owned() as f64,
            96.0 * vmap.n_owned() as f64,
        ));
        // Re-impose the exact velocity trace after the correction.
        for (i, ui) in ustar.iter_mut().enumerate() {
            for l in 0..vmap.n_owned() {
                if vmap.on_boundary(l) {
                    ui.owned_mut()[l] = es.velocity_component(i, vmap.coord(l), t);
                }
            }
            ui.update_ghosts(vmap.plan(), comm);
        }
        pressure.axpy(1.0, &phi, comm);
        pressure.update_ghosts(pmap.plan(), comm);
        let seg = rec.mark();
        rec.end_solve(comm.clock());
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Solve,
                step: step as u32,
            },
        );
        comm.trace_instant(EventKind::Solver {
            step: step as u32,
            iters: (vits + stats_p.iterations) as u32,
        });

        vel_iters.push(vits);
        p_iters.push(stats_p.iterations);

        // Rotate velocity history.
        let seg = rec.mark();
        hist.rotate_right(1);
        for (h, u) in hist[0].iter_mut().zip(&ustar) {
            h.copy_from(u, comm);
        }
        iterations.push(rec.finish(comm.clock()));
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Other,
                step: step as u32,
            },
        );
        comm.trace_span(
            rec.started(),
            EventKind::Phase {
                phase: TracePhase::Iteration,
                step: step as u32,
            },
        );

        if let Some(obs) = observer.as_mut() {
            let view = NsStepView {
                step,
                vmap: &vmap,
                pmap: &pmap,
                hist: &hist,
                pressure: &pressure,
                iterations: &iterations,
            };
            obs(&view, comm);
        }
    }

    let t_final = cfg.t0 + cfg.steps as f64 * cfg.dt;
    let mut vel_linf_error = 0.0f64;
    let mut vel_l2_sq = 0.0f64;
    for (i, hi) in hist[0].iter().enumerate() {
        let linf = vmap.nodal_linf_error(hi, |p| es.velocity_component(i, p, t_final), comm);
        let l2 = vmap.nodal_l2_error(hi, |p| es.velocity_component(i, p, t_final), comm);
        vel_linf_error = vel_linf_error.max(linf);
        vel_l2_sq += l2 * l2;
    }

    let harvest = NsPrep {
        vv: mass_asm
            .shared_structure()
            .expect("mass assembly ran above"),
        pp: pressure_asm
            .shared_structure()
            .expect("pressure assembly ran each step"),
        vp: grad_asm.shared_structure().expect("gradients assembled"),
        pv: div_asm.shared_structure().expect("divergences assembled"),
        vmap: Arc::clone(&vmap),
        pmap: Arc::clone(&pmap),
    };
    (
        NsReport {
            iterations,
            vel_iters,
            p_iters,
            vel_linf_error,
            vel_l2_error: vel_l2_sq.sqrt(),
            n_global_vel_dofs: vmap.n_global(),
            n_global_p_dofs: pmap.n_global(),
        },
        harvest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mesh::StructuredHexMesh;
    use hetero_partition::{BlockPartitioner, Partitioner};
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
    use std::sync::Arc;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size.div_ceil(4).max(1), 4),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 13,
        }
    }

    fn run_ns(n: usize, p: usize, ns_cfg: NsConfig) -> Vec<NsReport> {
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, p));
        run_spmd(cfg(p), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), p);
            solve_ns(&dmesh, &ns_cfg, comm)
        })
        .into_iter()
        .map(|r| r.value)
        .collect()
    }

    #[test]
    fn ns_tracks_the_exact_solution() {
        // Short run on a coarse mesh: the velocity error must stay small
        // relative to the O(1) velocity magnitudes.
        let r = run_ns(
            3,
            1,
            NsConfig {
                steps: 4,
                ..NsConfig::default()
            },
        );
        assert!(r[0].vel_linf_error < 0.05, "linf = {}", r[0].vel_linf_error);
        assert_eq!(r[0].iterations.len(), 4);
    }

    #[test]
    fn distributed_matches_serial() {
        let serial = run_ns(
            3,
            1,
            NsConfig {
                steps: 3,
                ..NsConfig::default()
            },
        );
        let dist = run_ns(
            3,
            8,
            NsConfig {
                steps: 3,
                ..NsConfig::default()
            },
        );
        let rel = (serial[0].vel_l2_error - dist[0].vel_l2_error).abs()
            / serial[0].vel_l2_error.max(1e-30);
        assert!(
            rel < 1e-5,
            "serial {} vs dist {}",
            serial[0].vel_l2_error,
            dist[0].vel_l2_error
        );
        for r in &dist {
            assert!((r.vel_l2_error - dist[0].vel_l2_error).abs() < 1e-14);
        }
    }

    #[test]
    fn error_decreases_with_dt() {
        // High viscosity makes the exact field decay fast (exp(-nu d^2 t)),
        // so the temporal error dominates the coarse mesh's spatial floor;
        // same final time, quartered step.
        let e = |dt: f64, steps: usize| -> f64 {
            let cfg = NsConfig {
                dt,
                steps,
                mu: 1.5,
                ..NsConfig::default()
            };
            run_ns(2, 1, cfg)[0].vel_l2_error
        };
        let coarse = e(0.2, 2);
        let fine = e(0.05, 8);
        assert!(fine < 0.8 * coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn ns_is_heavier_than_rd_per_iteration() {
        use crate::rd::{solve_rd, RdConfig};
        let mesh = StructuredHexMesh::unit_cube(3);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, 2));
        let r = run_spmd(cfg(2), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), 2);
            let rd = solve_rd(
                &dmesh,
                &RdConfig {
                    steps: 2,
                    ..RdConfig::default()
                },
                comm,
            );
            let ns = solve_ns(
                &dmesh,
                &NsConfig {
                    steps: 2,
                    ..NsConfig::default()
                },
                comm,
            );
            (rd.iterations[1].total, ns.iterations[1].total)
        });
        for res in &r {
            let (rd_t, ns_t) = res.value;
            assert!(ns_t > 2.0 * rd_t, "ns {ns_t} vs rd {rd_t}");
        }
    }

    #[test]
    fn gmres_momentum_solver_matches_bicgstab() {
        // Both Krylov choices converge to the same velocity field.
        let bi = run_ns(
            2,
            1,
            NsConfig {
                steps: 2,
                ..NsConfig::default()
            },
        );
        let gm = run_ns(
            2,
            1,
            NsConfig {
                steps: 2,
                momentum_solver: MomentumSolver::Gmres { restart: 30 },
                ..NsConfig::default()
            },
        );
        let rel = (bi[0].vel_l2_error - gm[0].vel_l2_error).abs() / bi[0].vel_l2_error.max(1e-30);
        assert!(
            rel < 1e-4,
            "bicgstab {} vs gmres {}",
            bi[0].vel_l2_error,
            gm[0].vel_l2_error
        );
    }

    #[test]
    fn resumed_ns_run_reproduces_the_trajectory_bitwise() {
        use hetero_simmpi::collectives::ReduceOp;
        let mesh = StructuredHexMesh::unit_cube(2);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, 2));
        let ns_cfg = NsConfig {
            steps: 4,
            ..NsConfig::default()
        };
        let results = run_spmd(cfg(2), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), 2);
            let mut saved: Option<NsResume> = None;
            let dense_of = |dm: &DofMap, v: &DistVector| {
                let mut d = vec![0.0; dm.n_global()];
                for l in 0..dm.n_owned() {
                    d[dm.global_id(l)] = v.owned()[l];
                }
                d
            };
            {
                let mut obs = |view: &NsStepView<'_>, _comm: &mut SimComm| {
                    if view.step == 2 {
                        saved = Some(NsResume {
                            start_step: 2,
                            hist: view
                                .hist
                                .iter()
                                .map(|comps| {
                                    std::array::from_fn(|i| dense_of(view.vmap, &comps[i]))
                                })
                                .collect(),
                            pressure: dense_of(view.pmap, view.pressure),
                        });
                    }
                };
                let full = solve_ns_with(&dmesh, &ns_cfg, None, Some(&mut obs), comm);
                let mut resume = saved.expect("observer fired at step 2");
                for comps in &mut resume.hist {
                    for f in comps.iter_mut() {
                        *f = comm.allreduce(ReduceOp::Sum, f);
                    }
                }
                resume.pressure = comm.allreduce(ReduceOp::Sum, &resume.pressure);
                let resumed = solve_ns_with(&dmesh, &ns_cfg, Some(&resume), None, comm);
                assert_eq!(resumed.iterations.len(), 2);
                (
                    full.vel_linf_error,
                    full.vel_l2_error,
                    resumed.vel_linf_error,
                    resumed.vel_l2_error,
                )
            }
        });
        for r in &results {
            let (fl, f2, rl, r2) = r.value;
            assert_eq!(fl, rl, "vel linf must match bitwise");
            assert_eq!(f2, r2, "vel l2 must match bitwise");
        }
    }

    #[test]
    fn pressure_solve_iterations_grow_with_resolution() {
        let its = |n: usize| -> usize {
            let r = run_ns(
                n,
                1,
                NsConfig {
                    steps: 1,
                    ..NsConfig::default()
                },
            );
            r[0].p_iters[0]
        };
        assert!(its(4) > its(2));
    }
}
