//! Per-iteration phase timing — the quantity every figure of the paper
//! plots.
//!
//! The paper records, for each time-step iteration, "the average times of
//! assembly, preconditioning, and solver phases with the total maximal
//! iteration time", discarding the first 5 iterations to exclude MPI
//! startup artifacts. [`PhaseTimes`] holds one iteration's simulated
//! durations; [`summarize`] applies the same discard-and-average reduction.

use serde::{Deserialize, Serialize};

/// Simulated durations (seconds) of one iteration's phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Matrix/vector assembly — the paper's step (ii).
    pub assembly: f64,
    /// Preconditioner computation — step (iiia).
    pub precond: f64,
    /// Krylov solution — step (iiib).
    pub solve: f64,
    /// Whole iteration (>= sum of the above; includes BC application etc.).
    pub total: f64,
}

impl PhaseTimes {
    /// Element-wise maximum (used to reduce per-rank times to the critical
    /// rank, the paper's "total maximal iteration time").
    pub fn max(self, other: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            assembly: self.assembly.max(other.assembly),
            precond: self.precond.max(other.precond),
            solve: self.solve.max(other.solve),
            total: self.total.max(other.total),
        }
    }

    /// Element-wise sum.
    #[allow(clippy::should_implement_trait)] // deliberate value-returning helper
    pub fn add(self, other: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            assembly: self.assembly + other.assembly,
            precond: self.precond + other.precond,
            solve: self.solve + other.solve,
            total: self.total + other.total,
        }
    }

    /// Element-wise division by a scalar.
    pub fn scale(self, s: f64) -> PhaseTimes {
        PhaseTimes {
            assembly: self.assembly * s,
            precond: self.precond * s,
            solve: self.solve * s,
            total: self.total * s,
        }
    }
}

/// Records one iteration's phase boundaries from a rank's virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRecorder {
    start: f64,
    last: f64,
    times: PhaseTimes,
}

impl PhaseRecorder {
    /// Starts recording at virtual time `clock`.
    pub fn start(clock: f64) -> Self {
        PhaseRecorder {
            start: clock,
            last: clock,
            times: PhaseTimes::default(),
        }
    }

    /// Marks the end of the assembly phase.
    pub fn end_assembly(&mut self, clock: f64) {
        self.times.assembly += clock - self.last;
        self.last = clock;
    }

    /// Marks the end of the preconditioner phase.
    pub fn end_precond(&mut self, clock: f64) {
        self.times.precond += clock - self.last;
        self.last = clock;
    }

    /// Marks the end of the solve phase.
    pub fn end_solve(&mut self, clock: f64) {
        self.times.solve += clock - self.last;
        self.last = clock;
    }

    /// Finishes the iteration and returns its phase times.
    pub fn finish(mut self, clock: f64) -> PhaseTimes {
        self.times.total = clock - self.start;
        self.times
    }

    /// Virtual time the iteration started at.
    pub fn started(&self) -> f64 {
        self.start
    }

    /// Start of the *current* phase segment (the clock passed to the last
    /// `end_*` call, or the iteration start). Lets callers emit a trace
    /// span for the segment an `end_*` call is about to close, using the
    /// exact same boundaries the recorder accumulates.
    pub fn mark(&self) -> f64 {
        self.last
    }
}

/// The paper's reduction: drop the first `discard` iterations, average the
/// rest. Returns `None` if nothing remains.
pub fn summarize(iterations: &[PhaseTimes], discard: usize) -> Option<PhaseTimes> {
    let kept = iterations.get(discard.min(iterations.len())..)?;
    if kept.is_empty() {
        return None;
    }
    let sum = kept
        .iter()
        .fold(PhaseTimes::default(), |acc, &t| acc.add(t));
    Some(sum.scale(1.0 / kept.len() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(a: f64, p: f64, s: f64, t: f64) -> PhaseTimes {
        PhaseTimes {
            assembly: a,
            precond: p,
            solve: s,
            total: t,
        }
    }

    #[test]
    fn recorder_splits_a_timeline() {
        let mut rec = PhaseRecorder::start(10.0);
        rec.end_assembly(12.5);
        rec.end_precond(13.0);
        rec.end_solve(17.0);
        let t = rec.finish(17.25);
        assert_eq!(t.assembly, 2.5);
        assert_eq!(t.precond, 0.5);
        assert_eq!(t.solve, 4.0);
        assert_eq!(t.total, 7.25);
        assert!(t.total >= t.assembly + t.precond + t.solve - 1e-12);
    }

    #[test]
    fn recorder_accumulates_repeated_phases() {
        // NS solves several systems per iteration; phases interleave.
        let mut rec = PhaseRecorder::start(0.0);
        rec.end_assembly(1.0);
        rec.end_solve(3.0);
        rec.end_assembly(4.0); // second assembly segment
        rec.end_solve(9.0);
        let t = rec.finish(9.0);
        assert_eq!(t.assembly, 2.0);
        assert_eq!(t.solve, 7.0);
    }

    #[test]
    fn max_is_elementwise() {
        let a = pt(1.0, 5.0, 2.0, 8.0);
        let b = pt(2.0, 1.0, 3.0, 6.0);
        assert_eq!(a.max(b), pt(2.0, 5.0, 3.0, 8.0));
    }

    #[test]
    fn summarize_discards_warmup() {
        let warm = pt(100.0, 100.0, 100.0, 300.0);
        let steady = pt(1.0, 2.0, 3.0, 6.0);
        let iters = vec![warm, warm, steady, steady, steady, steady];
        let avg = summarize(&iters, 2).unwrap();
        assert_eq!(avg, steady);
    }

    #[test]
    fn summarize_empty_after_discard() {
        let iters = vec![pt(1.0, 1.0, 1.0, 3.0)];
        assert!(summarize(&iters, 5).is_none());
        assert!(summarize(&[], 0).is_none());
    }

    #[test]
    fn summarize_averages() {
        let iters = vec![pt(1.0, 0.0, 0.0, 1.0), pt(3.0, 0.0, 0.0, 3.0)];
        let avg = summarize(&iters, 0).unwrap();
        assert_eq!(avg.assembly, 2.0);
        assert_eq!(avg.total, 2.0);
    }
}
