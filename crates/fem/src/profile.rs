//! Analytic per-cell/per-iteration work formulas.
//!
//! These are shared by the real assembler (which charges them to the
//! simulator while reusing precomputed uniform-cell kernels) and by the
//! modeled large-scale engine (which evaluates them without doing the math
//! at all). Keeping them in one place guarantees the two engines price
//! compute identically.

use crate::element::ElementOrder;
use hetero_simmpi::Work;

/// Work to integrate one cell's element matrix for `ops` operator terms
/// (mass, stiffness, convection ~ 2): the quadrature triple loop evaluates
/// `npe_row * npe_col` updates plus shape-function tables at each of the
/// `nq` points.
pub fn assembly_matrix_work(row: ElementOrder, col: ElementOrder, ops: usize) -> Work {
    let nq = row
        .quadrature_points_per_axis()
        .max(col.quadrature_points_per_axis())
        .pow(3) as f64;
    let nr = row.nodes_per_element() as f64;
    let nc = col.nodes_per_element() as f64;
    let flops = nq * (nr * nc * 6.0 * ops as f64 + (nr + nc) * 24.0);
    // Scatter traffic: one read-modify-write per (a, b) pair.
    let bytes = nq * nr * nc * 4.0 + nr * nc * 24.0;
    Work::new(flops, bytes)
}

/// Work to integrate one cell's load vector.
pub fn assembly_vector_work(order: ElementOrder) -> Work {
    let nq = order.quadrature_points_per_axis().pow(3) as f64;
    let npe = order.nodes_per_element() as f64;
    Work::new(nq * npe * 10.0, npe * 24.0)
}

/// Average stored nonzeros per matrix row for a scalar operator on a large
/// structured mesh (interior stencil sizes; Q2 averaged over its node
/// classes).
pub fn stencil_nnz_per_row(order: ElementOrder) -> f64 {
    match order {
        ElementOrder::Q1 => 27.0,
        ElementOrder::Q2 => 64.0,
    }
}

/// Empirical Krylov iteration-count law for the RD solve (CG + Jacobi).
///
/// The RD operator `(alpha/dt - 2/t) M + (1/t^2) K` is mass-dominated for
/// the paper's time steps, so its condition number — and the iteration
/// count — grows slowly with resolution. Calibrated against the numerical
/// engine on `8^3 .. 40^3`-cell meshes (see `tests/model_validation.rs`);
/// the law is `iters ~ a + b * n^(1/2)` in the global cells-per-axis `n`.
pub fn rd_cg_iters(cells_per_axis: usize) -> usize {
    (8.0 + 2.1 * (cells_per_axis as f64).sqrt()).round() as usize
}

/// Empirical iteration law for one NS velocity solve (BiCGStab + Jacobi):
/// convection + mass dominance keep it nearly flat.
pub fn ns_velocity_iters(cells_per_axis: usize) -> usize {
    (6.0 + 0.9 * (cells_per_axis as f64).sqrt()).round() as usize
}

/// Empirical iteration law for the NS pressure-Poisson solve (CG + SSOR):
/// a pure Laplacian, iterations grow ~ linearly in the mesh diameter.
pub fn ns_pressure_iters(cells_per_axis: usize) -> usize {
    (10.0 + 1.35 * cells_per_axis as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q2_assembly_costs_more_than_q1() {
        let q1 = assembly_matrix_work(ElementOrder::Q1, ElementOrder::Q1, 2);
        let q2 = assembly_matrix_work(ElementOrder::Q2, ElementOrder::Q2, 2);
        assert!(q2.flops > 10.0 * q1.flops, "{} vs {}", q2.flops, q1.flops);
    }

    #[test]
    fn more_operator_terms_cost_more() {
        let one = assembly_matrix_work(ElementOrder::Q2, ElementOrder::Q2, 1);
        let four = assembly_matrix_work(ElementOrder::Q2, ElementOrder::Q2, 4);
        assert!(four.flops > 2.0 * one.flops);
    }

    #[test]
    fn iteration_laws_grow_monotonically() {
        for law in [rd_cg_iters, ns_velocity_iters, ns_pressure_iters] {
            let mut prev = 0;
            for n in [20usize, 40, 80, 120, 160, 200] {
                let it = law(n);
                assert!(it >= prev);
                prev = it;
            }
        }
    }

    #[test]
    fn pressure_solve_hardest() {
        // The Poisson solve dominates iteration counts at scale.
        assert!(ns_pressure_iters(200) > rd_cg_iters(200));
        assert!(ns_pressure_iters(200) > ns_velocity_iters(200));
    }
}
