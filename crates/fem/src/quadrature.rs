//! Tensor-product Gauss–Legendre quadrature on the unit cube, plus
//! precomputed shape-function tabulations ([`ShapeTable`]) that let the
//! assembly hot loops run allocation-free.

use crate::element::ElementOrder;
use hetero_mesh::Point3;

/// Gauss–Legendre nodes and weights on `[0, 1]`.
///
/// Supports 1–4 points (exact for polynomials of degree `2n - 1`), enough
/// for Q2 mass matrices (degree-4 integrands per axis need 3 points).
#[derive(Debug, Clone, PartialEq)]
pub struct GaussRule1d {
    /// Abscissae in `[0, 1]`.
    pub points: Vec<f64>,
    /// Weights summing to 1.
    pub weights: Vec<f64>,
}

impl GaussRule1d {
    /// The `n`-point rule.
    ///
    /// # Panics
    /// Panics unless `1 <= n <= 4`.
    pub fn new(n: usize) -> Self {
        // Standard [-1, 1] data, mapped to [0, 1]: x -> (x + 1) / 2, w -> w / 2.
        let (pts, wts): (Vec<f64>, Vec<f64>) = match n {
            1 => (vec![0.0], vec![2.0]),
            2 => {
                let a = 1.0 / 3.0f64.sqrt();
                (vec![-a, a], vec![1.0, 1.0])
            }
            3 => {
                let a = (3.0f64 / 5.0).sqrt();
                (vec![-a, 0.0, a], vec![5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0])
            }
            4 => {
                let a = (3.0 / 7.0 - 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
                let b = (3.0 / 7.0 + 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
                let wa = (18.0 + 30.0f64.sqrt()) / 36.0;
                let wb = (18.0 - 30.0f64.sqrt()) / 36.0;
                (vec![-b, -a, a, b], vec![wb, wa, wa, wb])
            }
            _ => panic!("unsupported Gauss rule size: {n}"),
        };
        GaussRule1d {
            points: pts.iter().map(|x| 0.5 * (x + 1.0)).collect(),
            weights: wts.iter().map(|w| 0.5 * w).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the rule is empty (never true for constructed rules).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A tensor-product rule on `[0,1]^3`: `n^3` points.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussRule3d {
    /// Quadrature points `(x, y, z)`.
    pub points: Vec<[f64; 3]>,
    /// Weights summing to 1 (the reference volume).
    pub weights: Vec<f64>,
}

impl GaussRule3d {
    /// The `n^3`-point tensor rule.
    pub fn new(n: usize) -> Self {
        let r = GaussRule1d::new(n);
        let mut points = Vec::with_capacity(n * n * n);
        let mut weights = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    points.push([r.points[i], r.points[j], r.points[k]]);
                    weights.push(r.weights[i] * r.weights[j] * r.weights[k]);
                }
            }
        }
        GaussRule3d { points, weights }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the rule is empty (never true for constructed rules).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrates `f` over the unit cube.
    pub fn integrate<F: FnMut([f64; 3]) -> f64>(&self, mut f: F) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(&p, &w)| w * f(p))
            .sum()
    }
}

/// Shape functions and *physical* gradients of every basis function of one
/// element order, tabulated at every point of a quadrature rule on a
/// uniform brick cell of size `h`.
///
/// The assembly kernels used to evaluate `ElementOrder::shape` /
/// `grad_shape` (and allocate fresh `Vec`s) at every quadrature point of
/// every call; tabulating once hoists both the evaluations and the
/// allocations out of the hot loops. The tabulated values are produced by
/// the exact same pure functions in the exact same order, so kernels built
/// from a table are bitwise identical to the untabulated ones.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeTable {
    /// Nodes per element.
    pub npe: usize,
    /// Quadrature points.
    pub nqp: usize,
    /// Quadrature weights (length `nqp`).
    pub weights: Vec<f64>,
    /// `shapes[q * npe + a]` = shape function `a` at point `q`.
    shapes: Vec<f64>,
    /// `grads[q * npe + a]` = physical gradient (reference gradient scaled
    /// by `1/h` per axis) of shape function `a` at point `q`.
    grads: Vec<[f64; 3]>,
}

impl ShapeTable {
    /// Tabulates `order`'s basis at every point of `rule` on a cell of
    /// size `h`.
    pub fn new(order: ElementOrder, rule: &GaussRule3d, h: Point3) -> Self {
        let npe = order.nodes_per_element();
        let nqp = rule.len();
        let mut shapes = Vec::with_capacity(nqp * npe);
        let mut grads = Vec::with_capacity(nqp * npe);
        for qp in &rule.points {
            for a in 0..npe {
                shapes.push(order.shape(a, qp[0], qp[1], qp[2]));
                let g = order.grad_shape(a, qp[0], qp[1], qp[2]);
                grads.push([g[0] / h.x, g[1] / h.y, g[2] / h.z]);
            }
        }
        ShapeTable {
            npe,
            nqp,
            weights: rule.weights.clone(),
            shapes,
            grads,
        }
    }

    /// Shape function `a` at quadrature point `q`.
    #[inline]
    pub fn shape(&self, q: usize, a: usize) -> f64 {
        self.shapes[q * self.npe + a]
    }

    /// Physical gradient of shape function `a` at quadrature point `q`.
    #[inline]
    pub fn grad(&self, q: usize, a: usize) -> [f64; 3] {
        self.grads[q * self.npe + a]
    }

    /// All shape values at point `q` (length `npe`).
    #[inline]
    pub fn shapes_at(&self, q: usize) -> &[f64] {
        &self.shapes[q * self.npe..(q + 1) * self.npe]
    }

    /// All physical gradients at point `q` (length `npe`).
    #[inline]
    pub fn grads_at(&self, q: usize) -> &[[f64; 3]] {
        &self.grads[q * self.npe..(q + 1) * self.npe]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_volume() {
        for n in 1..=4 {
            let r1 = GaussRule1d::new(n);
            let s: f64 = r1.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-14, "n = {n}");
            let r3 = GaussRule3d::new(n);
            let s3: f64 = r3.weights.iter().sum();
            assert!((s3 - 1.0).abs() < 1e-13, "n = {n}");
            assert_eq!(r3.len(), n * n * n);
        }
    }

    #[test]
    fn exactness_degree_2n_minus_1() {
        // The n-point rule must integrate x^d exactly for d <= 2n - 1
        // (integral of x^d over [0,1] is 1/(d+1)) and fail for d = 2n.
        for n in 1..=4usize {
            let r = GaussRule1d::new(n);
            for d in 0..=(2 * n - 1) {
                let val: f64 = r
                    .points
                    .iter()
                    .zip(&r.weights)
                    .map(|(&x, &w)| w * x.powi(d as i32))
                    .sum();
                assert!(
                    (val - 1.0 / (d as f64 + 1.0)).abs() < 1e-13,
                    "n = {n}, degree {d}: {val}"
                );
            }
            let d = 2 * n;
            let val: f64 = r
                .points
                .iter()
                .zip(&r.weights)
                .map(|(&x, &w)| w * x.powi(d as i32))
                .sum();
            assert!(
                (val - 1.0 / (d as f64 + 1.0)).abs() > 1e-6,
                "n = {n} unexpectedly exact"
            );
        }
    }

    #[test]
    fn tensor_rule_integrates_separable_polynomial() {
        let r = GaussRule3d::new(3);
        // f = x^2 y^3 z^4: integral = (1/3)(1/4)(1/5).
        let v = r.integrate(|[x, y, z]| x * x * y * y * y * z * z * z * z);
        assert!((v - 1.0 / 60.0).abs() < 1e-13, "{v}");
    }

    #[test]
    fn tensor_rule_integrates_constants() {
        let r = GaussRule3d::new(2);
        assert!((r.integrate(|_| 7.5) - 7.5).abs() < 1e-13);
    }

    #[test]
    #[should_panic(expected = "unsupported Gauss rule")]
    fn oversized_rule_rejected() {
        GaussRule1d::new(5);
    }

    #[test]
    fn shape_table_matches_direct_evaluation_bitwise() {
        let h = Point3::new(0.5, 0.25, 0.125);
        for order in [ElementOrder::Q1, ElementOrder::Q2] {
            let rule = GaussRule3d::new(order.quadrature_points_per_axis());
            let tab = ShapeTable::new(order, &rule, h);
            assert_eq!(tab.nqp, rule.len());
            assert_eq!(tab.npe, order.nodes_per_element());
            for (q, qp) in rule.points.iter().enumerate() {
                for a in 0..tab.npe {
                    let s = order.shape(a, qp[0], qp[1], qp[2]);
                    assert_eq!(tab.shape(q, a).to_bits(), s.to_bits());
                    let g = order.grad_shape(a, qp[0], qp[1], qp[2]);
                    let expect = [g[0] / h.x, g[1] / h.y, g[2] / h.z];
                    for (got, want) in tab.grad(q, a).iter().zip(&expect) {
                        assert_eq!(got.to_bits(), want.to_bits());
                    }
                }
                assert_eq!(tab.shapes_at(q).len(), tab.npe);
                assert_eq!(tab.grads_at(q).len(), tab.npe);
            }
        }
    }
}
