//! The paper's first test case: the 3-D reaction–diffusion equation.
//!
//! Solves `du/dt - (1/t^2) lap(u) - (2/t) u = -6` on the unit cube with
//! Dirichlet conditions from the exact solution `u = t^2 |x|^2`, using BDF2
//! in time and order-1 or order-2 elements in space (the paper uses
//! order 2). Each time step is split into the paper's three measured
//! phases: assembly (ii), preconditioner (iiia), solve (iiib).
//!
//! With Q2 elements the exact solution lies in the FEM space and BDF2 is
//! exact for its quadratic time dependence, so the computed nodal values
//! match the exact solution to solver tolerance — the strongest possible
//! end-to-end verification of the distributed pipeline.

use crate::assembly::{
    apply_dirichlet, assemble_vector, scalar_kernels, AssemblyStructure, MatrixAssembly,
};
use crate::bdf::BdfOrder;
use crate::dofmap::DofMap;
use crate::element::ElementOrder;
use crate::exact::RdExact;
use crate::phase::{PhaseRecorder, PhaseTimes};
use hetero_linalg::precond::{Identity, IluZero, Jacobi, Preconditioner, Ssor};
use hetero_linalg::solver::{cg, KernelBackend, SolveOptions};
use hetero_linalg::{DistMatrix, DistVector};
use hetero_mesh::DistributedMesh;
use hetero_simmpi::SimComm;
use hetero_trace::{EventKind, Phase as TracePhase};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Preconditioner selector for the applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecondKind {
    /// No preconditioning.
    None,
    /// Diagonal scaling.
    Jacobi,
    /// Local symmetric Gauss–Seidel.
    Ssor,
    /// Local ILU(0) (additive Schwarz).
    Ilu0,
}

impl PrecondKind {
    /// Builds the preconditioner for `a`, charging setup cost.
    pub fn build(self, a: &DistMatrix, comm: &mut SimComm) -> Box<dyn Preconditioner> {
        match self {
            PrecondKind::None => Box::new(Identity),
            PrecondKind::Jacobi => Box::new(Jacobi::new(a, comm)),
            PrecondKind::Ssor => Box::new(Ssor::new(a, comm)),
            PrecondKind::Ilu0 => Box::new(IluZero::new(a, comm)),
        }
    }
}

/// Configuration of an RD run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RdConfig {
    /// Element order (the paper uses order 2).
    pub order: ElementOrder,
    /// Time integrator (the paper uses BDF2).
    pub bdf: BdfOrder,
    /// Initial time (must be positive: the PDE coefficients have 1/t).
    pub t0: f64,
    /// Time-step size.
    pub dt: f64,
    /// Number of time steps (each is one measured "iteration").
    pub steps: usize,
    /// Preconditioner for the CG solve.
    pub precond: PrecondKind,
    /// Krylov controls.
    pub solve: SolveOptions,
}

impl Default for RdConfig {
    fn default() -> Self {
        RdConfig {
            order: ElementOrder::Q2,
            bdf: BdfOrder::Two,
            t0: 1.0,
            dt: 0.05,
            steps: 8,
            precond: PrecondKind::Jacobi,
            solve: SolveOptions::default(),
        }
    }
}

/// Results of an RD run on one rank.
#[derive(Debug, Clone)]
pub struct RdReport {
    /// Phase times per time step (this rank's view). On a resumed run,
    /// covers only the steps executed by this attempt.
    pub iterations: Vec<PhaseTimes>,
    /// CG iterations per time step.
    pub krylov_iters: Vec<usize>,
    /// Nodal max error against the exact solution at the final time.
    pub linf_error: f64,
    /// Discrete L2 error at the final time.
    pub l2_error: f64,
    /// Global DoF count.
    pub n_global_dofs: usize,
}

/// Restart state for [`solve_rd_with`]: dense global values of the BDF
/// history, exactly as a checkpoint stores them.
///
/// `history[j]` holds `u` at `t0 + (start_step - j) * dt`; filling local
/// (owned + ghost) slots by global id reproduces the failure-free run's
/// in-memory state bitwise, so a resumed solve computes the exact same
/// solution trajectory (absolute step indexing keeps the float arithmetic
/// of `t` identical too).
#[derive(Debug, Clone)]
pub struct RdResume {
    /// Completed time steps (the checkpointed step index).
    pub start_step: usize,
    /// Dense global history fields, newest first; one per BDF level.
    pub history: Vec<Vec<f64>>,
}

/// What a step observer sees after each completed time step.
pub struct RdStepView<'a> {
    /// The just-completed (absolute, 1-based) step index.
    pub step: usize,
    /// The solver's DoF map (for snapshot capture).
    pub dm: &'a DofMap,
    /// BDF history, newest first; `history[0]` is the step's solution.
    pub history: &'a [DistVector],
    /// Phase times of the steps this attempt has executed so far.
    pub iterations: &'a [PhaseTimes],
}

/// Per-step callback: checkpointing hooks charge their I/O through the
/// provided communicator, keeping virtual time consistent.
pub type RdObserver<'a> = &'a mut dyn FnMut(&RdStepView<'_>, &mut SimComm);

/// The platform-independent setup artifacts of one RD rank: the DoF map
/// and the shared symbolic assembly structure (mass and system matrices
/// use the same maps and full dense element blocks, hence one structure).
/// Immutable and `Arc`-shared; see `core::prep`.
#[derive(Clone)]
pub struct RdPrep {
    /// The rank's DoF map.
    pub dm: Arc<DofMap>,
    /// Symbolic structure of every `(dm, dm)` assembly of this rank.
    pub structure: Arc<AssemblyStructure>,
}

/// Runs the RD application. Collective over all ranks of `comm`.
pub fn solve_rd(dmesh: &DistributedMesh, cfg: &RdConfig, comm: &mut SimComm) -> RdReport {
    solve_rd_with(dmesh, cfg, None, None, comm)
}

/// Runs the RD application, optionally resuming from checkpointed state
/// and/or observing each completed step (the fault-tolerance entry point).
/// Collective over all ranks of `comm`.
pub fn solve_rd_with(
    dmesh: &DistributedMesh,
    cfg: &RdConfig,
    resume: Option<&RdResume>,
    observer: Option<RdObserver<'_>>,
    comm: &mut SimComm,
) -> RdReport {
    solve_rd_prepared(dmesh, cfg, resume, observer, None, comm).0
}

/// [`solve_rd_with`] with optional prepared setup artifacts. With
/// `prep = Some(..)` the DoF map is reused via [`DofMap::replay_build`]
/// and both assemblies start from the shared symbolic structure; virtual
/// time, wire traffic, and every computed value are bitwise identical to
/// the fresh path. Always returns the rank's [`RdPrep`] (cheap `Arc`
/// clones) so first runs can seed the prepared-scenario cache.
pub fn solve_rd_prepared(
    dmesh: &DistributedMesh,
    cfg: &RdConfig,
    resume: Option<&RdResume>,
    mut observer: Option<RdObserver<'_>>,
    prep: Option<&RdPrep>,
    comm: &mut SimComm,
) -> (RdReport, RdPrep) {
    assert!(cfg.t0 > 0.0 && cfg.dt > 0.0 && cfg.steps > 0);
    assert!(
        cfg.t0 - cfg.bdf.steps() as f64 * cfg.dt > 0.0,
        "history times must stay positive"
    );
    let ex = RdExact;
    let dm = match prep {
        Some(p) => DofMap::replay_build(&p.dm, comm),
        None => Arc::new(DofMap::build(dmesh, cfg.order, comm)),
    };
    let h = dmesh.mesh().cell_size();
    let kern = scalar_kernels(cfg.order, h);
    let npe = cfg.order.nodes_per_element();

    // The mass matrix is time-independent: assembled once, used to apply the
    // BDF history term each step.
    let mut mass_asm = match prep {
        Some(p) => MatrixAssembly::with_structure(1, Arc::clone(&p.structure)),
        None => MatrixAssembly::new(1),
    };
    let mass = mass_asm.assemble(&dm, &dm, comm, |_i, out| out.copy_from_slice(&kern.mass));

    // BDF history (u^{n-1}, u^{n-2}, ...): seeded from the exact solution,
    // or — on restart — refilled from the checkpoint's dense global fields
    // (owned and ghost slots alike, matching a post-update_ghosts state).
    let start_step = match resume {
        Some(r) => {
            assert!(r.start_step < cfg.steps, "resume beyond the final step");
            assert_eq!(r.history.len(), cfg.bdf.steps(), "resume history depth");
            r.start_step
        }
        None => 0,
    };
    let mut history: Vec<_> = match resume {
        Some(r) => r
            .history
            .iter()
            .map(|dense| {
                assert_eq!(dense.len(), dm.n_global(), "resume field size");
                let mut v = dm.new_vector();
                for l in 0..dm.n_local() {
                    v.as_mut_slice()[l] = dense[dm.global_id(l)];
                }
                v
            })
            .collect(),
        None => (1..=cfg.bdf.steps())
            .map(|j| dm.interpolate(|p| ex.u(p, cfg.t0 - (j as f64 - 1.0) * cfg.dt)))
            .collect(),
    };
    // history[0] = u at t0 + start_step*dt, history[1] = one dt earlier.

    let alpha = cfg.bdf.alpha();
    let hist_coeffs = cfg.bdf.history();

    let mut iterations = Vec::with_capacity(cfg.steps - start_step);
    let mut krylov_iters = Vec::with_capacity(cfg.steps - start_step);
    let mut u = dm.new_vector();
    // The system matrix changes values every step but never structure:
    // cache the sparsity pattern + scatter permutation across steps. The
    // structure is the mass matrix's (same maps, full dense blocks).
    let mut system_asm = match mass_asm.shared_structure() {
        Some(s) => MatrixAssembly::with_structure(2, s),
        None => MatrixAssembly::new(2),
    };

    for step in (start_step + 1)..=cfg.steps {
        let t = cfg.t0 + step as f64 * cfg.dt;
        let mut rec = PhaseRecorder::start(comm.clock());

        // -- Assembly (ii): system matrix, history term, source, BCs.
        // `MatrixFree` refreshes a retained operator in place (identical
        // wire traffic, work charges, and bits — see `assemble_in_place`);
        // `Assembled` rebuilds a fresh one through the cached pattern.
        let m_coeff = alpha / cfg.dt + ex.reaction(t);
        let k_coeff = ex.diffusion(t);
        let cell = |_i: usize, out: &mut [f64]| {
            for (o, (m, k)) in out.iter_mut().zip(kern.mass.iter().zip(&kern.stiffness)) {
                *o = m_coeff * m + k_coeff * k;
            }
        };
        let mut assembled;
        let a: &mut DistMatrix = match cfg.solve.backend {
            KernelBackend::MatrixFree => system_asm.assemble_in_place(&dm, &dm, comm, cell),
            KernelBackend::Assembled => {
                assembled = system_asm.assemble(&dm, &dm, comm, cell);
                &mut assembled
            }
        };
        // w = sum_j c_j u^{n-j} / dt, combined over owned + ghost slots so
        // the mass SpMV sees consistent data.
        let mut w = dm.new_vector();
        for (j, &c) in hist_coeffs.iter().enumerate() {
            for (wi, hi) in w.as_mut_slice().iter_mut().zip(history[j].as_slice()) {
                *wi += c / cfg.dt * hi;
            }
        }
        comm.compute(hetero_simmpi::Work::new(
            2.0 * hist_coeffs.len() as f64 * dm.n_local() as f64,
            24.0 * hist_coeffs.len() as f64 * dm.n_local() as f64,
        ));
        let mut b = mass.new_vector();
        mass.spmv(&mut w, &mut b, comm);
        let source = assemble_vector(&dm, comm, |_i, out| {
            for (o, l) in out.iter_mut().zip(&kern.load[..npe]) {
                *o = ex.source() * l;
            }
        });
        b.axpy(1.0, &source, comm);
        apply_dirichlet(&mut *a, &mut b, &dm, |p| ex.u(p, t), comm);
        let seg = rec.mark();
        rec.end_assembly(comm.clock());
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Assembly,
                step: step as u32,
            },
        );

        // -- Preconditioner (iiia).
        let seg = rec.mark();
        let precond = cfg.precond.build(&*a, comm);
        rec.end_precond(comm.clock());
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Precond,
                step: step as u32,
            },
        );

        // -- Solve (iiib). Warm start from the previous solution.
        u.copy_from(&history[0], comm);
        let stats = cg(&*a, &b, &mut u, precond.as_ref(), cfg.solve, comm);
        assert!(
            stats.converged,
            "RD solve failed at step {step}: {stats:?} (t = {t})"
        );
        krylov_iters.push(stats.iterations);
        let seg = rec.mark();
        rec.end_solve(comm.clock());
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Solve,
                step: step as u32,
            },
        );
        comm.trace_instant(EventKind::Solver {
            step: step as u32,
            iters: stats.iterations as u32,
        });

        // Rotate history (u's ghosts refreshed for the next history combo).
        let seg = rec.mark();
        u.update_ghosts(dm.plan(), comm);
        history.rotate_right(1);
        history[0].copy_from(&u, comm);
        iterations.push(rec.finish(comm.clock()));
        comm.trace_span(
            seg,
            EventKind::Phase {
                phase: TracePhase::Other,
                step: step as u32,
            },
        );
        comm.trace_span(
            rec.started(),
            EventKind::Phase {
                phase: TracePhase::Iteration,
                step: step as u32,
            },
        );

        if let Some(obs) = observer.as_mut() {
            let view = RdStepView {
                step,
                dm: &dm,
                history: &history,
                iterations: &iterations,
            };
            obs(&view, comm);
        }
    }

    let t_final = cfg.t0 + cfg.steps as f64 * cfg.dt;
    let linf_error = dm.nodal_linf_error(&history[0], |p| ex.u(p, t_final), comm);
    let l2_error = dm.nodal_l2_error(&history[0], |p| ex.u(p, t_final), comm);

    let structure = mass_asm
        .shared_structure()
        .expect("mass assembly ran above");
    let n_global_dofs = dm.n_global();
    (
        RdReport {
            iterations,
            krylov_iters,
            linf_error,
            l2_error,
            n_global_dofs,
        },
        RdPrep { dm, structure },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mesh::StructuredHexMesh;
    use hetero_partition::{BlockPartitioner, Partitioner};
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
    use std::sync::Arc;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size.div_ceil(4).max(1), 4),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 11,
        }
    }

    fn run_rd(n: usize, p: usize, rd_cfg: RdConfig) -> Vec<RdReport> {
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, p));
        run_spmd(cfg(p), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), p);
            solve_rd(&dmesh, &rd_cfg, comm)
        })
        .into_iter()
        .map(|r| r.value)
        .collect()
    }

    #[test]
    fn q2_bdf2_is_exact_to_solver_tolerance() {
        // The paper's discretization choices make the discrete solution
        // coincide with the exact one: the whole distributed pipeline must
        // reproduce it to (tight) solver tolerance.
        let reports = run_rd(
            3,
            1,
            RdConfig {
                steps: 4,
                ..RdConfig::default()
            },
        );
        assert!(
            reports[0].linf_error < 5e-6,
            "linf = {}",
            reports[0].linf_error
        );
    }

    #[test]
    fn distributed_run_matches_exactness_too() {
        let reports = run_rd(
            4,
            8,
            RdConfig {
                steps: 3,
                ..RdConfig::default()
            },
        );
        for r in &reports {
            assert!(r.linf_error < 5e-6, "linf = {}", r.linf_error);
            assert_eq!(r.iterations.len(), 3);
        }
        // Error metrics are global reductions: all ranks agree.
        let e0 = reports[0].linf_error;
        assert!(reports.iter().all(|r| (r.linf_error - e0).abs() < 1e-15));
    }

    #[test]
    fn q1_is_nodally_superconvergent_for_the_separable_solution() {
        // The exact solution t^2 (x^2 + y^2 + z^2) is a sum of 1-D
        // quadratics; on a uniform tensor grid Q1 FEM is nodally exact for
        // each 1-D factor, so even the order-1 discretization reproduces the
        // nodal values to solver tolerance. (A genuine convergence study
        // with a manufactured non-polynomial solution lives in
        // tests/integration_rd.rs.)
        let cfg = RdConfig {
            order: ElementOrder::Q1,
            steps: 2,
            dt: 0.02,
            ..RdConfig::default()
        };
        let r = run_rd(3, 1, cfg);
        assert!(r[0].l2_error < 1e-6, "l2 = {}", r[0].l2_error);
    }

    #[test]
    fn phase_times_are_positive_and_ordered() {
        let reports = run_rd(
            3,
            2,
            RdConfig {
                steps: 3,
                ..RdConfig::default()
            },
        );
        for r in &reports {
            for it in &r.iterations {
                assert!(it.assembly > 0.0);
                assert!(it.precond > 0.0);
                assert!(it.solve > 0.0);
                assert!(it.total >= it.assembly + it.precond + it.solve - 1e-12);
            }
        }
    }

    #[test]
    fn stronger_preconditioner_fewer_iterations() {
        let iters = |pk: PrecondKind| -> usize {
            let cfg = RdConfig {
                precond: pk,
                steps: 2,
                ..RdConfig::default()
            };
            run_rd(3, 1, cfg)[0].krylov_iters.iter().sum()
        };
        let none = iters(PrecondKind::None);
        let jac = iters(PrecondKind::Jacobi);
        let ilu = iters(PrecondKind::Ilu0);
        assert!(jac <= none, "jacobi {jac} vs none {none}");
        assert!(ilu < jac, "ilu {ilu} vs jacobi {jac}");
    }

    #[test]
    fn bdf1_is_less_accurate_than_bdf2() {
        let cfg1 = RdConfig {
            bdf: BdfOrder::One,
            steps: 4,
            ..RdConfig::default()
        };
        let cfg2 = RdConfig {
            bdf: BdfOrder::Two,
            steps: 4,
            ..RdConfig::default()
        };
        let e1 = run_rd(2, 1, cfg1)[0].linf_error;
        let e2 = run_rd(2, 1, cfg2)[0].linf_error;
        assert!(e1 > 100.0 * e2, "bdf1 {e1} vs bdf2 {e2}");
    }

    #[test]
    fn resumed_run_reproduces_the_trajectory_bitwise() {
        // Capture the BDF history after step 3 through the observer, then
        // resume from it: the final solution and error norms must be
        // bitwise identical to the uninterrupted run (rollback may lose
        // time, never accuracy).
        let mesh = StructuredHexMesh::unit_cube(3);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, 2));
        let rd_cfg = RdConfig {
            steps: 6,
            ..RdConfig::default()
        };
        let results = run_spmd(cfg(2), move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), 2);
            let mut saved: Option<RdResume> = None;
            {
                let mut obs = |view: &RdStepView<'_>, _comm: &mut SimComm| {
                    if view.step == 3 {
                        let dense: Vec<Vec<f64>> = view
                            .history
                            .iter()
                            .map(|v| {
                                // Owned dofs tile the global space, so an
                                // owner-only scatter sums to the exact dense
                                // field across ranks.
                                let mut d = vec![0.0; view.dm.n_global()];
                                for l in 0..view.dm.n_owned() {
                                    d[view.dm.global_id(l)] = v.owned()[l];
                                }
                                d
                            })
                            .collect();
                        saved = Some(RdResume {
                            start_step: 3,
                            history: dense,
                        });
                    }
                };
                let full = solve_rd_with(&dmesh, &rd_cfg, None, Some(&mut obs), comm);
                let mut resume = saved.expect("observer fired at step 3");
                // Merge the partial dense fields across ranks so the resume
                // state is complete (rank-local zeros filled by the peer).
                for f in &mut resume.history {
                    *f = comm.allreduce(hetero_simmpi::collectives::ReduceOp::Sum, f);
                }
                let resumed = solve_rd_with(&dmesh, &rd_cfg, Some(&resume), None, comm);
                assert_eq!(resumed.iterations.len(), 3);
                (
                    full.linf_error,
                    full.l2_error,
                    resumed.linf_error,
                    resumed.l2_error,
                )
            }
        });
        for r in &results {
            let (fl, f2, rl, r2) = r.value;
            assert_eq!(fl, rl, "linf must match bitwise");
            assert_eq!(f2, r2, "l2 must match bitwise");
        }
    }

    #[test]
    #[should_panic(expected = "history times must stay positive")]
    fn t0_too_small_rejected() {
        let cfg = RdConfig {
            t0: 0.05,
            dt: 0.05,
            ..RdConfig::default()
        };
        run_rd(2, 1, cfg);
    }
}
