//! Property-based tests of the FEM building blocks: shape-function algebra,
//! quadrature exactness, element-kernel identities, and BDF consistency.

use hetero_fem::assembly::scalar_kernels;
use hetero_fem::bdf::BdfOrder;
use hetero_fem::element::ElementOrder;
use hetero_fem::exact::{EthierSteinman, RdExact};
use hetero_fem::quadrature::{GaussRule1d, GaussRule3d};
use hetero_linalg::csr::TripletBuilder;
use hetero_mesh::Point3;
use proptest::prelude::*;

/// Assembles the triplet stream of `c1 M + c2 K` on an `n^3`-cell
/// structured mesh (serial, no communication), returning the builder and
/// the values in insertion order.
fn mesh_triplets(n: usize, o: ElementOrder, c1: f64, c2: f64) -> (TripletBuilder, Vec<f64>) {
    let q = o.q();
    let nn = q * n + 1;
    let total = nn * nn * nn;
    let kern = scalar_kernels(o, Point3::splat(1.0 / n as f64));
    let npe = o.nodes_per_element();
    let node = |i: usize, j: usize, k: usize| i + nn * (j + nn * k);
    let mut builder = TripletBuilder::with_capacity(total, total, n * n * n * npe * npe);
    let mut vals = Vec::with_capacity(n * n * n * npe * npe);
    for ck in 0..n {
        for cj in 0..n {
            for ci in 0..n {
                let dofs: Vec<usize> = (0..npe)
                    .map(|l| {
                        let (a, b, c) = o.node_abc(l);
                        node(q * ci + a, q * cj + b, q * ck + c)
                    })
                    .collect();
                for a in 0..npe {
                    for b in 0..npe {
                        let v = c1 * kern.mass[a * npe + b] + c2 * kern.stiffness[a * npe + b];
                        builder.add(dofs[a], dofs[b], v);
                        vals.push(v);
                    }
                }
            }
        }
    }
    (builder, vals)
}

fn unit_point() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0)
}

fn order() -> impl Strategy<Value = ElementOrder> {
    prop_oneof![Just(ElementOrder::Q1), Just(ElementOrder::Q2)]
}

proptest! {
    #[test]
    fn partition_of_unity_everywhere(o in order(), (x, y, z) in unit_point()) {
        let sum: f64 = (0..o.nodes_per_element()).map(|i| o.shape(i, x, y, z)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
        let mut g = [0.0f64; 3];
        for i in 0..o.nodes_per_element() {
            let gi = o.grad_shape(i, x, y, z);
            for (acc, gd) in g.iter_mut().zip(gi) {
                *acc += gd;
            }
        }
        for gd in g {
            prop_assert!(gd.abs() < 1e-11);
        }
    }

    #[test]
    fn interpolation_reproduces_polynomials_of_the_order(
        o in order(),
        (x, y, z) in unit_point(),
        c in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        // p(x,y,z) = c0 + c1 x + c2 y + c3 z is in both spaces.
        let f = |p: [f64; 3]| c[0] + c[1] * p[0] + c[2] * p[1] + c[3] * p[2];
        let interp: f64 = (0..o.nodes_per_element())
            .map(|i| f(o.node_point(i)) * o.shape(i, x, y, z))
            .sum();
        prop_assert!((interp - f([x, y, z])).abs() < 1e-11);
    }

    #[test]
    fn gauss_rules_integrate_their_degree(n in 1usize..=4, d in 0usize..8, scale in 0.5f64..3.0) {
        prop_assume!(d < 2 * n);
        let r = GaussRule1d::new(n);
        let val: f64 = r
            .points
            .iter()
            .zip(&r.weights)
            .map(|(&x, &w)| w * scale * x.powi(d as i32))
            .sum();
        prop_assert!((val - scale / (d as f64 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn tensor_rule_integrates_products(
        n in 2usize..=4,
        (dx, dy, dz) in (0usize..4, 0usize..4, 0usize..4),
    ) {
        prop_assume!(dx.max(dy).max(dz) < 2 * n);
        let r = GaussRule3d::new(n);
        let v = r.integrate(|[x, y, z]| {
            x.powi(dx as i32) * y.powi(dy as i32) * z.powi(dz as i32)
        });
        let expect = 1.0 / ((dx as f64 + 1.0) * (dy as f64 + 1.0) * (dz as f64 + 1.0));
        prop_assert!((v - expect).abs() < 1e-12, "{v} vs {expect}");
    }

    #[test]
    fn mass_kernel_total_equals_cell_volume(
        o in order(),
        hx in 0.01f64..2.0, hy in 0.01f64..2.0, hz in 0.01f64..2.0,
    ) {
        let k = scalar_kernels(o, Point3::new(hx, hy, hz));
        let total: f64 = k.mass.iter().sum();
        prop_assert!((total - hx * hy * hz).abs() < 1e-10 * (1.0 + hx * hy * hz));
        // Mass diagonals are positive; the matrix is symmetric.
        let npe = k.npe;
        for a in 0..npe {
            prop_assert!(k.mass[a * npe + a] > 0.0);
            for b in 0..npe {
                prop_assert!((k.mass[a * npe + b] - k.mass[b * npe + a]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn stiffness_kernel_is_symmetric_psd_and_annihilates_constants(
        o in order(),
        hx in 0.05f64..2.0, hy in 0.05f64..2.0, hz in 0.05f64..2.0,
        v in prop::collection::vec(-1.0f64..1.0, 27),
    ) {
        let k = scalar_kernels(o, Point3::new(hx, hy, hz));
        let npe = k.npe;
        // Symmetry + zero row sums.
        for a in 0..npe {
            let row: f64 = (0..npe).map(|b| k.stiffness[a * npe + b]).sum();
            prop_assert!(row.abs() < 1e-11);
            for b in 0..npe {
                prop_assert!((k.stiffness[a * npe + b] - k.stiffness[b * npe + a]).abs() < 1e-12);
            }
        }
        // Positive semidefinite: v' K v >= 0 for the random test vector.
        let mut quad = 0.0;
        for a in 0..npe {
            for b in 0..npe {
                quad += v[a] * k.stiffness[a * npe + b] * v[b];
            }
        }
        prop_assert!(quad > -1e-10, "v'Kv = {quad}");
    }

    #[test]
    fn symbolic_numeric_rebuild_equals_build_on_random_meshes(
        n in 1usize..=3,
        o in order(),
        c1 in 0.1f64..5.0,
        c2 in -2.0f64..2.0,
        scale in 0.25f64..4.0,
    ) {
        // The symbolic pattern + numeric scatter must reproduce a
        // from-scratch build exactly (same sparsity, same duplicate-merge
        // order, bitwise-equal values) — this is what lets the BDF2 time
        // loops reuse one pattern across steps.
        let (builder, vals) = mesh_triplets(n, o, c1, c2);
        let pattern = builder.symbolic();
        let rebuilt = pattern.numeric(&vals);
        let built = builder.build();
        prop_assert_eq!(&rebuilt, &built);
        // Fresh values through the same pattern keep the structure intact.
        let scaled: Vec<f64> = vals.iter().map(|v| scale * v).collect();
        let rescaled = pattern.numeric(&scaled);
        prop_assert_eq!(rescaled.nnz(), built.nnz());
        for r in 0..rescaled.num_rows() {
            prop_assert_eq!(rescaled.row(r).0, built.row(r).0);
        }
    }

    #[test]
    fn bdf_derivatives_are_consistent(
        o in prop_oneof![Just(BdfOrder::One), Just(BdfOrder::Two)],
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        t in 1.0f64..3.0,
        dt in 0.01f64..0.2,
    ) {
        // Exact for linear functions u = a t + b for both orders.
        let u = |s: f64| a * s + b;
        let mut v = o.alpha() * u(t);
        for (j, c) in o.history().iter().enumerate() {
            v -= c * u(t - (j as f64 + 1.0) * dt);
        }
        prop_assert!((v / dt - a).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn rd_exact_satisfies_its_pde_at_random_points(
        x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0, t in 0.5f64..3.0,
    ) {
        let ex = RdExact;
        let p = Point3::new(x, y, z);
        // Analytic identities: du/dt = 2t|x|^2, lap(u) = 6t^2.
        let dudt = 2.0 * t * p.norm_sq();
        let lap = 6.0 * t * t;
        let residual = dudt - ex.diffusion(t) * lap + ex.reaction(t) * ex.u(p, t);
        prop_assert!((residual - ex.source()).abs() < 1e-9);
    }

    #[test]
    fn ethier_steinman_divergence_free_at_random_points(
        x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0,
        t in 0.0f64..0.1, nu in 0.01f64..1.0,
    ) {
        let es = EthierSteinman::classical(nu);
        let eps = 1e-6;
        let mut div = 0.0;
        for i in 0..3 {
            let mut hi = Point3::new(x, y, z);
            let mut lo = hi;
            match i {
                0 => { hi.x += eps; lo.x -= eps; }
                1 => { hi.y += eps; lo.y -= eps; }
                _ => { hi.z += eps; lo.z -= eps; }
            }
            div += (es.velocity(hi, t)[i] - es.velocity(lo, t)[i]) / (2.0 * eps);
        }
        prop_assert!(div.abs() < 1e-6, "div = {div}");
    }
}
