//! Local compressed-sparse-row matrices and the triplet assembler.
//!
//! Time steppers rebuild the same matrix every step with new values, so
//! the assembler is split into a *symbolic* phase ([`TripletBuilder::symbolic`],
//! run once per mesh/partition: sorts the coordinates and freezes the
//! sparsity pattern plus a triplet-to-slot scatter) and a *numeric* phase
//! ([`SparsityPattern::numeric`]: scatters a fresh value array into the
//! frozen pattern without re-sorting). The numeric phase reproduces
//! [`TripletBuilder::build`] bitwise: the scatter accumulates duplicate
//! coordinates in exactly the sorted order `build` would sum them.

/// Minimum row count before [`CsrMatrix::spmv`] fans out across the
/// intra-rank thread pool. Row results are independent of the split, so
/// this threshold affects speed only, never values.
const PAR_SPMV_MIN_ROWS: usize = 256;

/// Rows per parallel chunk in [`CsrMatrix::spmv`].
const SPMV_CHUNK_ROWS: usize = 512;

/// A local sparse matrix in CSR format. Rows are this rank's owned rows;
/// columns address the rank's local vector space (owned entries followed by
/// ghosts).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Accumulates `(row, col, value)` triplets, summing duplicates — the
/// natural output of FEM element-loop assembly.
#[derive(Debug, Clone, Default)]
pub struct TripletBuilder {
    num_rows: usize,
    num_cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a `num_rows x num_cols` matrix.
    pub fn new(num_rows: usize, num_cols: usize) -> Self {
        TripletBuilder {
            num_rows,
            num_cols,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with reserved capacity for `cap` triplets.
    pub fn with_capacity(num_rows: usize, num_cols: usize, cap: usize) -> Self {
        TripletBuilder {
            num_rows,
            num_cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the coordinates are out of range.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(
            row < self.num_rows && col < self.num_cols,
            "({row}, {col}) out of range"
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-merge) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the CSR matrix, summing duplicate coordinates.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = Vec::with_capacity(self.num_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in self.entries {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr.len() == r + 1) {
                if last_c == c && col_idx.len() > *row_ptr.last().unwrap() {
                    *values.last_mut().unwrap() += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.num_rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix {
            num_rows: self.num_rows,
            num_cols: self.num_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Freezes this builder's coordinate sequence into a reusable
    /// [`SparsityPattern`]. The builder's values are ignored; pair the
    /// pattern with [`SparsityPattern::numeric`] and a value array in the
    /// same triplet order to obtain the matrix `build` would have produced.
    pub fn symbolic(&self) -> SparsityPattern {
        // Tag each coordinate with its insertion index, then sort with the
        // same key `build` uses. Comparison-based sorting permutes equal
        // keys as a function of the key sequence alone, so this permutation
        // is exactly the one `build` applies to the (r, c, v) triplets.
        let mut tagged: Vec<(usize, usize, usize)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(k, &(r, c, _))| (r, c, k))
            .collect();
        tagged.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_ptr = Vec::with_capacity(self.num_rows + 1);
        let mut col_idx = Vec::new();
        let mut perm = Vec::with_capacity(tagged.len());
        let mut slot = Vec::with_capacity(tagged.len());
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, k) in tagged {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            perm.push(k);
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr.len() == r + 1) {
                if last_c == c && col_idx.len() > *row_ptr.last().unwrap() {
                    slot.push(col_idx.len() - 1);
                    continue;
                }
            }
            slot.push(col_idx.len());
            col_idx.push(c);
        }
        while current_row < self.num_rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        SparsityPattern {
            num_rows: self.num_rows,
            num_cols: self.num_cols,
            row_ptr,
            col_idx,
            perm,
            slot,
        }
    }
}

/// A frozen sparsity pattern plus the triplet-to-slot scatter, produced by
/// [`TripletBuilder::symbolic`]. Reusing it across time steps skips the
/// O(nnz log nnz) sort that dominates from-scratch matrix construction.
#[derive(Debug, Clone)]
pub struct SparsityPattern {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Sorted position -> original triplet index.
    perm: Vec<usize>,
    /// Sorted position -> CSR slot (nondecreasing; duplicates share slots).
    slot: Vec<usize>,
}

impl SparsityPattern {
    /// Rows of matrices built from this pattern.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Columns of matrices built from this pattern.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Stored entries of matrices built from this pattern.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of triplets the pattern was built from (the length
    /// [`SparsityPattern::numeric`] expects).
    #[inline]
    pub fn num_triplets(&self) -> usize {
        self.perm.len()
    }

    /// Numeric phase: scatters `triplet_values` (one value per original
    /// triplet, in insertion order) into the frozen pattern. Bitwise
    /// identical to rebuilding via [`TripletBuilder::build`] with the same
    /// coordinates and values.
    ///
    /// # Panics
    /// Panics if `triplet_values.len()` differs from the triplet count the
    /// pattern was built from.
    pub fn numeric(&self, triplet_values: &[f64]) -> CsrMatrix {
        let mut values = vec![0.0; self.col_idx.len()];
        self.numeric_into(triplet_values, &mut values);
        CsrMatrix {
            num_rows: self.num_rows,
            num_cols: self.num_cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values,
        }
    }

    /// The allocation-free numeric phase: scatters `triplet_values` into an
    /// existing value buffer of a matrix previously built from this pattern
    /// (obtained via [`CsrMatrix::values_mut`]). The scatter runs in the
    /// same sorted order as [`Self::numeric`], so the refreshed values are
    /// bitwise identical to a full rebuild — without reallocating the value
    /// array or recloning the pattern.
    ///
    /// # Panics
    /// Panics if `triplet_values.len()` differs from the triplet count the
    /// pattern was built from, or `values.len()` from the pattern's nnz.
    pub fn numeric_into(&self, triplet_values: &[f64], values: &mut [f64]) {
        assert_eq!(
            triplet_values.len(),
            self.perm.len(),
            "value array does not match the pattern's triplet count"
        );
        assert_eq!(
            values.len(),
            self.col_idx.len(),
            "destination does not match the pattern's stored-entry count"
        );
        values.fill(0.0);
        for (&k, &s) in self.perm.iter().zip(&self.slot) {
            values[s] += triplet_values[k];
        }
    }
}

impl CsrMatrix {
    /// An all-zero matrix with no stored entries.
    pub fn zero(num_rows: usize, num_cols: usize) -> Self {
        CsrMatrix {
            num_rows,
            num_cols,
            row_ptr: vec![0; num_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// All stored values, mutable, in row-major slot order (the column
    /// structure is fixed). This is the in-place refresh hook for
    /// [`SparsityPattern::numeric_into`]: time steppers overwrite the
    /// values of a retained matrix instead of allocating a new one.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Mutable values of row `r` (column structure is fixed).
    #[inline]
    pub fn row_values_mut(&mut self, r: usize) -> (&[usize], &mut [f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &mut self.values[lo..hi])
    }

    /// Entry `(r, c)`, or 0 if not stored.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// `y = A * x`. `x` must have `num_cols` entries, `y` gets `num_rows`.
    ///
    /// Large matrices fan the row loop out across the intra-rank thread
    /// pool; each row's dot product is computed identically either way, so
    /// the result is bitwise independent of the thread count.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols);
        assert_eq!(y.len(), self.num_rows);
        if self.num_rows < PAR_SPMV_MIN_ROWS || rayon::current_num_threads() <= 1 {
            for (r, out) in y.iter_mut().enumerate() {
                *out = self.row_dot(r, x);
            }
            return;
        }
        rayon::fixed::for_each_chunk_mut(y, SPMV_CHUNK_ROWS, |_chunk, start, rows| {
            for (j, out) in rows.iter_mut().enumerate() {
                *out = self.row_dot(start + j, x);
            }
        });
    }

    /// `y[r] = (A x)[r]` for each listed row, leaving other entries of `y`
    /// untouched. Each listed row's dot product is computed exactly as
    /// [`Self::spmv`] computes it, so writing two disjoint row subsets
    /// (e.g. interior then boundary) reproduces the full product bitwise.
    pub fn spmv_rows(&self, rows: &[usize], x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols);
        assert_eq!(y.len(), self.num_rows);
        if rows.len() < PAR_SPMV_MIN_ROWS || rayon::current_num_threads() <= 1 {
            for &r in rows {
                y[r] = self.row_dot(r, x);
            }
            return;
        }
        // Scattered output slots prevent handing out disjoint &mut chunks of
        // `y`; compute per-row values in task order, then scatter serially.
        let vals = rayon::fixed::map_tasks(rows.len(), |i| self.row_dot(rows[i], x));
        for (&r, v) in rows.iter().zip(vals) {
            y[r] = v;
        }
    }

    /// Dot product of row `r` with `x`, iterating the row's columns and
    /// values as one zipped slice pair.
    #[inline]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            acc += v * x[c];
        }
        acc
    }

    /// The diagonal entries (0 where absent). Meaningful for square local
    /// blocks (`num_rows` leading columns are the owned ones).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.num_rows).map(|r| self.get(r, r)).collect()
    }

    /// Scales every stored value by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Zeroes a row and sets its diagonal to `diag` — the standard strong
    /// Dirichlet row replacement.
    ///
    /// # Panics
    /// Panics if the row has no stored diagonal entry.
    pub fn set_dirichlet_row(&mut self, r: usize, diag: f64) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        let mut found = false;
        for i in lo..hi {
            if self.col_idx[i] == r {
                self.values[i] = diag;
                found = true;
            } else {
                self.values[i] = 0.0;
            }
        }
        assert!(found, "row {r} has no stored diagonal");
    }

    /// Iterates over all stored `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.num_rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut b = TripletBuilder::new(3, 3);
        for i in 0..3usize {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i < 2 {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn build_and_query() {
        let a = small();
        assert_eq!(a.num_rows(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 1, 1.0);
        b.add(0, 1, -1.0);
        b.add(0, 1, -1.0);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(0, 1), -2.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = TripletBuilder::new(4, 4);
        b.add(0, 0, 1.0);
        b.add(3, 3, 1.0);
        let a = b.build();
        assert_eq!(a.row(1).0.len(), 0);
        assert_eq!(a.row(2).0.len(), 0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn spmv_tridiagonal() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_rectangular() {
        // 2x3: rows over owned+ghost columns.
        let mut b = TripletBuilder::new(2, 3);
        b.add(0, 0, 1.0);
        b.add(0, 2, 2.0);
        b.add(1, 1, 3.0);
        let a = b.build();
        let mut y = vec![0.0; 2];
        a.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0]);
    }

    #[test]
    fn dirichlet_row_replacement() {
        let mut a = small();
        a.set_dirichlet_row(1, 1.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.get(1, 1), 1.0);
        assert_eq!(a.get(1, 2), 0.0);
        // Other rows untouched.
        assert_eq!(a.get(0, 0), 2.0);
    }

    #[test]
    fn iter_visits_all_entries() {
        let a = small();
        let sum: f64 = a.iter().map(|(_, _, v)| v).sum();
        assert_eq!(sum, 2.0); // 3*2 - 4*1
        assert_eq!(a.iter().count(), 7);
    }

    #[test]
    fn frobenius() {
        let a = small();
        assert!((a.frobenius_norm() - (3.0 * 4.0 + 4.0 * 1.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn zero_matrix() {
        let a = CsrMatrix::zero(3, 3);
        assert_eq!(a.nnz(), 0);
        let mut y = vec![1.0; 3];
        a.spmv(&[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn scale_matrix() {
        let mut a = small();
        a.scale(2.0);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(1, 0), -2.0);
    }

    /// A messy triplet stream: shuffled insertion order, duplicates, empty
    /// rows — the numeric phase must match `build` exactly on all of it.
    fn messy_triplets(n: usize, seed: u64) -> Vec<(usize, usize, f64)> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..6 * n)
            .map(|_| {
                let r = next() as usize % n;
                let c = next() as usize % n;
                let v = (next() as f64 / 2f64.powi(31)) - 1.0;
                (r, c, v)
            })
            .collect()
    }

    #[test]
    fn numeric_phase_reproduces_build_bitwise() {
        for seed in [1, 7, 42] {
            let ts = messy_triplets(17, seed);
            let mut b = TripletBuilder::new(17, 17);
            for &(r, c, v) in &ts {
                b.add(r, c, v);
            }
            let pattern = b.symbolic();
            let values: Vec<f64> = ts.iter().map(|t| t.2).collect();
            let from_pattern = pattern.numeric(&values);
            let from_scratch = b.build();
            assert_eq!(from_pattern, from_scratch);
        }
    }

    #[test]
    fn pattern_is_reusable_with_fresh_values() {
        let ts = messy_triplets(9, 3);
        let mut b = TripletBuilder::new(9, 9);
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let pattern = b.symbolic();
        assert_eq!(pattern.num_triplets(), ts.len());
        for scale in [1.0, -0.5, 3.25] {
            let values: Vec<f64> = ts.iter().map(|t| t.2 * scale).collect();
            let mut b2 = TripletBuilder::new(9, 9);
            for &(r, c, v) in &ts {
                b2.add(r, c, v * scale);
            }
            assert_eq!(pattern.numeric(&values), b2.build());
        }
    }

    #[test]
    #[should_panic(expected = "triplet count")]
    fn numeric_rejects_wrong_value_count() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.symbolic().numeric(&[1.0, 2.0]);
    }

    #[test]
    fn spmv_is_identical_serial_and_parallel() {
        // Big enough to clear the parallel threshold.
        let n = 40usize;
        let mut b = TripletBuilder::new(n * n, n * n);
        for i in 0..n * n {
            b.add(i, i, 4.0);
            if i >= n {
                b.add(i, i - n, -1.0);
            }
            if i + n < n * n {
                b.add(i, i + n, -1.0);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut serial = vec![0.0; n * n];
        let mut parallel = vec![0.0; n * n];
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| {
                a.spmv(&x, &mut serial);
            });
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                a.spmv(&x, &mut parallel);
            });
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }
}
