//! Row-distributed sparse matrices.

use crate::csr::CsrMatrix;
use crate::vector::{DistVector, ExchangePlan};
use crate::work_costs;
use hetero_simmpi::SimComm;

/// A row-distributed sparse matrix: this rank stores the rows of its owned
/// DoFs, with columns addressing the local space `[owned | ghost]`. The
/// SpMV refreshes the input vector's ghosts, multiplies locally, and charges
/// the roofline cost — the exact kernel structure of an Epetra
/// `Multiply` + `Import` in the paper's Trilinos stack.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMatrix {
    local: CsrMatrix,
    plan: ExchangePlan,
    /// Owned entries of the *column* (input-vector) space. Equals
    /// `local.num_rows()` for square operators; differs for mixed-space
    /// (e.g. velocity x pressure) couplings.
    col_n_owned: usize,
}

impl DistMatrix {
    /// Wraps a local CSR block of a **square** operator (row and column
    /// spaces coincide) and its halo plan.
    ///
    /// # Panics
    /// Panics if the plan is inconsistent with the matrix dimensions
    /// (`num_rows` owned, `num_cols` local entries).
    pub fn new(local: CsrMatrix, plan: ExchangePlan) -> Self {
        let col_n_owned = local.num_rows();
        Self::rectangular(local, plan, col_n_owned)
    }

    /// Wraps a local CSR block whose column space is a different DoF space
    /// with `col_n_owned` owned entries (mixed couplings such as the
    /// pressure gradient).
    ///
    /// # Panics
    /// Panics if the plan is inconsistent with the column space layout.
    pub fn rectangular(local: CsrMatrix, plan: ExchangePlan, col_n_owned: usize) -> Self {
        plan.validate(col_n_owned, local.num_cols());
        DistMatrix {
            local,
            plan,
            col_n_owned,
        }
    }

    /// The local CSR block.
    #[inline]
    pub fn local(&self) -> &CsrMatrix {
        &self.local
    }

    /// Mutable local CSR block (for time-stepping updates of matrix values).
    #[inline]
    pub fn local_mut(&mut self) -> &mut CsrMatrix {
        &mut self.local
    }

    /// The halo plan.
    #[inline]
    pub fn plan(&self) -> &ExchangePlan {
        &self.plan
    }

    /// Owned rows.
    #[inline]
    pub fn n_owned(&self) -> usize {
        self.local.num_rows()
    }

    /// Local columns (owned + ghost).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.local.num_cols()
    }

    /// Local stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.local.nnz()
    }

    /// `y = A x`. Refreshes `x`'s ghosts first (collective across ranks).
    pub fn spmv(&self, x: &mut DistVector, y: &mut DistVector, comm: &mut SimComm) {
        assert_eq!(x.n_local(), self.n_local());
        assert_eq!(
            x.n_owned(),
            self.col_n_owned,
            "x must live in the column space"
        );
        assert_eq!(y.n_owned(), self.n_owned());
        x.update_ghosts(&self.plan, comm);
        self.local
            .spmv(x.as_slice(), &mut y.as_mut_slice()[..self.local.num_rows()]);
        comm.compute(work_costs::spmv(self.local.nnz()));
    }

    /// A zero vector shaped like this matrix's column space (for square
    /// operators this is also the row space, usable as both `x` and `y`).
    pub fn new_vector(&self) -> DistVector {
        DistVector::zeros(self.col_n_owned, self.n_local() - self.col_n_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::TripletBuilder;
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 1,
        }
    }

    /// Builds the 1-D Laplacian [-1 2 -1] of global size 2*p distributed as
    /// 2 rows per rank, and applies it to the global vector of ones.
    /// Interior rows produce 0; the two boundary rows produce 1.
    #[test]
    fn distributed_spmv_matches_serial_laplacian() {
        for p in [1usize, 2, 4] {
            let n_per = 2;
            let n_global = n_per * p;
            let results = run_spmd(cfg(p), move |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let first = rank * n_per;
                // Ghosts: one on each side unless at a domain end.
                let left = (rank > 0).then(|| first - 1);
                let right = (rank + 1 < size).then(|| first + n_per);
                let mut ghosts = Vec::new();
                if let Some(g) = left {
                    ghosts.push(g);
                }
                if let Some(g) = right {
                    ghosts.push(g);
                }
                let n_local = n_per + ghosts.len();
                // local index of a global dof
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut b = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    b.add(r, r, 2.0);
                    if g > 0 {
                        b.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        b.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                let mut add_neighbor = |nb: usize, send_local: usize, ghost_global: usize| {
                    plan.neighbors.push(nb);
                    plan.send_indices.push(vec![send_local]);
                    plan.recv_indices.push(vec![local_of(ghost_global)]);
                };
                if rank > 0 {
                    add_neighbor(rank - 1, 0, first - 1);
                }
                if rank + 1 < size {
                    add_neighbor(rank + 1, n_per - 1, first + n_per);
                }
                let a = DistMatrix::new(b.build(), plan);
                let mut x = a.new_vector();
                x.fill(1.0);
                let mut y = a.new_vector();
                a.spmv(&mut x, &mut y, comm);
                y.owned().to_vec()
            });
            // Assemble the global result.
            let global: Vec<f64> = results.iter().flat_map(|r| r.value.clone()).collect();
            for (i, &v) in global.iter().enumerate() {
                let expected = if i == 0 || i == n_global - 1 {
                    1.0
                } else {
                    0.0
                };
                assert!((v - expected).abs() < 1e-14, "p = {p}, row {i}: {v}");
            }
        }
    }

    #[test]
    fn spmv_charges_work() {
        let r = run_spmd(cfg(1), |comm| {
            let mut b = TripletBuilder::new(2, 2);
            b.add(0, 0, 1.0);
            b.add(1, 1, 1.0);
            let a = DistMatrix::new(b.build(), ExchangePlan::empty());
            let mut x = a.new_vector();
            x.fill(3.0);
            let mut y = a.new_vector();
            a.spmv(&mut x, &mut y, comm);
            (y.owned().to_vec(), comm.stats().flops)
        });
        assert_eq!(r[0].value.0, vec![3.0, 3.0]);
        assert!(r[0].value.1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "recv indices must be ghosts")]
    fn inconsistent_plan_rejected() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        let plan = ExchangePlan {
            neighbors: vec![1],
            send_indices: vec![vec![0]],
            recv_indices: vec![vec![1]], // 1 is owned, not a ghost
        };
        DistMatrix::new(b.build(), plan);
    }
}
