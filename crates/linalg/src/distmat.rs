//! Row-distributed sparse matrices.

use crate::csr::CsrMatrix;
use crate::vector::{DistVector, ExchangePlan};
use crate::work_costs;
use hetero_simmpi::SimComm;

/// A row-distributed sparse matrix: this rank stores the rows of its owned
/// DoFs, with columns addressing the local space `[owned | ghost]`. The
/// SpMV refreshes the input vector's ghosts, multiplies locally, and charges
/// the roofline cost — the exact kernel structure of an Epetra
/// `Multiply` + `Import` in the paper's Trilinos stack.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMatrix {
    local: CsrMatrix,
    plan: ExchangePlan,
    /// Owned entries of the *column* (input-vector) space. Equals
    /// `local.num_rows()` for square operators; differs for mixed-space
    /// (e.g. velocity x pressure) couplings.
    col_n_owned: usize,
    /// Rows whose columns are all owned, ascending: computable before the
    /// halo refresh completes. Depends only on the sparsity structure, so
    /// the cache survives numeric updates through [`Self::local_mut`].
    interior_rows: Vec<usize>,
    /// Rows referencing at least one ghost column, ascending.
    boundary_rows: Vec<usize>,
    /// Stored entries in interior rows (splits the SpMV cost charge).
    interior_nnz: usize,
}

impl DistMatrix {
    /// Wraps a local CSR block of a **square** operator (row and column
    /// spaces coincide) and its halo plan.
    ///
    /// # Panics
    /// Panics if the plan is inconsistent with the matrix dimensions
    /// (`num_rows` owned, `num_cols` local entries).
    pub fn new(local: CsrMatrix, plan: ExchangePlan) -> Self {
        let col_n_owned = local.num_rows();
        Self::rectangular(local, plan, col_n_owned)
    }

    /// Wraps a local CSR block whose column space is a different DoF space
    /// with `col_n_owned` owned entries (mixed couplings such as the
    /// pressure gradient).
    ///
    /// # Panics
    /// Panics if the plan is inconsistent with the column space layout.
    pub fn rectangular(local: CsrMatrix, plan: ExchangePlan, col_n_owned: usize) -> Self {
        plan.validate(col_n_owned, local.num_cols());
        let mut interior_rows = Vec::new();
        let mut boundary_rows = Vec::new();
        let mut interior_nnz = 0usize;
        for r in 0..local.num_rows() {
            let (cols, _) = local.row(r);
            if cols.iter().all(|&c| c < col_n_owned) {
                interior_nnz += cols.len();
                interior_rows.push(r);
            } else {
                boundary_rows.push(r);
            }
        }
        DistMatrix {
            local,
            plan,
            col_n_owned,
            interior_rows,
            boundary_rows,
            interior_nnz,
        }
    }

    /// The local CSR block.
    #[inline]
    pub fn local(&self) -> &CsrMatrix {
        &self.local
    }

    /// Mutable local CSR block (for time-stepping updates of matrix values).
    #[inline]
    pub fn local_mut(&mut self) -> &mut CsrMatrix {
        &mut self.local
    }

    /// The halo plan.
    #[inline]
    pub fn plan(&self) -> &ExchangePlan {
        &self.plan
    }

    /// Owned rows.
    #[inline]
    pub fn n_owned(&self) -> usize {
        self.local.num_rows()
    }

    /// Local columns (owned + ghost).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.local.num_cols()
    }

    /// Owned entries of the column (input-vector) space.
    #[inline]
    pub fn col_n_owned(&self) -> usize {
        self.col_n_owned
    }

    /// Local stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.local.nnz()
    }

    /// `y = A x`. Refreshes `x`'s ghosts first (collective across ranks).
    pub fn spmv(&self, x: &mut DistVector, y: &mut DistVector, comm: &mut SimComm) {
        assert_eq!(x.n_local(), self.n_local());
        assert_eq!(
            x.n_owned(),
            self.col_n_owned,
            "x must live in the column space"
        );
        assert_eq!(y.n_owned(), self.n_owned());
        x.update_ghosts(&self.plan, comm);
        self.local
            .spmv(x.as_slice(), &mut y.as_mut_slice()[..self.local.num_rows()]);
        comm.compute(work_costs::spmv(self.local.nnz()));
    }

    /// A zero vector shaped like this matrix's column space (for square
    /// operators this is also the row space, usable as both `x` and `y`).
    pub fn new_vector(&self) -> DistVector {
        DistVector::zeros(self.col_n_owned, self.n_local() - self.col_n_owned)
    }

    /// Rows with no ghost columns (ascending), computable while the halo
    /// exchange is in flight.
    #[inline]
    pub fn interior_rows(&self) -> &[usize] {
        &self.interior_rows
    }

    /// Rows referencing at least one ghost column (ascending).
    #[inline]
    pub fn boundary_rows(&self) -> &[usize] {
        &self.boundary_rows
    }

    /// `y = A x` with the halo exchange overlapped by interior work: posts
    /// the interface sends and receives, evaluates the interior rows while
    /// the transfers progress, completes the exchange, then evaluates the
    /// boundary rows.
    ///
    /// Bitwise-identical values to [`Self::spmv`]: each row's dot product
    /// reads the same inputs in the same order, interior rows never touch a
    /// ghost column, and the two row subsets partition the row space. Only
    /// the virtual-time schedule differs — the transfer runs under the
    /// interior compute instead of serially before all of it.
    pub fn spmv_overlapped(&self, x: &mut DistVector, y: &mut DistVector, comm: &mut SimComm) {
        assert_eq!(x.n_local(), self.n_local());
        assert_eq!(
            x.n_owned(),
            self.col_n_owned,
            "x must live in the column space"
        );
        assert_eq!(y.n_owned(), self.n_owned());
        let rows = self.local.num_rows();
        let reqs = x.post_ghost_update(&self.plan, comm);
        self.local.spmv_rows(
            &self.interior_rows,
            x.as_slice(),
            &mut y.as_mut_slice()[..rows],
        );
        comm.compute(work_costs::spmv(self.interior_nnz));
        x.finish_ghost_update(&self.plan, reqs, comm);
        self.local.spmv_rows(
            &self.boundary_rows,
            x.as_slice(),
            &mut y.as_mut_slice()[..rows],
        );
        comm.compute(work_costs::spmv(self.local.nnz() - self.interior_nnz));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::TripletBuilder;
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 1,
        }
    }

    /// Builds the 1-D Laplacian [-1 2 -1] of global size 2*p distributed as
    /// 2 rows per rank, and applies it to the global vector of ones.
    /// Interior rows produce 0; the two boundary rows produce 1.
    #[test]
    fn distributed_spmv_matches_serial_laplacian() {
        for p in [1usize, 2, 4] {
            let n_per = 2;
            let n_global = n_per * p;
            let results = run_spmd(cfg(p), move |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let first = rank * n_per;
                // Ghosts: one on each side unless at a domain end.
                let left = (rank > 0).then(|| first - 1);
                let right = (rank + 1 < size).then(|| first + n_per);
                let mut ghosts = Vec::new();
                if let Some(g) = left {
                    ghosts.push(g);
                }
                if let Some(g) = right {
                    ghosts.push(g);
                }
                let n_local = n_per + ghosts.len();
                // local index of a global dof
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut b = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    b.add(r, r, 2.0);
                    if g > 0 {
                        b.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        b.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                let mut add_neighbor = |nb: usize, send_local: usize, ghost_global: usize| {
                    plan.neighbors.push(nb);
                    plan.send_indices.push(vec![send_local]);
                    plan.recv_indices.push(vec![local_of(ghost_global)]);
                };
                if rank > 0 {
                    add_neighbor(rank - 1, 0, first - 1);
                }
                if rank + 1 < size {
                    add_neighbor(rank + 1, n_per - 1, first + n_per);
                }
                let a = DistMatrix::new(b.build(), plan);
                let mut x = a.new_vector();
                x.fill(1.0);
                let mut y = a.new_vector();
                a.spmv(&mut x, &mut y, comm);
                y.owned().to_vec()
            });
            // Assemble the global result.
            let global: Vec<f64> = results.iter().flat_map(|r| r.value.clone()).collect();
            for (i, &v) in global.iter().enumerate() {
                let expected = if i == 0 || i == n_global - 1 {
                    1.0
                } else {
                    0.0
                };
                assert!((v - expected).abs() < 1e-14, "p = {p}, row {i}: {v}");
            }
        }
    }

    /// The overlapped SpMV must produce bitwise-identical values to the
    /// blocking one on the distributed Laplacian, at every rank count —
    /// and classify the rows correctly.
    #[test]
    fn overlapped_spmv_is_bitwise_identical_to_blocking() {
        for p in [1usize, 2, 4] {
            let n_per = 3;
            let results = run_spmd(cfg(p), move |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let first = rank * n_per;
                let n_global = n_per * size;
                let mut ghosts = Vec::new();
                if rank > 0 {
                    ghosts.push(first - 1);
                }
                if rank + 1 < size {
                    ghosts.push(first + n_per);
                }
                let n_local = n_per + ghosts.len();
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut b = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    b.add(r, r, 2.0 + g as f64 * 0.01);
                    if g > 0 {
                        b.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        b.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                if rank > 0 {
                    plan.neighbors.push(rank - 1);
                    plan.send_indices.push(vec![0]);
                    plan.recv_indices.push(vec![local_of(first - 1)]);
                }
                if rank + 1 < size {
                    plan.neighbors.push(rank + 1);
                    plan.send_indices.push(vec![n_per - 1]);
                    plan.recv_indices.push(vec![local_of(first + n_per)]);
                }
                let a = DistMatrix::new(b.build(), plan);
                assert_eq!(
                    a.interior_rows().len() + a.boundary_rows().len(),
                    a.n_owned()
                );
                if size > 1 {
                    assert!(!a.boundary_rows().is_empty());
                }
                let mut x1 = a.new_vector();
                for (i, v) in x1.owned_mut().iter_mut().enumerate() {
                    *v = ((first + i) as f64 * 0.7).sin();
                }
                let mut x2 = a.new_vector();
                x2.owned_mut().copy_from_slice(x1.owned());
                let mut y1 = a.new_vector();
                let mut y2 = a.new_vector();
                a.spmv(&mut x1, &mut y1, comm);
                a.spmv_overlapped(&mut x2, &mut y2, comm);
                (y1.owned().to_vec(), y2.owned().to_vec())
            });
            for r in &results {
                assert_eq!(r.value.0, r.value.1, "p = {p}: values must be bitwise");
            }
        }
    }

    #[test]
    fn spmv_charges_work() {
        let r = run_spmd(cfg(1), |comm| {
            let mut b = TripletBuilder::new(2, 2);
            b.add(0, 0, 1.0);
            b.add(1, 1, 1.0);
            let a = DistMatrix::new(b.build(), ExchangePlan::empty());
            let mut x = a.new_vector();
            x.fill(3.0);
            let mut y = a.new_vector();
            a.spmv(&mut x, &mut y, comm);
            (y.owned().to_vec(), comm.stats().flops)
        });
        assert_eq!(r[0].value.0, vec![3.0, 3.0]);
        assert!(r[0].value.1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "recv indices must be ghosts")]
    fn inconsistent_plan_rejected() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        let plan = ExchangePlan {
            neighbors: vec![1],
            send_indices: vec![vec![0]],
            recv_indices: vec![vec![1]], // 1 is owned, not a ghost
        };
        DistMatrix::new(b.build(), plan);
    }
}
