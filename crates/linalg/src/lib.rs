//! # hetero-linalg
//!
//! Distributed sparse linear algebra for the `hetero-hpc` reproduction — the
//! stand-in for Trilinos (Epetra distributed data structures, AztecOO Krylov
//! solvers, Ifpack preconditioners) in the paper's software stack:
//! "matrices and vectors are distributed and need to be updated via a message
//! passing interface … we use iterative preconditioned methods".
//!
//! * [`CsrMatrix`] — local compressed-sparse-row storage with a
//!   duplicate-summing triplet builder (FEM assembly produces triplets);
//! * [`DistVector`] / [`ExchangePlan`] — row-distributed vectors with ghost
//!   entries refreshed by neighbour halo exchange over
//!   [`hetero_simmpi::SimComm`];
//! * [`DistMatrix`] — row-distributed sparse matrices whose SpMV performs
//!   the ghost update and charges roofline work;
//! * [`solver`] — preconditioned CG, BiCGStab, and restarted GMRES;
//! * [`precond`] — Jacobi, symmetric Gauss–Seidel (SSOR), and local ILU(0)
//!   (additive Schwarz across ranks).
//!
//! Every operation charges its analytic operation count to the simulator, so
//! solver phases acquire platform-dependent simulated durations while
//! computing real, verifiable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod distmat;
pub mod precond;
pub mod solver;
pub mod vector;
pub mod work_costs;

pub use csr::{CsrMatrix, SparsityPattern, TripletBuilder};
pub use distmat::DistMatrix;
pub use precond::{IluZero, Jacobi, Preconditioner, Ssor};
pub use solver::{
    bicgstab, bicgstab_with_workspace, cg, cg_pipelined, gmres, gmres_with_workspace, SolveOptions,
    SolveStats, SolverVariant, SolverWorkspace,
};
pub use vector::{fused_dots, DistVector, ExchangePlan};
