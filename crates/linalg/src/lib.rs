//! # hetero-linalg
//!
//! Distributed sparse linear algebra for the `hetero-hpc` reproduction — the
//! stand-in for Trilinos (Epetra distributed data structures, AztecOO Krylov
//! solvers, Ifpack preconditioners) in the paper's software stack:
//! "matrices and vectors are distributed and need to be updated via a message
//! passing interface … we use iterative preconditioned methods".
//!
//! * [`CsrMatrix`] — local compressed-sparse-row storage with a
//!   duplicate-summing triplet builder (FEM assembly produces triplets);
//! * [`DistVector`] / [`ExchangePlan`] — row-distributed vectors with ghost
//!   entries refreshed by neighbour halo exchange over
//!   [`hetero_simmpi::SimComm`];
//! * [`DistMatrix`] — row-distributed sparse matrices whose SpMV performs
//!   the ghost update and charges roofline work;
//! * [`solver`] — preconditioned CG, BiCGStab, and restarted GMRES;
//! * [`precond`] — Jacobi, symmetric Gauss–Seidel (SSOR), and local ILU(0)
//!   (additive Schwarz across ranks).
//!
//! Every operation charges its analytic operation count to the simulator, so
//! solver phases acquire platform-dependent simulated durations while
//! computing real, verifiable numbers.
//!
//! The `simd` cargo feature swaps the [`sell`] chunk kernel for stable
//! `core::arch` intrinsics (SSE2 / NEON); results are bitwise identical
//! either way, so the feature is purely a host-speed knob. It is also the
//! only unsafe code in the crate: without it the whole crate forbids
//! `unsafe`, with it `unsafe` is denied everywhere except the intrinsics
//! module, which carries a scoped allow and per-call safety arguments.

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod csr;
pub mod distmat;
pub mod precond;
pub mod sell;
pub mod solver;
pub mod vector;
pub mod work_costs;

pub use csr::{CsrMatrix, SparsityPattern, TripletBuilder};
pub use distmat::DistMatrix;
pub use precond::{IluZero, Jacobi, Preconditioner, Ssor};
pub use sell::{BlockedCsr, SellCs};
pub use solver::{
    bicgstab, bicgstab_with_workspace, cg, cg_pipelined, gmres, gmres_with_workspace,
    KernelBackend, SolveOptions, SolveStats, SolverVariant, SolverWorkspace,
};
pub use vector::{fused_dots, DistVector, ExchangePlan};
