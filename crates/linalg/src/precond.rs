//! Preconditioners: Jacobi, symmetric Gauss–Seidel (SSOR), and local ILU(0).
//!
//! All three act on the rank-local owned block only (couplings to ghost
//! columns are dropped), making them non-overlapping additive-Schwarz
//! preconditioners across ranks — the standard Ifpack configuration the
//! paper's solver stack uses. Stronger local solves (ILU) trade a costlier
//! "preconditioner" phase for fewer Krylov iterations, which is exactly the
//! phase trade-off the paper's figures break out.

use crate::csr::CsrMatrix;
use crate::distmat::DistMatrix;
use crate::vector::DistVector;
use crate::work_costs;
use hetero_simmpi::SimComm;

/// Minimum rows in one dependency level before a triangular sweep fans the
/// level out across the intra-rank pool. Rows within a level never read
/// each other, and each row's update reproduces the serial sweep's
/// arithmetic exactly, so the threshold affects speed only, never values.
const PAR_LEVEL_MIN: usize = 128;

/// Minimum length before the Jacobi apply parallelizes (element-wise, so
/// also value-neutral).
const PAR_JACOBI_MIN: usize = 4096;

/// Rows of a triangular sweep grouped into dependency levels: every row
/// depends only on rows in strictly earlier groups, so a level can be
/// computed in parallel from a snapshot taken before the level starts.
#[derive(Debug, Clone)]
struct SweepLevels {
    levels: Vec<Vec<usize>>,
}

impl SweepLevels {
    /// Levels of the lower-triangular (forward) sweep: row `i` depends on
    /// stored columns `c < i`.
    fn forward(m: &CsrMatrix) -> Self {
        let n = m.num_rows();
        let mut level_of = vec![0usize; n];
        let mut max_level = 0usize;
        for i in 0..n {
            let (cols, _) = m.row(i);
            let mut lv = 0;
            for &c in cols {
                if c < i {
                    lv = lv.max(level_of[c] + 1);
                }
            }
            level_of[i] = lv;
            max_level = max_level.max(lv);
        }
        Self::group(&level_of, max_level)
    }

    /// Levels of the upper-triangular (backward) sweep: row `i` depends on
    /// stored columns `c > i`.
    fn backward(m: &CsrMatrix) -> Self {
        let n = m.num_rows();
        let mut level_of = vec![0usize; n];
        let mut max_level = 0usize;
        for i in (0..n).rev() {
            let (cols, _) = m.row(i);
            let mut lv = 0;
            for &c in cols {
                if c > i {
                    lv = lv.max(level_of[c] + 1);
                }
            }
            level_of[i] = lv;
            max_level = max_level.max(lv);
        }
        Self::group(&level_of, max_level)
    }

    fn group(level_of: &[usize], max_level: usize) -> Self {
        let mut levels = vec![Vec::new(); max_level + 1];
        for (i, &lv) in level_of.iter().enumerate() {
            levels[lv].push(i);
        }
        SweepLevels { levels }
    }

    /// Runs the sweep: for each level in dependency order, replaces `z[i]`
    /// with `row_value(i, z)` for every row `i` in the level. `row_value`
    /// must not read same-level rows (guaranteed by construction), so the
    /// parallel and serial paths produce bitwise identical results.
    fn run<F>(&self, z: &mut [f64], row_value: F)
    where
        F: Fn(usize, &[f64]) -> f64 + Sync,
    {
        for level in &self.levels {
            if level.len() >= PAR_LEVEL_MIN && rayon::current_num_threads() > 1 {
                let computed = {
                    let snapshot: &[f64] = z;
                    rayon::fixed::map_tasks(level.len(), |t| row_value(level[t], snapshot))
                };
                for (&i, v) in level.iter().zip(computed) {
                    z[i] = v;
                }
            } else {
                for &i in level {
                    z[i] = row_value(i, z);
                }
            }
        }
    }
}

/// Applies `z = M^{-1} r` over owned entries (ghosts of `z` unspecified).
pub trait Preconditioner {
    /// Applies the preconditioner.
    fn apply(&self, r: &DistVector, z: &mut DistVector, comm: &mut SimComm);

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Identity preconditioner (unpreconditioned Krylov).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, r: &DistVector, z: &mut DistVector, comm: &mut SimComm) {
        z.owned_mut().copy_from_slice(r.owned());
        comm.compute(work_costs::copy(r.n_owned()));
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Diagonal (Jacobi) preconditioner.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Builds from the matrix diagonal, charging the (tiny) setup cost.
    ///
    /// # Panics
    /// Panics if any diagonal entry is zero.
    pub fn new(a: &DistMatrix, comm: &mut SimComm) -> Self {
        let inv_diag: Vec<f64> = a
            .local()
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d != 0.0, "zero diagonal entry");
                1.0 / d
            })
            .collect();
        comm.compute(work_costs::scale(inv_diag.len()));
        Jacobi { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &DistVector, z: &mut DistVector, comm: &mut SimComm) {
        let n = self.inv_diag.len();
        let rs = r.owned();
        if n >= PAR_JACOBI_MIN && rayon::current_num_threads() > 1 {
            rayon::fixed::for_each_chunk_mut(&mut z.owned_mut()[..n], 1024, |_chunk, start, zs| {
                for (j, zi) in zs.iter_mut().enumerate() {
                    *zi = rs[start + j] * self.inv_diag[start + j];
                }
            });
        } else {
            for ((zi, ri), di) in z.owned_mut().iter_mut().zip(rs).zip(&self.inv_diag) {
                *zi = ri * di;
            }
        }
        comm.compute(work_costs::scale(n));
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Symmetric Gauss–Seidel (SSOR with omega = 1) on the local owned block.
#[derive(Debug, Clone)]
pub struct Ssor {
    local: CsrMatrix,
    diag: Vec<f64>,
    forward: SweepLevels,
    backward: SweepLevels,
}

impl Ssor {
    /// Builds from the owned block of `a` (ghost couplings dropped) and
    /// precomputes the sweep's dependency levels.
    ///
    /// # Panics
    /// Panics if any diagonal entry is zero.
    pub fn new(a: &DistMatrix, comm: &mut SimComm) -> Self {
        let local = restrict_to_owned(a.local());
        let diag = local.diagonal();
        assert!(diag.iter().all(|&d| d != 0.0), "zero diagonal entry");
        comm.compute(work_costs::copy(local.nnz()));
        let forward = SweepLevels::forward(&local);
        let backward = SweepLevels::backward(&local);
        Ssor {
            local,
            diag,
            forward,
            backward,
        }
    }
}

impl Preconditioner for Ssor {
    fn apply(&self, r: &DistVector, z: &mut DistVector, comm: &mut SimComm) {
        let n = self.diag.len();
        let zs = z.owned_mut();
        let rs = r.owned();
        // Forward sweep: (D + L) y = r.
        self.forward.run(&mut zs[..n], |i, zv| {
            let (cols, vals) = self.local.row(i);
            let mut acc = rs[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c < i {
                    acc -= v * zv[c];
                }
            }
            acc / self.diag[i]
        });
        // Scale by D.
        for (zi, di) in zs[..n].iter_mut().zip(&self.diag) {
            *zi *= di;
        }
        // Backward sweep: (D + U) z = D y.
        self.backward.run(&mut zs[..n], |i, zv| {
            let (cols, vals) = self.local.row(i);
            let mut acc = zv[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c > i {
                    acc -= v * zv[c];
                }
            }
            acc / self.diag[i]
        });
        comm.compute(work_costs::sweep(2 * self.local.nnz()));
    }

    fn name(&self) -> &'static str {
        "ssor"
    }
}

/// Incomplete LU factorization with zero fill on the local owned block.
#[derive(Debug, Clone)]
pub struct IluZero {
    /// Combined LU factors in the original sparsity (unit lower diagonal
    /// implicit).
    factors: CsrMatrix,
    forward: SweepLevels,
    backward: SweepLevels,
}

impl IluZero {
    /// Factorizes the owned block of `a` (IKJ variant, zero fill), charging
    /// the setup cost — the paper's "preconditioner computation" step
    /// (iiia).
    ///
    /// # Panics
    /// Panics if a zero pivot is encountered.
    pub fn new(a: &DistMatrix, comm: &mut SimComm) -> Self {
        let mut f = restrict_to_owned(a.local());
        let n = f.num_rows();
        for i in 0..n {
            // Split borrow: copy row i's structure, update in place.
            let (cols_i, _) = f.row(i);
            let cols_i: Vec<usize> = cols_i.to_vec();
            for &k in cols_i.iter().filter(|&&k| k < i) {
                let pivot = f.get(k, k);
                assert!(pivot != 0.0, "zero pivot at row {k}");
                let lik = f.get(i, k) / pivot;
                set(&mut f, i, k, lik);
                // Update a_ij -= l_ik * a_kj for j > k present in both rows.
                let row_k: Vec<(usize, f64)> = {
                    let (ck, vk) = f.row(k);
                    ck.iter()
                        .zip(vk)
                        .filter(|(&c, _)| c > k)
                        .map(|(&c, &v)| (c, v))
                        .collect()
                };
                for (j, akj) in row_k {
                    if cols_i.binary_search(&j).is_ok() {
                        let aij = f.get(i, j);
                        set(&mut f, i, j, aij - lik * akj);
                    }
                }
            }
        }
        comm.compute(work_costs::ilu_factor(f.nnz(), n));
        let forward = SweepLevels::forward(&f);
        let backward = SweepLevels::backward(&f);
        IluZero {
            factors: f,
            forward,
            backward,
        }
    }
}

fn set(m: &mut CsrMatrix, r: usize, c: usize, v: f64) {
    let (cols, vals) = m.row_values_mut(r);
    let i = cols.binary_search(&c).expect("entry exists in sparsity");
    vals[i] = v;
}

/// Restricts a local block (owned rows x local cols) to its owned x owned
/// square submatrix.
fn restrict_to_owned(a: &CsrMatrix) -> CsrMatrix {
    let n = a.num_rows();
    let mut b = crate::csr::TripletBuilder::new(n, n);
    for (r, c, v) in a.iter() {
        if c < n {
            b.add(r, c, v);
        }
    }
    b.build()
}

impl Preconditioner for IluZero {
    fn apply(&self, r: &DistVector, z: &mut DistVector, comm: &mut SimComm) {
        let n = self.factors.num_rows();
        let zs = z.owned_mut();
        let rs = r.owned();
        // Forward: L y = r (unit diagonal).
        self.forward.run(&mut zs[..n], |i, zv| {
            let (cols, vals) = self.factors.row(i);
            let mut acc = rs[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c < i {
                    acc -= v * zv[c];
                }
            }
            acc
        });
        // Backward: U z = y.
        self.backward.run(&mut zs[..n], |i, zv| {
            let (cols, vals) = self.factors.row(i);
            let mut acc = zv[i];
            let mut diag = 1.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c > i {
                    acc -= v * zv[c];
                } else if c == i {
                    diag = v;
                }
            }
            acc / diag
        });
        comm.compute(work_costs::sweep(self.factors.nnz()));
    }

    fn name(&self) -> &'static str {
        "ilu0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::TripletBuilder;
    use crate::vector::ExchangePlan;
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};

    fn cfg() -> SpmdConfig {
        SpmdConfig {
            size: 1,
            topo: ClusterTopology::uniform(1, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 0,
        }
    }

    fn tridiag(n: usize) -> DistMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        DistMatrix::new(b.build(), ExchangePlan::empty())
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        run_spmd(cfg(), |comm| {
            let a = tridiag(4);
            let m = Jacobi::new(&a, comm);
            let r = DistVector::from_values(vec![2.0, 4.0, 6.0, 8.0], 4);
            let mut z = a.new_vector();
            m.apply(&r, &mut z, comm);
            assert_eq!(z.owned(), &[1.0, 2.0, 3.0, 4.0]);
        });
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // A tridiagonal matrix has no fill, so ILU(0) = LU and
        // applying it solves exactly.
        run_spmd(cfg(), |comm| {
            let n = 6;
            let a = tridiag(n);
            let m = IluZero::new(&a, comm);
            // b = A * ones.
            let mut ones = a.new_vector();
            ones.fill(1.0);
            let mut b = a.new_vector();
            a.spmv(&mut ones, &mut b, comm);
            let mut z = a.new_vector();
            m.apply(&b, &mut z, comm);
            for &v in z.owned() {
                assert!((v - 1.0).abs() < 1e-12, "z = {v}");
            }
        });
    }

    #[test]
    fn ssor_reduces_error_as_a_smoother() {
        run_spmd(cfg(), |comm| {
            let a = tridiag(8);
            let m = Ssor::new(&a, comm);
            // For r = A e with e = ones, z = M^{-1} r should be much closer
            // to e than the Jacobi result is.
            let mut e = a.new_vector();
            e.fill(1.0);
            let mut r = a.new_vector();
            a.spmv(&mut e, &mut r, comm);
            let mut z_ssor = a.new_vector();
            m.apply(&r, &mut z_ssor, comm);
            let jac = Jacobi::new(&a, comm);
            let mut z_jac = a.new_vector();
            jac.apply(&r, &mut z_jac, comm);
            let err = |z: &DistVector| -> f64 {
                z.owned()
                    .iter()
                    .map(|v| (v - 1.0).powi(2))
                    .sum::<f64>()
                    .sqrt()
            };
            assert!(
                err(&z_ssor) < err(&z_jac),
                "{} vs {}",
                err(&z_ssor),
                err(&z_jac)
            );
        });
    }

    #[test]
    fn identity_copies() {
        run_spmd(cfg(), |comm| {
            let r = DistVector::from_values(vec![1.0, -2.0], 2);
            let mut z = DistVector::zeros(2, 0);
            Identity.apply(&r, &mut z, comm);
            assert_eq!(z.owned(), r.owned());
        });
    }

    #[test]
    fn ghost_couplings_are_dropped() {
        // A 2x3 local block (1 ghost column): preconditioners must only see
        // the owned 2x2 part.
        run_spmd(cfg(), |comm| {
            let mut b = TripletBuilder::new(2, 3);
            b.add(0, 0, 4.0);
            b.add(1, 1, 4.0);
            b.add(0, 2, -1.0); // ghost coupling
                               // Plan is empty because this is a single-rank test of structure.
            let a = DistMatrix::new(b.build(), ExchangePlan::empty());
            let m = IluZero::new(&a, comm);
            let r = DistVector::from_values(vec![4.0, 8.0, 0.0], 2);
            let mut z = a.new_vector();
            m.apply(&r, &mut z, comm);
            assert_eq!(z.owned(), &[1.0, 2.0]);
        });
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn jacobi_rejects_zero_diagonal() {
        run_spmd(cfg(), |comm| {
            let mut b = TripletBuilder::new(2, 2);
            b.add(0, 0, 1.0);
            b.add(1, 1, 0.0);
            let a = DistMatrix::new(b.build(), ExchangePlan::empty());
            let _ = Jacobi::new(&a, comm);
        });
    }
}
