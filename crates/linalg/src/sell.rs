//! Cache- and SIMD-friendly sparse storage: SELL-C-σ and blocked CSR.
//!
//! [`CsrMatrix::spmv`](crate::CsrMatrix::spmv) walks one row at a time, so
//! every lane of a vector unit would have to share a single sequential
//! accumulation — the format, not the hardware, is the bottleneck. The
//! SELL-C-σ format (Kreutzer et al.) transposes the problem: rows are
//! grouped into chunks of `C`, stored *slot-major* (entry `s` of every row
//! in the chunk is adjacent in memory), and each vector lane owns one row.
//! Lane `l` then performs exactly the sequential `acc += v * x[col]` walk
//! the scalar kernel performs for its row — same order, same operations —
//! so the product is **bitwise identical** to scalar CSR SpMV while the
//! chunk as a whole issues `C`-wide multiplies and adds.
//!
//! Determinism contract (see DESIGN.md §10 for the full argument):
//!
//! * per lane, real entries are stored in CSR column order, so the partial
//!   sums associate exactly as [`CsrMatrix::row_dot`] would;
//! * padding slots hold `(col 0, value 0.0)`; the accumulator of a lane is
//!   never `-0.0` when a pad is added (a round-to-nearest sum is `-0.0`
//!   only if both operands are), and adding `±0.0` to such an accumulator
//!   is the identity, so pads do not perturb a single bit for finite `x`;
//! * the σ-window length sort uses a *stable* sort on `(window, len)`, so
//!   the row permutation is a pure function of the sparsity pattern.
//!
//! [`BlockedCsr`] is the register-blocked sibling: each row's entry list is
//! padded to a multiple of the block width so the inner loop is a fixed-size
//! unrolled block with no per-element bounds checks. Accumulation stays
//! sequential per row (anything wider would reassociate the sum), so it
//! shares the bitwise contract; its speedup comes from loop overhead and
//! bounds-check elimination, not lane parallelism — the honest reason
//! SELL-C-σ is the vector format of the two.
//!
//! With the `simd` cargo feature the chunk kernel uses stable `core::arch`
//! intrinsics (SSE2 on x86_64, NEON on aarch64), two f64 lanes per vector
//! register, explicitly *without* FMA — fused multiply-add rounds once
//! where the scalar kernel rounds twice, which would break bit equality.
//! Without the feature an unrolled scalar kernel with fixed-width lane
//! loops gives the autovectorizer the same freedom.

use crate::csr::CsrMatrix;

/// Default sorting-window length (in rows) for [`SellCs::from_csr`]
/// callers that have no better estimate: long enough to group similar row
/// lengths, short enough to keep the output permutation cache-local.
pub const DEFAULT_SIGMA: usize = 256;

/// A sparse matrix in SELL-C-σ layout, convertible from CSR without
/// changing a single result bit of SpMV.
#[derive(Debug, Clone, PartialEq)]
pub struct SellCs {
    num_rows: usize,
    num_cols: usize,
    /// Chunk height `C` (rows per chunk, one vector lane each).
    c: usize,
    /// Sorting window σ the conversion used (recorded for reporting).
    sigma: usize,
    /// Per chunk: offset of its slot-major `(col_idx, values)` block.
    /// `chunk_ptr[k + 1] - chunk_ptr[k] == width(k) * c`.
    chunk_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Sorted lane position -> original row index (`len == num_rows`;
    /// lanes `>= num_rows` in the tail chunk are padding and produce no
    /// output).
    row_perm: Vec<usize>,
}

impl SellCs {
    /// Converts a CSR matrix into SELL-C-σ form.
    ///
    /// Rows are sorted by descending entry count inside windows of `sigma`
    /// rows (stable, so equal lengths keep their original order), grouped
    /// into chunks of `c`, and stored slot-major padded to each chunk's
    /// longest row. `sigma <= 1` disables sorting (plain SELL-C).
    ///
    /// # Panics
    /// Panics if `c == 0`.
    pub fn from_csr(a: &CsrMatrix, c: usize, sigma: usize) -> Self {
        assert!(c > 0, "chunk height must be positive");
        let n = a.num_rows();
        let len = |r: usize| a.row(r).0.len();

        // σ-window stable length sort: descending length within each window.
        let mut row_perm: Vec<usize> = (0..n).collect();
        if sigma > 1 {
            for window in row_perm.chunks_mut(sigma) {
                window.sort_by_key(|&r| std::cmp::Reverse(len(r)));
            }
        }

        let nchunks = n.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        chunk_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for k in 0..nchunks {
            let lanes = &row_perm[k * c..((k + 1) * c).min(n)];
            let width = lanes.iter().map(|&r| len(r)).max().unwrap_or(0);
            let base = col_idx.len();
            col_idx.resize(base + width * c, 0);
            values.resize(base + width * c, 0.0);
            for (l, &r) in lanes.iter().enumerate() {
                let (cols, vals) = a.row(r);
                for (s, (&col, &v)) in cols.iter().zip(vals).enumerate() {
                    col_idx[base + s * c + l] = col;
                    values[base + s * c + l] = v;
                }
            }
            chunk_ptr.push(col_idx.len());
        }

        SellCs {
            num_rows: n,
            num_cols: a.num_cols(),
            c,
            sigma,
            chunk_ptr,
            col_idx,
            values,
            row_perm,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Chunk height `C`.
    #[inline]
    pub fn chunk_height(&self) -> usize {
        self.c
    }

    /// Sorting window σ used by the conversion.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Stored slots including padding (the memory footprint).
    #[inline]
    pub fn stored_slots(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored slots that are padding, in `[0, 1)` — the price
    /// σ-sorting exists to minimise.
    pub fn padding_ratio(&self, nnz: usize) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            1.0 - nnz as f64 / self.values.len() as f64
        }
    }

    /// `y = A * x`, bitwise identical to [`CsrMatrix::spmv`] on the source
    /// matrix for finite `x`. Chunks are independent, so the kernel runs
    /// serially per rank; intra-rank determinism needs no chunk ordering.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols);
        assert_eq!(y.len(), self.num_rows);
        let mut acc = vec![0.0f64; self.c];
        let nchunks = self.chunk_ptr.len() - 1;
        for k in 0..nchunks {
            let base = self.chunk_ptr[k];
            let end = self.chunk_ptr[k + 1];
            let width = (end - base) / self.c;
            kernel::chunk_spmv(
                self.c,
                width,
                &self.col_idx[base..end],
                &self.values[base..end],
                x,
                &mut acc,
            );
            let lanes = &self.row_perm[k * self.c..((k + 1) * self.c).min(self.num_rows)];
            for (l, &r) in lanes.iter().enumerate() {
                y[r] = acc[l];
            }
        }
    }
}

/// CSR with each row's entry list padded to a multiple of
/// [`BlockedCsr::BLOCK`] slots, so the inner product loop runs in fixed
/// fully-unrolled blocks with no per-element bounds checks. Accumulation
/// order per row is CSR order with identity `±0.0` pads — bitwise equal to
/// [`CsrMatrix::spmv`] for finite `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedCsr {
    num_rows: usize,
    num_cols: usize,
    /// Row starts in blocks-of-`BLOCK` units times `BLOCK` (always aligned).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl BlockedCsr {
    /// Entries per unrolled inner block.
    pub const BLOCK: usize = 4;

    /// Converts a CSR matrix, padding every row to a multiple of
    /// [`Self::BLOCK`] entries with `(col 0, 0.0)` slots.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let n = a.num_rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..n {
            let (cols, vals) = a.row(r);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            let padded = cols.len().div_ceil(Self::BLOCK) * Self::BLOCK;
            col_idx.resize(row_ptr[r] + padded, 0);
            values.resize(row_ptr[r] + padded, 0.0);
            row_ptr.push(col_idx.len());
        }
        BlockedCsr {
            num_rows: n,
            num_cols: a.num_cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Stored slots including padding.
    #[inline]
    pub fn stored_slots(&self) -> usize {
        self.values.len()
    }

    /// `y = A * x`, bitwise identical to [`CsrMatrix::spmv`] on the source
    /// matrix for finite `x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols);
        assert_eq!(y.len(), self.num_rows);
        const B: usize = BlockedCsr::BLOCK;
        for (r, out) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0f64;
            // Exact-size chunks: the padding guarantees hi - lo is a
            // multiple of B, so `chunks_exact` covers every entry and the
            // block body indexes with compile-time-constant offsets.
            for (cb, vb) in self.col_idx[lo..hi]
                .chunks_exact(B)
                .zip(self.values[lo..hi].chunks_exact(B))
            {
                acc += vb[0] * x[cb[0]];
                acc += vb[1] * x[cb[1]];
                acc += vb[2] * x[cb[2]];
                acc += vb[3] * x[cb[3]];
            }
            *out = acc;
        }
    }
}

/// The per-chunk SELL kernel: scalar unrolled by default, `core::arch`
/// SIMD behind the `simd` feature on x86_64 (SSE2) and aarch64 (NEON).
mod kernel {
    /// Computes `acc[l] = Σ_s values[s*c + l] * x[col_idx[s*c + l]]` for
    /// each of the `c` lanes — every lane a sequential CSR-order walk.
    #[inline]
    pub fn chunk_spmv(
        c: usize,
        width: usize,
        col_idx: &[usize],
        values: &[f64],
        x: &[f64],
        acc: &mut [f64],
    ) {
        acc.fill(0.0);
        #[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if c.is_multiple_of(2) {
            simd::chunk_spmv_pairs(c, width, col_idx, values, x, acc);
            return;
        }
        match c {
            4 => chunk_spmv_scalar::<4>(width, col_idx, values, x, acc),
            8 => chunk_spmv_scalar::<8>(width, col_idx, values, x, acc),
            _ => {
                for s in 0..width {
                    let o = s * c;
                    for l in 0..c {
                        acc[l] += values[o + l] * x[col_idx[o + l]];
                    }
                }
            }
        }
    }

    /// Fixed-lane-count scalar kernel: the `C`-wide inner loop has a
    /// compile-time trip count, the accumulators live in a stack array
    /// (registers, once the loop is vectorized — a slice accumulator
    /// forces a load/store round trip per slot), and `chunks_exact` hands
    /// the optimizer exact-size blocks with no per-element bounds checks.
    #[inline]
    fn chunk_spmv_scalar<const C: usize>(
        width: usize,
        col_idx: &[usize],
        values: &[f64],
        x: &[f64],
        acc: &mut [f64],
    ) {
        let mut a = [0.0f64; C];
        for (cols, vals) in col_idx
            .chunks_exact(C)
            .zip(values.chunks_exact(C))
            .take(width)
        {
            for l in 0..C {
                a[l] += vals[l] * x[cols[l]];
            }
        }
        acc[..C].copy_from_slice(&a);
    }

    /// Explicit two-lane vector kernels. Multiplies and adds are issued as
    /// separate instructions (`mul` then `add`, never FMA): the scalar
    /// kernel rounds after the multiply and again after the add, and the
    /// vector kernel must round in exactly the same places to stay
    /// bitwise. Gathers of `x[col]` are scalar loads packed into a
    /// register — SSE2/NEON have no hardware f64 gather, and a scalar
    /// pack keeps the loads identical to the fallback's.
    #[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[allow(unsafe_code)]
    mod simd {
        #[cfg(target_arch = "aarch64")]
        use core::arch::aarch64::{vaddq_f64, vld1q_f64, vmulq_f64, vst1q_f64};
        #[cfg(target_arch = "x86_64")]
        use core::arch::x86_64::{
            _mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set_pd, _mm_setzero_pd, _mm_storeu_pd,
        };

        /// `c`-lane chunk kernel for even `c`: lanes processed as `c / 2`
        /// register pairs, slots walked in order per pair so each lane's
        /// accumulation order matches the scalar kernel exactly.
        #[inline]
        pub fn chunk_spmv_pairs(
            c: usize,
            width: usize,
            col_idx: &[usize],
            values: &[f64],
            x: &[f64],
            acc: &mut [f64],
        ) {
            debug_assert!(c.is_multiple_of(2));
            debug_assert!(col_idx.len() >= width * c && values.len() >= width * c);
            for pair in 0..c / 2 {
                let l = 2 * pair;
                // SAFETY: all loads are in bounds — `values`/`col_idx`
                // hold `width * c` entries with `o + 1 < width * c`, the
                // conversion guarantees every stored column (pads
                // included) is `< x.len()`, and `acc` has `c` slots.
                unsafe {
                    #[cfg(target_arch = "x86_64")]
                    {
                        let mut a = _mm_setzero_pd();
                        for s in 0..width {
                            let o = s * c + l;
                            let v = _mm_loadu_pd(values.as_ptr().add(o));
                            let xs = _mm_set_pd(
                                *x.get_unchecked(*col_idx.get_unchecked(o + 1)),
                                *x.get_unchecked(*col_idx.get_unchecked(o)),
                            );
                            a = _mm_add_pd(a, _mm_mul_pd(v, xs));
                        }
                        _mm_storeu_pd(acc.as_mut_ptr().add(l), a);
                    }
                    #[cfg(target_arch = "aarch64")]
                    {
                        let mut a = vld1q_f64([0.0f64, 0.0].as_ptr());
                        for s in 0..width {
                            let o = s * c + l;
                            let v = vld1q_f64(values.as_ptr().add(o));
                            let g = [
                                *x.get_unchecked(*col_idx.get_unchecked(o)),
                                *x.get_unchecked(*col_idx.get_unchecked(o + 1)),
                            ];
                            let xs = vld1q_f64(g.as_ptr());
                            a = vaddq_f64(a, vmulq_f64(v, xs));
                        }
                        vst1q_f64(acc.as_mut_ptr().add(l), a);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::TripletBuilder;

    /// A deterministic messy matrix: varying row lengths, duplicates,
    /// empty rows.
    fn messy(n: usize, seed: u64) -> CsrMatrix {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut b = TripletBuilder::new(n, n);
        for r in 0..n {
            let k = (next() as usize) % 9; // 0..=8 entries, some rows empty
            for _ in 0..k {
                let c = (next() as usize) % n;
                let v = (next() as f64 / 2f64.powi(31)) - 1.0;
                b.add(r, c, v);
            }
        }
        b.build()
    }

    fn spmv_csr(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.num_rows()];
        a.spmv(x, &mut y);
        y
    }

    #[test]
    fn sell_matches_csr_bitwise_on_messy_matrices() {
        for seed in [1u64, 7, 23] {
            let n = 37;
            let a = messy(n, seed);
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.61).sin()).collect();
            let want = spmv_csr(&a, &x);
            for c in [1usize, 2, 4, 8] {
                for sigma in [1usize, 4, 16, 64] {
                    let s = SellCs::from_csr(&a, c, sigma);
                    let mut y = vec![f64::NAN; n];
                    s.spmv(&x, &mut y);
                    for (r, (w, g)) in want.iter().zip(&y).enumerate() {
                        assert_eq!(
                            w.to_bits(),
                            g.to_bits(),
                            "row {r}, C={c}, sigma={sigma}, seed={seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_matches_csr_bitwise_on_messy_matrices() {
        for seed in [2u64, 11, 31] {
            let n = 41;
            let a = messy(n, seed);
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).cos()).collect();
            let want = spmv_csr(&a, &x);
            let blk = BlockedCsr::from_csr(&a);
            let mut y = vec![f64::NAN; n];
            blk.spmv(&x, &mut y);
            for (w, g) in want.iter().zip(&y) {
                assert_eq!(w.to_bits(), g.to_bits());
            }
        }
    }

    #[test]
    fn negative_zero_in_x_does_not_leak_through_padding() {
        // x[0] < 0 makes every pad product -0.0; x[0] = -0.0 makes it
        // +0.0·-0.0 = -0.0 as well. Neither may change any output bit.
        let mut b = TripletBuilder::new(6, 6);
        b.add(0, 1, 2.0);
        b.add(1, 0, -1.0);
        b.add(1, 2, 3.0);
        b.add(4, 4, -0.5);
        let a = b.build();
        for x0 in [-1.0f64, -0.0, 0.0, 2.0] {
            let mut x = vec![0.5f64; 6];
            x[0] = x0;
            let want = spmv_csr(&a, &x);
            let s = SellCs::from_csr(&a, 4, 2);
            let mut y = vec![f64::NAN; 6];
            s.spmv(&x, &mut y);
            let blk = BlockedCsr::from_csr(&a);
            let mut yb = vec![f64::NAN; 6];
            blk.spmv(&x, &mut yb);
            for ((w, g), gb) in want.iter().zip(&y).zip(&yb) {
                assert_eq!(w.to_bits(), g.to_bits(), "sell, x0={x0}");
                assert_eq!(w.to_bits(), gb.to_bits(), "blocked, x0={x0}");
            }
        }
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let a = CsrMatrix::zero(5, 5);
        let s = SellCs::from_csr(&a, 4, 8);
        let mut y = vec![f64::NAN; 5];
        s.spmv(&[1.0; 5], &mut y);
        assert!(y.iter().all(|v| v.to_bits() == 0.0f64.to_bits()));
        let blk = BlockedCsr::from_csr(&a);
        let mut yb = vec![f64::NAN; 5];
        blk.spmv(&[1.0; 5], &mut yb);
        assert!(yb.iter().all(|v| v.to_bits() == 0.0f64.to_bits()));
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        // Alternating long/short rows: unsorted chunks pad every short row
        // to the long width; σ-sorted windows group like lengths.
        let n = 64;
        let mut b = TripletBuilder::new(n, n);
        for r in 0..n {
            let k = if r % 2 == 0 { 8 } else { 1 };
            for j in 0..k {
                b.add(r, (r + j) % n, 1.0);
            }
        }
        let a = b.build();
        let nnz = a.nnz();
        let unsorted = SellCs::from_csr(&a, 8, 1);
        let sorted = SellCs::from_csr(&a, 8, 64);
        assert!(sorted.stored_slots() < unsorted.stored_slots());
        assert!(sorted.padding_ratio(nnz) < unsorted.padding_ratio(nnz));
        // And σ-sorting never changes the product bits.
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 1.3).sin()).collect();
        let want = spmv_csr(&a, &x);
        for s in [&unsorted, &sorted] {
            let mut y = vec![f64::NAN; n];
            s.spmv(&x, &mut y);
            for (w, g) in want.iter().zip(&y) {
                assert_eq!(w.to_bits(), g.to_bits());
            }
        }
    }
}
