//! Preconditioned Krylov solvers: CG, BiCGStab, restarted GMRES.
//!
//! These are the step-(iiib) "solution of the preconditioned system" of the
//! paper's pipeline. Each iteration's cost structure — one or two SpMVs
//! (halo exchange), a handful of AXPYs, and two or more globally-reduced dot
//! products — is what makes the solve phase latency-sensitive, the effect the
//! paper observes on EC2 at scale.

use crate::distmat::DistMatrix;
use crate::precond::Preconditioner;
use crate::vector::DistVector;
use hetero_simmpi::SimComm;

/// Convergence controls.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Relative residual tolerance (`||r|| <= rel_tol * ||b||`).
    pub rel_tol: f64,
    /// Absolute residual floor.
    pub abs_tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            rel_tol: 1e-8,
            abs_tol: 1e-14,
            max_iters: 500,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Krylov iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// `||b - A x||` at entry.
    pub initial_residual: f64,
    /// `||b - A x||` at exit.
    pub final_residual: f64,
}

impl SolveOptions {
    fn target(&self, norm_b: f64) -> f64 {
        (self.rel_tol * norm_b).max(self.abs_tol)
    }
}

/// Preconditioned conjugate gradients for SPD systems. Solves `A x = b`
/// starting from the incoming `x`.
pub fn cg(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    let mut r = a.new_vector();
    let mut q = a.new_vector();
    // r = b - A x
    a.spmv(x, &mut q, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, &q, comm);
    let initial_residual = r.norm2(comm);
    if initial_residual <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: initial_residual,
        };
    }

    let mut z = a.new_vector();
    m.apply(&r, &mut z, comm);
    let mut p = a.new_vector();
    p.copy_from(&z, comm);
    let mut rz = r.dot(&z, comm);

    let mut res = initial_residual;
    for it in 1..=opts.max_iters {
        a.spmv(&mut p, &mut q, comm);
        let pq = p.dot(&q, comm);
        if pq == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
        let alpha = rz / pq;
        x.axpy(alpha, &p, comm);
        r.axpy(-alpha, &q, comm);
        res = r.norm2(comm);
        if res <= target {
            return SolveStats {
                iterations: it,
                converged: true,
                initial_residual,
                final_residual: res,
            };
        }
        m.apply(&r, &mut z, comm);
        let rz_new = r.dot(&z, comm);
        let beta = rz_new / rz;
        rz = rz_new;
        p.xpby(&z, beta, comm);
    }
    SolveStats {
        iterations: opts.max_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

/// Preconditioned BiCGStab for general (non-symmetric) systems.
pub fn bicgstab(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    let mut r = a.new_vector();
    let mut t = a.new_vector();
    a.spmv(x, &mut t, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, &t, comm);
    let initial_residual = r.norm2(comm);
    if initial_residual <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: initial_residual,
        };
    }

    let mut r_hat = a.new_vector();
    r_hat.copy_from(&r, comm);
    let mut p = a.new_vector();
    let mut v = a.new_vector();
    let mut s = a.new_vector();
    let mut phat = a.new_vector();
    let mut shat = a.new_vector();
    let (mut rho, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
    let mut res = initial_residual;

    for it in 1..=opts.max_iters {
        let rho_new = r_hat.dot(&r, comm);
        if rho_new == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
        if it == 1 {
            p.copy_from(&r, comm);
        } else {
            let beta = (rho_new / rho) * (alpha / omega);
            // p = r + beta * (p - omega * v)
            p.axpy(-omega, &v, comm);
            p.xpby(&r, beta, comm);
        }
        rho = rho_new;
        m.apply(&p, &mut phat, comm);
        a.spmv(&mut phat, &mut v, comm);
        let rhv = r_hat.dot(&v, comm);
        if rhv == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
        alpha = rho / rhv;
        s.copy_from(&r, comm);
        s.axpy(-alpha, &v, comm);
        let s_norm = s.norm2(comm);
        if s_norm <= target {
            x.axpy(alpha, &phat, comm);
            return SolveStats {
                iterations: it,
                converged: true,
                initial_residual,
                final_residual: s_norm,
            };
        }
        m.apply(&s, &mut shat, comm);
        a.spmv(&mut shat, &mut t, comm);
        let tt = t.dot(&t, comm);
        if tt == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: s_norm,
            };
        }
        omega = t.dot(&s, comm) / tt;
        x.axpy(alpha, &phat, comm);
        x.axpy(omega, &shat, comm);
        r.copy_from(&s, comm);
        r.axpy(-omega, &t, comm);
        res = r.norm2(comm);
        if res <= target {
            return SolveStats {
                iterations: it,
                converged: true,
                initial_residual,
                final_residual: res,
            };
        }
        if omega == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
    }
    SolveStats {
        iterations: opts.max_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

/// Right-preconditioned restarted GMRES(m).
pub fn gmres(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    restart: usize,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    assert!(restart >= 1);
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    let mut r = a.new_vector();
    let mut tmp = a.new_vector();
    a.spmv(x, &mut tmp, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, &tmp, comm);
    let initial_residual = r.norm2(comm);
    let mut res = initial_residual;
    if res <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: res,
        };
    }

    let mut total_iters = 0usize;
    while total_iters < opts.max_iters {
        // Arnoldi with modified Gram-Schmidt and Givens rotations.
        let mut basis: Vec<DistVector> = Vec::with_capacity(restart + 1);
        let mut v0 = a.new_vector();
        v0.copy_from(&r, comm);
        v0.scale(1.0 / res, comm);
        basis.push(v0);

        let mut h = vec![vec![0.0f64; restart]; restart + 1];
        let mut cs = vec![0.0f64; restart];
        let mut sn = vec![0.0f64; restart];
        let mut g = vec![0.0f64; restart + 1];
        g[0] = res;

        let mut k_used = 0usize;
        for k in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A M^{-1} v_k
            m.apply(&basis[k], &mut tmp, comm);
            let mut w = a.new_vector();
            a.spmv(&mut tmp, &mut w, comm);
            for (j, vj) in basis.iter().enumerate().take(k + 1) {
                h[j][k] = w.dot(vj, comm);
                w.axpy(-h[j][k], vj, comm);
            }
            let norm_w = w.norm2(comm);
            h[k + 1][k] = norm_w;
            // Apply previous rotations to the new column.
            for j in 0..k {
                let t1 = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                let t2 = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t1;
                h[j + 1][k] = t2;
            }
            // New rotation to annihilate h[k+1][k].
            let denom = (h[k][k] * h[k][k] + h[k + 1][k] * h[k + 1][k]).sqrt();
            if denom == 0.0 {
                k_used = k + 1;
                break;
            }
            cs[k] = h[k][k] / denom;
            sn[k] = h[k + 1][k] / denom;
            h[k][k] = denom;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            res = g[k + 1].abs();
            k_used = k + 1;
            if res <= target || norm_w == 0.0 {
                // Converged, or lucky breakdown (solution is in the span).
                break;
            }
            let mut v_next = a.new_vector();
            v_next.copy_from(&w, comm);
            v_next.scale(1.0 / norm_w, comm);
            basis.push(v_next);
        }

        // Back-substitute y from H y = g and update x += M^{-1} (V y).
        let k = k_used;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= h[i][j] * yj;
            }
            y[i] = acc / h[i][i];
        }
        let mut update = a.new_vector();
        for (j, &yj) in y.iter().enumerate() {
            update.axpy(yj, &basis[j], comm);
        }
        m.apply(&update, &mut tmp, comm);
        x.axpy(1.0, &tmp, comm);

        // True residual for the restart.
        a.spmv(x, &mut tmp, comm);
        r.copy_from(b, comm);
        r.axpy(-1.0, &tmp, comm);
        res = r.norm2(comm);
        if res <= target {
            return SolveStats {
                iterations: total_iters,
                converged: true,
                initial_residual,
                final_residual: res,
            };
        }
    }
    SolveStats {
        iterations: total_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::TripletBuilder;
    use crate::precond::{Identity, IluZero, Jacobi, Ssor};
    use crate::vector::ExchangePlan;
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 3,
        }
    }

    fn laplacian_1d(n: usize) -> DistMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        DistMatrix::new(b.build(), ExchangePlan::empty())
    }

    fn check_solution(x: &DistVector, expected: &[f64], tol: f64) {
        for (xi, ei) in x.owned().iter().zip(expected) {
            assert!((xi - ei).abs() < tol, "{xi} vs {ei}");
        }
    }

    #[test]
    fn cg_solves_spd_system() {
        run_spmd(cfg(1), |comm| {
            let n = 20;
            let a = laplacian_1d(n);
            let expected: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut xe = DistVector::from_values(expected.clone(), n);
            let mut b = a.new_vector();
            a.spmv(&mut xe, &mut b, comm);
            let mut x = a.new_vector();
            let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
            assert!(stats.converged, "{stats:?}");
            assert!(stats.iterations <= n); // CG is exact in n steps
            check_solution(&x, &expected, 1e-6);
        });
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        run_spmd(cfg(1), |comm| {
            let n = 64;
            let a = laplacian_1d(n);
            let mut b = a.new_vector();
            for (i, v) in b.owned_mut().iter_mut().enumerate() {
                *v = (0.9 * i as f64).sin();
            }

            let run_with = |m: &dyn Preconditioner, comm: &mut hetero_simmpi::SimComm| {
                let mut x = a.new_vector();
                cg(&a, &b, &mut x, m, SolveOptions::default(), comm).iterations
            };
            let it_none = run_with(&Identity, comm);
            let jac = Jacobi::new(&a, comm);
            let it_jac = run_with(&jac, comm);
            let ssor = Ssor::new(&a, comm);
            let it_ssor = run_with(&ssor, comm);
            let ilu = IluZero::new(&a, comm);
            let it_ilu = run_with(&ilu, comm);
            // For this matrix Jacobi = diagonal scaling does not help, but
            // SSOR and ILU must beat it; ILU(0) on tridiagonal is exact.
            assert!(it_ssor < it_none, "ssor {it_ssor} vs none {it_none}");
            assert!(it_ilu <= 2, "ilu {it_ilu}");
            assert!(it_jac <= it_none + 1);
        });
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_system() {
        run_spmd(cfg(1), |comm| {
            // 1-D convection-diffusion with upwinding: -u'' + c u' ->
            // tridiagonal with asymmetric off-diagonals.
            let n = 30;
            let c = 0.8;
            let mut bld = TripletBuilder::new(n, n);
            for i in 0..n {
                bld.add(i, i, 2.0 + c);
                if i > 0 {
                    bld.add(i, i - 1, -1.0 - c);
                }
                if i + 1 < n {
                    bld.add(i, i + 1, -1.0);
                }
            }
            let a = DistMatrix::new(bld.build(), ExchangePlan::empty());
            let expected: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            let mut xe = DistVector::from_values(expected.clone(), n);
            let mut b = a.new_vector();
            a.spmv(&mut xe, &mut b, comm);
            let mut x = a.new_vector();
            let stats = bicgstab(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
            assert!(stats.converged, "{stats:?}");
            check_solution(&x, &expected, 1e-5);
        });
    }

    #[test]
    fn gmres_solves_nonsymmetric_system() {
        run_spmd(cfg(1), |comm| {
            let n = 30;
            let c = 1.5;
            let mut bld = TripletBuilder::new(n, n);
            for i in 0..n {
                bld.add(i, i, 2.0 + c);
                if i > 0 {
                    bld.add(i, i - 1, -1.0 - c);
                }
                if i + 1 < n {
                    bld.add(i, i + 1, -1.0);
                }
            }
            let a = DistMatrix::new(bld.build(), ExchangePlan::empty());
            let expected: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut xe = DistVector::from_values(expected.clone(), n);
            let mut b = a.new_vector();
            a.spmv(&mut xe, &mut b, comm);
            let mut x = a.new_vector();
            let stats = gmres(&a, &b, &mut x, &Identity, 10, SolveOptions::default(), comm);
            assert!(stats.converged, "{stats:?}");
            check_solution(&x, &expected, 1e-5);
        });
    }

    #[test]
    fn gmres_with_restart_smaller_than_needed_still_converges() {
        run_spmd(cfg(1), |comm| {
            let n = 40;
            let a = laplacian_1d(n);
            let mut ones = a.new_vector();
            ones.fill(1.0);
            let mut b = a.new_vector();
            a.spmv(&mut ones, &mut b, comm);
            let mut x = a.new_vector();
            let opts = SolveOptions {
                max_iters: 2000,
                ..SolveOptions::default()
            };
            let stats = gmres(&a, &b, &mut x, &Identity, 20, opts, comm);
            assert!(stats.converged, "{stats:?}");
            for &v in x.owned() {
                assert!((v - 1.0).abs() < 1e-5, "x = {v}");
            }
        });
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        run_spmd(cfg(1), |comm| {
            let a = laplacian_1d(5);
            let b = a.new_vector();
            let mut x = a.new_vector();
            let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
            assert!(stats.converged);
            assert_eq!(stats.iterations, 0);
            assert!(x.owned().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn distributed_cg_matches_serial() {
        // Global 1-D Laplacian of size 16 over 1, 2, 4 ranks.
        let n_global = 16usize;
        let solve = |p: usize| -> Vec<f64> {
            let results = run_spmd(cfg(p), move |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let n_per = n_global / size;
                let first = rank * n_per;
                let mut ghosts = Vec::new();
                if rank > 0 {
                    ghosts.push(first - 1);
                }
                if rank + 1 < size {
                    ghosts.push(first + n_per);
                }
                let n_local = n_per + ghosts.len();
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut bld = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    bld.add(r, r, 2.0);
                    if g > 0 {
                        bld.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        bld.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                if rank > 0 {
                    plan.neighbors.push(rank - 1);
                    plan.send_indices.push(vec![0]);
                    plan.recv_indices.push(vec![local_of(first - 1)]);
                }
                if rank + 1 < size {
                    plan.neighbors.push(rank + 1);
                    plan.send_indices.push(vec![n_per - 1]);
                    plan.recv_indices.push(vec![local_of(first + n_per)]);
                }
                let a = DistMatrix::new(bld.build(), plan);
                let mut b = a.new_vector();
                for (i, v) in b.owned_mut().iter_mut().enumerate() {
                    *v = ((first + i) as f64 * 0.3).sin();
                }
                let mut x = a.new_vector();
                let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
                assert!(stats.converged);
                x.owned().to_vec()
            });
            results.into_iter().flat_map(|r| r.value).collect()
        };
        let serial = solve(1);
        for p in [2usize, 4] {
            let dist = solve(p);
            for (s, d) in serial.iter().zip(&dist) {
                assert!((s - d).abs() < 1e-6, "p = {p}: {s} vs {d}");
            }
        }
    }

    #[test]
    fn solver_time_depends_on_network() {
        // The same distributed solve must take longer simulated time on
        // Ethernet than on InfiniBand: the paper's core phenomenon.
        let time_on = |net: NetworkModel| -> f64 {
            let mut c = cfg(4);
            c.net = net;
            c.net.jitter_sigma = 0.0;
            let results = run_spmd(c, |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let n_per = 8;
                let first = rank * n_per;
                let n_global = n_per * size;
                let mut ghosts = Vec::new();
                if rank > 0 {
                    ghosts.push(first - 1);
                }
                if rank + 1 < size {
                    ghosts.push(first + n_per);
                }
                let n_local = n_per + ghosts.len();
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut bld = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    bld.add(r, r, 2.0);
                    if g > 0 {
                        bld.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        bld.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                if rank > 0 {
                    plan.neighbors.push(rank - 1);
                    plan.send_indices.push(vec![0]);
                    plan.recv_indices.push(vec![local_of(first - 1)]);
                }
                if rank + 1 < size {
                    plan.neighbors.push(rank + 1);
                    plan.send_indices.push(vec![n_per - 1]);
                    plan.recv_indices.push(vec![local_of(first + n_per)]);
                }
                let a = DistMatrix::new(bld.build(), plan);
                let mut b = a.new_vector();
                b.fill(1.0);
                let mut x = a.new_vector();
                let _ = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
                comm.clock()
            });
            results.iter().map(|r| r.value).fold(0.0f64, f64::max)
        };
        let t_eth = time_on(NetworkModel::gigabit_ethernet());
        let t_ib = time_on(NetworkModel::infiniband_ddr());
        assert!(t_eth > 3.0 * t_ib, "eth {t_eth} vs ib {t_ib}");
    }
}
