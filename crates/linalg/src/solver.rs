//! Preconditioned Krylov solvers: CG, BiCGStab, restarted GMRES.
//!
//! These are the step-(iiib) "solution of the preconditioned system" of the
//! paper's pipeline. Each iteration's cost structure — one or two SpMVs
//! (halo exchange), a handful of AXPYs, and two or more globally-reduced dot
//! products — is what makes the solve phase latency-sensitive, the effect the
//! paper observes on EC2 at scale.

use crate::distmat::DistMatrix;
use crate::precond::Preconditioner;
use crate::vector::{fused_dots, DistVector};
use hetero_simmpi::SimComm;
use serde::{Deserialize, Serialize};

/// Communication schedule used by the Krylov solvers.
///
/// `Blocking` reproduces the original solver schedule byte-for-byte; the
/// other two spend the same arithmetic but expose less communication time
/// on latency-bound fabrics (the paper's 1 GbE platforms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverVariant {
    /// Blocking halo exchange in each SpMV and one scalar all-reduce per
    /// inner product — the baseline schedule.
    #[default]
    Blocking,
    /// Halo exchanges overlapped with interior rows
    /// ([`DistMatrix::spmv_overlapped`]) plus fused dot-product reductions.
    /// Values are bitwise-identical to `Blocking`; only the virtual-time
    /// schedule changes.
    Overlapped,
    /// Single-reduction pipelined CG (Ghysels–Vanroose): one fused
    /// all-reduce per iteration. Mathematically equivalent to classic CG
    /// but rounded differently, so iteration counts can drift by one or
    /// two. Non-CG solvers fall back to the `Overlapped` schedule.
    Pipelined,
}

/// How the time steppers produce the operator a solve applies — the
/// host-side sibling of [`SolverVariant`]'s communication knob.
///
/// Both backends produce bitwise-identical matrices, solves, and virtual
/// clocks; `MatrixFree` only removes per-step host allocation and
/// structure-rescan cost (see `MatrixAssembly::assemble_in_place` in
/// `hetero-fem` and DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelBackend {
    /// Rebuild a fresh CSR operator every solve-heavy step via the cached
    /// symbolic structure — the baseline path.
    #[default]
    Assembled,
    /// Quadrature-fused refresh of a retained operator: per-cell local
    /// matrices are scattered straight into the live CSR value buffer in
    /// the frozen sorted order, skipping the global rebuild (value
    /// allocation, pattern clones, exchange-plan clone, and the
    /// interior/boundary row rescan) entirely.
    MatrixFree,
}

/// Convergence controls.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Relative residual tolerance (`||r|| <= rel_tol * ||b||`).
    pub rel_tol: f64,
    /// Absolute residual floor.
    pub abs_tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Communication schedule.
    pub variant: SolverVariant,
    /// Operator-production path for the owning time stepper.
    pub backend: KernelBackend,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            rel_tol: 1e-8,
            abs_tol: 1e-14,
            max_iters: 500,
            variant: SolverVariant::default(),
            backend: KernelBackend::default(),
        }
    }
}

/// Pool of reusable solver scratch vectors.
///
/// [`bicgstab_with_workspace`] and [`gmres_with_workspace`] draw their work
/// vectors here instead of allocating per call and return them on exit, so
/// a caller that solves repeatedly (the NS momentum stepper runs three
/// BiCGStab/GMRES solves per time step) allocates no solver scratch in
/// steady state. Vectors are zeroed when drawn and allocation never charged
/// virtual time, so results *and* clocks are identical to the allocating
/// entry points.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    pool: Vec<DistVector>,
}

impl SolverWorkspace {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a zeroed vector shaped like `a`'s column space, reusing a
    /// pooled allocation when one matches.
    fn grab(&mut self, a: &DistMatrix) -> DistVector {
        let (no, nl) = (a.col_n_owned(), a.n_local());
        if let Some(i) = self
            .pool
            .iter()
            .position(|v| v.n_owned() == no && v.n_local() == nl)
        {
            let mut v = self.pool.swap_remove(i);
            v.fill(0.0);
            v
        } else {
            DistVector::zeros(no, nl - no)
        }
    }

    fn stash(&mut self, v: DistVector) {
        self.pool.push(v);
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Krylov iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// `||b - A x||` at entry.
    pub initial_residual: f64,
    /// `||b - A x||` at exit.
    pub final_residual: f64,
}

impl SolveOptions {
    fn target(&self, norm_b: f64) -> f64 {
        (self.rel_tol * norm_b).max(self.abs_tol)
    }
}

#[inline]
fn spmv_variant(
    a: &DistMatrix,
    x: &mut DistVector,
    y: &mut DistVector,
    overlapped: bool,
    comm: &mut SimComm,
) {
    if overlapped {
        a.spmv_overlapped(x, y, comm);
    } else {
        a.spmv(x, y, comm);
    }
}

/// Preconditioned conjugate gradients for SPD systems. Solves `A x = b`
/// starting from the incoming `x`. Dispatches on `opts.variant`:
/// `Pipelined` runs [`cg_pipelined`]; the other two run the classic
/// iteration with blocking or overlapped communication.
pub fn cg(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    match opts.variant {
        SolverVariant::Blocking => cg_classic(a, b, x, m, opts, false, comm),
        SolverVariant::Overlapped => cg_classic(a, b, x, m, opts, true, comm),
        SolverVariant::Pipelined => cg_pipelined(a, b, x, m, opts, comm),
    }
}

fn cg_classic(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    overlapped: bool,
    comm: &mut SimComm,
) -> SolveStats {
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    let mut r = a.new_vector();
    let mut q = a.new_vector();
    // r = b - A x
    spmv_variant(a, x, &mut q, overlapped, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, &q, comm);
    let initial_residual = r.norm2(comm);
    if initial_residual <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: initial_residual,
        };
    }

    let mut z = a.new_vector();
    m.apply(&r, &mut z, comm);
    let mut p = a.new_vector();
    p.copy_from(&z, comm);
    let mut rz = r.dot(&z, comm);

    let mut res = initial_residual;
    for it in 1..=opts.max_iters {
        spmv_variant(a, &mut p, &mut q, overlapped, comm);
        let pq = p.dot(&q, comm);
        if pq == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
        let alpha = rz / pq;
        x.axpy(alpha, &p, comm);
        r.axpy(-alpha, &q, comm);
        let rz_new;
        if overlapped {
            // Apply the preconditioner before the convergence check so
            // ||r|| and (r, z) ride one fused reduction. Same scalar values
            // as the blocking schedule — only the timing differs.
            m.apply(&r, &mut z, comm);
            let d = fused_dots(&[(&r, &r), (&r, &z)], comm);
            res = d[0].sqrt();
            rz_new = d[1];
            if res <= target {
                return SolveStats {
                    iterations: it,
                    converged: true,
                    initial_residual,
                    final_residual: res,
                };
            }
        } else {
            res = r.norm2(comm);
            if res <= target {
                return SolveStats {
                    iterations: it,
                    converged: true,
                    initial_residual,
                    final_residual: res,
                };
            }
            m.apply(&r, &mut z, comm);
            rz_new = r.dot(&z, comm);
        }
        let beta = rz_new / rz;
        rz = rz_new;
        p.xpby(&z, beta, comm);
    }
    SolveStats {
        iterations: opts.max_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

/// Pipelined conjugate gradients (Ghysels & Vanroose). The three inner
/// products of a CG iteration are rearranged through auxiliary recurrences
/// so that a **single fused all-reduce** per iteration carries all
/// reduction traffic, and every SpMV overlaps its halo exchange.
/// Mathematically equivalent to [`cg`]; the recurrences round differently
/// in floating point, so iteration counts can drift by an iteration or two.
pub fn cg_pipelined(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    let mut r = a.new_vector();
    let mut tmp = a.new_vector();
    a.spmv_overlapped(x, &mut tmp, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, &tmp, comm);
    let mut u = a.new_vector();
    m.apply(&r, &mut u, comm);
    let mut w = a.new_vector();
    a.spmv_overlapped(&mut u, &mut w, comm);
    // One reduction carries gamma = (r, u), delta = (w, u), and ||r||^2.
    let d = fused_dots(&[(&r, &u), (&w, &u), (&r, &r)], comm);
    let (mut gamma, mut delta) = (d[0], d[1]);
    let initial_residual = d[2].sqrt();
    if initial_residual <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: initial_residual,
        };
    }

    let mut z = a.new_vector();
    let mut q = a.new_vector();
    let mut s = a.new_vector();
    let mut p = a.new_vector();
    let mut mv = a.new_vector();
    let mut nv = a.new_vector();
    let (mut gamma_prev, mut alpha_prev) = (0.0f64, 0.0f64);
    let mut res = initial_residual;
    for it in 1..=opts.max_iters {
        let fail = |res: f64| SolveStats {
            iterations: it,
            converged: false,
            initial_residual,
            final_residual: res,
        };
        m.apply(&w, &mut mv, comm);
        a.spmv_overlapped(&mut mv, &mut nv, comm);
        let (alpha, beta);
        if it == 1 {
            beta = 0.0;
            if delta == 0.0 {
                return fail(res);
            }
            alpha = gamma / delta;
        } else {
            beta = gamma / gamma_prev;
            let denom = delta - beta * gamma / alpha_prev;
            if denom == 0.0 {
                return fail(res);
            }
            alpha = gamma / denom;
        }
        z.xpby(&nv, beta, comm); // z = n + beta z  (A M^{-1} s recurrence)
        q.xpby(&mv, beta, comm); // q = m + beta q  (M^{-1} s recurrence)
        s.xpby(&w, beta, comm); //  s = w + beta s  (A p recurrence)
        p.xpby(&u, beta, comm); //  p = u + beta p
        x.axpy(alpha, &p, comm);
        r.axpy(-alpha, &s, comm);
        u.axpy(-alpha, &q, comm);
        w.axpy(-alpha, &z, comm);
        gamma_prev = gamma;
        alpha_prev = alpha;
        let d = fused_dots(&[(&r, &u), (&w, &u), (&r, &r)], comm);
        gamma = d[0];
        delta = d[1];
        res = d[2].sqrt();
        if res <= target {
            return SolveStats {
                iterations: it,
                converged: true,
                initial_residual,
                final_residual: res,
            };
        }
        if gamma == 0.0 {
            // Breakdown: the next step direction would vanish.
            return fail(res);
        }
    }
    SolveStats {
        iterations: opts.max_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

/// Preconditioned BiCGStab for general (non-symmetric) systems.
pub fn bicgstab(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    let mut ws = SolverWorkspace::new();
    bicgstab_with_workspace(a, b, x, m, opts, &mut ws, comm)
}

/// The eight work vectors of one BiCGStab call.
struct BicgVecs {
    r: DistVector,
    t: DistVector,
    r_hat: DistVector,
    p: DistVector,
    v: DistVector,
    s: DistVector,
    phat: DistVector,
    shat: DistVector,
}

/// [`bicgstab`] drawing its work vectors from `ws` instead of allocating.
/// Identical results and virtual clocks; use it when solving repeatedly.
pub fn bicgstab_with_workspace(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    ws: &mut SolverWorkspace,
    comm: &mut SimComm,
) -> SolveStats {
    let mut vecs = BicgVecs {
        r: ws.grab(a),
        t: ws.grab(a),
        r_hat: ws.grab(a),
        p: ws.grab(a),
        v: ws.grab(a),
        s: ws.grab(a),
        phat: ws.grab(a),
        shat: ws.grab(a),
    };
    let stats = bicgstab_inner(a, b, x, m, opts, &mut vecs, comm);
    let BicgVecs {
        r,
        t,
        r_hat,
        p,
        v,
        s,
        phat,
        shat,
    } = vecs;
    for vec in [r, t, r_hat, p, v, s, phat, shat] {
        ws.stash(vec);
    }
    stats
}

fn bicgstab_inner(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    opts: SolveOptions,
    vecs: &mut BicgVecs,
    comm: &mut SimComm,
) -> SolveStats {
    let overlapped = opts.variant != SolverVariant::Blocking;
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    let r = &mut vecs.r;
    let t = &mut vecs.t;
    spmv_variant(a, x, t, overlapped, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, t, comm);
    let initial_residual = r.norm2(comm);
    if initial_residual <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: initial_residual,
        };
    }

    vecs.r_hat.copy_from(&vecs.r, comm);
    let (mut rho, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
    let mut res = initial_residual;

    for it in 1..=opts.max_iters {
        let rho_new = vecs.r_hat.dot(&vecs.r, comm);
        if rho_new == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
        if it == 1 {
            vecs.p.copy_from(&vecs.r, comm);
        } else {
            let beta = (rho_new / rho) * (alpha / omega);
            // p = r + beta * (p - omega * v)
            vecs.p.axpy(-omega, &vecs.v, comm);
            vecs.p.xpby(&vecs.r, beta, comm);
        }
        rho = rho_new;
        m.apply(&vecs.p, &mut vecs.phat, comm);
        spmv_variant(a, &mut vecs.phat, &mut vecs.v, overlapped, comm);
        let rhv = vecs.r_hat.dot(&vecs.v, comm);
        if rhv == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
        alpha = rho / rhv;
        vecs.s.copy_from(&vecs.r, comm);
        vecs.s.axpy(-alpha, &vecs.v, comm);
        let s_norm = vecs.s.norm2(comm);
        if s_norm <= target {
            x.axpy(alpha, &vecs.phat, comm);
            return SolveStats {
                iterations: it,
                converged: true,
                initial_residual,
                final_residual: s_norm,
            };
        }
        m.apply(&vecs.s, &mut vecs.shat, comm);
        spmv_variant(a, &mut vecs.shat, &mut vecs.t, overlapped, comm);
        let (tt, ts);
        if overlapped {
            // (t, t) and (t, s) ride one fused reduction.
            let d = fused_dots(&[(&vecs.t, &vecs.t), (&vecs.t, &vecs.s)], comm);
            tt = d[0];
            ts = d[1];
        } else {
            tt = vecs.t.dot(&vecs.t, comm);
            ts = if tt == 0.0 {
                0.0
            } else {
                vecs.t.dot(&vecs.s, comm)
            };
        }
        if tt == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: s_norm,
            };
        }
        omega = ts / tt;
        x.axpy(alpha, &vecs.phat, comm);
        x.axpy(omega, &vecs.shat, comm);
        vecs.r.copy_from(&vecs.s, comm);
        vecs.r.axpy(-omega, &vecs.t, comm);
        res = vecs.r.norm2(comm);
        if res <= target {
            return SolveStats {
                iterations: it,
                converged: true,
                initial_residual,
                final_residual: res,
            };
        }
        if omega == 0.0 {
            return SolveStats {
                iterations: it,
                converged: false,
                initial_residual,
                final_residual: res,
            };
        }
    }
    SolveStats {
        iterations: opts.max_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

/// Right-preconditioned restarted GMRES(m).
pub fn gmres(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    restart: usize,
    opts: SolveOptions,
    comm: &mut SimComm,
) -> SolveStats {
    let mut ws = SolverWorkspace::new();
    gmres_with_workspace(a, b, x, m, restart, opts, &mut ws, comm)
}

/// [`gmres`] drawing its work vectors (residual, scratch, and the
/// `restart + 1` Krylov basis vectors) from `ws` instead of allocating in
/// the Arnoldi loop. Identical results and virtual clocks.
#[allow(clippy::too_many_arguments)]
pub fn gmres_with_workspace(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    restart: usize,
    opts: SolveOptions,
    ws: &mut SolverWorkspace,
    comm: &mut SimComm,
) -> SolveStats {
    assert!(restart >= 1);
    let mut r = ws.grab(a);
    let mut tmp = ws.grab(a);
    let mut update = ws.grab(a);
    let mut w = ws.grab(a);
    let mut basis: Vec<DistVector> = (0..=restart).map(|_| ws.grab(a)).collect();
    let stats = gmres_inner(
        a,
        b,
        x,
        m,
        restart,
        opts,
        &mut r,
        &mut tmp,
        &mut update,
        &mut w,
        &mut basis,
        comm,
    );
    for vec in [r, tmp, update, w].into_iter().chain(basis) {
        ws.stash(vec);
    }
    stats
}

#[allow(clippy::too_many_arguments)]
fn gmres_inner(
    a: &DistMatrix,
    b: &DistVector,
    x: &mut DistVector,
    m: &dyn Preconditioner,
    restart: usize,
    opts: SolveOptions,
    r: &mut DistVector,
    tmp: &mut DistVector,
    update: &mut DistVector,
    w: &mut DistVector,
    basis: &mut [DistVector],
    comm: &mut SimComm,
) -> SolveStats {
    let overlapped = opts.variant != SolverVariant::Blocking;
    let norm_b = b.norm2(comm);
    let target = opts.target(norm_b);

    spmv_variant(a, x, tmp, overlapped, comm);
    r.copy_from(b, comm);
    r.axpy(-1.0, tmp, comm);
    let initial_residual = r.norm2(comm);
    let mut res = initial_residual;
    if res <= target {
        return SolveStats {
            iterations: 0,
            converged: true,
            initial_residual,
            final_residual: res,
        };
    }

    let mut total_iters = 0usize;
    while total_iters < opts.max_iters {
        // Arnoldi with modified Gram-Schmidt and Givens rotations.
        basis[0].copy_from(r, comm);
        basis[0].scale(1.0 / res, comm);

        let mut h = vec![vec![0.0f64; restart]; restart + 1];
        let mut cs = vec![0.0f64; restart];
        let mut sn = vec![0.0f64; restart];
        let mut g = vec![0.0f64; restart + 1];
        g[0] = res;

        let mut k_used = 0usize;
        for k in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A M^{-1} v_k
            m.apply(&basis[k], tmp, comm);
            spmv_variant(a, tmp, w, overlapped, comm);
            for (j, vj) in basis.iter().enumerate().take(k + 1) {
                h[j][k] = w.dot(vj, comm);
                w.axpy(-h[j][k], vj, comm);
            }
            let norm_w = w.norm2(comm);
            h[k + 1][k] = norm_w;
            // Apply previous rotations to the new column.
            for j in 0..k {
                let t1 = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                let t2 = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t1;
                h[j + 1][k] = t2;
            }
            // New rotation to annihilate h[k+1][k].
            let denom = (h[k][k] * h[k][k] + h[k + 1][k] * h[k + 1][k]).sqrt();
            if denom == 0.0 {
                k_used = k + 1;
                break;
            }
            cs[k] = h[k][k] / denom;
            sn[k] = h[k + 1][k] / denom;
            h[k][k] = denom;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            res = g[k + 1].abs();
            k_used = k + 1;
            if res <= target || norm_w == 0.0 {
                // Converged, or lucky breakdown (solution is in the span).
                break;
            }
            basis[k + 1].copy_from(w, comm);
            basis[k + 1].scale(1.0 / norm_w, comm);
        }

        // Back-substitute y from H y = g and update x += M^{-1} (V y).
        let k = k_used;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= h[i][j] * yj;
            }
            y[i] = acc / h[i][i];
        }
        update.fill(0.0);
        for (j, &yj) in y.iter().enumerate() {
            update.axpy(yj, &basis[j], comm);
        }
        m.apply(update, tmp, comm);
        x.axpy(1.0, tmp, comm);

        // True residual for the restart.
        spmv_variant(a, x, tmp, overlapped, comm);
        r.copy_from(b, comm);
        r.axpy(-1.0, tmp, comm);
        res = r.norm2(comm);
        if res <= target {
            return SolveStats {
                iterations: total_iters,
                converged: true,
                initial_residual,
                final_residual: res,
            };
        }
    }
    SolveStats {
        iterations: total_iters,
        converged: false,
        initial_residual,
        final_residual: res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::TripletBuilder;
    use crate::precond::{Identity, IluZero, Jacobi, Ssor};
    use crate::vector::ExchangePlan;
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 3,
        }
    }

    fn laplacian_1d(n: usize) -> DistMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        DistMatrix::new(b.build(), ExchangePlan::empty())
    }

    fn check_solution(x: &DistVector, expected: &[f64], tol: f64) {
        for (xi, ei) in x.owned().iter().zip(expected) {
            assert!((xi - ei).abs() < tol, "{xi} vs {ei}");
        }
    }

    #[test]
    fn cg_solves_spd_system() {
        run_spmd(cfg(1), |comm| {
            let n = 20;
            let a = laplacian_1d(n);
            let expected: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut xe = DistVector::from_values(expected.clone(), n);
            let mut b = a.new_vector();
            a.spmv(&mut xe, &mut b, comm);
            let mut x = a.new_vector();
            let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
            assert!(stats.converged, "{stats:?}");
            assert!(stats.iterations <= n); // CG is exact in n steps
            check_solution(&x, &expected, 1e-6);
        });
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        run_spmd(cfg(1), |comm| {
            let n = 64;
            let a = laplacian_1d(n);
            let mut b = a.new_vector();
            for (i, v) in b.owned_mut().iter_mut().enumerate() {
                *v = (0.9 * i as f64).sin();
            }

            let run_with = |m: &dyn Preconditioner, comm: &mut hetero_simmpi::SimComm| {
                let mut x = a.new_vector();
                cg(&a, &b, &mut x, m, SolveOptions::default(), comm).iterations
            };
            let it_none = run_with(&Identity, comm);
            let jac = Jacobi::new(&a, comm);
            let it_jac = run_with(&jac, comm);
            let ssor = Ssor::new(&a, comm);
            let it_ssor = run_with(&ssor, comm);
            let ilu = IluZero::new(&a, comm);
            let it_ilu = run_with(&ilu, comm);
            // For this matrix Jacobi = diagonal scaling does not help, but
            // SSOR and ILU must beat it; ILU(0) on tridiagonal is exact.
            assert!(it_ssor < it_none, "ssor {it_ssor} vs none {it_none}");
            assert!(it_ilu <= 2, "ilu {it_ilu}");
            assert!(it_jac <= it_none + 1);
        });
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_system() {
        run_spmd(cfg(1), |comm| {
            // 1-D convection-diffusion with upwinding: -u'' + c u' ->
            // tridiagonal with asymmetric off-diagonals.
            let n = 30;
            let c = 0.8;
            let mut bld = TripletBuilder::new(n, n);
            for i in 0..n {
                bld.add(i, i, 2.0 + c);
                if i > 0 {
                    bld.add(i, i - 1, -1.0 - c);
                }
                if i + 1 < n {
                    bld.add(i, i + 1, -1.0);
                }
            }
            let a = DistMatrix::new(bld.build(), ExchangePlan::empty());
            let expected: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            let mut xe = DistVector::from_values(expected.clone(), n);
            let mut b = a.new_vector();
            a.spmv(&mut xe, &mut b, comm);
            let mut x = a.new_vector();
            let stats = bicgstab(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
            assert!(stats.converged, "{stats:?}");
            check_solution(&x, &expected, 1e-5);
        });
    }

    #[test]
    fn gmres_solves_nonsymmetric_system() {
        run_spmd(cfg(1), |comm| {
            let n = 30;
            let c = 1.5;
            let mut bld = TripletBuilder::new(n, n);
            for i in 0..n {
                bld.add(i, i, 2.0 + c);
                if i > 0 {
                    bld.add(i, i - 1, -1.0 - c);
                }
                if i + 1 < n {
                    bld.add(i, i + 1, -1.0);
                }
            }
            let a = DistMatrix::new(bld.build(), ExchangePlan::empty());
            let expected: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut xe = DistVector::from_values(expected.clone(), n);
            let mut b = a.new_vector();
            a.spmv(&mut xe, &mut b, comm);
            let mut x = a.new_vector();
            let stats = gmres(&a, &b, &mut x, &Identity, 10, SolveOptions::default(), comm);
            assert!(stats.converged, "{stats:?}");
            check_solution(&x, &expected, 1e-5);
        });
    }

    #[test]
    fn gmres_with_restart_smaller_than_needed_still_converges() {
        run_spmd(cfg(1), |comm| {
            let n = 40;
            let a = laplacian_1d(n);
            let mut ones = a.new_vector();
            ones.fill(1.0);
            let mut b = a.new_vector();
            a.spmv(&mut ones, &mut b, comm);
            let mut x = a.new_vector();
            let opts = SolveOptions {
                max_iters: 2000,
                ..SolveOptions::default()
            };
            let stats = gmres(&a, &b, &mut x, &Identity, 20, opts, comm);
            assert!(stats.converged, "{stats:?}");
            for &v in x.owned() {
                assert!((v - 1.0).abs() < 1e-5, "x = {v}");
            }
        });
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        run_spmd(cfg(1), |comm| {
            let a = laplacian_1d(5);
            let b = a.new_vector();
            let mut x = a.new_vector();
            let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
            assert!(stats.converged);
            assert_eq!(stats.iterations, 0);
            assert!(x.owned().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn distributed_cg_matches_serial() {
        // Global 1-D Laplacian of size 16 over 1, 2, 4 ranks.
        let n_global = 16usize;
        let solve = |p: usize| -> Vec<f64> {
            let results = run_spmd(cfg(p), move |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let n_per = n_global / size;
                let first = rank * n_per;
                let mut ghosts = Vec::new();
                if rank > 0 {
                    ghosts.push(first - 1);
                }
                if rank + 1 < size {
                    ghosts.push(first + n_per);
                }
                let n_local = n_per + ghosts.len();
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut bld = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    bld.add(r, r, 2.0);
                    if g > 0 {
                        bld.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        bld.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                if rank > 0 {
                    plan.neighbors.push(rank - 1);
                    plan.send_indices.push(vec![0]);
                    plan.recv_indices.push(vec![local_of(first - 1)]);
                }
                if rank + 1 < size {
                    plan.neighbors.push(rank + 1);
                    plan.send_indices.push(vec![n_per - 1]);
                    plan.recv_indices.push(vec![local_of(first + n_per)]);
                }
                let a = DistMatrix::new(bld.build(), plan);
                let mut b = a.new_vector();
                for (i, v) in b.owned_mut().iter_mut().enumerate() {
                    *v = ((first + i) as f64 * 0.3).sin();
                }
                let mut x = a.new_vector();
                let stats = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
                assert!(stats.converged);
                x.owned().to_vec()
            });
            results.into_iter().flat_map(|r| r.value).collect()
        };
        let serial = solve(1);
        for p in [2usize, 4] {
            let dist = solve(p);
            for (s, d) in serial.iter().zip(&dist) {
                assert!((s - d).abs() < 1e-6, "p = {p}: {s} vs {d}");
            }
        }
    }

    #[test]
    fn solver_time_depends_on_network() {
        // The same distributed solve must take longer simulated time on
        // Ethernet than on InfiniBand: the paper's core phenomenon.
        let time_on = |net: NetworkModel| -> f64 {
            let mut c = cfg(4);
            c.net = net;
            c.net.jitter_sigma = 0.0;
            let results = run_spmd(c, |comm| {
                let rank = comm.rank();
                let size = comm.size();
                let n_per = 8;
                let first = rank * n_per;
                let n_global = n_per * size;
                let mut ghosts = Vec::new();
                if rank > 0 {
                    ghosts.push(first - 1);
                }
                if rank + 1 < size {
                    ghosts.push(first + n_per);
                }
                let n_local = n_per + ghosts.len();
                let local_of = |g: usize| -> usize {
                    if (first..first + n_per).contains(&g) {
                        g - first
                    } else {
                        n_per + ghosts.iter().position(|&x| x == g).unwrap()
                    }
                };
                let mut bld = TripletBuilder::new(n_per, n_local);
                for r in 0..n_per {
                    let g = first + r;
                    bld.add(r, r, 2.0);
                    if g > 0 {
                        bld.add(r, local_of(g - 1), -1.0);
                    }
                    if g + 1 < n_global {
                        bld.add(r, local_of(g + 1), -1.0);
                    }
                }
                let mut plan = ExchangePlan::empty();
                if rank > 0 {
                    plan.neighbors.push(rank - 1);
                    plan.send_indices.push(vec![0]);
                    plan.recv_indices.push(vec![local_of(first - 1)]);
                }
                if rank + 1 < size {
                    plan.neighbors.push(rank + 1);
                    plan.send_indices.push(vec![n_per - 1]);
                    plan.recv_indices.push(vec![local_of(first + n_per)]);
                }
                let a = DistMatrix::new(bld.build(), plan);
                let mut b = a.new_vector();
                b.fill(1.0);
                let mut x = a.new_vector();
                let _ = cg(&a, &b, &mut x, &Identity, SolveOptions::default(), comm);
                comm.clock()
            });
            results.iter().map(|r| r.value).fold(0.0f64, f64::max)
        };
        let t_eth = time_on(NetworkModel::gigabit_ethernet());
        let t_ib = time_on(NetworkModel::infiniband_ddr());
        assert!(t_eth > 3.0 * t_ib, "eth {t_eth} vs ib {t_ib}");
    }

    /// Builds the rank-local block of the global 1-D Laplacian with
    /// `n_per` rows per rank, including its exchange plan. Returns the
    /// matrix and this rank's first global row.
    fn dist_laplacian(comm: &hetero_simmpi::SimComm, n_per: usize) -> (DistMatrix, usize) {
        let rank = comm.rank();
        let size = comm.size();
        let first = rank * n_per;
        let n_global = n_per * size;
        let mut ghosts = Vec::new();
        if rank > 0 {
            ghosts.push(first - 1);
        }
        if rank + 1 < size {
            ghosts.push(first + n_per);
        }
        let n_local = n_per + ghosts.len();
        let local_of = |g: usize| -> usize {
            if (first..first + n_per).contains(&g) {
                g - first
            } else {
                n_per + ghosts.iter().position(|&x| x == g).unwrap()
            }
        };
        let mut bld = TripletBuilder::new(n_per, n_local);
        for r in 0..n_per {
            let g = first + r;
            bld.add(r, r, 2.0);
            if g > 0 {
                bld.add(r, local_of(g - 1), -1.0);
            }
            if g + 1 < n_global {
                bld.add(r, local_of(g + 1), -1.0);
            }
        }
        let mut plan = ExchangePlan::empty();
        if rank > 0 {
            plan.neighbors.push(rank - 1);
            plan.send_indices.push(vec![0]);
            plan.recv_indices.push(vec![local_of(first - 1)]);
        }
        if rank + 1 < size {
            plan.neighbors.push(rank + 1);
            plan.send_indices.push(vec![n_per - 1]);
            plan.recv_indices.push(vec![local_of(first + n_per)]);
        }
        (DistMatrix::new(bld.build(), plan), first)
    }

    /// The overlapped variant reorders communication but never arithmetic:
    /// every solver must produce bitwise-identical iterates to blocking.
    #[test]
    fn overlapped_variant_is_bitwise_identical_to_blocking() {
        type RankResult = (Vec<Vec<f64>>, Vec<usize>);
        let solve = |variant: SolverVariant| -> Vec<RankResult> {
            run_spmd(cfg(4), move |comm| {
                let (a, first) = dist_laplacian(comm, 6);
                let mut b = a.new_vector();
                for (i, v) in b.owned_mut().iter_mut().enumerate() {
                    *v = ((first + i) as f64 * 0.3).sin();
                }
                let opts = SolveOptions {
                    variant,
                    ..SolveOptions::default()
                };
                let mut x_cg = a.new_vector();
                let s_cg = cg(&a, &b, &mut x_cg, &Identity, opts, comm);
                let mut x_bi = a.new_vector();
                let s_bi = bicgstab(&a, &b, &mut x_bi, &Identity, opts, comm);
                let mut x_gm = a.new_vector();
                let s_gm = gmres(&a, &b, &mut x_gm, &Identity, 10, opts, comm);
                (
                    vec![
                        x_cg.owned().to_vec(),
                        x_bi.owned().to_vec(),
                        x_gm.owned().to_vec(),
                    ],
                    vec![s_cg.iterations, s_bi.iterations, s_gm.iterations],
                )
            })
            .into_iter()
            .map(|r| r.value)
            .collect()
        };
        let blocking = solve(SolverVariant::Blocking);
        let overlapped = solve(SolverVariant::Overlapped);
        assert_eq!(blocking, overlapped);
    }

    /// Pipelined CG reassociates the recurrences, so it is not bitwise —
    /// but it must reach the same tolerance in a comparable iteration
    /// count (within ±2 of classic CG) and the same solution.
    #[test]
    fn pipelined_cg_tracks_classic_cg() {
        for p in [1usize, 4] {
            let solve = move |variant: SolverVariant| -> (Vec<f64>, usize, bool) {
                let results = run_spmd(cfg(p), move |comm| {
                    let (a, first) = dist_laplacian(comm, 24 / p);
                    let mut b = a.new_vector();
                    for (i, v) in b.owned_mut().iter_mut().enumerate() {
                        *v = ((first + i) as f64 * 0.3).sin();
                    }
                    let opts = SolveOptions {
                        variant,
                        ..SolveOptions::default()
                    };
                    let mut x = a.new_vector();
                    let stats = cg(&a, &b, &mut x, &Identity, opts, comm);
                    (x.owned().to_vec(), stats.iterations, stats.converged)
                });
                let iters = results[0].value.1;
                let converged = results.iter().all(|r| r.value.2);
                (
                    results.into_iter().flat_map(|r| r.value.0).collect(),
                    iters,
                    converged,
                )
            };
            let (x_c, it_c, ok_c) = solve(SolverVariant::Blocking);
            let (x_p, it_p, ok_p) = solve(SolverVariant::Pipelined);
            assert!(ok_c && ok_p, "p = {p}: both must converge");
            assert!(
                it_p.abs_diff(it_c) <= 2,
                "p = {p}: pipelined {it_p} vs classic {it_c} iterations"
            );
            for (c, pv) in x_c.iter().zip(&x_p) {
                assert!((c - pv).abs() < 1e-6, "p = {p}: {c} vs {pv}");
            }
        }
    }

    /// Reusing a `SolverWorkspace` across solves must change neither the
    /// computed values nor the simulated clock: pooled vectors are zeroed
    /// on grab and allocation is never charged virtual time.
    #[test]
    fn workspace_reuse_is_bitwise_and_clock_identical() {
        let run = |reuse: bool| -> Vec<(Vec<f64>, f64)> {
            run_spmd(cfg(2), move |comm| {
                let (a, first) = dist_laplacian(comm, 8);
                let mut b = a.new_vector();
                for (i, v) in b.owned_mut().iter_mut().enumerate() {
                    *v = 1.0 + ((first + i) as f64 * 0.2).cos();
                }
                let opts = SolveOptions::default();
                let mut ws = SolverWorkspace::new();
                let mut x = a.new_vector();
                for _ in 0..2 {
                    x.fill(0.0);
                    if reuse {
                        bicgstab_with_workspace(&a, &b, &mut x, &Identity, opts, &mut ws, comm);
                        gmres_with_workspace(&a, &b, &mut x, &Identity, 8, opts, &mut ws, comm);
                    } else {
                        bicgstab(&a, &b, &mut x, &Identity, opts, comm);
                        gmres(&a, &b, &mut x, &Identity, 8, opts, comm);
                    }
                }
                (x.owned().to_vec(), comm.clock())
            })
            .into_iter()
            .map(|r| r.value)
            .collect()
        };
        let fresh = run(false);
        let pooled = run(true);
        assert_eq!(fresh, pooled);
    }
}
