//! Row-distributed vectors with ghost entries.

use crate::work_costs;
use hetero_simmpi::collectives::ReduceOp;
use hetero_simmpi::{Payload, RecvRequest, SimComm};

/// Tag space used by halo exchanges (below the collective range).
const HALO_TAG: u64 = 9_000;

/// Fixed reduction chunk length. Dot products always sum per-chunk partials
/// in chunk order — at any thread count, including one — so the result is a
/// function of the data alone, never of `RAYON_NUM_THREADS`.
const REDUCE_CHUNK: usize = 1024;

/// Minimum owned length before element-wise updates (axpy, xpby, scale) fan
/// out across the intra-rank pool. Element-wise results are independent of
/// the split, so this gates speed only.
const PAR_ELEMWISE_MIN: usize = 4096;

/// A symmetric halo-exchange plan between a rank and its neighbours.
///
/// Local vector layout is `[owned entries | ghost entries]`. For neighbour
/// `i`, `send_indices[i]` lists owned local slots whose values the neighbour
/// needs, and `recv_indices[i]` lists the ghost slots filled by its reply.
/// Plans are built by the FEM DoF map; both sides must list each other and
/// agree on the interface ordering (guaranteed there by sorting on global
/// ids).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangePlan {
    /// Neighbour ranks, ascending.
    pub neighbors: Vec<usize>,
    /// Per neighbour: owned local indices to send.
    pub send_indices: Vec<Vec<usize>>,
    /// Per neighbour: local slots (>= n_owned) to receive into.
    pub recv_indices: Vec<Vec<usize>>,
}

impl ExchangePlan {
    /// A plan with no neighbours (serial runs).
    pub fn empty() -> Self {
        ExchangePlan::default()
    }

    /// Total values sent per exchange.
    pub fn send_volume(&self) -> usize {
        self.send_indices.iter().map(Vec::len).sum()
    }

    /// Total values received per exchange.
    pub fn recv_volume(&self) -> usize {
        self.recv_indices.iter().map(Vec::len).sum()
    }

    /// Validates internal consistency against a vector layout.
    ///
    /// # Panics
    /// Panics if the plan's shape is inconsistent.
    pub fn validate(&self, n_owned: usize, n_local: usize) {
        assert_eq!(self.neighbors.len(), self.send_indices.len());
        assert_eq!(self.neighbors.len(), self.recv_indices.len());
        assert!(
            self.neighbors.windows(2).all(|w| w[0] < w[1]),
            "neighbors must be sorted"
        );
        for s in &self.send_indices {
            assert!(s.iter().all(|&i| i < n_owned), "send indices must be owned");
        }
        for r in &self.recv_indices {
            assert!(
                r.iter().all(|&i| (n_owned..n_local).contains(&i)),
                "recv indices must be ghosts"
            );
        }
    }
}

/// A distributed vector: `n_owned` owned entries followed by ghost copies of
/// remote entries. Reductions (dot, norms) run over owned entries only and
/// combine with an all-reduce.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector {
    values: Vec<f64>,
    n_owned: usize,
}

impl DistVector {
    /// A zero vector with `n_owned` owned and `n_ghost` ghost entries.
    pub fn zeros(n_owned: usize, n_ghost: usize) -> Self {
        DistVector {
            values: vec![0.0; n_owned + n_ghost],
            n_owned,
        }
    }

    /// Wraps existing local values (owned followed by ghosts).
    ///
    /// # Panics
    /// Panics if `n_owned` exceeds the value count.
    pub fn from_values(values: Vec<f64>, n_owned: usize) -> Self {
        assert!(n_owned <= values.len());
        DistVector { values, n_owned }
    }

    /// Owned entry count.
    #[inline]
    pub fn n_owned(&self) -> usize {
        self.n_owned
    }

    /// Owned + ghost entry count.
    #[inline]
    pub fn n_local(&self) -> usize {
        self.values.len()
    }

    /// All local values (owned then ghosts).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable local values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The owned prefix.
    #[inline]
    pub fn owned(&self) -> &[f64] {
        &self.values[..self.n_owned]
    }

    /// Mutable owned prefix.
    #[inline]
    pub fn owned_mut(&mut self) -> &mut [f64] {
        &mut self.values[..self.n_owned]
    }

    /// Sets every entry (owned and ghost) to `v`.
    pub fn fill(&mut self, v: f64) {
        self.values.fill(v);
    }

    /// Copies owned and ghost values from `other` (same layout).
    pub fn copy_from(&mut self, other: &DistVector, comm: &mut SimComm) {
        assert_eq!(self.values.len(), other.values.len());
        self.values.copy_from_slice(&other.values);
        comm.compute(work_costs::copy(self.values.len()));
    }

    /// `self += alpha * x` over owned entries (ghosts are refreshed lazily
    /// by the next exchange). Element-wise, so parallel and serial runs are
    /// bitwise identical.
    pub fn axpy(&mut self, alpha: f64, x: &DistVector, comm: &mut SimComm) {
        assert_eq!(self.n_owned, x.n_owned);
        let n = self.n_owned;
        let xs = &x.values[..n];
        if n >= PAR_ELEMWISE_MIN && rayon::current_num_threads() > 1 {
            rayon::fixed::for_each_chunk_mut(
                &mut self.values[..n],
                REDUCE_CHUNK,
                |_chunk, start, ys| {
                    let len = ys.len();
                    for (a, b) in ys.iter_mut().zip(&xs[start..start + len]) {
                        *a += alpha * b;
                    }
                },
            );
        } else {
            for (a, b) in self.values[..n].iter_mut().zip(xs) {
                *a += alpha * b;
            }
        }
        comm.compute(work_costs::axpy(n));
    }

    /// `self = x + beta * self` over owned entries (the CG direction
    /// update).
    pub fn xpby(&mut self, x: &DistVector, beta: f64, comm: &mut SimComm) {
        assert_eq!(self.n_owned, x.n_owned);
        let n = self.n_owned;
        let xs = &x.values[..n];
        if n >= PAR_ELEMWISE_MIN && rayon::current_num_threads() > 1 {
            rayon::fixed::for_each_chunk_mut(
                &mut self.values[..n],
                REDUCE_CHUNK,
                |_chunk, start, ys| {
                    let len = ys.len();
                    for (a, b) in ys.iter_mut().zip(&xs[start..start + len]) {
                        *a = b + beta * *a;
                    }
                },
            );
        } else {
            for (a, b) in self.values[..n].iter_mut().zip(xs) {
                *a = b + beta * *a;
            }
        }
        comm.compute(work_costs::axpy(n));
    }

    /// Scales owned entries by `alpha`.
    pub fn scale(&mut self, alpha: f64, comm: &mut SimComm) {
        let n = self.n_owned;
        if n >= PAR_ELEMWISE_MIN && rayon::current_num_threads() > 1 {
            rayon::fixed::for_each_chunk_mut(&mut self.values[..n], REDUCE_CHUNK, |_c, _s, ys| {
                for a in ys {
                    *a *= alpha;
                }
            });
        } else {
            for a in &mut self.values[..n] {
                *a *= alpha;
            }
        }
        comm.compute(work_costs::scale(n));
    }

    /// Global dot product (owned entries + all-reduce).
    ///
    /// The local part is a fixed-chunk reduction: per-chunk partial sums
    /// combined in chunk order, so the value is bitwise identical at any
    /// intra-rank thread count.
    pub fn dot(&self, other: &DistVector, comm: &mut SimComm) -> f64 {
        let local = self.dot_local(other, comm);
        comm.allreduce_scalar(ReduceOp::Sum, local)
    }

    /// This rank's partial of the global dot product: the same fixed-chunk
    /// local reduction as [`Self::dot`], *without* the all-reduce. Batch
    /// several partials through [`fused_dots`] (one `allreduce_vec`) so k
    /// inner products cost a single collective.
    pub fn dot_local(&self, other: &DistVector, comm: &mut SimComm) -> f64 {
        assert_eq!(self.n_owned, other.n_owned);
        let n = self.n_owned;
        let a = &self.values[..n];
        let b = &other.values[..n];
        let local = rayon::fixed::chunked_sum(n, REDUCE_CHUNK, |s, e| {
            a[s..e].iter().zip(&b[s..e]).map(|(x, y)| x * y).sum()
        });
        comm.compute(work_costs::dot(n));
        local
    }

    /// Global Euclidean norm.
    pub fn norm2(&self, comm: &mut SimComm) -> f64 {
        self.dot(self, comm).sqrt()
    }

    /// Refreshes ghost entries from their owners according to `plan`.
    ///
    /// All ranks sharing an interface must call this collectively with
    /// mutually consistent plans.
    pub fn update_ghosts(&mut self, plan: &ExchangePlan, comm: &mut SimComm) {
        // Post all sends first (buffered), then drain receives: the pattern
        // priced by the network model's overlap assumption.
        for (i, &nb) in plan.neighbors.iter().enumerate() {
            let buf: Vec<f64> = plan.send_indices[i]
                .iter()
                .map(|&j| self.values[j])
                .collect();
            comm.compute(work_costs::copy(buf.len()));
            comm.send(nb, HALO_TAG, Payload::F64(buf));
        }
        for (i, &nb) in plan.neighbors.iter().enumerate() {
            let buf = comm.recv_f64(nb, HALO_TAG);
            assert_eq!(
                buf.len(),
                plan.recv_indices[i].len(),
                "halo size mismatch with rank {nb}"
            );
            for (&slot, &v) in plan.recv_indices[i].iter().zip(&buf) {
                self.values[slot] = v;
            }
            comm.compute(work_costs::copy(buf.len()));
        }
    }

    /// Posts the halo exchange of [`Self::update_ghosts`] without completing
    /// it: gathers and sends interface values to every neighbour, then posts
    /// one nonblocking receive per neighbour. Transfers progress during any
    /// compute charged before the matching [`Self::finish_ghost_update`] —
    /// the overlap the communication-avoiding SpMV exploits.
    pub fn post_ghost_update(&self, plan: &ExchangePlan, comm: &mut SimComm) -> Vec<RecvRequest> {
        for (i, &nb) in plan.neighbors.iter().enumerate() {
            let buf: Vec<f64> = plan.send_indices[i]
                .iter()
                .map(|&j| self.values[j])
                .collect();
            comm.compute(work_costs::copy(buf.len()));
            let _ = comm.isend(nb, HALO_TAG, Payload::F64(buf));
        }
        plan.neighbors
            .iter()
            .map(|&nb| comm.irecv(nb, HALO_TAG))
            .collect()
    }

    /// Completes a halo exchange posted by [`Self::post_ghost_update`],
    /// scattering the received interface values into their ghost slots.
    /// After this the ghosts are bitwise what [`Self::update_ghosts`] would
    /// have produced.
    ///
    /// # Panics
    /// Panics if `reqs` does not match the plan's neighbour count or a
    /// received halo has the wrong length.
    pub fn finish_ghost_update(
        &mut self,
        plan: &ExchangePlan,
        reqs: Vec<RecvRequest>,
        comm: &mut SimComm,
    ) {
        assert_eq!(reqs.len(), plan.neighbors.len());
        let bufs = comm.wait_all(reqs);
        for ((i, &nb), payload) in plan.neighbors.iter().enumerate().zip(bufs) {
            let buf = match payload {
                Payload::F64(v) => v,
                other => panic!("expected F64 halo from rank {nb}, got {other:?}"),
            };
            assert_eq!(
                buf.len(),
                plan.recv_indices[i].len(),
                "halo size mismatch with rank {nb}"
            );
            for (&slot, &v) in plan.recv_indices[i].iter().zip(&buf) {
                self.values[slot] = v;
            }
            comm.compute(work_costs::copy(buf.len()));
        }
    }
}

/// Fused inner products: the local partials of each `(a, b)` pair batched
/// through ONE `allreduce_vec`, so k reductions cost one collective's
/// latency. The tree combines element-wise in the same rank order as k
/// scalar all-reduces, so each returned value is bitwise-identical to the
/// corresponding `a.dot(b, comm)`.
///
/// The local partials are computed in one pass over the data: for each
/// [`REDUCE_CHUNK`] range, every pair's chunk partial is accumulated while
/// the range is hot in cache — pipelined solvers pass the same vector in
/// several pairs, and the per-pair sweep of the old implementation reloaded
/// it from memory k times. Each pair's partial still sums its chunk
/// partials in chunk order (and each chunk partial is the same zipped
/// sequential fold [`DistVector::dot_local`] computes), so every value is
/// bitwise what k separate `dot_local` calls produce, at any thread count.
/// The virtual-time charge is identical too: one `dot(n)` per pair, in
/// pair order.
pub fn fused_dots(pairs: &[(&DistVector, &DistVector)], comm: &mut SimComm) -> Vec<f64> {
    let Some(&(first, _)) = pairs.first() else {
        return comm.allreduce_vec(ReduceOp::Sum, &[]);
    };
    let n = first.n_owned;
    if pairs.iter().any(|(a, b)| a.n_owned != n || b.n_owned != n) {
        // Mixed layouts cannot share chunk boundaries; keep the per-pair
        // sweep (bitwise the same, just colder in cache).
        let locals: Vec<f64> = pairs.iter().map(|(a, b)| a.dot_local(b, comm)).collect();
        return comm.allreduce_vec(ReduceOp::Sum, &locals);
    }
    let mut locals = vec![0.0f64; pairs.len()];
    let mut s = 0;
    while s < n {
        let e = (s + REDUCE_CHUNK).min(n);
        for ((a, b), t) in pairs.iter().zip(&mut locals) {
            // Zipped equal-length subslices: the bounds checks hoist out of
            // the loop, leaving a pure multiply-add stream.
            let mut p = 0.0;
            for (x, y) in a.values[s..e].iter().zip(&b.values[s..e]) {
                p += x * y;
            }
            *t += p;
        }
        s = e;
    }
    for _ in pairs {
        comm.compute(work_costs::dot(n));
    }
    comm.allreduce_vec(ReduceOp::Sum, &locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 1,
        }
    }

    #[test]
    fn local_ops() {
        run_spmd(cfg(1), |comm| {
            let mut a = DistVector::from_values(vec![1.0, 2.0, 3.0], 3);
            let b = DistVector::from_values(vec![1.0, 1.0, 1.0], 3);
            a.axpy(2.0, &b, comm);
            assert_eq!(a.owned(), &[3.0, 4.0, 5.0]);
            a.scale(0.5, comm);
            assert_eq!(a.owned(), &[1.5, 2.0, 2.5]);
            a.xpby(&b, 2.0, comm);
            assert_eq!(a.owned(), &[4.0, 5.0, 6.0]);
            assert_eq!(a.dot(&b, comm), 15.0);
        });
    }

    #[test]
    fn distributed_dot_and_norm() {
        let r = run_spmd(cfg(4), |comm| {
            // Each rank owns [rank+1] as a single entry.
            let v = DistVector::from_values(vec![(comm.rank() + 1) as f64], 1);
            (v.dot(&v, comm), v.norm2(comm))
        });
        for res in &r {
            assert_eq!(res.value.0, 30.0); // 1 + 4 + 9 + 16
            assert!((res.value.1 - 30.0f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn ghost_update_moves_owner_values() {
        // Two ranks, each owns 2 entries and ghosts the neighbor's first.
        let r = run_spmd(cfg(2), |comm| {
            let rank = comm.rank();
            let other = 1 - rank;
            let mut v = DistVector::zeros(2, 1);
            v.owned_mut()[0] = 10.0 * (rank + 1) as f64;
            v.owned_mut()[1] = -1.0;
            let plan = ExchangePlan {
                neighbors: vec![other],
                send_indices: vec![vec![0]],
                recv_indices: vec![vec![2]],
            };
            plan.validate(2, 3);
            v.update_ghosts(&plan, comm);
            v.as_slice().to_vec()
        });
        assert_eq!(r[0].value, vec![10.0, -1.0, 20.0]);
        assert_eq!(r[1].value, vec![20.0, -1.0, 10.0]);
    }

    #[test]
    fn repeated_exchanges_track_changes() {
        let r = run_spmd(cfg(2), |comm| {
            let rank = comm.rank();
            let other = 1 - rank;
            let plan = ExchangePlan {
                neighbors: vec![other],
                send_indices: vec![vec![0]],
                recv_indices: vec![vec![1]],
            };
            let mut v = DistVector::zeros(1, 1);
            let mut seen = Vec::new();
            for it in 0..3 {
                v.owned_mut()[0] = (10 * rank + it) as f64;
                v.update_ghosts(&plan, comm);
                seen.push(v.as_slice()[1]);
            }
            seen
        });
        assert_eq!(r[0].value, vec![10.0, 11.0, 12.0]);
        assert_eq!(r[1].value, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "send indices must be owned")]
    fn plan_validation_catches_bad_send() {
        let plan = ExchangePlan {
            neighbors: vec![1],
            send_indices: vec![vec![5]],
            recv_indices: vec![vec![]],
        };
        plan.validate(2, 3);
    }

    #[test]
    #[should_panic(expected = "recv indices must be ghosts")]
    fn plan_validation_catches_bad_recv() {
        let plan = ExchangePlan {
            neighbors: vec![1],
            send_indices: vec![vec![0]],
            recv_indices: vec![vec![0]],
        };
        plan.validate(2, 3);
    }

    #[test]
    fn empty_plan_is_noop() {
        run_spmd(cfg(1), |comm| {
            let mut v = DistVector::from_values(vec![1.0], 1);
            v.update_ghosts(&ExchangePlan::empty(), comm);
            assert_eq!(v.owned(), &[1.0]);
        });
    }
}
