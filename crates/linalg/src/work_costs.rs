//! Analytic operation-count models for the linear-algebra kernels.
//!
//! These constants convert kernel sizes into [`Work`] charged to the
//! simulator. They encode the byte traffic of each kernel on a cold cache —
//! the regime of large FEM systems — and are the single place where the
//! compute cost model of the solve phase is calibrated.

use hetero_simmpi::Work;

/// Sparse matrix-vector product: per nonzero, one multiply-add (2 flops) and
/// the value (8 B) + column index (4 B) + source/destination vector traffic
/// (~8 B amortized).
pub fn spmv(nnz: usize) -> Work {
    Work::new(2.0 * nnz as f64, 20.0 * nnz as f64)
}

/// `y += alpha * x` over `n` entries: 2 flops, read x and y, write y.
pub fn axpy(n: usize) -> Work {
    Work::new(2.0 * n as f64, 24.0 * n as f64)
}

/// Dot product over `n` entries: 2 flops, read both vectors.
pub fn dot(n: usize) -> Work {
    Work::new(2.0 * n as f64, 16.0 * n as f64)
}

/// `y = alpha * y` over `n` entries.
pub fn scale(n: usize) -> Work {
    Work::new(n as f64, 16.0 * n as f64)
}

/// Copy of `n` entries.
pub fn copy(n: usize) -> Work {
    Work::new(0.0, 16.0 * n as f64)
}

/// One triangular sweep over a factor with `nnz` nonzeros (SSOR/ILU apply).
pub fn sweep(nnz: usize) -> Work {
    Work::new(2.0 * nnz as f64, 20.0 * nnz as f64)
}

/// ILU(0) factorization of a local block with `nnz` nonzeros and `n` rows.
pub fn ilu_factor(nnz: usize, n: usize) -> Work {
    // Each nonzero participates in ~a handful of update ops.
    Work::new(5.0 * nnz as f64 + n as f64, 24.0 * nnz as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly() {
        assert_eq!(spmv(100).flops, 200.0);
        assert_eq!(axpy(50).flops, 100.0);
        assert_eq!(dot(10).bytes, 160.0);
        assert_eq!(copy(10).flops, 0.0);
    }

    #[test]
    fn spmv_is_memory_bound_on_typical_cores() {
        // Intensity 0.1 flop/byte is far below any ridge point.
        assert!(spmv(1000).intensity() < 0.2);
    }
}
