//! Property-based tests of the linear-algebra contracts: CSR assembly vs a
//! dense oracle, SpMV linearity, solver correctness on random SPD systems.

use hetero_linalg::csr::TripletBuilder;
use hetero_linalg::precond::{Identity, IluZero, Jacobi, Ssor};
use hetero_linalg::solver::{bicgstab, cg, gmres, SolveOptions, SolverVariant};
use hetero_linalg::{BlockedCsr, DistMatrix, DistVector, ExchangePlan, SellCs};
use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
use proptest::prelude::*;

fn serial_cfg() -> SpmdConfig {
    SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    }
}

/// Random triplets over a small matrix.
fn triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..40)
}

/// A random diagonally dominant SPD matrix via its lower entries.
fn spd_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let lower = prop::collection::vec(-1.0f64..1.0, n * n);
    let sol = prop::collection::vec(-3.0f64..3.0, n);
    (lower, sol).prop_map(move |(l, sol)| {
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..i {
                let v = l[i * n + j];
                a[i][j] = v;
                a[j][i] = v;
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            let off: f64 = row.iter().map(|v| v.abs()).sum();
            row[i] = off + 1.0; // strict diagonal dominance => SPD
        }
        (a, sol)
    })
}

/// A random banded matrix split into contiguous per-rank blocks: rank
/// count, half-bandwidth, block sizes, band values, and input vector.
/// Block sizes stay >= the half-bandwidth so halos only touch adjacent
/// ranks. Band values use a fixed stride of `BAND_STRIDE` per row with
/// the diagonal at offset `BAND_CENTER`, sized for the largest case.
type BandedCase = (usize, usize, Vec<usize>, Vec<f64>, Vec<f64>);

const BAND_STRIDE: usize = 5; // fits any half-bandwidth <= 2
const BAND_CENTER: usize = 2;

fn banded_partition() -> impl Strategy<Value = BandedCase> {
    let max_n = 4 * 8;
    (
        1usize..=4,
        1usize..=2,
        prop::collection::vec(2usize..8, 4),
        prop::collection::vec(-1.0f64..1.0, max_n * BAND_STRIDE),
        prop::collection::vec(-2.0f64..2.0, max_n),
    )
        .prop_map(|(p, bw, sizes, band, xv)| (p, bw, sizes[..p].to_vec(), band, xv))
}

/// Runs blocking and overlapped SpMV on the banded case across `p` ranks
/// with an intra-rank pool of `threads`, returning the two global results.
fn banded_spmv_both_ways(case: &BandedCase, threads: usize) -> (Vec<f64>, Vec<f64>) {
    let (p, bw, sizes, band, xv) = case.clone();
    let spmd = SpmdConfig {
        size: p,
        topo: ClusterTopology::uniform(p, 1),
        net: NetworkModel::gigabit_ethernet(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 11,
    };
    let results = run_spmd(spmd, move |comm| {
        let rank = comm.rank();
        let first: usize = sizes[..rank].iter().sum();
        let n_per = sizes[rank];
        let n_global: usize = sizes.iter().sum();
        // Band entry of the global matrix; the diagonal is made dominant.
        let entry = |i: usize, j: usize| -> f64 {
            if i == j {
                let off: f64 = (i.saturating_sub(bw)..(i + bw + 1).min(n_global))
                    .filter(|&c| c != i)
                    .map(|c| band[i * BAND_STRIDE + (c + BAND_CENTER - i)].abs())
                    .sum();
                off + 1.0
            } else {
                band[i * BAND_STRIDE + (j + BAND_CENTER - i)]
            }
        };
        let mut ghosts = Vec::new();
        for g in first.saturating_sub(bw)..first {
            ghosts.push(g);
        }
        for g in first + n_per..(first + n_per + bw).min(n_global) {
            ghosts.push(g);
        }
        let n_local = n_per + ghosts.len();
        let local_of = |g: usize| -> usize {
            if (first..first + n_per).contains(&g) {
                g - first
            } else {
                n_per + ghosts.iter().position(|&x| x == g).unwrap()
            }
        };
        let mut bld = TripletBuilder::new(n_per, n_local);
        for r in 0..n_per {
            let g = first + r;
            for j in g.saturating_sub(bw)..(g + bw + 1).min(n_global) {
                bld.add(r, local_of(j), entry(g, j));
            }
        }
        let mut plan = ExchangePlan::empty();
        if rank > 0 {
            let k = bw.min(first); // ghosts we hold from the previous rank
            plan.neighbors.push(rank - 1);
            plan.send_indices.push((0..bw.min(n_per)).collect());
            plan.recv_indices
                .push((first - k..first).map(local_of).collect());
        }
        if rank + 1 < sizes.len() {
            let k = bw.min(n_global - first - n_per);
            plan.neighbors.push(rank + 1);
            plan.send_indices
                .push((n_per - bw.min(n_per)..n_per).collect());
            plan.recv_indices
                .push((first + n_per..first + n_per + k).map(local_of).collect());
        }
        let a = DistMatrix::new(bld.build(), plan);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut x1 = a.new_vector();
            x1.owned_mut().copy_from_slice(&xv[first..first + n_per]);
            let mut x2 = a.new_vector();
            x2.owned_mut().copy_from_slice(&xv[first..first + n_per]);
            let mut y1 = a.new_vector();
            let mut y2 = a.new_vector();
            a.spmv(&mut x1, &mut y1, comm);
            a.spmv_overlapped(&mut x2, &mut y2, comm);
            (y1.owned().to_vec(), y2.owned().to_vec())
        })
    });
    let mut blocking = Vec::new();
    let mut overlapped = Vec::new();
    for r in results {
        blocking.extend(r.value.0);
        overlapped.extend(r.value.1);
    }
    (blocking, overlapped)
}

/// Builds rank `rank`'s local CSR block and local input vector (owned
/// entries then ghosts) for a banded case — the same construction
/// `banded_spmv_both_ways` performs inside the simulator, minus the
/// communicator, so format-conversion tests can run on realistic
/// partitioned rectangular blocks without spinning up ranks.
fn banded_local_block(case: &BandedCase, rank: usize) -> (hetero_linalg::CsrMatrix, Vec<f64>) {
    let (_, bw, sizes, band, xv) = case;
    let bw = *bw;
    let first: usize = sizes[..rank].iter().sum();
    let n_per = sizes[rank];
    let n_global: usize = sizes.iter().sum();
    let entry = |i: usize, j: usize| -> f64 {
        if i == j {
            let off: f64 = (i.saturating_sub(bw)..(i + bw + 1).min(n_global))
                .filter(|&c| c != i)
                .map(|c| band[i * BAND_STRIDE + (c + BAND_CENTER - i)].abs())
                .sum();
            off + 1.0
        } else {
            band[i * BAND_STRIDE + (j + BAND_CENTER - i)]
        }
    };
    let mut ghosts = Vec::new();
    for g in first.saturating_sub(bw)..first {
        ghosts.push(g);
    }
    for g in first + n_per..(first + n_per + bw).min(n_global) {
        ghosts.push(g);
    }
    let n_local = n_per + ghosts.len();
    let local_of = |g: usize| -> usize {
        if (first..first + n_per).contains(&g) {
            g - first
        } else {
            n_per + ghosts.iter().position(|&x| x == g).unwrap()
        }
    };
    let mut bld = TripletBuilder::new(n_per, n_local);
    for r in 0..n_per {
        let g = first + r;
        for j in g.saturating_sub(bw)..(g + bw + 1).min(n_global) {
            bld.add(r, local_of(j), entry(g, j));
        }
    }
    let mut x_local = xv[first..first + n_per].to_vec();
    x_local.extend(ghosts.iter().map(|&g| xv[g]));
    (bld.build(), x_local)
}

fn dense_to_dist(a: &[Vec<f64>]) -> DistMatrix {
    let n = a.len();
    let mut b = TripletBuilder::new(n, n);
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 || i == j {
                b.add(i, j, v);
            }
        }
    }
    DistMatrix::new(b.build(), ExchangePlan::empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_dense_oracle(ts in triplets(6)) {
        let mut dense = vec![vec![0.0f64; 6]; 6];
        for &(r, c, v) in &ts {
            dense[r][c] += v;
        }
        let mut b = TripletBuilder::new(6, 6);
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let csr = b.build();
        for (r, row) in dense.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                prop_assert!((csr.get(r, c) - want).abs() < 1e-12);
            }
        }
        // nnz never exceeds distinct coordinates.
        let mut coords: Vec<(usize, usize)> = ts.iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        coords.dedup();
        prop_assert!(csr.nnz() <= coords.len());
    }

    #[test]
    fn spmv_is_linear(ts in triplets(5), x in prop::collection::vec(-2.0f64..2.0, 5), alpha in -3.0f64..3.0) {
        let mut b = TripletBuilder::new(5, 5);
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let a = b.build();
        let mut y1 = vec![0.0; 5];
        a.spmv(&x, &mut y1);
        let ax: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let mut y2 = vec![0.0; 5];
        a.spmv(&ax, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((alpha * u - v).abs() < 1e-9, "{u} {v}");
        }
    }

    #[test]
    fn cg_solves_random_spd_with_any_preconditioner((a, sol) in spd_system(6), pick in 0usize..4) {
        run_spmd(serial_cfg(), move |comm| {
            let m = dense_to_dist(&a);
            // b = A * sol
            let mut xs = DistVector::from_values(sol.clone(), sol.len());
            let mut b = m.new_vector();
            m.spmv(&mut xs, &mut b, comm);
            let mut x = m.new_vector();
            let opts = SolveOptions { rel_tol: 1e-10, max_iters: 500, ..Default::default() };
            let stats = match pick {
                0 => cg(&m, &b, &mut x, &Identity, opts, comm),
                1 => {
                    let p = Jacobi::new(&m, comm);
                    cg(&m, &b, &mut x, &p, opts, comm)
                }
                2 => {
                    let p = Ssor::new(&m, comm);
                    cg(&m, &b, &mut x, &p, opts, comm)
                }
                _ => {
                    let p = IluZero::new(&m, comm);
                    cg(&m, &b, &mut x, &p, opts, comm)
                }
            };
            assert!(stats.converged, "{stats:?}");
            for (xi, si) in x.owned().iter().zip(&sol) {
                assert!((xi - si).abs() < 1e-5, "{xi} vs {si}");
            }
        });
    }

    #[test]
    fn bicgstab_and_gmres_solve_random_dominant_systems(
        (mut a, sol) in spd_system(6),
        skew in prop::collection::vec(-0.3f64..0.3, 36),
    ) {
        // Perturb the SPD matrix into a nonsymmetric diagonally dominant one.
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    a[i][j] += skew[i * 6 + j];
                }
            }
            let off: f64 = (0..6).filter(|&j| j != i).map(|j| a[i][j].abs()).sum();
            a[i][i] = off + 1.0;
        }
        run_spmd(serial_cfg(), move |comm| {
            let m = dense_to_dist(&a);
            let mut xs = DistVector::from_values(sol.clone(), sol.len());
            let mut b = m.new_vector();
            m.spmv(&mut xs, &mut b, comm);
            let opts = SolveOptions { rel_tol: 1e-10, max_iters: 600, ..Default::default() };

            let mut x1 = m.new_vector();
            let s1 = bicgstab(&m, &b, &mut x1, &Identity, opts, comm);
            assert!(s1.converged, "bicgstab {s1:?}");
            let mut x2 = m.new_vector();
            let s2 = gmres(&m, &b, &mut x2, &Identity, 6, opts, comm);
            assert!(s2.converged, "gmres {s2:?}");
            for ((u, v), s) in x1.owned().iter().zip(x2.owned()).zip(&sol) {
                assert!((u - s).abs() < 1e-5);
                assert!((v - s).abs() < 1e-5);
            }
        });
    }

    #[test]
    fn dirichlet_row_is_idempotent(ts in triplets(5), row in 0usize..5) {
        let mut b = TripletBuilder::new(5, 5);
        b.add(row, row, 1.0); // ensure a stored diagonal
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let mut a = b.build();
        a.set_dirichlet_row(row, 1.0);
        let (cols, vals) = a.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            prop_assert_eq!(v, if c == row { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn vector_reductions_match_serial_folds(
        data in prop::collection::vec(-2.0f64..2.0, 1..20),
    ) {
        let expect_dot: f64 = data.iter().map(|v| v * v).sum();
        let n = data.len();
        run_spmd(serial_cfg(), move |comm| {
            let v = DistVector::from_values(data.clone(), n);
            let dot = v.dot(&v, comm);
            assert!((dot - expect_dot).abs() < 1e-10);
            assert!((v.norm2(comm) - expect_dot.sqrt()).abs() < 1e-10);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Overlapped SpMV is bitwise-identical to blocking SpMV on random
    /// banded matrices under random contiguous partitions, and the result
    /// does not depend on the intra-rank thread count.
    #[test]
    fn overlapped_spmv_is_bitwise_identical_on_random_partitions(case in banded_partition()) {
        let (b1, o1) = banded_spmv_both_ways(&case, 1);
        let (b4, o4) = banded_spmv_both_ways(&case, 4);
        for (((b, o), b_mt), o_mt) in b1.iter().zip(&o1).zip(&b4).zip(&o4) {
            prop_assert_eq!(b.to_bits(), o.to_bits(), "overlapped vs blocking");
            prop_assert_eq!(b.to_bits(), b_mt.to_bits(), "blocking across threads");
            prop_assert_eq!(o.to_bits(), o_mt.to_bits(), "overlapped across threads");
        }
    }

    /// SELL-C-σ and blocked-CSR SpMV are bitwise-identical to scalar CSR
    /// SpMV on every rank-local block of random banded partitions, across
    /// chunk heights C ∈ {4, 8} and sorting windows σ.
    #[test]
    fn sell_and_blocked_spmv_match_csr_bitwise(
        case in banded_partition(),
        sigma in 1usize..32,
    ) {
        for rank in 0..case.0 {
            let (a, x) = banded_local_block(&case, rank);
            let mut want = vec![0.0f64; a.num_rows()];
            a.spmv(&x, &mut want);
            for c in [4usize, 8] {
                let sell = SellCs::from_csr(&a, c, sigma);
                let mut got = vec![f64::NAN; a.num_rows()];
                sell.spmv(&x, &mut got);
                for (w, g) in want.iter().zip(&got) {
                    prop_assert_eq!(w.to_bits(), g.to_bits(), "C={}, sigma={}", c, sigma);
                }
            }
            let blk = BlockedCsr::from_csr(&a);
            let mut got = vec![f64::NAN; a.num_rows()];
            blk.spmv(&x, &mut got);
            for (w, g) in want.iter().zip(&got) {
                prop_assert_eq!(w.to_bits(), g.to_bits(), "blocked CSR");
            }
        }
    }

    /// The fused multi-pair reduction returns bitwise the same values as
    /// the separate scalar dot products it replaces.
    #[test]
    fn fused_dots_match_separate_dots_bitwise(
        data in prop::collection::vec(-2.0f64..2.0, 1..40),
        other in prop::collection::vec(-2.0f64..2.0, 40),
    ) {
        let n = data.len();
        let w: Vec<f64> = other[..n].to_vec();
        run_spmd(serial_cfg(), move |comm| {
            let v = DistVector::from_values(data.clone(), n);
            let u = DistVector::from_values(w.clone(), n);
            let fused = hetero_linalg::fused_dots(&[(&v, &v), (&v, &u), (&u, &u)], comm);
            let separate = [v.dot(&v, comm), v.dot(&u, comm), u.dot(&u, comm)];
            for (f, s) in fused.iter().zip(&separate) {
                assert_eq!(f.to_bits(), s.to_bits());
            }
        });
    }

    /// Pipelined CG reaches the same residual tolerance as classic CG on
    /// random SPD systems, with an iteration count within ±2.
    #[test]
    fn pipelined_cg_matches_classic_on_random_spd((a, sol) in spd_system(6)) {
        run_spmd(serial_cfg(), move |comm| {
            let m = dense_to_dist(&a);
            let mut xs = DistVector::from_values(sol.clone(), sol.len());
            let mut b = m.new_vector();
            m.spmv(&mut xs, &mut b, comm);
            let base = SolveOptions { rel_tol: 1e-9, max_iters: 400, ..Default::default() };

            let mut xc = m.new_vector();
            let sc = cg(&m, &b, &mut xc, &Identity, base, comm);
            let mut xp = m.new_vector();
            let opts_p = SolveOptions { variant: SolverVariant::Pipelined, ..base };
            let sp = cg(&m, &b, &mut xp, &Identity, opts_p, comm);

            assert!(sc.converged && sp.converged, "classic {sc:?} pipelined {sp:?}");
            assert!(
                sp.iterations.abs_diff(sc.iterations) <= 2,
                "pipelined {} vs classic {} iterations",
                sp.iterations,
                sc.iterations
            );
            for ((c, p), s) in xc.owned().iter().zip(xp.owned()).zip(&sol) {
                assert!((c - s).abs() < 1e-5, "classic {c} vs exact {s}");
                assert!((p - s).abs() < 1e-5, "pipelined {p} vs exact {s}");
            }
        });
    }
}

/// A partition big enough that the interior sweep crosses the parallel
/// threshold, so the overlapped path is exercised with real intra-rank
/// parallelism (not the serial fallback).
#[test]
fn overlapped_spmv_bitwise_identity_holds_past_parallel_threshold() {
    let p = 2usize;
    let n_per = 300usize;
    let n: usize = p * n_per;
    let band: Vec<f64> = (0..n * BAND_STRIDE)
        .map(|i| ((i as f64) * 0.13).sin())
        .collect();
    let xv: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
    let case: BandedCase = (p, 1, vec![n_per; p], band, xv);
    let (b1, o1) = banded_spmv_both_ways(&case, 1);
    let (b4, o4) = banded_spmv_both_ways(&case, 4);
    assert_eq!(b1, o1);
    assert_eq!(b1, b4);
    assert_eq!(o1, o4);
}
