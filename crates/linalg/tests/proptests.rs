//! Property-based tests of the linear-algebra contracts: CSR assembly vs a
//! dense oracle, SpMV linearity, solver correctness on random SPD systems.

use hetero_linalg::csr::TripletBuilder;
use hetero_linalg::precond::{Identity, IluZero, Jacobi, Ssor};
use hetero_linalg::solver::{bicgstab, cg, gmres, SolveOptions};
use hetero_linalg::{DistMatrix, DistVector, ExchangePlan};
use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
use proptest::prelude::*;

fn serial_cfg() -> SpmdConfig {
    SpmdConfig {
        size: 1,
        topo: ClusterTopology::uniform(1, 1),
        net: NetworkModel::ideal(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 0,
    }
}

/// Random triplets over a small matrix.
fn triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..40)
}

/// A random diagonally dominant SPD matrix via its lower entries.
fn spd_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let lower = prop::collection::vec(-1.0f64..1.0, n * n);
    let sol = prop::collection::vec(-3.0f64..3.0, n);
    (lower, sol).prop_map(move |(l, sol)| {
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..i {
                let v = l[i * n + j];
                a[i][j] = v;
                a[j][i] = v;
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            let off: f64 = row.iter().map(|v| v.abs()).sum();
            row[i] = off + 1.0; // strict diagonal dominance => SPD
        }
        (a, sol)
    })
}

fn dense_to_dist(a: &[Vec<f64>]) -> DistMatrix {
    let n = a.len();
    let mut b = TripletBuilder::new(n, n);
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 || i == j {
                b.add(i, j, v);
            }
        }
    }
    DistMatrix::new(b.build(), ExchangePlan::empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_dense_oracle(ts in triplets(6)) {
        let mut dense = vec![vec![0.0f64; 6]; 6];
        for &(r, c, v) in &ts {
            dense[r][c] += v;
        }
        let mut b = TripletBuilder::new(6, 6);
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let csr = b.build();
        for (r, row) in dense.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                prop_assert!((csr.get(r, c) - want).abs() < 1e-12);
            }
        }
        // nnz never exceeds distinct coordinates.
        let mut coords: Vec<(usize, usize)> = ts.iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        coords.dedup();
        prop_assert!(csr.nnz() <= coords.len());
    }

    #[test]
    fn spmv_is_linear(ts in triplets(5), x in prop::collection::vec(-2.0f64..2.0, 5), alpha in -3.0f64..3.0) {
        let mut b = TripletBuilder::new(5, 5);
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let a = b.build();
        let mut y1 = vec![0.0; 5];
        a.spmv(&x, &mut y1);
        let ax: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let mut y2 = vec![0.0; 5];
        a.spmv(&ax, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((alpha * u - v).abs() < 1e-9, "{u} {v}");
        }
    }

    #[test]
    fn cg_solves_random_spd_with_any_preconditioner((a, sol) in spd_system(6), pick in 0usize..4) {
        run_spmd(serial_cfg(), move |comm| {
            let m = dense_to_dist(&a);
            // b = A * sol
            let mut xs = DistVector::from_values(sol.clone(), sol.len());
            let mut b = m.new_vector();
            m.spmv(&mut xs, &mut b, comm);
            let mut x = m.new_vector();
            let opts = SolveOptions { rel_tol: 1e-10, max_iters: 500, ..Default::default() };
            let stats = match pick {
                0 => cg(&m, &b, &mut x, &Identity, opts, comm),
                1 => {
                    let p = Jacobi::new(&m, comm);
                    cg(&m, &b, &mut x, &p, opts, comm)
                }
                2 => {
                    let p = Ssor::new(&m, comm);
                    cg(&m, &b, &mut x, &p, opts, comm)
                }
                _ => {
                    let p = IluZero::new(&m, comm);
                    cg(&m, &b, &mut x, &p, opts, comm)
                }
            };
            assert!(stats.converged, "{stats:?}");
            for (xi, si) in x.owned().iter().zip(&sol) {
                assert!((xi - si).abs() < 1e-5, "{xi} vs {si}");
            }
        });
    }

    #[test]
    fn bicgstab_and_gmres_solve_random_dominant_systems(
        (mut a, sol) in spd_system(6),
        skew in prop::collection::vec(-0.3f64..0.3, 36),
    ) {
        // Perturb the SPD matrix into a nonsymmetric diagonally dominant one.
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    a[i][j] += skew[i * 6 + j];
                }
            }
            let off: f64 = (0..6).filter(|&j| j != i).map(|j| a[i][j].abs()).sum();
            a[i][i] = off + 1.0;
        }
        run_spmd(serial_cfg(), move |comm| {
            let m = dense_to_dist(&a);
            let mut xs = DistVector::from_values(sol.clone(), sol.len());
            let mut b = m.new_vector();
            m.spmv(&mut xs, &mut b, comm);
            let opts = SolveOptions { rel_tol: 1e-10, max_iters: 600, ..Default::default() };

            let mut x1 = m.new_vector();
            let s1 = bicgstab(&m, &b, &mut x1, &Identity, opts, comm);
            assert!(s1.converged, "bicgstab {s1:?}");
            let mut x2 = m.new_vector();
            let s2 = gmres(&m, &b, &mut x2, &Identity, 6, opts, comm);
            assert!(s2.converged, "gmres {s2:?}");
            for ((u, v), s) in x1.owned().iter().zip(x2.owned()).zip(&sol) {
                assert!((u - s).abs() < 1e-5);
                assert!((v - s).abs() < 1e-5);
            }
        });
    }

    #[test]
    fn dirichlet_row_is_idempotent(ts in triplets(5), row in 0usize..5) {
        let mut b = TripletBuilder::new(5, 5);
        b.add(row, row, 1.0); // ensure a stored diagonal
        for &(r, c, v) in &ts {
            b.add(r, c, v);
        }
        let mut a = b.build();
        a.set_dirichlet_row(row, 1.0);
        let (cols, vals) = a.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            prop_assert_eq!(v, if c == row { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn vector_reductions_match_serial_folds(
        data in prop::collection::vec(-2.0f64..2.0, 1..20),
    ) {
        let expect_dot: f64 = data.iter().map(|v| v * v).sum();
        let n = data.len();
        run_spmd(serial_cfg(), move |comm| {
            let v = DistVector::from_values(data.clone(), n);
            let dot = v.dot(&v, comm);
            assert!((dot - expect_dot).abs() < 1e-10);
            assert!((v.norm2(comm) - expect_dot.sqrt()).abs() < 1e-10);
        });
    }
}
