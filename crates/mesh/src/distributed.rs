//! The per-rank view of a partitioned mesh.
//!
//! In the paper's applications the global mesh is split by ParMETIS so that
//! "each process takes care only of a subset of the global mesh"; matrix rows
//! for interface nodes receive contributions from several processes and are
//! combined over MPI. [`DistributedMesh`] captures exactly the information a
//! rank needs for that: its owned cells, the ranks it shares interface nodes
//! with, and a deterministic ownership rule for shared lattice nodes.

use crate::hex::StructuredHexMesh;
use crate::point::Index3;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Returns the cells of a structured mesh that contain the node `node` of the
/// order-`q` tensor lattice (`q = 1`: cell corners; `q = 2`: Q2 nodes, i.e.
/// corners, edge/face midpoints and cell centers).
///
/// The lattice has `q * n + 1` nodes per axis for `n` cells. A node whose
/// lattice coordinate along an axis is a multiple of `q` sits on a cell
/// interface along that axis and belongs to up to two cell columns; otherwise
/// it is interior to one column. The result has 1, 2, 4, or 8 cells.
pub fn cells_touching_node(
    cell_dims: (usize, usize, usize),
    q: usize,
    node: Index3,
) -> Vec<Index3> {
    assert!(q >= 1, "lattice order must be at least 1");
    let span = |a: usize, n: usize| -> (usize, usize) {
        // Inclusive cell-index range [first, last] along one axis.
        if a.is_multiple_of(q) {
            let c = a / q;
            (c.saturating_sub(1), if c < n { c } else { c - 1 })
        } else {
            (a / q, a / q)
        }
    };
    let (nx, ny, nz) = cell_dims;
    let (i0, i1) = span(node.i, nx);
    let (j0, j1) = span(node.j, ny);
    let (k0, k1) = span(node.k, nz);
    let mut out = Vec::with_capacity(8);
    for k in k0..=k1 {
        for j in j0..=j1 {
            for i in i0..=i1 {
                out.push(Index3::new(i, j, k));
            }
        }
    }
    out
}

/// A single rank's view of a partitioned [`StructuredHexMesh`].
///
/// The partition is an assignment of every cell to a rank. Interface lattice
/// nodes (touched by cells of several ranks) are *owned* by the rank of the
/// touching cell with the smallest linear cell id — a deterministic rule both
/// sides of an interface can evaluate without communication.
#[derive(Debug, Clone)]
pub struct DistributedMesh {
    mesh: StructuredHexMesh,
    assignment: Arc<Vec<usize>>,
    rank: usize,
    num_parts: usize,
    owned_cells: Vec<usize>,
    /// For each neighbouring rank (sorted ascending), the corner-lattice
    /// nodes shared with it (sorted ascending linear corner ids).
    interface_corners: BTreeMap<usize, Vec<usize>>,
}

impl DistributedMesh {
    /// Builds the view of `rank` under the given cell-to-rank `assignment`.
    ///
    /// # Panics
    /// Panics if `assignment.len() != mesh.num_cells()`, if `rank >=
    /// num_parts`, or if any assigned part id is out of range.
    pub fn new(
        mesh: StructuredHexMesh,
        assignment: Arc<Vec<usize>>,
        rank: usize,
        num_parts: usize,
    ) -> Self {
        assert_eq!(
            assignment.len(),
            mesh.num_cells(),
            "assignment length must equal cell count"
        );
        assert!(rank < num_parts, "rank out of range");
        assert!(
            assignment.iter().all(|&p| p < num_parts),
            "assignment contains out-of-range part id"
        );

        let owned_cells: Vec<usize> = (0..mesh.num_cells())
            .filter(|&c| assignment[c] == rank)
            .collect();

        // Every corner of an owned cell that is also touched by a foreign
        // cell is an interface corner shared with that foreign rank.
        let mut interface: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let cell_dims = mesh.cell_dims();
        for &cell in &owned_cells {
            let ci = mesh.cell_index(cell);
            for corner_id in mesh.cell_corners(ci) {
                let corner = mesh.corner_index(corner_id);
                for touching in cells_touching_node(cell_dims, 1, corner) {
                    let part = assignment[mesh.cell_id(touching)];
                    if part != rank {
                        interface.entry(part).or_default().insert(corner_id);
                    }
                }
            }
        }
        let interface_corners = interface
            .into_iter()
            .map(|(r, set)| (r, set.into_iter().collect()))
            .collect();

        DistributedMesh {
            mesh,
            assignment,
            rank,
            num_parts,
            owned_cells,
            interface_corners,
        }
    }

    /// The underlying global mesh.
    #[inline]
    pub fn mesh(&self) -> &StructuredHexMesh {
        &self.mesh
    }

    /// This rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of parts in the partition.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Linear ids of the cells owned by this rank, ascending.
    #[inline]
    pub fn owned_cells(&self) -> &[usize] {
        &self.owned_cells
    }

    /// Rank owning a given cell.
    #[inline]
    pub fn cell_owner(&self, cell: usize) -> usize {
        self.assignment[cell]
    }

    /// The full cell-to-rank assignment (shared across ranks).
    #[inline]
    pub fn assignment(&self) -> &Arc<Vec<usize>> {
        &self.assignment
    }

    /// Ranks this rank shares interface corners with, ascending.
    pub fn neighbors(&self) -> impl Iterator<Item = usize> + '_ {
        self.interface_corners.keys().copied()
    }

    /// Number of neighbouring ranks.
    #[inline]
    pub fn num_neighbors(&self) -> usize {
        self.interface_corners.len()
    }

    /// Corner-lattice nodes shared with `neighbor` (sorted). Empty slice if
    /// `neighbor` is not adjacent.
    pub fn shared_corners(&self, neighbor: usize) -> &[usize] {
        self.interface_corners
            .get(&neighbor)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Owner rank of a lattice node of order `q`, under the smallest-cell-id
    /// rule. Consistent across ranks by construction.
    pub fn node_owner(&self, q: usize, node: Index3) -> usize {
        let touching = cells_touching_node(self.mesh.cell_dims(), q, node);
        let min_cell = touching
            .into_iter()
            .map(|c| self.mesh.cell_id(c))
            .min()
            .expect("every lattice node touches at least one cell");
        self.assignment[min_cell]
    }

    /// Whether this rank owns the given lattice node of order `q`.
    #[inline]
    pub fn owns_node(&self, q: usize, node: Index3) -> bool {
        self.node_owner(q, node) == self.rank
    }

    /// Total number of interface corners (counted once per neighbour,
    /// i.e. a proxy for this rank's halo-exchange volume).
    pub fn interface_corner_count(&self) -> usize {
        self.interface_corners.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point3;

    fn two_slab_partition(n: usize) -> (StructuredHexMesh, Arc<Vec<usize>>) {
        // Split the cube into x < n/2 (rank 0) and x >= n/2 (rank 1).
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment: Vec<usize> = mesh
            .cells()
            .map(|c| if c.i < n / 2 { 0 } else { 1 })
            .collect();
        (mesh, Arc::new(assignment))
    }

    #[test]
    fn cells_touching_corner_counts() {
        let dims = (2, 2, 2);
        // Center corner of a 2^3 mesh touches all 8 cells.
        assert_eq!(cells_touching_node(dims, 1, Index3::new(1, 1, 1)).len(), 8);
        // Domain corner touches exactly 1.
        assert_eq!(cells_touching_node(dims, 1, Index3::new(0, 0, 0)).len(), 1);
        // Edge-interior corner touches 4? (1,0,0): x interface, y lo, z lo -> 2 cells.
        assert_eq!(cells_touching_node(dims, 1, Index3::new(1, 0, 0)).len(), 2);
        assert_eq!(cells_touching_node(dims, 1, Index3::new(1, 1, 0)).len(), 4);
    }

    #[test]
    fn cells_touching_q2_nodes() {
        let dims = (2, 2, 2);
        // Q2 lattice has 5 nodes per axis. Node (1,1,1) is a cell interior
        // node of cell (0,0,0): touches 1 cell.
        assert_eq!(cells_touching_node(dims, 2, Index3::new(1, 1, 1)).len(), 1);
        // Node (2,1,1) is a face midpoint between cells (0,0,0) and (1,0,0).
        let t = cells_touching_node(dims, 2, Index3::new(2, 1, 1));
        assert_eq!(t.len(), 2);
        assert!(t.contains(&Index3::new(0, 0, 0)));
        assert!(t.contains(&Index3::new(1, 0, 0)));
        // Node (2,2,2) is the center corner: 8 cells.
        assert_eq!(cells_touching_node(dims, 2, Index3::new(2, 2, 2)).len(), 8);
    }

    #[test]
    fn slab_partition_views() {
        let (mesh, asg) = two_slab_partition(4);
        let d0 = DistributedMesh::new(mesh.clone(), Arc::clone(&asg), 0, 2);
        let d1 = DistributedMesh::new(mesh, asg, 1, 2);
        assert_eq!(d0.owned_cells().len(), 32);
        assert_eq!(d1.owned_cells().len(), 32);
        assert_eq!(d0.neighbors().collect::<Vec<_>>(), vec![1]);
        assert_eq!(d1.neighbors().collect::<Vec<_>>(), vec![0]);
        // Interface = the x = 1/2 corner plane: 5*5 = 25 corners.
        assert_eq!(d0.shared_corners(1).len(), 25);
        assert_eq!(d0.shared_corners(1), d1.shared_corners(0));
    }

    #[test]
    fn node_ownership_is_consistent_across_ranks() {
        let (mesh, asg) = two_slab_partition(4);
        let d0 = DistributedMesh::new(mesh.clone(), Arc::clone(&asg), 0, 2);
        let d1 = DistributedMesh::new(mesh.clone(), asg, 1, 2);
        for q in [1usize, 2] {
            let (nx, ny, nz) = mesh.cell_dims();
            let dims = (q * nx + 1, q * ny + 1, q * nz + 1);
            for lin in 0..(dims.0 * dims.1 * dims.2) {
                let node = Index3::from_linear(lin, dims);
                assert_eq!(d0.node_owner(q, node), d1.node_owner(q, node));
            }
        }
    }

    #[test]
    fn interface_nodes_owned_by_lower_slab() {
        let (mesh, asg) = two_slab_partition(4);
        let d0 = DistributedMesh::new(mesh, asg, 0, 2);
        // Corner (2, j, k) lies on the interface plane; the smallest touching
        // cell id has i = 1, which belongs to rank 0.
        assert_eq!(d0.node_owner(1, Index3::new(2, 1, 1)), 0);
        assert!(d0.owns_node(1, Index3::new(2, 1, 1)));
        // Node strictly inside the upper slab is owned by rank 1.
        assert_eq!(d0.node_owner(1, Index3::new(3, 1, 1)), 1);
    }

    #[test]
    fn single_rank_has_no_neighbors() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let asg = Arc::new(vec![0usize; mesh.num_cells()]);
        let d = DistributedMesh::new(mesh, asg, 0, 1);
        assert_eq!(d.num_neighbors(), 0);
        assert_eq!(d.interface_corner_count(), 0);
        assert_eq!(d.owned_cells().len(), 27);
    }

    #[test]
    fn owned_cells_partition_the_mesh() {
        let mesh = StructuredHexMesh::new(3, 3, 3, Point3::ZERO, Point3::splat(1.0));
        // Assign cells round-robin to 4 parts.
        let asg = Arc::new((0..mesh.num_cells()).map(|c| c % 4).collect::<Vec<_>>());
        let mut seen = vec![false; mesh.num_cells()];
        for r in 0..4 {
            let d = DistributedMesh::new(mesh.clone(), Arc::clone(&asg), r, 4);
            for &c in d.owned_cells() {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn wrong_assignment_length_rejected() {
        let mesh = StructuredHexMesh::unit_cube(2);
        DistributedMesh::new(mesh, Arc::new(vec![0; 3]), 0, 1);
    }
}
