//! The structured hexahedral mesh over an axis-aligned box.

use crate::point::{Index3, Point3};
use serde::{Deserialize, Serialize};

/// One of the six axis-aligned boundary faces of the box domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundaryFace {
    /// `x = lo.x`.
    XLo,
    /// `x = hi.x`.
    XHi,
    /// `y = lo.y`.
    YLo,
    /// `y = hi.y`.
    YHi,
    /// `z = lo.z`.
    ZLo,
    /// `z = hi.z`.
    ZHi,
}

impl BoundaryFace {
    /// All six faces, in the fixed order `XLo, XHi, YLo, YHi, ZLo, ZHi`.
    pub const ALL: [BoundaryFace; 6] = [
        BoundaryFace::XLo,
        BoundaryFace::XHi,
        BoundaryFace::YLo,
        BoundaryFace::YHi,
        BoundaryFace::ZLo,
        BoundaryFace::ZHi,
    ];
}

/// A structured mesh of `nx * ny * nz` hexahedral cells over the box
/// `[lo, hi]`.
///
/// Cells and geometric corner nodes are addressed either by [`Index3`]
/// lattice indices or by linearized ids (x fastest). The mesh is uniform:
/// every cell is an identical axis-aligned brick of size
/// `((hi-lo).x/nx, (hi-lo).y/ny, (hi-lo).z/nz)` — matching the paper's cube
/// test domain reticulations (`20^3 … 200^3` elements).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuredHexMesh {
    nx: usize,
    ny: usize,
    nz: usize,
    lo: Point3,
    hi: Point3,
}

impl StructuredHexMesh {
    /// Creates a mesh with `nx * ny * nz` cells over the box `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if any cell count is zero or the box is degenerate.
    pub fn new(nx: usize, ny: usize, nz: usize, lo: Point3, hi: Point3) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
        assert!(
            hi.x > lo.x && hi.y > lo.y && hi.z > lo.z,
            "box must have positive volume"
        );
        StructuredHexMesh { nx, ny, nz, lo, hi }
    }

    /// Creates an `n^3`-cell mesh of the unit cube `[0,1]^3`, the domain of
    /// both of the paper's test cases.
    pub fn unit_cube(n: usize) -> Self {
        StructuredHexMesh::new(n, n, n, Point3::ZERO, Point3::splat(1.0))
    }

    /// Cell counts per axis.
    #[inline]
    pub fn cell_dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Corner-node counts per axis (`cells + 1`).
    #[inline]
    pub fn corner_dims(&self) -> (usize, usize, usize) {
        (self.nx + 1, self.ny + 1, self.nz + 1)
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total number of geometric corner nodes.
    #[inline]
    pub fn num_corners(&self) -> usize {
        (self.nx + 1) * (self.ny + 1) * (self.nz + 1)
    }

    /// Lower corner of the box.
    #[inline]
    pub fn lo(&self) -> Point3 {
        self.lo
    }

    /// Upper corner of the box.
    #[inline]
    pub fn hi(&self) -> Point3 {
        self.hi
    }

    /// Edge lengths of a single cell.
    #[inline]
    pub fn cell_size(&self) -> Point3 {
        let d = self.hi - self.lo;
        Point3::new(
            d.x / self.nx as f64,
            d.y / self.ny as f64,
            d.z / self.nz as f64,
        )
    }

    /// Characteristic mesh size `h` (largest cell edge).
    #[inline]
    pub fn h(&self) -> f64 {
        let s = self.cell_size();
        s.x.max(s.y).max(s.z)
    }

    /// Linear cell id of lattice index `c`.
    #[inline]
    pub fn cell_id(&self, c: Index3) -> usize {
        c.linear(self.cell_dims())
    }

    /// Lattice index of linear cell id `id`.
    #[inline]
    pub fn cell_index(&self, id: usize) -> Index3 {
        Index3::from_linear(id, self.cell_dims())
    }

    /// Linear corner-node id of lattice index `c`.
    #[inline]
    pub fn corner_id(&self, c: Index3) -> usize {
        c.linear(self.corner_dims())
    }

    /// Lattice index of linear corner-node id `id`.
    #[inline]
    pub fn corner_index(&self, id: usize) -> Index3 {
        Index3::from_linear(id, self.corner_dims())
    }

    /// Coordinates of corner node `c`.
    #[inline]
    pub fn corner_point(&self, c: Index3) -> Point3 {
        let s = self.cell_size();
        Point3::new(
            self.lo.x + s.x * c.i as f64,
            self.lo.y + s.y * c.j as f64,
            self.lo.z + s.z * c.k as f64,
        )
    }

    /// Barycenter of cell `c`.
    #[inline]
    pub fn cell_center(&self, c: Index3) -> Point3 {
        let s = self.cell_size();
        Point3::new(
            self.lo.x + s.x * (c.i as f64 + 0.5),
            self.lo.y + s.y * (c.j as f64 + 0.5),
            self.lo.z + s.z * (c.k as f64 + 0.5),
        )
    }

    /// The 8 corner-node ids of cell `c`, in tensor-product order: corner
    /// `(a,b,c)` of the unit reference cube maps to slot `a + 2b + 4c`.
    pub fn cell_corners(&self, c: Index3) -> [usize; 8] {
        let mut out = [0usize; 8];
        let mut slot = 0;
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    out[slot] = self.corner_id(Index3::new(c.i + di, c.j + dj, c.k + dk));
                    slot += 1;
                }
            }
        }
        out
    }

    /// Volume of one cell.
    #[inline]
    pub fn cell_volume(&self) -> f64 {
        let s = self.cell_size();
        s.x * s.y * s.z
    }

    /// Whether corner node `c` lies on the domain boundary.
    #[inline]
    pub fn corner_on_boundary(&self, c: Index3) -> bool {
        c.i == 0 || c.i == self.nx || c.j == 0 || c.j == self.ny || c.k == 0 || c.k == self.nz
    }

    /// The boundary faces containing corner node `c` (empty for interior
    /// nodes; up to three for box corners).
    pub fn corner_boundary_faces(&self, c: Index3) -> Vec<BoundaryFace> {
        let mut faces = Vec::new();
        if c.i == 0 {
            faces.push(BoundaryFace::XLo);
        }
        if c.i == self.nx {
            faces.push(BoundaryFace::XHi);
        }
        if c.j == 0 {
            faces.push(BoundaryFace::YLo);
        }
        if c.j == self.ny {
            faces.push(BoundaryFace::YHi);
        }
        if c.k == 0 {
            faces.push(BoundaryFace::ZLo);
        }
        if c.k == self.nz {
            faces.push(BoundaryFace::ZHi);
        }
        faces
    }

    /// Whether cell `c` touches the domain boundary.
    #[inline]
    pub fn cell_on_boundary(&self, c: Index3) -> bool {
        c.i == 0
            || c.i + 1 == self.nx
            || c.j == 0
            || c.j + 1 == self.ny
            || c.k == 0
            || c.k + 1 == self.nz
    }

    /// Iterates over all cell lattice indices in linear order.
    pub fn cells(&self) -> impl Iterator<Item = Index3> + '_ {
        let dims = self.cell_dims();
        (0..self.num_cells()).map(move |lin| Index3::from_linear(lin, dims))
    }

    /// Iterates over all corner lattice indices in linear order.
    pub fn corners(&self) -> impl Iterator<Item = Index3> + '_ {
        let dims = self.corner_dims();
        (0..self.num_corners()).map(move |lin| Index3::from_linear(lin, dims))
    }

    /// Number of boundary corner nodes (closed form).
    pub fn num_boundary_corners(&self) -> usize {
        let (px, py, pz) = self.corner_dims();
        let interior = px.saturating_sub(2) * py.saturating_sub(2) * pz.saturating_sub(2);
        px * py * pz - interior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cube_counts() {
        let m = StructuredHexMesh::unit_cube(4);
        assert_eq!(m.num_cells(), 64);
        assert_eq!(m.num_corners(), 125);
        assert_eq!(m.cell_dims(), (4, 4, 4));
        assert_eq!(m.corner_dims(), (5, 5, 5));
    }

    #[test]
    fn cell_size_and_h() {
        let m = StructuredHexMesh::new(2, 4, 8, Point3::ZERO, Point3::new(1.0, 1.0, 1.0));
        let s = m.cell_size();
        assert!((s.x - 0.5).abs() < 1e-15);
        assert!((s.y - 0.25).abs() < 1e-15);
        assert!((s.z - 0.125).abs() < 1e-15);
        assert!((m.h() - 0.5).abs() < 1e-15);
        assert!((m.cell_volume() - 0.5 * 0.25 * 0.125).abs() < 1e-15);
    }

    #[test]
    fn corner_points_span_box() {
        let m = StructuredHexMesh::unit_cube(3);
        assert_eq!(m.corner_point(Index3::new(0, 0, 0)), Point3::ZERO);
        let top = m.corner_point(Index3::new(3, 3, 3));
        assert!((top - Point3::splat(1.0)).norm() < 1e-15);
    }

    #[test]
    fn cell_corners_tensor_order() {
        let m = StructuredHexMesh::unit_cube(2);
        let corners = m.cell_corners(Index3::new(0, 0, 0));
        // corner grid is 3x3x3; slot a + 2b + 4c must be node (a, b, c).
        assert_eq!(corners[0], m.corner_id(Index3::new(0, 0, 0)));
        assert_eq!(corners[1], m.corner_id(Index3::new(1, 0, 0)));
        assert_eq!(corners[2], m.corner_id(Index3::new(0, 1, 0)));
        assert_eq!(corners[3], m.corner_id(Index3::new(1, 1, 0)));
        assert_eq!(corners[4], m.corner_id(Index3::new(0, 0, 1)));
        assert_eq!(corners[7], m.corner_id(Index3::new(1, 1, 1)));
    }

    #[test]
    fn adjacent_cells_share_four_corners() {
        let m = StructuredHexMesh::unit_cube(3);
        let a: std::collections::HashSet<_> =
            m.cell_corners(Index3::new(0, 0, 0)).into_iter().collect();
        let b: std::collections::HashSet<_> =
            m.cell_corners(Index3::new(1, 0, 0)).into_iter().collect();
        assert_eq!(a.intersection(&b).count(), 4);
    }

    #[test]
    fn boundary_classification() {
        let m = StructuredHexMesh::unit_cube(4);
        assert!(m.corner_on_boundary(Index3::new(0, 2, 2)));
        assert!(m.corner_on_boundary(Index3::new(4, 4, 4)));
        assert!(!m.corner_on_boundary(Index3::new(2, 2, 2)));
        assert!(m.cell_on_boundary(Index3::new(0, 1, 1)));
        assert!(!m.cell_on_boundary(Index3::new(1, 2, 2)));
    }

    #[test]
    fn corner_boundary_faces_at_box_corner() {
        let m = StructuredHexMesh::unit_cube(2);
        let faces = m.corner_boundary_faces(Index3::new(0, 0, 2));
        assert_eq!(faces.len(), 3);
        assert!(faces.contains(&BoundaryFace::XLo));
        assert!(faces.contains(&BoundaryFace::YLo));
        assert!(faces.contains(&BoundaryFace::ZHi));
        assert!(m.corner_boundary_faces(Index3::new(1, 1, 1)).is_empty());
    }

    #[test]
    fn boundary_corner_count_matches_enumeration() {
        for n in [1usize, 2, 3, 5] {
            let m = StructuredHexMesh::unit_cube(n);
            let brute = m.corners().filter(|&c| m.corner_on_boundary(c)).count();
            assert_eq!(m.num_boundary_corners(), brute, "n = {n}");
        }
    }

    #[test]
    fn cells_iterator_covers_all_in_linear_order() {
        let m = StructuredHexMesh::new(2, 3, 2, Point3::ZERO, Point3::splat(1.0));
        let ids: Vec<_> = m.cells().map(|c| m.cell_id(c)).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cell counts must be positive")]
    fn zero_cells_rejected() {
        StructuredHexMesh::new(0, 1, 1, Point3::ZERO, Point3::splat(1.0));
    }

    #[test]
    #[should_panic(expected = "positive volume")]
    fn degenerate_box_rejected() {
        StructuredHexMesh::new(1, 1, 1, Point3::ZERO, Point3::new(1.0, 0.0, 1.0));
    }
}
