//! # hetero-mesh
//!
//! Structured 3-D hexahedral meshes for the `hetero-hpc` reproduction of
//! *Experiences with Target-Platform Heterogeneity in Clouds, Grids, and
//! On-Premises Resources* (Slawinski et al., 2012).
//!
//! The paper's two CFD test cases are both posed on a cube discretized by a
//! structured mesh whose per-process size is held at `20^3` elements for the
//! weak-scaling study. This crate provides:
//!
//! * [`Point3`] / [`Index3`] — geometric and lattice primitives;
//! * [`StructuredHexMesh`] — an `nx x ny x nz` hexahedral mesh over an
//!   axis-aligned box, with cell/corner indexing, boundary queries, and
//!   corner connectivity;
//! * [`DistributedMesh`] — the view a single rank holds after partitioning:
//!   owned cells, neighbouring ranks, and shared-interface footprints;
//! * [`weak`] — sizing helpers for the paper's weak-scaling ladder
//!   (`p = k^3` ranks, global mesh `(20k)^3`).
//!
//! Element *order* (Q1 trilinear vs Q2 triquadratic) is a property of the FEM
//! discretization, not of the geometry, so degree-of-freedom lattices live in
//! `hetero-fem`; this crate deals in cells and geometric corners only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod hex;
pub mod point;
pub mod quality;
pub mod weak;

pub use distributed::DistributedMesh;
pub use hex::{BoundaryFace, StructuredHexMesh};
pub use point::{Index3, Point3};
