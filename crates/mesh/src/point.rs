//! Geometric and lattice primitives: [`Point3`] and [`Index3`].

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A point (or vector) in 3-D Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// First coordinate (`x_1` in the paper's notation).
    pub x: f64,
    /// Second coordinate (`x_2`).
    pub y: f64,
    /// Third coordinate (`x_3`).
    pub z: f64,
}

impl Point3 {
    /// The origin.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point whose coordinates are all `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Point3 { x: v, y: v, z: v }
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other`.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm `x^2 + y^2 + z^2`.
    ///
    /// This quantity is the spatial factor of the paper's reaction-diffusion
    /// exact solution `u = t^2 (x_1^2 + x_2^2 + x_3^2)`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Returns the coordinate along `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `axis > 2`.
    #[inline]
    pub fn coord(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis out of range: {axis}"),
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Point3> for f64 {
    type Output = Point3;
    #[inline]
    fn mul(self, p: Point3) -> Point3 {
        p * self
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

/// An integer lattice index `(i, j, k)` addressing cells or corners of a
/// structured mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Index3 {
    /// Index along the x axis.
    pub i: usize,
    /// Index along the y axis.
    pub j: usize,
    /// Index along the z axis.
    pub k: usize,
}

impl Index3 {
    /// Creates a lattice index.
    #[inline]
    pub const fn new(i: usize, j: usize, k: usize) -> Self {
        Index3 { i, j, k }
    }

    /// Linearizes this index on a lattice with `dims = (nx, ny, nz)` entries
    /// per axis, x fastest (Fortran/lexicographic order).
    #[inline]
    pub fn linear(self, dims: (usize, usize, usize)) -> usize {
        debug_assert!(self.i < dims.0 && self.j < dims.1 && self.k < dims.2);
        self.i + dims.0 * (self.j + dims.1 * self.k)
    }

    /// Inverse of [`Index3::linear`].
    #[inline]
    pub fn from_linear(lin: usize, dims: (usize, usize, usize)) -> Self {
        debug_assert!(lin < dims.0 * dims.1 * dims.2);
        let i = lin % dims.0;
        let j = (lin / dims.0) % dims.1;
        let k = lin / (dims.0 * dims.1);
        Index3 { i, j, k }
    }

    /// Returns the index along `axis` (0 = i, 1 = j, 2 = k).
    ///
    /// # Panics
    /// Panics if `axis > 2`.
    #[inline]
    pub fn coord(self, axis: usize) -> usize {
        match axis {
            0 => self.i,
            1 => self.j,
            2 => self.k,
            _ => panic!("axis out of range: {axis}"),
        }
    }

    /// The 6 face-neighbouring indices that stay inside `dims`, in the fixed
    /// order `-x, +x, -y, +y, -z, +z` (absent neighbours skipped).
    pub fn face_neighbors(self, dims: (usize, usize, usize)) -> impl Iterator<Item = Index3> {
        let Index3 { i, j, k } = self;
        let (nx, ny, nz) = dims;
        let candidates = [
            (i > 0).then(|| Index3::new(i - 1, j, k)),
            (i + 1 < nx).then(|| Index3::new(i + 1, j, k)),
            (j > 0).then(|| Index3::new(i, j - 1, k)),
            (j + 1 < ny).then(|| Index3::new(i, j + 1, k)),
            (k > 0).then(|| Index3::new(i, j, k - 1)),
            (k + 1 < nz).then(|| Index3::new(i, j, k + 1)),
        ];
        candidates.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Point3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Point3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_norm() {
        let a = Point3::new(1.0, 2.0, 2.0);
        assert_eq!(a.norm_sq(), 9.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.dot(Point3::new(1.0, 0.0, 0.0)), 1.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn cross_right_handed() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Point3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn coord_accessor() {
        let a = Point3::new(7.0, 8.0, 9.0);
        assert_eq!(a.coord(0), 7.0);
        assert_eq!(a.coord(1), 8.0);
        assert_eq!(a.coord(2), 9.0);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn coord_accessor_panics() {
        Point3::ZERO.coord(3);
    }

    #[test]
    fn index_linearization_roundtrip() {
        let dims = (3, 4, 5);
        for lin in 0..(3 * 4 * 5) {
            let idx = Index3::from_linear(lin, dims);
            assert_eq!(idx.linear(dims), lin);
        }
    }

    #[test]
    fn index_linear_x_fastest() {
        let dims = (10, 10, 10);
        assert_eq!(Index3::new(1, 0, 0).linear(dims), 1);
        assert_eq!(Index3::new(0, 1, 0).linear(dims), 10);
        assert_eq!(Index3::new(0, 0, 1).linear(dims), 100);
    }

    #[test]
    fn face_neighbors_interior_has_six() {
        let n: Vec<_> = Index3::new(1, 1, 1).face_neighbors((3, 3, 3)).collect();
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn face_neighbors_corner_has_three() {
        let n: Vec<_> = Index3::new(0, 0, 0).face_neighbors((3, 3, 3)).collect();
        assert_eq!(n.len(), 3);
        assert!(n.contains(&Index3::new(1, 0, 0)));
        assert!(n.contains(&Index3::new(0, 1, 0)));
        assert!(n.contains(&Index3::new(0, 0, 1)));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(3.0, 0.0, 0.0);
        assert_eq!(a.min(b), Point3::new(1.0, 0.0, -2.0));
        assert_eq!(a.max(b), Point3::new(3.0, 5.0, 0.0));
    }
}
