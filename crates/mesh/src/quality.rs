//! Mesh and partition quality metrics.
//!
//! The paper's load-balance criterion is "the number of mesh elements
//! assigned to each process"; communication load is driven by the interface
//! surface between parts. These metrics quantify both and are used by the
//! partitioner tests and the modeled execution engine.

use crate::hex::StructuredHexMesh;
use crate::point::Index3;

/// Aspect ratio of the mesh cells: longest edge over shortest edge.
/// 1.0 for perfectly cubic cells.
pub fn cell_aspect_ratio(mesh: &StructuredHexMesh) -> f64 {
    let s = mesh.cell_size();
    let max = s.x.max(s.y).max(s.z);
    let min = s.x.min(s.y).min(s.z);
    max / min
}

/// Load imbalance of a cell-to-part assignment: `max_load / mean_load`.
/// 1.0 is perfect balance. Parts with no cells are still counted.
pub fn load_imbalance(assignment: &[usize], num_parts: usize) -> f64 {
    assert!(num_parts > 0);
    let mut loads = vec![0usize; num_parts];
    for &p in assignment {
        loads[p] += 1;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = assignment.len() as f64 / num_parts as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Number of cell faces whose two adjacent cells belong to different parts
/// (the edge cut of the dual graph, each cut face counted once).
pub fn interface_faces(mesh: &StructuredHexMesh, assignment: &[usize]) -> usize {
    assert_eq!(assignment.len(), mesh.num_cells());
    let dims = mesh.cell_dims();
    let mut cut = 0;
    for cell in mesh.cells() {
        let me = assignment[mesh.cell_id(cell)];
        // Count only the +x/+y/+z neighbours so each face is seen once.
        let ups = [
            (cell.i + 1 < dims.0).then(|| Index3::new(cell.i + 1, cell.j, cell.k)),
            (cell.j + 1 < dims.1).then(|| Index3::new(cell.i, cell.j + 1, cell.k)),
            (cell.k + 1 < dims.2).then(|| Index3::new(cell.i, cell.j, cell.k + 1)),
        ];
        for n in ups.into_iter().flatten() {
            if assignment[mesh.cell_id(n)] != me {
                cut += 1;
            }
        }
    }
    cut
}

/// The interface surface (in cell faces) of an ideal cubic block partition
/// of an `n^3` mesh into `k^3` blocks: `3 (k - 1) n^2`.
///
/// Any partition of the same mesh into `k^3` equal parts has at least this
/// order of cut; the partitioner tests compare against it.
pub fn ideal_block_cut(n: usize, k: usize) -> usize {
    assert!(
        k > 0 && n.is_multiple_of(k),
        "block partition requires k | n"
    );
    3 * (k - 1) * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point3;

    #[test]
    fn aspect_ratio_unit_cube_is_one() {
        assert_eq!(cell_aspect_ratio(&StructuredHexMesh::unit_cube(7)), 1.0);
    }

    #[test]
    fn aspect_ratio_stretched() {
        let m = StructuredHexMesh::new(1, 1, 4, Point3::ZERO, Point3::splat(1.0));
        assert!((cell_aspect_ratio(&m) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance() {
        let asg = vec![0, 0, 1, 1, 2, 2, 3, 3];
        assert_eq!(load_imbalance(&asg, 4), 1.0);
    }

    #[test]
    fn skewed_balance() {
        let asg = vec![0, 0, 0, 1];
        assert_eq!(load_imbalance(&asg, 2), 1.5);
    }

    #[test]
    fn empty_part_counts_in_imbalance() {
        let asg = vec![0, 0, 0, 0];
        assert_eq!(load_imbalance(&asg, 2), 2.0);
    }

    #[test]
    fn slab_cut_matches_closed_form() {
        let n = 4;
        let mesh = StructuredHexMesh::unit_cube(n);
        // 2 slabs along x: cut plane has n^2 faces.
        let asg: Vec<usize> = mesh.cells().map(|c| usize::from(c.i >= n / 2)).collect();
        assert_eq!(interface_faces(&mesh, &asg), n * n);
    }

    #[test]
    fn block_cut_matches_ideal() {
        let n = 4;
        let k = 2;
        let mesh = StructuredHexMesh::unit_cube(n);
        let b = n / k;
        let asg: Vec<usize> = mesh
            .cells()
            .map(|c| (c.i / b) + k * ((c.j / b) + k * (c.k / b)))
            .collect();
        assert_eq!(interface_faces(&mesh, &asg), ideal_block_cut(n, k));
    }

    #[test]
    fn uniform_assignment_has_zero_cut() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let asg = vec![0usize; mesh.num_cells()];
        assert_eq!(interface_faces(&mesh, &asg), 0);
    }
}
