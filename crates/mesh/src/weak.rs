//! Sizing helpers for the paper's weak-scaling ladder.
//!
//! The paper "started from a single process loaded with the input mesh of
//! size `20^3` elements and incremented the number of processes (as well as
//! the input mesh size) as cubic powers": `p = k^3` ranks hold a global mesh
//! of `(m k)^3` cells where `m` is the per-rank edge (20 in the paper), so
//! every rank always owns `m^3` cells.

use crate::hex::StructuredHexMesh;

/// One rung of the weak-scaling ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeakScalingPoint {
    /// Cube root of the rank count (`k`).
    pub k: usize,
    /// Number of MPI ranks (`k^3`).
    pub ranks: usize,
    /// Cells per axis of the global mesh (`m * k`).
    pub cells_per_axis: usize,
    /// Cells per axis owned by each rank (`m`).
    pub per_rank_axis: usize,
}

impl WeakScalingPoint {
    /// Total cells in the global mesh.
    #[inline]
    pub fn total_cells(&self) -> usize {
        self.cells_per_axis.pow(3)
    }

    /// Cells owned by each rank.
    #[inline]
    pub fn cells_per_rank(&self) -> usize {
        self.per_rank_axis.pow(3)
    }

    /// Builds the global unit-cube mesh for this rung.
    pub fn global_mesh(&self) -> StructuredHexMesh {
        StructuredHexMesh::unit_cube(self.cells_per_axis)
    }
}

/// The ladder `k = 1..=max_k` with `per_rank_axis^3` cells per rank.
///
/// With `per_rank_axis = 20` and `max_k = 10` this is exactly the paper's
/// sweep: 1, 8, 27, 64, 125, 216, 343, 512, 729, 1000 processes on meshes
/// `20^3 … 200^3`.
pub fn ladder(per_rank_axis: usize, max_k: usize) -> Vec<WeakScalingPoint> {
    assert!(per_rank_axis > 0 && max_k > 0);
    (1..=max_k)
        .map(|k| WeakScalingPoint {
            k,
            ranks: k * k * k,
            cells_per_axis: per_rank_axis * k,
            per_rank_axis,
        })
        .collect()
}

/// The paper's exact configuration: `20^3` cells per rank, up to 1000 ranks.
pub fn paper_ladder() -> Vec<WeakScalingPoint> {
    ladder(20, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_matches_table_ii() {
        let l = paper_ladder();
        let ranks: Vec<usize> = l.iter().map(|p| p.ranks).collect();
        assert_eq!(ranks, vec![1, 8, 27, 64, 125, 216, 343, 512, 729, 1000]);
        assert_eq!(l.last().unwrap().cells_per_axis, 200);
        assert!(l.iter().all(|p| p.cells_per_rank() == 8000));
    }

    #[test]
    fn per_rank_load_is_constant() {
        for p in ladder(5, 6) {
            assert_eq!(p.total_cells(), p.cells_per_rank() * p.ranks);
        }
    }

    #[test]
    fn global_mesh_dims() {
        let p = ladder(4, 3)[2];
        assert_eq!(p.ranks, 27);
        let m = p.global_mesh();
        assert_eq!(m.cell_dims(), (12, 12, 12));
    }
}
