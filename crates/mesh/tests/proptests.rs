//! Property-based tests of the mesh invariants.

use hetero_mesh::distributed::cells_touching_node;
use hetero_mesh::{DistributedMesh, Index3, Point3, StructuredHexMesh};
use proptest::prelude::*;
use std::sync::Arc;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #[test]
    fn linearization_roundtrips(d in dims(), seed in 0usize..1000) {
        let total = d.0 * d.1 * d.2;
        let lin = seed % total;
        let idx = Index3::from_linear(lin, d);
        prop_assert_eq!(idx.linear(d), lin);
        prop_assert!(idx.i < d.0 && idx.j < d.1 && idx.k < d.2);
    }

    #[test]
    fn cell_corner_ids_are_valid_and_distinct(d in dims(), seed in 0usize..1000) {
        let mesh = StructuredHexMesh::new(d.0, d.1, d.2, Point3::ZERO, Point3::splat(1.0));
        let cell = mesh.cell_index(seed % mesh.num_cells());
        let corners = mesh.cell_corners(cell);
        let mut sorted = corners;
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert!(w[0] != w[1], "duplicate corner id");
        }
        for id in corners {
            prop_assert!(id < mesh.num_corners());
        }
    }

    #[test]
    fn corner_points_are_inside_the_box(d in dims(), seed in 0usize..1000) {
        let lo = Point3::new(-1.0, 0.5, 2.0);
        let hi = Point3::new(3.0, 1.5, 4.0);
        let mesh = StructuredHexMesh::new(d.0, d.1, d.2, lo, hi);
        let c = mesh.corner_index(seed % mesh.num_corners());
        let p = mesh.corner_point(c);
        prop_assert!(p.x >= lo.x - 1e-12 && p.x <= hi.x + 1e-12);
        prop_assert!(p.y >= lo.y - 1e-12 && p.y <= hi.y + 1e-12);
        prop_assert!(p.z >= lo.z - 1e-12 && p.z <= hi.z + 1e-12);
    }

    #[test]
    fn cells_touching_node_contains_the_node(
        d in dims(),
        q in 1usize..3,
        seed in 0usize..10_000,
    ) {
        let lattice = (q * d.0 + 1, q * d.1 + 1, q * d.2 + 1);
        let total = lattice.0 * lattice.1 * lattice.2;
        let node = Index3::from_linear(seed % total, lattice);
        let cells = cells_touching_node(d, q, node);
        prop_assert!(!cells.is_empty());
        prop_assert!(matches!(cells.len(), 1 | 2 | 4 | 8));
        for cell in &cells {
            // The node's lattice coordinates must lie within the cell's
            // lattice span [q*cell, q*(cell+1)].
            prop_assert!(node.i >= q * cell.i && node.i <= q * (cell.i + 1));
            prop_assert!(node.j >= q * cell.j && node.j <= q * (cell.j + 1));
            prop_assert!(node.k >= q * cell.k && node.k <= q * (cell.k + 1));
            prop_assert!(cell.i < d.0 && cell.j < d.1 && cell.k < d.2);
        }
        // And conversely every cell spanning the node is in the list.
        let mesh = StructuredHexMesh::new(d.0, d.1, d.2, Point3::ZERO, Point3::splat(1.0));
        let brute: Vec<Index3> = mesh
            .cells()
            .filter(|c| {
                node.i >= q * c.i
                    && node.i <= q * (c.i + 1)
                    && node.j >= q * c.j
                    && node.j <= q * (c.j + 1)
                    && node.k >= q * c.k
                    && node.k <= q * (c.k + 1)
            })
            .collect();
        let mut got = cells.clone();
        got.sort();
        let mut want = brute;
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn node_ownership_is_total_and_consistent(
        n in 2usize..5,
        parts in 2usize..5,
        q in 1usize..3,
        seed in 0usize..5_000,
    ) {
        let mesh = StructuredHexMesh::unit_cube(n);
        // Deterministic pseudo-random assignment.
        let assignment: Vec<usize> =
            (0..mesh.num_cells()).map(|c| (c * 2654435761) % parts).collect();
        let assignment = Arc::new(assignment);
        let views: Vec<DistributedMesh> = (0..parts)
            .map(|r| DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), r, parts))
            .collect();
        let lattice = (q * n + 1, q * n + 1, q * n + 1);
        let total = lattice.0 * lattice.1 * lattice.2;
        let node = Index3::from_linear(seed % total, lattice);
        let owners: Vec<usize> = views.iter().map(|v| v.node_owner(q, node)).collect();
        // Every rank computes the same owner, and the owner is a valid part.
        for w in owners.windows(2) {
            prop_assert_eq!(w[0], w[1]);
        }
        prop_assert!(owners[0] < parts);
    }

    #[test]
    fn owned_cells_partition_under_any_assignment(
        n in 1usize..5,
        parts in 1usize..6,
        salt in 0usize..100,
    ) {
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment: Vec<usize> =
            (0..mesh.num_cells()).map(|c| (c * 31 + salt) % parts).collect();
        let assignment = Arc::new(assignment);
        let mut seen = vec![false; mesh.num_cells()];
        for r in 0..parts {
            let v = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), r, parts);
            for &c in v.owned_cells() {
                prop_assert!(!seen[c], "cell {c} owned twice");
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn boundary_count_closed_form(n in 1usize..8) {
        let mesh = StructuredHexMesh::unit_cube(n);
        let brute = mesh.corners().filter(|&c| mesh.corner_on_boundary(c)).count();
        prop_assert_eq!(mesh.num_boundary_corners(), brute);
    }
}
