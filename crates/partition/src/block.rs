//! Structured block decomposition with closed-form layout queries.

use crate::Partitioner;
use hetero_mesh::{Index3, StructuredHexMesh};

/// Splits `n` items into `p` contiguous chunks as evenly as possible.
/// Chunk `a` covers `[start(a), start(a+1))` with `start(a) = floor(a*n/p)`.
#[inline]
fn chunk_start(a: usize, n: usize, p: usize) -> usize {
    a * n / p
}

/// Index of the chunk containing item `i` under [`chunk_start`] splitting.
#[inline]
fn chunk_of(i: usize, n: usize, p: usize) -> usize {
    // start(a) <= i  <=>  a*n <= i*p + (p-1) roughly; binary-search-free form:
    let a = (i * p + p - 1) / n;
    // Guard against rounding: the closed form can be off by one.
    let a = a.min(p - 1);
    if chunk_start(a, n, p) > i {
        a - 1
    } else if a + 1 < p && chunk_start(a + 1, n, p) <= i {
        a + 1
    } else {
        a
    }
}

/// Factors `p` into `(px, py, pz)` with `px*py*pz = p` and the factors as
/// close to `p^(1/3)` as possible (`px <= py <= pz`). Perfect cubes factor
/// into `(k, k, k)` — the paper's rank counts are all cubes.
pub fn near_cubic_factors(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (1, 1, p);
    let mut best_score = usize::MAX;
    let mut a = 1;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let q = p / a;
            let mut b = a;
            while b * b <= q {
                if q.is_multiple_of(b) {
                    let c = q / b;
                    // Minimize surface of an a x b x c box: proxy for
                    // communication surface.
                    let score = a * b + b * c + a * c;
                    if score < best_score {
                        best_score = score;
                        best = (a, b, c);
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Closed-form description of a `px x py x pz` block decomposition of an
/// `nx x ny x nz` cell grid.
///
/// All queries are O(1) or O(neighbours) without materializing the
/// assignment vector — essential for the modeled engine's 1000-rank,
/// 8-million-cell configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    cells: (usize, usize, usize),
    parts: (usize, usize, usize),
}

impl BlockLayout {
    /// Creates a layout of the given cell grid into the given part grid.
    ///
    /// # Panics
    /// Panics if any part count is zero or exceeds the cell count along its
    /// axis.
    pub fn new(cells: (usize, usize, usize), parts: (usize, usize, usize)) -> Self {
        assert!(
            parts.0 > 0 && parts.1 > 0 && parts.2 > 0,
            "part counts must be positive"
        );
        assert!(
            parts.0 <= cells.0 && parts.1 <= cells.1 && parts.2 <= cells.2,
            "more parts than cells along an axis"
        );
        BlockLayout { cells, parts }
    }

    /// Layout for `num_parts` near-cubic blocks of `mesh`.
    pub fn for_mesh(mesh: &StructuredHexMesh, num_parts: usize) -> Self {
        BlockLayout::new(mesh.cell_dims(), near_cubic_factors(num_parts))
    }

    /// The part grid `(px, py, pz)`.
    #[inline]
    pub fn part_dims(&self) -> (usize, usize, usize) {
        self.parts
    }

    /// The cell grid `(nx, ny, nz)`.
    #[inline]
    pub fn cell_dims(&self) -> (usize, usize, usize) {
        self.cells
    }

    /// Total number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.parts.0 * self.parts.1 * self.parts.2
    }

    /// Block lattice index of `rank`.
    #[inline]
    pub fn block_of_rank(&self, rank: usize) -> Index3 {
        Index3::from_linear(rank, self.parts)
    }

    /// Rank of block `b`.
    #[inline]
    pub fn rank_of_block(&self, b: Index3) -> usize {
        b.linear(self.parts)
    }

    /// Rank owning cell `c`.
    #[inline]
    pub fn rank_of_cell(&self, c: Index3) -> usize {
        let b = Index3::new(
            chunk_of(c.i, self.cells.0, self.parts.0),
            chunk_of(c.j, self.cells.1, self.parts.1),
            chunk_of(c.k, self.cells.2, self.parts.2),
        );
        self.rank_of_block(b)
    }

    /// Half-open cell ranges `[lo, hi)` per axis of `rank`'s block.
    pub fn cell_ranges(&self, rank: usize) -> [(usize, usize); 3] {
        let b = self.block_of_rank(rank);
        [
            (
                chunk_start(b.i, self.cells.0, self.parts.0),
                chunk_start(b.i + 1, self.cells.0, self.parts.0),
            ),
            (
                chunk_start(b.j, self.cells.1, self.parts.1),
                chunk_start(b.j + 1, self.cells.1, self.parts.1),
            ),
            (
                chunk_start(b.k, self.cells.2, self.parts.2),
                chunk_start(b.k + 1, self.cells.2, self.parts.2),
            ),
        ]
    }

    /// Block extent (cells per axis) of `rank`.
    pub fn block_extent(&self, rank: usize) -> (usize, usize, usize) {
        let r = self.cell_ranges(rank);
        (r[0].1 - r[0].0, r[1].1 - r[1].0, r[2].1 - r[2].0)
    }

    /// Number of cells owned by `rank`.
    pub fn cells_in_rank(&self, rank: usize) -> usize {
        let (a, b, c) = self.block_extent(rank);
        a * b * c
    }

    /// All node-sharing neighbours of `rank` (the up-to-26 adjacent blocks),
    /// each with the number of *shared lattice nodes of order `q`* on the
    /// common interface — i.e. the per-neighbour halo-exchange footprint for
    /// a nodal discretization of order `q` (1 = Q1, 2 = Q2).
    ///
    /// Face neighbours share a 2-D plane of nodes, edge neighbours a 1-D
    /// line, corner neighbours a single node.
    pub fn node_neighbors(&self, rank: usize, q: usize) -> Vec<(usize, usize)> {
        assert!(q >= 1);
        let b = self.block_of_rank(rank);
        let ext = self.block_extent(rank);
        let mut out = Vec::new();
        for dk in -1i64..=1 {
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 && dk == 0 {
                        continue;
                    }
                    let ni = b.i as i64 + di;
                    let nj = b.j as i64 + dj;
                    let nk = b.k as i64 + dk;
                    if ni < 0
                        || nj < 0
                        || nk < 0
                        || ni >= self.parts.0 as i64
                        || nj >= self.parts.1 as i64
                        || nk >= self.parts.2 as i64
                    {
                        continue;
                    }
                    // Shared node count: along each axis the overlap is the
                    // full node line (q*ext + 1) when the neighbour offset is
                    // zero, or a single interface node plane otherwise.
                    let shared_x = if di == 0 { q * ext.0 + 1 } else { 1 };
                    let shared_y = if dj == 0 { q * ext.1 + 1 } else { 1 };
                    let shared_z = if dk == 0 { q * ext.2 + 1 } else { 1 };
                    let neighbor =
                        self.rank_of_block(Index3::new(ni as usize, nj as usize, nk as usize));
                    out.push((neighbor, shared_x * shared_y * shared_z));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Materializes the full cell-to-rank assignment vector.
    pub fn assignment(&self) -> Vec<usize> {
        let (nx, ny, nz) = self.cells;
        let mut out = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    out.push(self.rank_of_cell(Index3::new(i, j, k)));
                }
            }
        }
        out
    }
}

/// [`Partitioner`] wrapper around [`BlockLayout`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockPartitioner;

impl Partitioner for BlockPartitioner {
    fn partition(&self, mesh: &StructuredHexMesh, num_parts: usize) -> Vec<usize> {
        BlockLayout::for_mesh(mesh, num_parts).assignment()
    }

    fn name(&self) -> &'static str {
        "block"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mesh::quality::load_imbalance;

    #[test]
    fn factors_of_cubes_are_cubic() {
        for k in 1..=10usize {
            assert_eq!(near_cubic_factors(k * k * k), (k, k, k));
        }
    }

    #[test]
    fn factors_of_non_cubes() {
        assert_eq!(near_cubic_factors(1), (1, 1, 1));
        let (a, b, c) = near_cubic_factors(12);
        assert_eq!(a * b * c, 12);
        assert_eq!((a, b, c), (2, 2, 3));
        let (a, b, c) = near_cubic_factors(7); // prime
        assert_eq!(a * b * c, 7);
    }

    #[test]
    fn chunk_of_inverts_chunk_start() {
        for n in [5usize, 7, 20, 21] {
            for p in 1..=n {
                for i in 0..n {
                    let a = chunk_of(i, n, p);
                    assert!(chunk_start(a, n, p) <= i && i < chunk_start(a + 1, n, p));
                }
            }
        }
    }

    #[test]
    fn ranges_tile_the_grid() {
        let l = BlockLayout::new((20, 20, 20), (3, 3, 3));
        let total: usize = (0..l.num_parts()).map(|r| l.cells_in_rank(r)).sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn assignment_consistent_with_rank_of_cell() {
        let mesh = StructuredHexMesh::unit_cube(6);
        let l = BlockLayout::for_mesh(&mesh, 8);
        let asg = l.assignment();
        for cell in mesh.cells() {
            assert_eq!(asg[mesh.cell_id(cell)], l.rank_of_cell(cell));
        }
    }

    #[test]
    fn perfect_cube_partition_is_balanced() {
        let mesh = StructuredHexMesh::unit_cube(20);
        let asg = BlockPartitioner.partition(&mesh, 8);
        assert_eq!(load_imbalance(&asg, 8), 1.0);
        // Each rank owns a 10^3 block.
        let l = BlockLayout::for_mesh(&mesh, 8);
        for r in 0..8 {
            assert_eq!(l.cells_in_rank(r), 1000);
        }
    }

    #[test]
    fn uneven_partition_is_nearly_balanced() {
        let mesh = StructuredHexMesh::unit_cube(7);
        let asg = BlockPartitioner.partition(&mesh, 8);
        // 343 cells over 8 parts: block extents 3 or 4 per axis.
        assert!(load_imbalance(&asg, 8) < 1.55);
    }

    #[test]
    fn interior_block_has_26_node_neighbors() {
        let l = BlockLayout::new((9, 9, 9), (3, 3, 3));
        let center = l.rank_of_block(Index3::new(1, 1, 1));
        let n = l.node_neighbors(center, 1);
        assert_eq!(n.len(), 26);
        // Face neighbours share a (3*1+1)^2 = 16-node plane.
        let face = n
            .iter()
            .find(|&&(r, _)| r == l.rank_of_block(Index3::new(0, 1, 1)))
            .unwrap();
        assert_eq!(face.1, 16);
        // Corner neighbour shares exactly one node.
        let corner = n
            .iter()
            .find(|&&(r, _)| r == l.rank_of_block(Index3::new(0, 0, 0)))
            .unwrap();
        assert_eq!(corner.1, 1);
    }

    #[test]
    fn q2_interface_is_denser() {
        let l = BlockLayout::new((8, 8, 8), (2, 2, 2));
        let n1 = l.node_neighbors(0, 1);
        let n2 = l.node_neighbors(0, 2);
        let face1 = n1.iter().find(|&&(r, _)| r == 1).unwrap().1;
        let face2 = n2.iter().find(|&&(r, _)| r == 1).unwrap().1;
        assert_eq!(face1, 5 * 5);
        assert_eq!(face2, 9 * 9);
    }

    #[test]
    fn node_neighbor_relation_is_symmetric() {
        let l = BlockLayout::new((10, 12, 8), (2, 3, 2));
        for r in 0..l.num_parts() {
            for &(s, count) in &l.node_neighbors(r, 2) {
                let back = l.node_neighbors(s, 2);
                let found = back
                    .iter()
                    .find(|&&(t, _)| t == r)
                    .expect("symmetric neighbor");
                assert_eq!(found.1, count, "ranks {r} and {s} disagree on shared nodes");
            }
        }
    }

    #[test]
    fn corner_block_has_seven_neighbors() {
        let l = BlockLayout::new((4, 4, 4), (2, 2, 2));
        assert_eq!(l.node_neighbors(0, 1).len(), 7);
    }

    #[test]
    #[should_panic(expected = "more parts than cells")]
    fn too_many_parts_rejected() {
        BlockLayout::new((2, 2, 2), (3, 1, 1));
    }
}
