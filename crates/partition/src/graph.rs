//! The dual graph of a structured hex mesh, in CSR form.

use hetero_mesh::StructuredHexMesh;

/// Compressed sparse row adjacency of mesh cells under face adjacency
/// (the graph ParMETIS partitions).
#[derive(Debug, Clone)]
pub struct DualGraph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
}

impl DualGraph {
    /// Builds the face-adjacency dual graph of `mesh`.
    pub fn from_mesh(mesh: &StructuredHexMesh) -> Self {
        let dims = mesh.cell_dims();
        let n = mesh.num_cells();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::with_capacity(6 * n);
        xadj.push(0);
        for cell in mesh.cells() {
            for nb in cell.face_neighbors(dims) {
                adjncy.push(mesh.cell_id(nb));
            }
            xadj.push(adjncy.len());
        }
        DualGraph { xadj, adjncy }
    }

    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the CSR structure is inconsistent.
    pub fn from_csr(xadj: Vec<usize>, adjncy: Vec<usize>) -> Self {
        assert!(!xadj.is_empty() && xadj[0] == 0);
        assert_eq!(*xadj.last().unwrap(), adjncy.len());
        assert!(
            xadj.windows(2).all(|w| w[0] <= w[1]),
            "xadj must be non-decreasing"
        );
        let n = xadj.len() - 1;
        assert!(adjncy.iter().all(|&v| v < n), "neighbor id out of range");
        DualGraph { xadj, adjncy }
    }

    /// Number of vertices (cells).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of directed adjacency entries (2x the undirected edge count).
    #[inline]
    pub fn num_adjacency_entries(&self) -> usize {
        self.adjncy.len()
    }

    /// Neighbours of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Edge cut of an assignment: number of undirected edges whose endpoints
    /// lie in different parts.
    pub fn edge_cut(&self, assignment: &[usize]) -> usize {
        assert_eq!(assignment.len(), self.num_vertices());
        let mut cut = 0;
        for v in 0..self.num_vertices() {
            for &w in self.neighbors(v) {
                if w > v && assignment[w] != assignment[v] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Breadth-first order from `seed`, visiting only vertices for which
    /// `admit` returns true. Used by greedy growing and peripheral-vertex
    /// searches.
    pub fn bfs_order<F: FnMut(usize) -> bool>(&self, seed: usize, mut admit: F) -> Vec<usize> {
        let mut visited = vec![false; self.num_vertices()];
        let mut queue = std::collections::VecDeque::new();
        let mut order = Vec::new();
        if admit(seed) {
            visited[seed] = true;
            queue.push_back(seed);
        }
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in self.neighbors(v) {
                if !visited[w] && admit(w) {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_graph_of_2x2x2() {
        let mesh = StructuredHexMesh::unit_cube(2);
        let g = DualGraph::from_mesh(&mesh);
        assert_eq!(g.num_vertices(), 8);
        // Every cell of a 2^3 grid has exactly 3 face neighbours.
        for v in 0..8 {
            assert_eq!(g.degree(v), 3);
        }
        assert_eq!(g.num_adjacency_entries(), 24);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let g = DualGraph::from_mesh(&mesh);
        for v in 0..g.num_vertices() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v));
            }
        }
    }

    #[test]
    fn edge_cut_of_slabs() {
        let mesh = StructuredHexMesh::unit_cube(4);
        let g = DualGraph::from_mesh(&mesh);
        let asg: Vec<usize> = mesh.cells().map(|c| usize::from(c.i >= 2)).collect();
        assert_eq!(g.edge_cut(&asg), 16);
    }

    #[test]
    fn bfs_covers_connected_graph() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let g = DualGraph::from_mesh(&mesh);
        let order = g.bfs_order(0, |_| true);
        assert_eq!(order.len(), 27);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn bfs_respects_admit() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let g = DualGraph::from_mesh(&mesh);
        // Admit only the k = 0 layer (first 9 cells).
        let order = g.bfs_order(0, |v| v < 9);
        assert_eq!(order.len(), 9);
    }

    #[test]
    #[should_panic(expected = "xadj must be non-decreasing")]
    fn bad_csr_rejected() {
        DualGraph::from_csr(vec![0, 2, 1, 2], vec![1, 0]);
    }
}
