//! Greedy graph growing partitioner.

use crate::graph::DualGraph;
use crate::Partitioner;
use hetero_mesh::StructuredHexMesh;

/// Greedy graph growing: parts are grown one at a time by breadth-first
/// search from a peripheral seed among the unassigned cells, each part
/// stopping at its proportional share of the remaining cells.
///
/// This is the classic seed-growth heuristic used as the coarse phase of
/// multilevel partitioners; pair it with [`crate::refine::kl_refine`] for an
/// edge-cut competitive with the structured block layout on irregular
/// part counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPartitioner;

impl GreedyPartitioner {
    /// Partitions an explicit dual graph (`num_vertices` cells).
    pub fn partition_graph(&self, graph: &DualGraph, num_parts: usize) -> Vec<usize> {
        assert!(num_parts > 0);
        let n = graph.num_vertices();
        assert!(num_parts <= n, "more parts than vertices");
        let mut assignment = vec![usize::MAX; n];
        let mut remaining = n;
        for part in 0..num_parts {
            let target = remaining / (num_parts - part);
            // Seed: the lowest-id unassigned vertex; then walk a BFS from it
            // to a peripheral unassigned vertex to keep parts compact.
            let first = (0..n)
                .find(|&v| assignment[v] == usize::MAX)
                .expect("cells remain");
            let sweep = graph.bfs_order(first, |v| assignment[v] == usize::MAX);
            let seed = *sweep.last().unwrap_or(&first);
            let grow = graph.bfs_order(seed, |v| assignment[v] == usize::MAX);
            let take = target.min(grow.len()).max(1);
            for &v in &grow[..take] {
                assignment[v] = part;
            }
            remaining -= take;
            // BFS from one seed may not reach `target` vertices if the
            // unassigned region became disconnected; fill from further seeds.
            let mut filled = take;
            while filled < target {
                let Some(extra_seed) = (0..n).find(|&v| assignment[v] == usize::MAX) else {
                    break;
                };
                let grow = graph.bfs_order(extra_seed, |v| assignment[v] == usize::MAX);
                let take = (target - filled).min(grow.len());
                for &v in &grow[..take] {
                    assignment[v] = part;
                }
                filled += take;
                remaining -= take;
            }
        }
        // Any stragglers (possible when parts exhausted the budget early)
        // join their lowest-id assigned neighbour's part, or part 0.
        for v in 0..n {
            if assignment[v] == usize::MAX {
                let p = graph
                    .neighbors(v)
                    .iter()
                    .map(|&w| assignment[w])
                    .find(|&p| p != usize::MAX)
                    .unwrap_or(0);
                assignment[v] = p;
            }
        }
        assignment
    }
}

impl Partitioner for GreedyPartitioner {
    fn partition(&self, mesh: &StructuredHexMesh, num_parts: usize) -> Vec<usize> {
        self.partition_graph(&DualGraph::from_mesh(mesh), num_parts)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mesh::quality::load_imbalance;

    #[test]
    fn covers_all_cells_all_parts() {
        let mesh = StructuredHexMesh::unit_cube(4);
        for p in [2usize, 3, 5, 8] {
            let asg = GreedyPartitioner.partition(&mesh, p);
            assert!(asg.iter().all(|&a| a < p));
            for part in 0..p {
                assert!(asg.contains(&part), "part {part} empty for p = {p}");
            }
        }
    }

    #[test]
    fn balance_is_reasonable() {
        let mesh = StructuredHexMesh::unit_cube(6);
        for p in [2usize, 4, 8, 27] {
            let asg = GreedyPartitioner.partition(&mesh, p);
            assert!(load_imbalance(&asg, p) <= 1.35, "p = {p}");
        }
    }

    #[test]
    fn parts_are_mostly_connected() {
        // Grown parts should be compact: the edge cut must be within a small
        // factor of the ideal block cut.
        let mesh = StructuredHexMesh::unit_cube(8);
        let g = DualGraph::from_mesh(&mesh);
        let asg = GreedyPartitioner.partition(&mesh, 8);
        let ideal = hetero_mesh::quality::ideal_block_cut(8, 2);
        assert!(
            g.edge_cut(&asg) <= 3 * ideal,
            "cut {} vs ideal {ideal}",
            g.edge_cut(&asg)
        );
    }

    #[test]
    fn deterministic() {
        let mesh = StructuredHexMesh::unit_cube(5);
        assert_eq!(
            GreedyPartitioner.partition(&mesh, 7),
            GreedyPartitioner.partition(&mesh, 7)
        );
    }

    #[test]
    fn one_part_per_cell() {
        let mesh = StructuredHexMesh::unit_cube(2);
        let asg = GreedyPartitioner.partition(&mesh, 8);
        let mut sorted = asg.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }
}
