//! # hetero-partition
//!
//! Mesh partitioning for the `hetero-hpc` reproduction — the stand-in for
//! ParMETIS in the paper's software stack ("this splitting is achieved by
//! resorting to graph partitioning algorithms, such as those implemented in
//! the library ParMETIS, guaranteeing a proper load balancing among
//! processes. The load is measured as the number of mesh elements assigned to
//! each process.").
//!
//! Provided algorithms:
//!
//! * [`BlockPartitioner`] — structured `px x py x pz` block decomposition
//!   with closed-form layout queries ([`BlockLayout`]), the workhorse for the
//!   weak-scaling experiments (the paper's `k^3`-rank runs decompose the cube
//!   into `k^3` sub-cubes) and the only layout the modeled execution engine
//!   needs at 1000 ranks;
//! * [`RcbPartitioner`] — recursive coordinate bisection over cell centroids;
//! * [`GreedyPartitioner`] — greedy graph growing on the dual graph;
//! * [`refine::kl_refine`] — Kernighan–Lin/FM boundary refinement reducing
//!   edge cut under a balance constraint (the "multilevel refinement" role).
//!
//! Quality is measured with [`hetero_mesh::quality`] plus the dual-graph
//! metrics in [`metrics`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod graph;
pub mod greedy;
pub mod metrics;
pub mod rcb;
pub mod refine;

pub use block::{BlockLayout, BlockPartitioner};
pub use graph::DualGraph;
pub use greedy::GreedyPartitioner;
pub use rcb::RcbPartitioner;

use hetero_mesh::StructuredHexMesh;

/// A mesh partitioner: assigns every cell of `mesh` to one of `num_parts`
/// parts, returning the cell-to-part map in linear cell order.
pub trait Partitioner {
    /// Computes the assignment. Implementations must return a vector of
    /// length `mesh.num_cells()` with every entry `< num_parts`, and must be
    /// deterministic for a given input.
    fn partition(&self, mesh: &StructuredHexMesh, num_parts: usize) -> Vec<usize>;

    /// Human-readable algorithm name for reports.
    fn name(&self) -> &'static str;
}
