//! Partition quality summary used by reports and the experiment harness.

use crate::graph::DualGraph;
use hetero_mesh::quality::load_imbalance;
use hetero_mesh::StructuredHexMesh;

/// Quality summary of a cell-to-part assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub num_parts: usize,
    /// Edge cut of the dual graph.
    pub edge_cut: usize,
    /// `max_load / mean_load` (1.0 is perfect).
    pub imbalance: f64,
    /// Total communication volume: for each part, the number of its cells
    /// with at least one foreign face neighbour, summed over parts.
    pub comm_volume: usize,
    /// Maximum number of neighbouring parts any part has.
    pub max_neighbors: usize,
}

/// Computes the full quality summary for `assignment` on `mesh`.
pub fn assess(
    mesh: &StructuredHexMesh,
    assignment: &[usize],
    num_parts: usize,
) -> PartitionQuality {
    let graph = DualGraph::from_mesh(mesh);
    assess_graph(&graph, assignment, num_parts)
}

/// Computes the quality summary against an explicit dual graph.
pub fn assess_graph(graph: &DualGraph, assignment: &[usize], num_parts: usize) -> PartitionQuality {
    assert_eq!(assignment.len(), graph.num_vertices());
    let edge_cut = graph.edge_cut(assignment);
    let imbalance = load_imbalance(assignment, num_parts);

    let mut comm_volume = 0usize;
    let mut neighbor_sets: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); num_parts];
    for v in 0..graph.num_vertices() {
        let me = assignment[v];
        let mut boundary = false;
        for &w in graph.neighbors(v) {
            let other = assignment[w];
            if other != me {
                boundary = true;
                neighbor_sets[me].insert(other);
            }
        }
        if boundary {
            comm_volume += 1;
        }
    }
    let max_neighbors = neighbor_sets.iter().map(|s| s.len()).max().unwrap_or(0);

    PartitionQuality {
        num_parts,
        edge_cut,
        imbalance,
        comm_volume,
        max_neighbors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPartitioner, Partitioner};

    #[test]
    fn block_partition_quality() {
        let mesh = StructuredHexMesh::unit_cube(4);
        let asg = BlockPartitioner.partition(&mesh, 8);
        let q = assess(&mesh, &asg, 8);
        assert_eq!(q.imbalance, 1.0);
        assert_eq!(q.edge_cut, hetero_mesh::quality::ideal_block_cut(4, 2));
        // In a 2x2x2 block layout every part has 3 face neighbours.
        assert_eq!(q.max_neighbors, 3);
        // In each 2^3-cell block only the domain-corner cell has no foreign
        // face neighbour: 7 boundary cells per block, 8 blocks.
        assert_eq!(q.comm_volume, 56);
    }

    #[test]
    fn single_part_has_no_cut() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let q = assess(&mesh, &vec![0; 27], 1);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.comm_volume, 0);
        assert_eq!(q.max_neighbors, 0);
    }

    #[test]
    fn comm_volume_counts_boundary_cells_once() {
        let mesh = StructuredHexMesh::unit_cube(4);
        // Two slabs: each has a 16-cell boundary layer.
        let asg: Vec<usize> = mesh.cells().map(|c| usize::from(c.i >= 2)).collect();
        let q = assess(&mesh, &asg, 2);
        assert_eq!(q.comm_volume, 32);
        assert_eq!(q.max_neighbors, 1);
    }
}
