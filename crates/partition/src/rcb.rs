//! Recursive coordinate bisection (RCB).

use crate::Partitioner;
use hetero_mesh::{Point3, StructuredHexMesh};

/// Recursive coordinate bisection over cell centroids.
///
/// At each level the current cell set is split along the longest axis of its
/// centroid bounding box; the two halves receive `floor(p/2)` and `ceil(p/2)`
/// of the remaining parts and proportionally many cells. Fully deterministic:
/// ties in the coordinate sort are broken by cell id.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcbPartitioner;

fn bisect(
    centers: &[Point3],
    cells: &mut [usize],
    parts: std::ops::Range<usize>,
    assignment: &mut [usize],
) {
    let num_parts = parts.end - parts.start;
    if num_parts == 1 {
        for &c in cells.iter() {
            assignment[c] = parts.start;
        }
        return;
    }
    // Longest axis of the bounding box of the centroids.
    let mut lo = Point3::splat(f64::INFINITY);
    let mut hi = Point3::splat(f64::NEG_INFINITY);
    for &c in cells.iter() {
        lo = lo.min(centers[c]);
        hi = hi.max(centers[c]);
    }
    let ext = hi - lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };
    cells.sort_unstable_by(|&a, &b| {
        centers[a]
            .coord(axis)
            .partial_cmp(&centers[b].coord(axis))
            .unwrap()
            .then(a.cmp(&b))
    });
    let left_parts = num_parts / 2;
    // Proportional split: left half gets left_parts/num_parts of the cells.
    let split = cells.len() * left_parts / num_parts;
    let (left, right) = cells.split_at_mut(split);
    let mid = parts.start + left_parts;
    bisect(centers, left, parts.start..mid, assignment);
    bisect(centers, right, mid..parts.end, assignment);
}

impl Partitioner for RcbPartitioner {
    fn partition(&self, mesh: &StructuredHexMesh, num_parts: usize) -> Vec<usize> {
        assert!(num_parts > 0);
        assert!(num_parts <= mesh.num_cells(), "more parts than cells");
        let centers: Vec<Point3> = mesh.cells().map(|c| mesh.cell_center(c)).collect();
        let mut cells: Vec<usize> = (0..mesh.num_cells()).collect();
        let mut assignment = vec![usize::MAX; mesh.num_cells()];
        bisect(&centers, &mut cells, 0..num_parts, &mut assignment);
        debug_assert!(assignment.iter().all(|&p| p < num_parts));
        assignment
    }

    fn name(&self) -> &'static str {
        "rcb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mesh::quality::load_imbalance;

    #[test]
    fn covers_all_cells() {
        let mesh = StructuredHexMesh::unit_cube(4);
        let asg = RcbPartitioner.partition(&mesh, 5);
        assert_eq!(asg.len(), 64);
        assert!(asg.iter().all(|&p| p < 5));
        // Every part is non-empty.
        for p in 0..5 {
            assert!(asg.contains(&p), "part {p} empty");
        }
    }

    #[test]
    fn power_of_two_on_cube_is_blocky() {
        let mesh = StructuredHexMesh::unit_cube(4);
        let asg = RcbPartitioner.partition(&mesh, 8);
        assert_eq!(load_imbalance(&asg, 8), 1.0);
        // First bisection is along x (ties broken to x): cells with i < 2
        // all land in parts 0..4.
        for c in mesh.cells() {
            let p = asg[mesh.cell_id(c)];
            if c.i < 2 {
                assert!(p < 4, "cell {c:?} in part {p}");
            } else {
                assert!(p >= 4, "cell {c:?} in part {p}");
            }
        }
    }

    #[test]
    fn balance_for_awkward_part_counts() {
        let mesh = StructuredHexMesh::unit_cube(6); // 216 cells
        for p in [3usize, 5, 7, 9, 13] {
            let asg = RcbPartitioner.partition(&mesh, p);
            assert!(load_imbalance(&asg, p) < 1.2, "p = {p}");
        }
    }

    #[test]
    fn deterministic() {
        let mesh = StructuredHexMesh::unit_cube(5);
        let a = RcbPartitioner.partition(&mesh, 6);
        let b = RcbPartitioner.partition(&mesh, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_is_trivial() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let asg = RcbPartitioner.partition(&mesh, 1);
        assert!(asg.iter().all(|&p| p == 0));
    }
}
