//! Kernighan–Lin / Fiduccia–Mattheyses style boundary refinement.

use crate::graph::DualGraph;

/// Result of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Edge cut before refinement.
    pub cut_before: usize,
    /// Edge cut after refinement.
    pub cut_after: usize,
    /// Number of vertex moves applied.
    pub moves: usize,
    /// Number of passes executed.
    pub passes: usize,
}

/// Greedy KL/FM boundary refinement: repeatedly moves boundary vertices to an
/// adjacent part when the move strictly reduces the edge cut and keeps every
/// part's size within `max_imbalance` times the mean. Runs passes until a
/// pass makes no move or `max_passes` is reached.
///
/// The cut never increases, the assignment stays a valid `num_parts`
/// partition, and the procedure is deterministic.
pub fn kl_refine(
    graph: &DualGraph,
    assignment: &mut [usize],
    num_parts: usize,
    max_imbalance: f64,
    max_passes: usize,
) -> RefineStats {
    assert_eq!(assignment.len(), graph.num_vertices());
    assert!(num_parts > 0 && max_imbalance >= 1.0);
    let n = graph.num_vertices();
    let cut_before = graph.edge_cut(assignment);

    let mut sizes = vec![0usize; num_parts];
    for &p in assignment.iter() {
        sizes[p] += 1;
    }
    let max_size = ((n as f64 / num_parts as f64) * max_imbalance)
        .floor()
        .max(1.0) as usize;
    // A move must also not empty a part.
    let min_size = 1usize;

    let mut total_moves = 0;
    let mut passes = 0;
    let mut part_degree = vec![0usize; num_parts];
    for _ in 0..max_passes {
        passes += 1;
        let mut moved_this_pass = 0;
        for v in 0..n {
            let me = assignment[v];
            if sizes[me] <= min_size {
                continue;
            }
            // Count adjacency per part around v (sparse reset afterwards).
            let mut touched: Vec<usize> = Vec::with_capacity(6);
            for &w in graph.neighbors(v) {
                let p = assignment[w];
                if part_degree[p] == 0 {
                    touched.push(p);
                }
                part_degree[p] += 1;
            }
            // Gain of moving v from `me` to `p` is deg(p) - deg(me).
            let here = part_degree[me];
            let mut best: Option<(usize, usize)> = None; // (gain, part)
            for &p in &touched {
                if p == me || sizes[p] >= max_size {
                    continue;
                }
                if part_degree[p] > here {
                    let gain = part_degree[p] - here;
                    let better = match best {
                        None => true,
                        // Deterministic tie-break on lower part id.
                        Some((g, bp)) => gain > g || (gain == g && p < bp),
                    };
                    if better {
                        best = Some((gain, p));
                    }
                }
            }
            for &p in &touched {
                part_degree[p] = 0;
            }
            if let Some((_, p)) = best {
                assignment[v] = p;
                sizes[me] -= 1;
                sizes[p] += 1;
                moved_this_pass += 1;
            }
        }
        total_moves += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }

    RefineStats {
        cut_before,
        cut_after: graph.edge_cut(assignment),
        moves: total_moves,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPartitioner;
    use crate::Partitioner;
    use hetero_mesh::quality::load_imbalance;
    use hetero_mesh::StructuredHexMesh;

    #[test]
    fn refinement_never_increases_cut() {
        let mesh = StructuredHexMesh::unit_cube(6);
        let g = DualGraph::from_mesh(&mesh);
        for p in [2usize, 3, 5, 8] {
            let mut asg = GreedyPartitioner.partition(&mesh, p);
            let stats = kl_refine(&g, &mut asg, p, 1.1, 8);
            assert!(stats.cut_after <= stats.cut_before, "p = {p}");
        }
    }

    #[test]
    fn refinement_fixes_a_bad_partition() {
        // Round-robin assignment has a terrible cut; refinement must improve
        // it a lot while keeping balance.
        let mesh = StructuredHexMesh::unit_cube(6);
        let g = DualGraph::from_mesh(&mesh);
        let mut asg: Vec<usize> = (0..mesh.num_cells()).map(|c| c % 4).collect();
        let stats = kl_refine(&g, &mut asg, 4, 1.2, 20);
        assert!(
            (stats.cut_after as f64) < 0.65 * stats.cut_before as f64,
            "cut {} -> {}",
            stats.cut_before,
            stats.cut_after
        );
        assert!(load_imbalance(&asg, 4) <= 1.2 + 1e-9);
    }

    #[test]
    fn balance_constraint_respected() {
        let mesh = StructuredHexMesh::unit_cube(4);
        let g = DualGraph::from_mesh(&mesh);
        let mut asg: Vec<usize> = (0..mesh.num_cells()).map(|c| c % 2).collect();
        kl_refine(&g, &mut asg, 2, 1.05, 10);
        assert!(load_imbalance(&asg, 2) <= 1.05 + 1e-9);
    }

    #[test]
    fn no_part_is_emptied() {
        let mesh = StructuredHexMesh::unit_cube(3);
        let g = DualGraph::from_mesh(&mesh);
        // Part 1 holds a single cell surrounded by part 0: a naive refiner
        // would absorb it; ours must keep >= 1 cell per part.
        let mut asg = vec![0usize; mesh.num_cells()];
        asg[13] = 1; // center cell
        kl_refine(&g, &mut asg, 2, 100.0, 10);
        assert!(asg.contains(&1));
    }

    #[test]
    fn refined_block_partition_is_stable() {
        // An already-optimal block partition should not change.
        let mesh = StructuredHexMesh::unit_cube(4);
        let g = DualGraph::from_mesh(&mesh);
        let mut asg = crate::BlockPartitioner.partition(&mesh, 8);
        let before = asg.clone();
        let stats = kl_refine(&g, &mut asg, 8, 1.0, 5);
        assert_eq!(stats.moves, 0);
        assert_eq!(asg, before);
    }

    #[test]
    fn deterministic() {
        let mesh = StructuredHexMesh::unit_cube(5);
        let g = DualGraph::from_mesh(&mesh);
        let mut a: Vec<usize> = (0..mesh.num_cells()).map(|c| c % 3).collect();
        let mut b = a.clone();
        kl_refine(&g, &mut a, 3, 1.1, 6);
        kl_refine(&g, &mut b, 3, 1.1, 6);
        assert_eq!(a, b);
    }
}
