//! Property-based tests of the partitioners' contracts.

use hetero_mesh::quality::load_imbalance;
use hetero_mesh::StructuredHexMesh;
use hetero_partition::block::near_cubic_factors;
use hetero_partition::refine::kl_refine;
use hetero_partition::{
    BlockLayout, BlockPartitioner, DualGraph, GreedyPartitioner, Partitioner, RcbPartitioner,
};
use proptest::prelude::*;

fn mesh_and_parts() -> impl Strategy<Value = (usize, usize)> {
    (2usize..6, 1usize..9).prop_filter("parts <= cells", |(n, p)| *p <= n * n * n)
}

fn check_valid(assignment: &[usize], num_cells: usize, parts: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(assignment.len(), num_cells);
    prop_assert!(assignment.iter().all(|&p| p < parts));
    for part in 0..parts {
        prop_assert!(assignment.contains(&part), "part {part} empty");
    }
    Ok(())
}

proptest! {
    #[test]
    fn near_cubic_factors_multiply_back((_, p) in mesh_and_parts()) {
        let (a, b, c) = near_cubic_factors(p);
        prop_assert_eq!(a * b * c, p);
        prop_assert!(a <= b && b <= c);
    }

    #[test]
    fn every_partitioner_is_valid_and_bounded((n, p) in mesh_and_parts()) {
        let mesh = StructuredHexMesh::unit_cube(n);
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(BlockPartitioner),
            Box::new(RcbPartitioner),
            Box::new(GreedyPartitioner),
        ];
        for part in partitioners {
            // Block layouts need the part grid to fit the cell grid.
            if part.name() == "block" {
                let f = near_cubic_factors(p);
                if f.2 > n {
                    continue;
                }
            }
            let asg = part.partition(&mesh, p);
            check_valid(&asg, mesh.num_cells(), p)?;
            let imb = load_imbalance(&asg, p);
            prop_assert!(imb <= 2.5, "{}: imbalance {imb}", part.name());
        }
    }

    #[test]
    fn partitioners_are_deterministic((n, p) in mesh_and_parts()) {
        let mesh = StructuredHexMesh::unit_cube(n);
        let a = RcbPartitioner.partition(&mesh, p);
        let b = RcbPartitioner.partition(&mesh, p);
        prop_assert_eq!(a, b);
        let a = GreedyPartitioner.partition(&mesh, p);
        let b = GreedyPartitioner.partition(&mesh, p);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn kl_refine_never_worsens_cut_or_validity(
        (n, p) in mesh_and_parts(),
        salt in 0usize..50,
        max_imb in 1usize..4,
    ) {
        let mesh = StructuredHexMesh::unit_cube(n);
        let g = DualGraph::from_mesh(&mesh);
        // Arbitrary (often bad) starting assignment covering all parts.
        let mut asg: Vec<usize> =
            (0..mesh.num_cells()).map(|c| (c * 7 + salt) % p).collect();
        for (part, slot) in asg.iter_mut().enumerate().take(p) {
            *slot = part; // guarantee non-empty parts
        }
        let before_cut = g.edge_cut(&asg);
        let tol = 1.0 + max_imb as f64 * 0.25;
        let stats = kl_refine(&g, &mut asg, p, tol, 6);
        prop_assert!(stats.cut_after <= before_cut);
        prop_assert_eq!(stats.cut_after, g.edge_cut(&asg));
        check_valid(&asg, mesh.num_cells(), p)?;
    }

    #[test]
    fn block_layout_covers_and_balances(
        nx in 2usize..8, ny in 2usize..8, nz in 2usize..8,
        px in 1usize..4, py in 1usize..4, pz in 1usize..4,
    ) {
        prop_assume!(px <= nx && py <= ny && pz <= nz);
        let layout = BlockLayout::new((nx, ny, nz), (px, py, pz));
        let total: usize = (0..layout.num_parts()).map(|r| layout.cells_in_rank(r)).sum();
        prop_assert_eq!(total, nx * ny * nz);
        // Chunked splitting keeps per-axis extents within 1 of each other.
        for r in 0..layout.num_parts() {
            let (a, b, c) = layout.block_extent(r);
            prop_assert!(a >= nx / px && a <= nx.div_ceil(px));
            prop_assert!(b >= ny / py && b <= ny.div_ceil(py));
            prop_assert!(c >= nz / pz && c <= nz.div_ceil(pz));
        }
    }

    #[test]
    fn block_layout_assignment_matches_queries(
        n in 2usize..7,
        p in 1usize..9,
    ) {
        let f = near_cubic_factors(p);
        prop_assume!(f.2 <= n);
        let mesh = StructuredHexMesh::unit_cube(n);
        let layout = BlockLayout::for_mesh(&mesh, p);
        let asg = layout.assignment();
        for cell in mesh.cells() {
            prop_assert_eq!(asg[mesh.cell_id(cell)], layout.rank_of_cell(cell));
        }
    }

    #[test]
    fn block_neighbors_are_mutual_with_equal_interfaces(
        n in 2usize..7,
        p in 2usize..9,
        q in 1usize..3,
    ) {
        let f = near_cubic_factors(p);
        prop_assume!(f.2 <= n);
        let layout = BlockLayout::new((n, n, n), f);
        for r in 0..layout.num_parts() {
            for &(s, count) in &layout.node_neighbors(r, q) {
                let back = layout.node_neighbors(s, q);
                let found = back.iter().find(|&&(t, _)| t == r);
                prop_assert!(found.is_some(), "asymmetric neighbors {r} {s}");
                prop_assert_eq!(found.unwrap().1, count);
            }
        }
    }
}
