//! Lints campaign plans: parse + schema-extract (unknown keys denied) +
//! resolve (references, cycles, sweep expansion) every file named on the
//! command line, or every `*.toml` under `plans/` when none is named.
//!
//! ```text
//! cargo run --release -p hetero-plan --example plan_lint
//! cargo run --release -p hetero-plan --example plan_lint -- plans/fig4.toml
//! ```
//!
//! Exits non-zero on the first invalid plan, printing
//! `file: line L, column C: message`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if files.is_empty() {
        let dir = PathBuf::from("plans");
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("plan_lint: cannot read {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|s| s.to_str()) == Some("toml") {
                files.push(path);
            }
        }
        files.sort();
        if files.is_empty() {
            eprintln!("plan_lint: no *.toml files under {}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    for file in &files {
        let doc = match std::fs::read_to_string(file) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                failed = true;
                continue;
            }
        };
        match hetero_plan::load_str(&doc) {
            Ok(rp) => {
                let stages = rp.plan.stages.len();
                println!(
                    "{}: ok — plan `{}`, {stages} stages, {} instances",
                    file.display(),
                    rp.plan.name,
                    rp.instances.len()
                );
            }
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
