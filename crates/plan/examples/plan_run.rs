//! Executes a campaign plan and prints its rendered reports to stdout —
//! the EXPERIMENTS.md tables regenerate from here.
//!
//! ```text
//! cargo run --release -p hetero-plan --example plan_run -- plans/fig4.toml
//! cargo run --release -p hetero-plan --example plan_run -- plans/table3_smoke.toml \
//!     --cache-dir target/plan-cache --check-experiments EXPERIMENTS.md
//! ```
//!
//! Stdout carries exactly the concatenated report texts (byte-identical to
//! the legacy `core::scenarios` renderers, pinned by test); progress and
//! cache statistics go to stderr. With `--check-experiments FILE`, every
//! report must appear verbatim inside FILE or the run exits non-zero —
//! the CI drift gate for checked-in plan output.

use hetero_plan::exec::{execute_plan, ExecOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut plan_file: Option<PathBuf> = None;
    let mut opts = ExecOptions::default();
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => match args.next() {
                Some(d) => opts.cache_dir = Some(PathBuf::from(d)),
                None => return usage("--cache-dir needs a directory"),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(w) => opts.workers = w,
                None => return usage("--workers needs a number"),
            },
            "--check-experiments" => match args.next() {
                Some(f) => check = Some(PathBuf::from(f)),
                None => return usage("--check-experiments needs a file"),
            },
            _ if plan_file.is_none() => plan_file = Some(PathBuf::from(arg)),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(plan_file) = plan_file else {
        return usage("no plan file named");
    };

    let doc = match std::fs::read_to_string(&plan_file) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("plan_run: {}: {e}", plan_file.display());
            return ExitCode::FAILURE;
        }
    };
    let rp = match hetero_plan::load_str(&doc) {
        Ok(rp) => rp,
        Err(e) => {
            eprintln!("plan_run: {}: {e}", plan_file.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "plan_run: `{}` — {} stages, {} instances",
        rp.plan.name,
        rp.plan.stages.len(),
        rp.instances.len()
    );

    let out = match execute_plan(&rp, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("plan_run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cached = out.results.iter().filter(|r| r.cached).count();
    eprintln!(
        "plan_run: {} instances executed, {cached} served from cache",
        out.results.len()
    );
    let (builds, hits, ff_hits) = hetero_hpc::prep::cache_stats();
    eprintln!(
        "plan_run: prepared-scenario cache — {builds} builds, {hits} hits, {ff_hits} profile hits"
    );

    for (_, text) in &out.reports {
        print!("{text}");
    }

    if let Some(check) = check {
        let experiments = match std::fs::read_to_string(&check) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("plan_run: {}: {e}", check.display());
                return ExitCode::FAILURE;
            }
        };
        for (name, text) in &out.reports {
            if !experiments.contains(text.as_str()) {
                eprintln!(
                    "plan_run: report `{name}` of plan `{}` drifted from {} — \
                     regenerate the section with this command and commit it",
                    rp.plan.name,
                    check.display()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "plan_run: report `{name}` matches {} byte-for-byte",
                check.display()
            );
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("plan_run: {msg}");
    eprintln!(
        "usage: plan_run <plan.toml> [--cache-dir DIR] [--workers N] [--check-experiments FILE]"
    );
    ExitCode::FAILURE
}
