//! The plan executor: runs a resolved DAG with maximum parallelism and
//! per-stage artifact caching.
//!
//! Workers pull the *smallest ready instance index* from a shared queue, so
//! every artifact — and every rendered report — is a pure function of the
//! plan, independent of worker count or completion order. Run stages go
//! through the same [`hetero_hpc::execute`]/[`hetero_hpc::execute_resilient`]
//! paths as the legacy
//! `core::scenarios` sweeps; the pinning tests hold the two byte-identical.
//!
//! Artifacts are cached under a content-addressed key derived from the
//! existing `core::canon` machinery: each run instance's key hashes the
//! [canonical request text](hetero_hpc::canon::canonical_request) under the
//! versioned [`STAGE_SCHEMA`] tag, and report/compare keys hash their
//! template plus their dependencies' keys — so a cached report is valid
//! exactly when every transitive input is unchanged. Cache entries that
//! fail to parse or carry a stale schema/key are quarantined by
//! re-execution (and overwritten), never trusted and never fatal.

use crate::resolver::ResolvedPlan;
use crate::schema::{
    parse_backend, parse_variant, AppKind, Axis, CompareTemplate, Coord, PolicyKind,
    ReportTemplate, StageDef, StageKind,
};
use hetero_fault::ResiliencePolicy;
use hetero_hpc::canon::{canonical_request, sha256_hex};
use hetero_hpc::prep::{scenario_for, PreparedScenario};
use hetero_hpc::recovery::{execute_resilient_with_prep, ResilienceSpec};
use hetero_hpc::report::{render_solver_variants, render_table3, render_weak_scaling};
use hetero_hpc::run::{execute_with_prep, RunOutcome, RunRequest};
use hetero_hpc::scenarios::{
    uncapped_cell, Cell, SolverVariantRow, Table3Cell, Table3Row, WeakScalingRow, WeakScalingTable,
};
use hetero_hpc::App;
use hetero_partition::block::near_cubic_factors;
use hetero_platform::catalog;
use hetero_platform::limits::LimitViolation;
use hetero_simmpi::EngineKind;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// Version tag of the stage-artifact key schema and cache envelope. Bump it
/// to retire a cache generation explicitly (see `core::canon`'s argument:
/// a stale key must miss, never alias).
pub const STAGE_SCHEMA: &str = "hetero-plan/stage/v1";

/// An execution failure, attributed to a stage instance.
#[derive(Debug, Clone)]
pub struct ExecError {
    /// Display id of the failing instance.
    pub instance: String,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage `{}`: {}", self.instance, self.msg)
    }
}

impl std::error::Error for ExecError {}

fn fail<T>(instance: &str, msg: impl Into<String>) -> Result<T, ExecError> {
    Err(ExecError {
        instance: instance.to_string(),
        msg: msg.into(),
    })
}

/// Executor knobs.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker threads (`0` = auto-size from host parallelism).
    pub workers: usize,
    /// Artifact cache directory; `None` executes everything in memory.
    pub cache_dir: Option<PathBuf>,
}

/// One executed (or cache-served) stage instance.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Display id of the instance.
    pub id: String,
    /// Content-addressed key, `hetero-plan/stage/v1/<sha256>`.
    pub key: String,
    /// Whether the artifact was served from the cache.
    pub cached: bool,
    /// The artifact.
    pub artifact: Value,
}

/// What a plan run produced.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Per-instance results, indexed like `ResolvedPlan::instances`.
    pub results: Vec<StageResult>,
    /// Rendered report texts, `(stage name, text)`, in declaration order.
    pub reports: Vec<(String, String)>,
}

/// Executes a resolved plan.
///
/// # Errors
/// The first failing instance (a compare mismatch, an infeasible campaign,
/// a malformed stage wiring, or a cache-write I/O failure).
pub fn execute_plan(rp: &ResolvedPlan, opts: &ExecOptions) -> Result<PlanOutcome, ExecError> {
    let keys = instance_keys(rp)?;
    let preps = prep_scenarios(rp);
    if let Some(dir) = &opts.cache_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(
                "<cache>",
                format!("cannot create cache dir {}: {e}", dir.display()),
            );
        }
    }

    let n = rp.instances.len();
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, inst) in rp.instances.iter().enumerate() {
        for &d in &inst.deps {
            rdeps[d].push(i);
        }
    }

    struct State {
        ready: BinaryHeap<Reverse<usize>>,
        remaining: Vec<usize>,
        results: Vec<Option<Arc<StageResult>>>,
        pending: usize,
        error: Option<ExecError>,
    }
    let state = Mutex::new(State {
        ready: rp
            .instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.deps.is_empty())
            .map(|(i, _)| Reverse(i))
            .collect(),
        remaining: rp.instances.iter().map(|inst| inst.deps.len()).collect(),
        results: vec![None; n],
        pending: n,
        error: None,
    });
    let cv = Condvar::new();

    let workers = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
    } else {
        opts.workers
    }
    .max(1);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Claim the smallest ready instance and snapshot its deps.
                let (idx, deps) = {
                    let mut st = state.lock().expect("executor state poisoned");
                    let idx = loop {
                        if st.error.is_some() || st.pending == 0 {
                            return;
                        }
                        match st.ready.pop() {
                            Some(Reverse(i)) => break i,
                            None => st = cv.wait(st).expect("executor state poisoned"),
                        }
                    };
                    let deps: Vec<(usize, Arc<StageResult>)> = rp.instances[idx]
                        .deps
                        .iter()
                        .map(|&d| (d, st.results[d].clone().expect("dep scheduled first")))
                        .collect();
                    (idx, deps)
                };

                let out = run_instance(rp, idx, &keys[idx], &deps, opts, preps[idx].as_ref());

                let mut st = state.lock().expect("executor state poisoned");
                match out {
                    Ok(rs) => {
                        st.results[idx] = Some(Arc::new(rs));
                        st.pending -= 1;
                        for &c in &rdeps[idx] {
                            st.remaining[c] -= 1;
                            if st.remaining[c] == 0 {
                                st.ready.push(Reverse(c));
                            }
                        }
                        cv.notify_all();
                    }
                    Err(e) => {
                        st.error.get_or_insert(e);
                        cv.notify_all();
                        return;
                    }
                }
            });
        }
    });

    let st = state.into_inner().expect("executor state poisoned");
    if let Some(e) = st.error {
        return Err(e);
    }
    let results: Vec<StageResult> = st
        .results
        .into_iter()
        .map(|r| (*r.expect("all pending drained")).clone())
        .collect();

    let mut reports = Vec::new();
    for (si, stage) in rp.plan.stages.iter().enumerate() {
        if stage.kind != StageKind::Report {
            continue;
        }
        for (i, inst) in rp.instances.iter().enumerate() {
            if inst.stage != si {
                continue;
            }
            match results[i].artifact.get("text").and_then(|t| t.as_str()) {
                Some(text) => reports.push((stage.name.clone(), text.to_string())),
                None => return fail(&inst.id, "report artifact carries no text"),
            }
        }
    }
    Ok(PlanOutcome { results, reports })
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Content-addressed keys for every instance, computed *before* execution
/// from the plan alone (report/compare keys fold in their dependencies'
/// keys, in instance order).
pub fn instance_keys(rp: &ResolvedPlan) -> Result<Vec<String>, ExecError> {
    let mut keys: Vec<Option<String>> = vec![None; rp.instances.len()];
    for &i in &rp.topo {
        let inst = &rp.instances[i];
        let stage = &rp.plan.stages[inst.stage];
        let input = match stage.kind {
            StageKind::Partition => {
                let ranks = coord_int(rp, i, Axis::Ranks)?;
                format!("{STAGE_SCHEMA};kind=partition;ranks=i:{ranks};")
            }
            StageKind::Run => {
                let setup = run_setup(rp, i)?;
                let kind = match setup.mode {
                    RunMode::Plain => "run",
                    RunMode::Uncapped => "uncapped",
                    RunMode::Campaign { .. } => "campaign",
                };
                let extra = match setup.mode {
                    RunMode::Campaign { seeds, .. } => format!("seeds=i:{seeds};"),
                    _ => String::new(),
                };
                format!(
                    "{STAGE_SCHEMA};kind={kind};{extra}{}",
                    canonical_request(&setup.req)
                )
            }
            StageKind::Report | StageKind::Compare => {
                let kind = if stage.kind == StageKind::Report {
                    "report"
                } else {
                    "compare"
                };
                let template = match (stage.report, stage.compare) {
                    (Some(ReportTemplate::WeakScaling), _) => "weak-scaling",
                    (Some(ReportTemplate::Table3), _) => "table3",
                    (Some(ReportTemplate::SolverVariants), _) => "solver-variants",
                    (_, Some(CompareTemplate::MaxFeasibleRanks)) => "max-feasible-ranks",
                    (_, Some(CompareTemplate::SpotUndercutsOnDemand)) => "spot-undercuts-on-demand",
                    _ => return fail(&inst.id, "report/compare stage without a template"),
                };
                let mut input = format!("{STAGE_SCHEMA};kind={kind};template=e:{template};");
                for (name, v) in &stage.expect {
                    input.push_str(&format!("expect.{name}=i:{v};"));
                }
                if let Some(m) = stage.max_ranks {
                    input.push_str(&format!("max_ranks=i:{m};"));
                }
                input.push_str("deps=[");
                for &d in &inst.deps {
                    input.push_str(keys[d].as_deref().expect("topo order"));
                    input.push(',');
                }
                input.push_str("];");
                input
            }
        };
        keys[i] = Some(format!("{STAGE_SCHEMA}/{}", sha256_hex(input.as_bytes())));
    }
    Ok(keys.into_iter().map(|k| k.expect("all visited")).collect())
}

// ---------------------------------------------------------------------------
// Prepared-scenario resolution
// ---------------------------------------------------------------------------

/// Resolves every run instance's prepared scenario *before* the workers
/// start: instances whose requests share a `hetero-prep/key/v1` sub-key get
/// the same pinned [`PreparedScenario`], so one preparation (and one
/// failure-free profile per memo key) serves the whole sweep regardless of
/// worker count or completion order. Pinning the `Arc`s here also keeps a
/// wide sweep immune to the process-wide LRU's bound. Returns all-`None`
/// when sharing is disabled (`HETERO_PREP_SHARE=0`) — reports are
/// byte-identical either way; only the setup work repeats.
fn prep_scenarios(rp: &ResolvedPlan) -> Vec<Option<Arc<PreparedScenario>>> {
    let mut by_key: HashMap<String, Arc<PreparedScenario>> = HashMap::new();
    rp.instances
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let stage = &rp.plan.stages[inst.stage];
            if stage.kind != StageKind::Run || stage.uncapped {
                return None;
            }
            let setup = run_setup(rp, i).ok()?;
            let scen = scenario_for(&setup.req)?;
            Some(by_key.entry(scen.key().to_string()).or_insert(scen).clone())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Request construction
// ---------------------------------------------------------------------------

enum RunMode {
    /// Plain `execute` through the platform's real limits.
    Plain,
    /// What-if uniform-topology cell via the modeled engine.
    Uncapped,
    /// Seed-averaged fault campaign via `execute_resilient`.
    Campaign { spec: ResilienceSpec, seeds: usize },
}

struct RunSetup {
    req: RunRequest,
    mode: RunMode,
}

fn coord_int(rp: &ResolvedPlan, i: usize, axis: Axis) -> Result<u64, ExecError> {
    let inst = &rp.instances[i];
    match inst.coord(axis) {
        Some(Coord::Int(v)) => Ok(*v),
        _ => fail(&inst.id, format!("needs an integer `{}` axis", axis.key())),
    }
}

fn coord_str(rp: &ResolvedPlan, i: usize, axis: Axis) -> Result<&str, ExecError> {
    let inst = &rp.instances[i];
    match inst.coord(axis) {
        Some(Coord::Str(s)) => Ok(s),
        _ => fail(&inst.id, format!("needs a `{}` axis", axis.key())),
    }
}

/// Builds the run request (and mode) of a run instance — the single place
/// that maps plan coordinates onto the `core::run` request the legacy
/// scenario sweeps build, field for field.
fn run_setup(rp: &ResolvedPlan, i: usize) -> Result<RunSetup, ExecError> {
    let inst = &rp.instances[i];
    let stage = &rp.plan.stages[inst.stage];
    let opts = &rp.plan.options;
    let ranks = coord_int(rp, i, Axis::Ranks)? as usize;
    let platform = catalog::by_key(coord_str(rp, i, Axis::Platform)?)
        .expect("platform keys are validated at extraction");
    let mut app = match stage.app {
        Some(AppKind::Rd) => App::paper_rd(opts.steps),
        Some(AppKind::Ns) => App::paper_ns(opts.steps),
        None => return fail(&inst.id, "run stage without an `app`"),
    };

    let variant = match inst.coord(Axis::Variant) {
        Some(Coord::Str(s)) => Some(parse_variant(s).expect("validated at extraction")),
        _ => None,
    };
    let backend = match inst.coord(Axis::Backend) {
        Some(Coord::Str(s)) => Some(parse_backend(s).expect("validated at extraction")),
        _ => None,
    };

    let mode = if stage.uncapped {
        // The what-if path folds the overrides into the app config itself
        // (it drives the modeled engine directly, not `execute`).
        if let Some(v) = variant {
            app = app.with_solver_variant(v);
        }
        if let Some(b) = backend {
            app = app.with_kernel_backend(b);
        }
        RunMode::Uncapped
    } else if let Some(policy) = stage.policy {
        let res = rp
            .plan
            .resilience
            .as_ref()
            .expect("policy implies [resilience] at extraction");
        let spec = match policy {
            PolicyKind::OnDemand => ResilienceSpec {
                policy: ResiliencePolicy::restart(0, res.max_restarts),
                ..ResilienceSpec::on_demand(&platform)
            },
            PolicyKind::SpotWithRestart => {
                let cadence = coord_int(rp, i, Axis::Cadence)? as usize;
                ResilienceSpec::spot_with_restart(&platform, res.max_bid, cadence, res.max_restarts)
            }
        };
        RunMode::Campaign {
            spec,
            seeds: res.seeds,
        }
    } else {
        RunMode::Plain
    };

    let uncapped = matches!(mode, RunMode::Uncapped);
    let req = RunRequest {
        platform: platform.clone(),
        app,
        ranks,
        per_rank_axis: opts.per_rank_axis,
        seed: opts.seed,
        discard: opts.discard,
        threads_per_rank: 1,
        engine: EngineKind::default(),
        sched_workers: 0,
        fidelity: opts.fidelity,
        solver_variant: if uncapped { None } else { variant },
        kernel_backend: if uncapped { None } else { backend },
        topology_override: None,
        cost_override: None,
        resilience: match &mode {
            RunMode::Campaign { spec, .. } => Some(spec.clone()),
            _ => None,
        },
        trace: None,
    };
    Ok(RunSetup { req, mode })
}

// ---------------------------------------------------------------------------
// Instance execution + cache
// ---------------------------------------------------------------------------

fn run_instance(
    rp: &ResolvedPlan,
    i: usize,
    key: &str,
    deps: &[(usize, Arc<StageResult>)],
    opts: &ExecOptions,
    prep: Option<&Arc<PreparedScenario>>,
) -> Result<StageResult, ExecError> {
    let id = rp.instances[i].id.clone();
    if let Some(dir) = &opts.cache_dir {
        if let Some(artifact) = load_cached(dir, key) {
            return Ok(StageResult {
                id,
                key: key.to_string(),
                cached: true,
                artifact,
            });
        }
    }
    let artifact = compute_artifact(rp, i, deps, prep)?;
    if let Some(dir) = &opts.cache_dir {
        store_cached(dir, key, &id, &artifact, i)?;
    }
    Ok(StageResult {
        id,
        key: key.to_string(),
        cached: false,
        artifact,
    })
}

fn cache_path(dir: &Path, key: &str) -> PathBuf {
    let hash = key.rsplit('/').next().expect("key has a hash suffix");
    dir.join(format!("{hash}.json"))
}

/// Loads an artifact if — and only if — the envelope parses and matches
/// the schema and key. Anything else is a miss: the entry is quarantined
/// by re-execution and overwritten, never trusted and never fatal.
fn load_cached(dir: &Path, key: &str) -> Option<Value> {
    let text = std::fs::read_to_string(cache_path(dir, key)).ok()?;
    let envelope: Value = serde_json::from_str(&text).ok()?;
    if envelope.get("schema").and_then(|v| v.as_str()) != Some(STAGE_SCHEMA) {
        return None;
    }
    if envelope.get("key").and_then(|v| v.as_str()) != Some(key) {
        return None;
    }
    envelope.get("artifact").cloned()
}

fn store_cached(
    dir: &Path,
    key: &str,
    id: &str,
    artifact: &Value,
    i: usize,
) -> Result<(), ExecError> {
    let envelope = json!({
        "schema": STAGE_SCHEMA,
        "key": key,
        "id": id,
        "artifact": artifact.clone(),
    });
    let text = match serde_json::to_string_pretty(&envelope) {
        Ok(t) => t,
        Err(e) => return fail(id, format!("artifact serialization failed: {e}")),
    };
    // Atomic publish: a concurrent reader sees the old entry or the new
    // one, never a torn write. The temp name is per-instance, so two
    // workers never collide.
    let tmp = dir.join(format!(
        ".tmp-{i}-{}",
        cache_path(dir, key)
            .file_name()
            .and_then(|n| n.to_str())
            .expect("hash file name")
    ));
    let path = cache_path(dir, key);
    if let Err(e) = std::fs::write(&tmp, text) {
        return fail(id, format!("cache write failed: {e}"));
    }
    if let Err(e) = std::fs::rename(&tmp, &path) {
        return fail(id, format!("cache publish failed: {e}"));
    }
    Ok(())
}

fn compute_artifact(
    rp: &ResolvedPlan,
    i: usize,
    deps: &[(usize, Arc<StageResult>)],
    prep: Option<&Arc<PreparedScenario>>,
) -> Result<Value, ExecError> {
    let inst = &rp.instances[i];
    let stage = &rp.plan.stages[inst.stage];
    match stage.kind {
        StageKind::Partition => {
            let ranks = coord_int(rp, i, Axis::Ranks)? as usize;
            let f = near_cubic_factors(ranks);
            if f.0 * f.1 * f.2 != ranks {
                return fail(
                    &inst.id,
                    format!("{ranks} ranks do not factor near-cubically"),
                );
            }
            Ok(json!({ "ranks": ranks, "factors": [f.0, f.1, f.2] }))
        }
        StageKind::Run => {
            let setup = run_setup(rp, i)?;
            match setup.mode {
                RunMode::Plain => Ok(match execute_with_prep(&setup.req, prep.cloned()) {
                    Ok(out) => json!({ "ok": value_of(&inst.id, &out)? }),
                    Err(e) => json!({ "infeasible": value_of(&inst.id, &e)? }),
                }),
                RunMode::Uncapped => {
                    let phases = uncapped_cell(
                        &setup.req.platform,
                        &setup.req.app,
                        setup.req.ranks,
                        &rp.plan.options.scenario(),
                    );
                    Ok(json!({ "phases": value_of(&inst.id, &phases)? }))
                }
                RunMode::Campaign { spec, seeds } => {
                    // The seed-averaged campaign cell, accumulated in the
                    // exact field order of `core::scenarios`' private
                    // `resilience_cell` — the pinning tests hold the f64
                    // streams byte-identical.
                    let mut cell = Table3Cell::default();
                    for s in 0..seeds {
                        let req = RunRequest {
                            seed: setup.req.seed.wrapping_add(s as u64 * 7919),
                            resilience: Some(spec.clone()),
                            ..setup.req.clone()
                        };
                        let out = match execute_resilient_with_prep(&req, prep.cloned()) {
                            Ok(out) => out,
                            Err(e) => return fail(&inst.id, format!("campaign infeasible: {e}")),
                        };
                        cell.expected_seconds += out.stats.total_seconds;
                        cell.expected_dollars += out.stats.total_dollars;
                        cell.completion_rate += f64::from(out.stats.completed);
                        cell.mean_attempts += out.stats.attempts as f64;
                        cell.mean_lost_work += out.stats.lost_work_seconds;
                        cell.mean_checkpoint_seconds += out.stats.checkpoint_seconds;
                    }
                    let n = seeds.max(1) as f64;
                    cell.expected_seconds /= n;
                    cell.expected_dollars /= n;
                    cell.completion_rate /= n;
                    cell.mean_attempts /= n;
                    cell.mean_lost_work /= n;
                    cell.mean_checkpoint_seconds /= n;
                    Ok(json!({ "cell": value_of(&inst.id, &cell)? }))
                }
            }
        }
        StageKind::Report => match stage.report.expect("validated at extraction") {
            ReportTemplate::WeakScaling => {
                let table = weak_scaling_table(rp, i, deps)?;
                Ok(json!({ "text": render_weak_scaling(&table) }))
            }
            ReportTemplate::Table3 => {
                let rows = table3_rows(rp, i, deps)?;
                Ok(json!({ "text": render_table3(&rows) }))
            }
            ReportTemplate::SolverVariants => {
                let rows = solver_variant_rows(rp, i, deps)?;
                Ok(json!({ "text": render_solver_variants(&rows) }))
            }
        },
        StageKind::Compare => match stage.compare.expect("validated at extraction") {
            CompareTemplate::MaxFeasibleRanks => {
                let table = weak_scaling_table(rp, i, deps)?;
                let mut checked = Vec::new();
                for (platform, expected) in &stage.expect {
                    let got = table.max_feasible_ranks(platform) as u64;
                    if got != *expected {
                        return fail(
                            &inst.id,
                            format!(
                                "max feasible ranks on {platform}: expected {expected}, got {got}"
                            ),
                        );
                    }
                    checked.push(json!({ "platform": platform, "max_ranks": got }));
                }
                Ok(json!({ "passed": true, "max_feasible": checked }))
            }
            CompareTemplate::SpotUndercutsOnDemand => {
                let rows = table3_rows(rp, i, deps)?;
                let cap = stage.max_ranks.unwrap_or(u64::MAX);
                let mut checked = Vec::new();
                for row in rows.iter().filter(|r| (r.ranks as u64) <= cap) {
                    let best = row.best_cadence();
                    let spot = &row
                        .spot
                        .iter()
                        .find(|&&(c, _)| c == best)
                        .expect("best cadence came from the sweep")
                        .1;
                    if spot.expected_dollars >= row.on_demand.expected_dollars {
                        return fail(
                            &inst.id,
                            format!(
                                "at {} ranks, best-cadence spot (${:.2}) does not undercut \
                                 on-demand (${:.2})",
                                row.ranks, spot.expected_dollars, row.on_demand.expected_dollars
                            ),
                        );
                    }
                    checked.push(row.ranks);
                }
                Ok(json!({ "passed": true, "ranks_checked": checked }))
            }
        },
    }
}

fn value_of<T: Serialize>(id: &str, v: &T) -> Result<Value, ExecError> {
    match serde_json::to_value(v) {
        Ok(v) => Ok(v),
        Err(e) => fail(id, format!("artifact serialization failed: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Report/compare assembly
// ---------------------------------------------------------------------------

/// The needed stage satisfying `pred`, as (stage index, definition).
fn needed_stage<'a>(
    rp: &'a ResolvedPlan,
    i: usize,
    what: &str,
    pred: impl Fn(&StageDef) -> bool,
) -> Result<(usize, &'a StageDef), ExecError> {
    let inst = &rp.instances[i];
    let stage = &rp.plan.stages[inst.stage];
    let mut found = None;
    for (need, _) in &stage.needs {
        let si = rp
            .plan
            .stages
            .iter()
            .position(|s| s.name == *need)
            .expect("needs are validated at resolution");
        if pred(&rp.plan.stages[si]) {
            if found.is_some() {
                return fail(
                    &inst.id,
                    format!("needs exactly one {what} stage, found two"),
                );
            }
            found = Some((si, &rp.plan.stages[si]));
        }
    }
    match found {
        Some(f) => Ok(f),
        None => fail(&inst.id, format!("needs a {what} stage")),
    }
}

/// The dep artifact of the `stage_idx` instance matching `coords`.
fn dep_artifact<'a>(
    rp: &ResolvedPlan,
    id: &str,
    deps: &'a [(usize, Arc<StageResult>)],
    stage_idx: usize,
    coords: &[(Axis, Coord)],
) -> Result<&'a Value, ExecError> {
    for (j, rs) in deps {
        let inst = &rp.instances[*j];
        if inst.stage == stage_idx && coords.iter().all(|(a, c)| inst.coord(*a) == Some(c)) {
            return Ok(&rs.artifact);
        }
    }
    fail(
        id,
        format!(
            "no dependency instance of `{}` matches {:?}",
            rp.plan.stages[stage_idx].name, coords
        ),
    )
}

fn decode<T: Deserialize>(id: &str, v: &Value, what: &str) -> Result<T, ExecError> {
    match T::deserialize_value(v) {
        Ok(t) => Ok(t),
        Err(e) => fail(id, format!("malformed {what} artifact: {e}")),
    }
}

fn decode_cell(id: &str, v: &Value) -> Result<Cell, ExecError> {
    if let Some(ok) = v.get("ok") {
        return Ok(Ok(decode::<RunOutcome>(id, ok, "run")?));
    }
    if let Some(e) = v.get("infeasible") {
        return Ok(Err(decode::<LimitViolation>(id, e, "limit")?));
    }
    fail(id, "run artifact carries neither `ok` nor `infeasible`")
}

/// Rebuilds a [`WeakScalingTable`] from a plain run stage swept over
/// `ranks` × `platform` — the same struct the legacy `fig4`/`fig5` path
/// builds, so `render_weak_scaling` output is byte-identical.
fn weak_scaling_table(
    rp: &ResolvedPlan,
    i: usize,
    deps: &[(usize, Arc<StageResult>)],
) -> Result<WeakScalingTable, ExecError> {
    let id = &rp.instances[i].id;
    let (si, run) = needed_stage(rp, i, "plain run", |s| {
        s.kind == StageKind::Run && s.policy.is_none() && !s.uncapped
    })?;
    let (ranks_vals, platform_vals) = match (
        run.axis_values(Axis::Ranks),
        run.axis_values(Axis::Platform),
    ) {
        (Some(r), Some(p)) => (r, p),
        _ => {
            return fail(
                id,
                format!("run stage `{}` must sweep `ranks` and `platform`", run.name),
            )
        }
    };
    let app = match run.app {
        Some(AppKind::Rd) => "RD",
        Some(AppKind::Ns) => "NS",
        None => return fail(id, format!("run stage `{}` has no app", run.name)),
    };
    let mut rows = Vec::new();
    for r in ranks_vals {
        let mut cells = Vec::new();
        for p in platform_vals {
            let coords = [(Axis::Ranks, r.clone()), (Axis::Platform, p.clone())];
            let v = dep_artifact(rp, id, deps, si, &coords)?;
            cells.push((p.to_string(), decode_cell(id, v)?));
        }
        match r {
            Coord::Int(ranks) => rows.push(WeakScalingRow {
                ranks: *ranks as usize,
                cells,
            }),
            Coord::Str(_) => return fail(id, "`ranks` axis must be integers"),
        }
    }
    Ok(WeakScalingTable { app, rows })
}

/// Rebuilds [`Table3Row`]s from an on-demand and a spot campaign stage —
/// the same struct the legacy `table3` path builds.
fn table3_rows(
    rp: &ResolvedPlan,
    i: usize,
    deps: &[(usize, Arc<StageResult>)],
) -> Result<Vec<Table3Row>, ExecError> {
    let id = &rp.instances[i].id;
    let (od_idx, od) = needed_stage(rp, i, "on-demand campaign", |s| {
        s.policy == Some(PolicyKind::OnDemand)
    })?;
    let (spot_idx, spot) = needed_stage(rp, i, "spot-with-restart campaign", |s| {
        s.policy == Some(PolicyKind::SpotWithRestart)
    })?;
    let ranks_vals = od.axis_values(Axis::Ranks).ok_or(()).or_else(|_| {
        fail(
            id,
            format!("campaign stage `{}` must sweep `ranks`", od.name),
        )
    })?;
    let cadence_vals = spot.axis_values(Axis::Cadence).ok_or(()).or_else(|_| {
        fail(
            id,
            format!("campaign stage `{}` must sweep `cadence`", spot.name),
        )
    })?;
    let platform = match od.axis_values(Axis::Platform) {
        Some([Coord::Str(p)]) => catalog::by_key(p).expect("validated at extraction"),
        _ => {
            return fail(
                id,
                format!("campaign stage `{}` must fix one `platform`", od.name),
            )
        }
    };
    let mut rows = Vec::new();
    for r in ranks_vals {
        let ranks = match r {
            Coord::Int(v) => *v as usize,
            Coord::Str(_) => return fail(id, "`ranks` axis must be integers"),
        };
        let od_coords = [(Axis::Ranks, r.clone())];
        let v = dep_artifact(rp, id, deps, od_idx, &od_coords)?;
        let on_demand: Table3Cell = decode(id, v.field("cell"), "campaign cell")?;
        let mut spot_cells = Vec::new();
        for c in cadence_vals {
            let cadence = match c {
                Coord::Int(v) => *v as usize,
                Coord::Str(_) => return fail(id, "`cadence` axis must be integers"),
            };
            let coords = [(Axis::Ranks, r.clone()), (Axis::Cadence, c.clone())];
            let v = dep_artifact(rp, id, deps, spot_idx, &coords)?;
            spot_cells.push((cadence, decode(id, v.field("cell"), "campaign cell")?));
        }
        rows.push(Table3Row {
            ranks,
            nodes: platform.nodes_for(ranks),
            on_demand,
            spot: spot_cells,
        });
    }
    Ok(rows)
}

/// Rebuilds [`SolverVariantRow`]s from an uncapped run stage swept over
/// `platform` × `ranks` × `variant`.
fn solver_variant_rows(
    rp: &ResolvedPlan,
    i: usize,
    deps: &[(usize, Arc<StageResult>)],
) -> Result<Vec<SolverVariantRow>, ExecError> {
    let id = &rp.instances[i].id;
    let (si, run) = needed_stage(rp, i, "uncapped run", |s| s.uncapped)?;
    let (Some(platform_vals), Some(ranks_vals)) = (
        run.axis_values(Axis::Platform),
        run.axis_values(Axis::Ranks),
    ) else {
        return fail(
            id,
            format!("run stage `{}` must sweep `platform` and `ranks`", run.name),
        );
    };
    let variants = ["blocking", "overlapped", "pipelined"];
    match run.axis_values(Axis::Variant) {
        Some(vals) if vals == variants.map(|v| Coord::Str(v.to_string())) => {}
        _ => {
            return fail(
                id,
                format!(
                    "run stage `{}` must sweep `variant` over exactly [blocking, overlapped, pipelined]",
                    run.name
                ),
            )
        }
    }
    let mut rows = Vec::new();
    for p in platform_vals {
        for r in ranks_vals {
            let ranks = match r {
                Coord::Int(v) => *v as usize,
                Coord::Str(_) => return fail(id, "`ranks` axis must be integers"),
            };
            let mut times = [0.0f64; 3];
            for (t, name) in times.iter_mut().zip(variants) {
                let coords = [
                    (Axis::Platform, p.clone()),
                    (Axis::Ranks, r.clone()),
                    (Axis::Variant, Coord::Str(name.to_string())),
                ];
                let v = dep_artifact(rp, id, deps, si, &coords)?;
                *t = match v.field("phases").field("solve").as_f64() {
                    Some(t) => t,
                    None => return fail(id, "uncapped artifact carries no solve time"),
                };
            }
            rows.push(SolverVariantRow {
                platform: p.to_string(),
                ranks,
                times,
            });
        }
    }
    Ok(rows)
}
