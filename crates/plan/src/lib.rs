//! # hetero-plan
//!
//! Declarative TOML campaign plans for the heterogeneity harness: the
//! scenario matrix as *data* instead of code.
//!
//! The paper's core claim is that one simulation harness can target
//! heterogeneous platforms by swapping configuration. This crate extends
//! that stance to the experiment campaigns themselves: a plan file
//! declares platforms × apps × solver variants × kernel backends ×
//! resilience policies × sweep axes plus stage dependencies
//! (partition → run → compare → report), and the harness resolves and
//! executes it — a new sweep is a ~20-line TOML diff, not new Rust.
//!
//! The pipeline has four layers:
//!
//! | layer        | entry point            | job |
//! |--------------|------------------------|-----|
//! | parse        | [`toml::parse`]        | span-tracking TOML subset parser |
//! | schema       | [`schema::extract`]    | typed plan, unknown keys rejected with spans |
//! | resolve      | [`resolver::resolve`]  | sweep expansion + deterministic DAG |
//! | execute      | [`exec::execute_plan`] | parallel execution + artifact cache |
//!
//! Checked-in plans live under `plans/` at the repo root; the `plan_run`
//! example executes one and the `plan_lint` example validates all of them.
//! Pinning tests hold the plan-driven Fig. 4, Table III, and
//! solver-variants tables byte-identical to the legacy `core::scenarios`
//! path.
//!
//! ```
//! let doc = r#"
//! [plan]
//! name = "demo"
//! description = "weak scaling, two rungs"
//!
//! [options]
//! per_rank_axis = 3
//! max_k = 2
//! steps = 2
//! discard = 0
//! fidelity = "modeled"
//!
//! [[stage]]
//! name = "sweep"
//! kind = "run"
//! app = "rd"
//!
//! [stage.sweep]
//! ranks = "ladder"
//! platform = ["puma", "ellipse", "lagrange", "ec2"]
//!
//! [[stage]]
//! name = "figure"
//! kind = "report"
//! template = "weak-scaling"
//! needs = ["sweep"]
//! "#;
//! let plan = hetero_plan::load_str(doc).expect("valid plan");
//! assert_eq!(plan.instances.len(), 2 * 4 + 1);
//! let out = hetero_plan::exec::execute_plan(&plan, &Default::default()).unwrap();
//! assert!(out.reports[0].1.contains("Weak scaling"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod resolver;
pub mod schema;
pub mod toml;

pub use exec::{execute_plan, ExecOptions, PlanOutcome, StageResult};
pub use resolver::{resolve, ResolvedPlan};
pub use schema::{extract, Plan};
pub use toml::{parse, TomlError};

/// Parses, extracts, and resolves a plan document in one step.
///
/// # Errors
/// The first parse, schema, or resolution error, with its source span.
pub fn load_str(doc: &str) -> Result<ResolvedPlan, TomlError> {
    resolve(extract(&parse(doc)?)?)
}
