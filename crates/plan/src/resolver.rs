//! Sweep expansion and DAG resolution.
//!
//! The resolver turns a [`Plan`] into a [`ResolvedPlan`]: every stage's
//! sweep axes are expanded into their cartesian product (one *instance*
//! per point, first declared axis outermost), `needs` edges are validated
//! and instantiated by matching on shared axes, and the instance graph is
//! ordered by a deterministic Kahn topological sort (ready set popped in
//! ascending instance index, so the order is a pure function of the plan —
//! independent of executor worker count).
//!
//! Cycles are reported with a stable, rank-ordered error: the cycle is
//! rotated so it starts at the stage declared earliest, e.g.
//! `dependency cycle: a -> b -> a`. A self-dependency reads
//! `stage `a` depends on itself`.

use crate::schema::{Axis, Coord, Plan, StageDef};
use crate::toml::{Span, TomlError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn err<T>(span: Span, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        span,
        msg: msg.into(),
    })
}

/// One executable instance of a stage: a point in its sweep.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index of the defining stage in `plan.stages`.
    pub stage: usize,
    /// Axis coordinates, in the stage's axis declaration order.
    pub coords: Vec<(Axis, Coord)>,
    /// Instance indices this one depends on, ascending.
    pub deps: Vec<usize>,
    /// Stable display id, e.g. `run[ranks=8,platform=ec2]`.
    pub id: String,
}

impl Instance {
    /// The coordinate on `axis`, if the instance has one.
    pub fn coord(&self, axis: Axis) -> Option<&Coord> {
        self.coords.iter().find(|(a, _)| *a == axis).map(|(_, c)| c)
    }
}

/// A plan resolved into an executable DAG.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    /// The source plan.
    pub plan: Plan,
    /// All stage instances; indices are stable (stages in declaration
    /// order, sweep points row-major with the first axis outermost).
    pub instances: Vec<Instance>,
    /// Deterministic topological order over `instances`.
    pub topo: Vec<usize>,
}

impl ResolvedPlan {
    /// The instances of the stage named `name`, in sweep order.
    pub fn instances_of(&self, name: &str) -> Vec<usize> {
        let Some(stage) = self.plan.stages.iter().position(|s| s.name == name) else {
            return Vec::new();
        };
        (0..self.instances.len())
            .filter(|&i| self.instances[i].stage == stage)
            .collect()
    }
}

/// Resolves a plan: validates references, expands sweeps, builds the DAG.
pub fn resolve(plan: Plan) -> Result<ResolvedPlan, TomlError> {
    // Stage names must be unique; needs must reference known stages and
    // must not repeat.
    for (i, s) in plan.stages.iter().enumerate() {
        if plan.stages[..i].iter().any(|p| p.name == s.name) {
            return err(s.span, format!("stage `{}` defined twice", s.name));
        }
    }
    for s in &plan.stages {
        for (j, (need, span)) in s.needs.iter().enumerate() {
            if !plan.stages.iter().any(|p| p.name == *need) {
                return err(
                    *span,
                    format!("unknown stage `{need}` in needs of stage `{}`", s.name),
                );
            }
            if s.needs[..j].iter().any(|(p, _)| p == need) {
                return err(
                    *span,
                    format!("duplicate entry `{need}` in needs of stage `{}`", s.name),
                );
            }
        }
    }

    check_cycles(&plan.stages)?;

    // Expand sweeps. Instance indices: stages in declaration order, sweep
    // points row-major (first declared axis outermost).
    let mut instances: Vec<Instance> = Vec::new();
    let mut stage_range: Vec<(usize, usize)> = Vec::new();
    for (si, s) in plan.stages.iter().enumerate() {
        let start = instances.len();
        for coords in cartesian(s) {
            let id = instance_id(&s.name, &coords);
            instances.push(Instance {
                stage: si,
                coords,
                deps: Vec::new(),
                id,
            });
        }
        stage_range.push((start, instances.len()));
    }

    // Instantiate edges: an instance depends on every instance of each
    // needed stage that agrees with it on all axes the two stages share.
    for i in 0..instances.len() {
        let s = &plan.stages[instances[i].stage];
        let mut deps = Vec::new();
        for (need, span) in &s.needs {
            let ti = plan
                .stages
                .iter()
                .position(|p| p.name == *need)
                .expect("validated above");
            let (lo, hi) = stage_range[ti];
            let before = deps.len();
            for j in lo..hi {
                let agree =
                    instances[i]
                        .coords
                        .iter()
                        .all(|(axis, c)| match instances[j].coord(*axis) {
                            Some(dc) => dc == c,
                            None => true,
                        });
                if agree {
                    deps.push(j);
                }
            }
            if deps.len() == before {
                return err(
                    *span,
                    format!(
                        "instance `{}` has no matching instances of needed stage `{need}`",
                        instances[i].id
                    ),
                );
            }
        }
        deps.sort_unstable();
        instances[i].deps = deps;
    }

    // Deterministic Kahn: pop the smallest ready instance index. The
    // stage-level cycle check above already guarantees acyclicity, so
    // this always drains.
    let mut indegree: Vec<usize> = instances.iter().map(|n| n.deps.len()).collect();
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); instances.len()];
    for (i, n) in instances.iter().enumerate() {
        for &d in &n.deps {
            rdeps[d].push(i);
        }
    }
    let mut ready: BinaryHeap<Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| Reverse(i))
        .collect();
    let mut topo = Vec::with_capacity(instances.len());
    while let Some(Reverse(i)) = ready.pop() {
        topo.push(i);
        for &r in &rdeps[i] {
            indegree[r] -= 1;
            if indegree[r] == 0 {
                ready.push(Reverse(r));
            }
        }
    }
    debug_assert_eq!(topo.len(), instances.len());

    Ok(ResolvedPlan {
        plan,
        instances,
        topo,
    })
}

/// DFS cycle check over the stage-level graph, visiting stages in
/// declaration order so the reported cycle is stable.
fn check_cycles(stages: &[StageDef]) -> Result<(), TomlError> {
    for s in stages {
        if s.needs.iter().any(|(n, _)| *n == s.name) {
            return err(s.span, format!("stage `{}` depends on itself", s.name));
        }
    }
    let index_of = |name: &str| {
        stages
            .iter()
            .position(|s| s.name == name)
            .expect("validated")
    };
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; stages.len()];
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..stages.len() {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit edge cursor.
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        stack.push(start);
        while let Some(&(node, cursor)) = frames.last() {
            if cursor < stages[node].needs.len() {
                frames.last_mut().expect("non-empty").1 += 1;
                let next = index_of(&stages[node].needs[cursor].0);
                match state[next] {
                    0 => {
                        state[next] = 1;
                        stack.push(next);
                        frames.push((next, 0));
                    }
                    1 => {
                        let pos = stack.iter().position(|&n| n == next).expect("on stack");
                        let mut cycle: Vec<usize> = stack[pos..].to_vec();
                        // Rotate so the earliest-declared stage leads.
                        let lead = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &n)| n)
                            .map(|(i, _)| i)
                            .expect("non-empty");
                        cycle.rotate_left(lead);
                        let mut names: Vec<&str> =
                            cycle.iter().map(|&n| stages[n].name.as_str()).collect();
                        names.push(stages[cycle[0]].name.as_str());
                        return err(
                            stages[cycle[0]].span,
                            format!("dependency cycle: {}", names.join(" -> ")),
                        );
                    }
                    _ => {}
                }
            } else {
                state[node] = 2;
                stack.pop();
                frames.pop();
            }
        }
    }
    Ok(())
}

/// Cartesian product of a stage's axes, first declared axis outermost.
/// A stage with no axes yields one empty-coordinate instance.
fn cartesian(s: &StageDef) -> Vec<Vec<(Axis, Coord)>> {
    let mut points: Vec<Vec<(Axis, Coord)>> = vec![Vec::new()];
    for axis in &s.sweep {
        let mut next = Vec::with_capacity(points.len() * axis.values.len());
        for p in &points {
            for v in &axis.values {
                let mut q = p.clone();
                q.push((axis.axis, v.clone()));
                next.push(q);
            }
        }
        points = next;
    }
    points
}

fn instance_id(name: &str, coords: &[(Axis, Coord)]) -> String {
    if coords.is_empty() {
        return name.to_string();
    }
    let parts: Vec<String> = coords
        .iter()
        .map(|(a, c)| format!("{}={c}", a.key()))
        .collect();
    format!("{name}[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::extract;
    use crate::toml::parse;

    fn resolved(doc: &str) -> Result<ResolvedPlan, TomlError> {
        resolve(extract(&parse(doc)?)?)
    }

    const BASE: &str = r#"
[plan]
name = "t"
description = "test"

[[stage]]
name = "part"
kind = "partition"

[stage.sweep]
ranks = [1, 8]

[[stage]]
name = "go"
kind = "run"
app = "rd"
needs = ["part"]

[stage.sweep]
ranks = [1, 8]
platform = ["puma", "ec2"]

[[stage]]
name = "render"
kind = "report"
template = "weak-scaling"
needs = ["go"]
"#;

    #[test]
    fn expansion_count_is_axis_product() {
        let r = resolved(BASE).expect("valid");
        assert_eq!(r.instances.len(), 2 + 2 * 2 + 1);
        assert_eq!(r.topo.len(), r.instances.len());
    }

    #[test]
    fn shared_axis_matching_narrows_deps() {
        let r = resolved(BASE).expect("valid");
        // go[ranks=8,platform=*] depends only on part[ranks=8].
        for &i in &r.instances_of("go") {
            let inst = &r.instances[i];
            assert_eq!(inst.deps.len(), 1);
            let dep = &r.instances[inst.deps[0]];
            assert_eq!(dep.coord(Axis::Ranks), inst.coord(Axis::Ranks));
        }
        // The report fans in over every run instance.
        let rep = r.instances_of("render")[0];
        assert_eq!(r.instances[rep].deps.len(), 4);
    }

    #[test]
    fn topo_is_deterministic_and_valid() {
        let a = resolved(BASE).expect("valid");
        let b = resolved(BASE).expect("valid");
        assert_eq!(a.topo, b.topo);
        let mut seen = vec![false; a.instances.len()];
        for &i in &a.topo {
            for &d in &a.instances[i].deps {
                assert!(seen[d], "dep {d} of {i} not scheduled first");
            }
            seen[i] = true;
        }
    }

    #[test]
    fn self_dependency_error_is_exact() {
        let doc = BASE.replace("needs = [\"part\"]", "needs = [\"go\"]");
        let e = resolved(&doc).unwrap_err();
        assert_eq!(e.msg, "stage `go` depends on itself");
    }

    #[test]
    fn cycle_error_is_rank_ordered() {
        // part -> render -> go -> part; earliest-declared stage leads.
        let doc = BASE.replace(
            "name = \"part\"\nkind = \"partition\"",
            "name = \"part\"\nkind = \"partition\"\nneeds = [\"render\"]",
        );
        let e = resolved(&doc).unwrap_err();
        assert_eq!(e.msg, "dependency cycle: part -> render -> go -> part");
    }

    #[test]
    fn unknown_need_is_rejected() {
        let doc = BASE.replace("needs = [\"part\"]", "needs = [\"parts\"]");
        let e = resolved(&doc).unwrap_err();
        assert_eq!(e.msg, "unknown stage `parts` in needs of stage `go`");
    }

    #[test]
    fn instance_ids_are_stable() {
        let r = resolved(BASE).expect("valid");
        let ids: Vec<&str> = r.instances.iter().map(|i| i.id.as_str()).collect();
        assert_eq!(ids[0], "part[ranks=1]");
        assert_eq!(ids[2], "go[ranks=1,platform=puma]");
        assert_eq!(ids[6], "render");
    }
}
