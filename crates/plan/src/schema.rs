//! The typed campaign-plan schema, extracted from parsed TOML.
//!
//! A plan is `[plan]` metadata, `[options]` mirroring
//! [`hetero_hpc::scenarios::ScenarioOptions`], an optional
//! `[resilience]` block for fault campaigns, and a sequence of `[[stage]]`
//! entries (partition → run → compare → report) whose `[stage.sweep]`
//! tables span the campaign's axes. Extraction is strict: every key is
//! checked against the schema and unknown keys are rejected with the
//! offending span and the accepted key list — a typo fails the lint, it
//! does not silently drop an axis.

use crate::toml::{Span, Spanned, Table, TomlError, Value};
use hetero_hpc::run::Fidelity;
use hetero_hpc::scenarios::ScenarioOptions;
use hetero_linalg::{KernelBackend, SolverVariant};
use hetero_platform::catalog;

fn err<T>(span: Span, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        span,
        msg: msg.into(),
    })
}

/// A fully-extracted campaign plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Plan name (`[a-z0-9-]+`), the artifact namespace.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Scenario knobs shared by every stage.
    pub options: PlanOptions,
    /// Fault-campaign knobs; required by stages with a `policy`.
    pub resilience: Option<ResilienceBlock>,
    /// The stages, in declaration order.
    pub stages: Vec<StageDef>,
}

/// `[options]`: the plan-wide scenario knobs. Defaults are the paper's
/// configuration ([`ScenarioOptions::paper`]).
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Cells per axis per rank.
    pub per_rank_axis: usize,
    /// Largest `k` of the `k^3` rank ladder (`ranks = "ladder"`).
    pub max_k: usize,
    /// Time steps per run.
    pub steps: usize,
    /// Warm-up iterations discarded.
    pub discard: usize,
    /// Engine selection.
    pub fidelity: Fidelity,
    /// Experiment seed.
    pub seed: u64,
}

impl PlanOptions {
    /// The equivalent [`ScenarioOptions`] (no tracing).
    pub fn scenario(&self) -> ScenarioOptions {
        ScenarioOptions {
            per_rank_axis: self.per_rank_axis,
            max_k: self.max_k,
            steps: self.steps,
            discard: self.discard,
            fidelity: self.fidelity,
            seed: self.seed,
            trace: None,
        }
    }

    /// The `k^3` rank ladder.
    pub fn ladder(&self) -> Vec<u64> {
        (1..=self.max_k as u64).map(|k| k * k * k).collect()
    }
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            per_rank_axis: 20,
            max_k: 10,
            steps: 8,
            discard: 5,
            fidelity: Fidelity::Modeled,
            seed: 2012,
        }
    }
}

/// `[resilience]`: knobs for fault campaigns, mirroring
/// [`ResilienceOptions`](hetero_hpc::scenarios::ResilienceOptions).
#[derive(Debug, Clone)]
pub struct ResilienceBlock {
    /// Checkpoint cadences swept by `cadence = "cadences"` (`0` = never).
    pub cadences: Vec<u64>,
    /// Independent seeds averaged into each campaign cell.
    pub seeds: usize,
    /// Restart budget per campaign.
    pub max_restarts: usize,
    /// Spot bid as a multiple of the base price.
    pub max_bid: f64,
}

/// What a stage does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Computes the near-cubic rank factorization (a cheap validation
    /// stage the run stages depend on).
    Partition,
    /// Executes one run (or one seed-averaged fault campaign) per cell.
    Run,
    /// Asserts a property of upstream artifacts.
    Compare,
    /// Renders upstream artifacts into a table.
    Report,
}

/// Which application a run stage executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Reaction–diffusion (paper Section IV-A).
    Rd,
    /// Navier–Stokes (Section IV-B).
    Ns,
}

/// Fault-campaign policy of a run stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// On-demand capacity, crashes only, restart from scratch.
    OnDemand,
    /// Spot-mix fleet under the live market, checkpoint/restart.
    SpotWithRestart,
}

/// Report templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportTemplate {
    /// Figure 4/5 layout via
    /// [`render_weak_scaling`](hetero_hpc::report::render_weak_scaling).
    WeakScaling,
    /// Table III layout via
    /// [`render_table3`](hetero_hpc::report::render_table3).
    Table3,
    /// The solver-schedule comparison via
    /// [`render_solver_variants`](hetero_hpc::report::render_solver_variants).
    SolverVariants,
}

/// Compare templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareTemplate {
    /// Per-platform truncation points match `[stage.expect]`.
    MaxFeasibleRanks,
    /// Best-cadence spot campaigns are cheaper than on-demand through
    /// `max_ranks`.
    SpotUndercutsOnDemand,
}

/// A sweep axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Axis {
    /// MPI rank counts.
    Ranks,
    /// Platform keys from the catalog.
    Platform,
    /// Solver communication schedule.
    Variant,
    /// Per-step operator backend.
    Backend,
    /// Checkpoint cadence (fault campaigns).
    Cadence,
}

impl Axis {
    /// The axis's TOML key.
    pub fn key(self) -> &'static str {
        match self {
            Axis::Ranks => "ranks",
            Axis::Platform => "platform",
            Axis::Variant => "variant",
            Axis::Backend => "backend",
            Axis::Cadence => "cadence",
        }
    }

    fn from_key(key: &str) -> Option<Axis> {
        match key {
            "ranks" => Some(Axis::Ranks),
            "platform" => Some(Axis::Platform),
            "variant" => Some(Axis::Variant),
            "backend" => Some(Axis::Backend),
            "cadence" => Some(Axis::Cadence),
            _ => None,
        }
    }
}

/// One concrete value on an axis.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Coord {
    /// An integer axis value (`ranks`, `cadence`).
    Int(u64),
    /// A string axis value (`platform`, `variant`, `backend`).
    Str(String),
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Coord::Int(v) => write!(f, "{v}"),
            Coord::Str(s) => write!(f, "{s}"),
        }
    }
}

/// The values an axis sweeps, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisValues {
    /// The axis.
    pub axis: Axis,
    /// Concrete values (ladder/cadence shorthands already expanded).
    pub values: Vec<Coord>,
}

/// One `[[stage]]` entry.
#[derive(Debug, Clone)]
pub struct StageDef {
    /// Stage name, unique within the plan.
    pub name: String,
    /// Span of the stage's `name` key (anchor for resolver errors).
    pub span: Span,
    /// What the stage does.
    pub kind: StageKind,
    /// Application (run stages).
    pub app: Option<AppKind>,
    /// Fault-campaign policy (run stages; `None` = plain execution).
    pub policy: Option<PolicyKind>,
    /// What-if mode: an uncapped uniform topology driven through the
    /// modeled engine directly, skipping the platform's capacity limits.
    pub uncapped: bool,
    /// Report template (report stages).
    pub report: Option<ReportTemplate>,
    /// Compare template (compare stages).
    pub compare: Option<CompareTemplate>,
    /// Names of the stages this one needs, with spans.
    pub needs: Vec<(String, Span)>,
    /// `max_ranks` knob of the spot-undercuts-on-demand compare.
    pub max_ranks: Option<u64>,
    /// `[stage.expect]` entries of the max-feasible-ranks compare.
    pub expect: Vec<(String, u64)>,
    /// Sweep axes in declaration order (first axis outermost); fixed
    /// stage-level axis values are appended as single-value axes.
    pub sweep: Vec<AxisValues>,
}

impl StageDef {
    /// The values of `axis`, if the stage sweeps (or fixes) it.
    pub fn axis_values(&self, axis: Axis) -> Option<&[Coord]> {
        self.sweep
            .iter()
            .find(|a| a.axis == axis)
            .map(|a| a.values.as_slice())
    }
}

/// Extracts a [`Plan`] from a parsed TOML document.
pub fn extract(root: &Table) -> Result<Plan, TomlError> {
    deny_unknown(
        root,
        "the plan root",
        &["plan", "options", "resilience", "stage"],
    )?;

    let plan_table = require_table(root, "plan")?;
    deny_unknown(plan_table, "[plan]", &["name", "description"])?;
    let name = require_str(plan_table, "[plan]", "name")?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        let (span, _) = plan_table.get_with_span("name").expect("required above");
        return err(
            span,
            format!("plan name `{name}` must be non-empty lowercase [a-z0-9-]"),
        );
    }
    let description = require_str(plan_table, "[plan]", "description")?;

    let options = match root.get("options") {
        None => PlanOptions::default(),
        Some(v) => extract_options(as_table(v, "options")?)?,
    };
    let resilience = match root.get("resilience") {
        None => None,
        Some(v) => Some(extract_resilience(as_table(v, "resilience")?)?),
    };

    let stage_tables: Vec<&Table> = match root.get("stage") {
        None => Vec::new(),
        Some(Spanned {
            value: Value::TableArray(ts),
            ..
        }) => ts.iter().collect(),
        Some(other) => {
            return err(
                other.span,
                format!(
                    "`stage` must be an array of tables, found {}",
                    other.value.type_name()
                ),
            )
        }
    };
    if stage_tables.is_empty() {
        return err(root.span, "a plan needs at least one [[stage]]");
    }
    let mut stages = Vec::new();
    for t in stage_tables {
        stages.push(extract_stage(t, &options, resilience.as_ref())?);
    }

    Ok(Plan {
        name,
        description,
        options,
        resilience,
        stages,
    })
}

fn deny_unknown(table: &Table, context: &str, allowed: &[&str]) -> Result<(), TomlError> {
    for (key, span, _) in &table.entries {
        if !allowed.contains(&key.as_str()) {
            return err(
                *span,
                format!(
                    "unknown key `{key}` in {context} (expected one of: {})",
                    allowed.join(", ")
                ),
            );
        }
    }
    Ok(())
}

fn as_table<'a>(v: &'a Spanned, name: &str) -> Result<&'a Table, TomlError> {
    match &v.value {
        Value::Table(t) => Ok(t),
        other => err(
            v.span,
            format!("`{name}` must be a table, found {}", other.type_name()),
        ),
    }
}

fn require_table<'a>(root: &'a Table, name: &str) -> Result<&'a Table, TomlError> {
    match root.get(name) {
        Some(v) => as_table(v, name),
        None => err(root.span, format!("missing required [{name}] table")),
    }
}

fn require_str(table: &Table, context: &str, key: &str) -> Result<String, TomlError> {
    match table.get(key) {
        Some(v) => get_str(v, key),
        None => err(
            table.span,
            format!("missing required key `{key}` in {context}"),
        ),
    }
}

fn get_str(v: &Spanned, key: &str) -> Result<String, TomlError> {
    match &v.value {
        Value::Str(s) => Ok(s.clone()),
        other => err(
            v.span,
            format!("`{key}` must be a string, found {}", other.type_name()),
        ),
    }
}

fn get_u64(v: &Spanned, key: &str) -> Result<u64, TomlError> {
    match &v.value {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::Int(i) => err(v.span, format!("`{key}` must be non-negative, found {i}")),
        other => err(
            v.span,
            format!("`{key}` must be an integer, found {}", other.type_name()),
        ),
    }
}

fn get_f64(v: &Spanned, key: &str) -> Result<f64, TomlError> {
    match &v.value {
        Value::Float(x) => Ok(*x),
        Value::Int(i) => Ok(*i as f64),
        other => err(
            v.span,
            format!("`{key}` must be a number, found {}", other.type_name()),
        ),
    }
}

fn get_bool(v: &Spanned, key: &str) -> Result<bool, TomlError> {
    match &v.value {
        Value::Bool(b) => Ok(*b),
        other => err(
            v.span,
            format!("`{key}` must be a boolean, found {}", other.type_name()),
        ),
    }
}

fn get_u64_array(v: &Spanned, key: &str) -> Result<Vec<u64>, TomlError> {
    match &v.value {
        Value::Array(items) => items.iter().map(|it| get_u64(it, key)).collect(),
        other => err(
            v.span,
            format!(
                "`{key}` must be an array of integers, found {}",
                other.type_name()
            ),
        ),
    }
}

fn extract_options(t: &Table) -> Result<PlanOptions, TomlError> {
    deny_unknown(
        t,
        "[options]",
        &[
            "per_rank_axis",
            "max_k",
            "steps",
            "discard",
            "fidelity",
            "seed",
        ],
    )?;
    let mut o = PlanOptions::default();
    if let Some(v) = t.get("per_rank_axis") {
        o.per_rank_axis = get_u64(v, "per_rank_axis")?.max(1) as usize;
    }
    if let Some(v) = t.get("max_k") {
        o.max_k = get_u64(v, "max_k")?.max(1) as usize;
    }
    if let Some(v) = t.get("steps") {
        o.steps = get_u64(v, "steps")? as usize;
    }
    if let Some(v) = t.get("discard") {
        o.discard = get_u64(v, "discard")? as usize;
    }
    if let Some(v) = t.get("fidelity") {
        o.fidelity = match get_str(v, "fidelity")?.as_str() {
            "numerical" => Fidelity::Numerical,
            "modeled" => Fidelity::Modeled,
            "auto" => Fidelity::Auto,
            other => {
                return err(
                    v.span,
                    format!(
                        "unknown fidelity `{other}` (expected one of: auto, modeled, numerical)"
                    ),
                )
            }
        };
    }
    if let Some(v) = t.get("seed") {
        o.seed = get_u64(v, "seed")?;
    }
    Ok(o)
}

fn extract_resilience(t: &Table) -> Result<ResilienceBlock, TomlError> {
    deny_unknown(
        t,
        "[resilience]",
        &["cadences", "seeds", "max_restarts", "max_bid"],
    )?;
    let mut r = ResilienceBlock {
        cadences: vec![1, 4, 16, 64, 0],
        seeds: 8,
        max_restarts: 60,
        max_bid: 1.0,
    };
    if let Some(v) = t.get("cadences") {
        r.cadences = get_u64_array(v, "cadences")?;
        if r.cadences.is_empty() {
            return err(v.span, "`cadences` must not be empty");
        }
    }
    if let Some(v) = t.get("seeds") {
        r.seeds = get_u64(v, "seeds")?.max(1) as usize;
    }
    if let Some(v) = t.get("max_restarts") {
        r.max_restarts = get_u64(v, "max_restarts")? as usize;
    }
    if let Some(v) = t.get("max_bid") {
        r.max_bid = get_f64(v, "max_bid")?;
    }
    Ok(r)
}

const STAGE_KEYS: &[&str] = &[
    "name",
    "kind",
    "app",
    "policy",
    "uncapped",
    "template",
    "needs",
    "max_ranks",
    "platform",
    "ranks",
    "variant",
    "backend",
    "cadence",
    "sweep",
    "expect",
];

fn extract_stage(
    t: &Table,
    options: &PlanOptions,
    resilience: Option<&ResilienceBlock>,
) -> Result<StageDef, TomlError> {
    deny_unknown(t, "[[stage]]", STAGE_KEYS)?;
    let name = require_str(t, "[[stage]]", "name")?;
    let (name_span, _) = t.get_with_span("name").expect("required above");
    let context = format!("[[stage]] `{name}`");

    let kind_value = match t.get("kind") {
        Some(v) => v,
        None => return err(t.span, format!("missing required key `kind` in {context}")),
    };
    let kind = match get_str(kind_value, "kind")?.as_str() {
        "partition" => StageKind::Partition,
        "run" => StageKind::Run,
        "compare" => StageKind::Compare,
        "report" => StageKind::Report,
        other => {
            return err(
                kind_value.span,
                format!(
                "unknown stage kind `{other}` (expected one of: compare, partition, report, run)"
            ),
            )
        }
    };

    let app = match t.get("app") {
        None => None,
        Some(v) => Some(match get_str(v, "app")?.as_str() {
            "rd" => AppKind::Rd,
            "ns" => AppKind::Ns,
            other => {
                return err(v.span, format!("unknown app `{other}` (expected rd or ns)"));
            }
        }),
    };
    let policy = match t.get("policy") {
        None => None,
        Some(v) => Some(match get_str(v, "policy")?.as_str() {
            "on-demand" => PolicyKind::OnDemand,
            "spot-with-restart" => PolicyKind::SpotWithRestart,
            other => {
                return err(
                    v.span,
                    format!("unknown policy `{other}` (expected on-demand or spot-with-restart)"),
                )
            }
        }),
    };
    if policy.is_some() && resilience.is_none() {
        return err(
            t.span,
            format!("{context} has a `policy` but the plan has no [resilience] block"),
        );
    }
    let uncapped = match t.get("uncapped") {
        None => false,
        Some(v) => get_bool(v, "uncapped")?,
    };
    let needs = match t.get("needs") {
        None => Vec::new(),
        Some(v) => match &v.value {
            Value::Array(items) => {
                let mut out = Vec::new();
                for it in items {
                    out.push((get_str(it, "needs")?, it.span));
                }
                out
            }
            other => {
                return err(
                    v.span,
                    format!(
                        "`needs` must be an array of stage names, found {}",
                        other.type_name()
                    ),
                )
            }
        },
    };
    let max_ranks = match t.get("max_ranks") {
        None => None,
        Some(v) => Some(get_u64(v, "max_ranks")?),
    };
    let expect = match t.get("expect") {
        None => Vec::new(),
        Some(v) => {
            let et = as_table(v, "expect")?;
            let mut out = Vec::new();
            for (key, _, val) in &et.entries {
                out.push((key.clone(), get_u64(val, key)?));
            }
            out
        }
    };

    // Templates: report and compare stages name one; the valid set depends
    // on the kind.
    let mut report = None;
    let mut compare = None;
    match (kind, t.get("template")) {
        (StageKind::Report, Some(v)) => {
            report = Some(match get_str(v, "template")?.as_str() {
                "weak-scaling" => ReportTemplate::WeakScaling,
                "table3" => ReportTemplate::Table3,
                "solver-variants" => ReportTemplate::SolverVariants,
                other => {
                    return err(
                        v.span,
                        format!(
                            "unknown report template `{other}` (expected one of: solver-variants, table3, weak-scaling)"
                        ),
                    )
                }
            });
        }
        (StageKind::Compare, Some(v)) => {
            compare = Some(match get_str(v, "template")?.as_str() {
                "max-feasible-ranks" => CompareTemplate::MaxFeasibleRanks,
                "spot-undercuts-on-demand" => CompareTemplate::SpotUndercutsOnDemand,
                other => {
                    return err(
                        v.span,
                        format!(
                            "unknown compare template `{other}` (expected one of: max-feasible-ranks, spot-undercuts-on-demand)"
                        ),
                    )
                }
            });
        }
        (StageKind::Report | StageKind::Compare, None) => {
            return err(
                t.span,
                format!("missing required key `template` in {context}"),
            );
        }
        (_, Some(v)) => {
            return err(
                v.span,
                format!("`template` is only valid on report and compare stages, not {context}"),
            );
        }
        (_, None) => {}
    }
    if kind == StageKind::Run && app.is_none() {
        return err(t.span, format!("missing required key `app` in {context}"));
    }

    // Sweep axes (declaration order, first axis outermost), then fixed
    // stage-level axis values appended as single-value axes.
    let mut sweep: Vec<AxisValues> = Vec::new();
    if let Some(v) = t.get("sweep") {
        let st = as_table(v, "sweep")?;
        for (key, span, val) in &st.entries {
            let axis = match Axis::from_key(key) {
                Some(a) => a,
                None => {
                    return err(
                        *span,
                        format!(
                            "unknown sweep axis `{key}` in {context} (expected one of: backend, cadence, platform, ranks, variant)"
                        ),
                    )
                }
            };
            let values = extract_axis_values(axis, val, options, resilience)?;
            sweep.push(AxisValues { axis, values });
        }
    }
    for axis in [
        Axis::Ranks,
        Axis::Platform,
        Axis::Variant,
        Axis::Backend,
        Axis::Cadence,
    ] {
        if let Some((span, v)) = t.get_with_span(axis.key()) {
            if sweep.iter().any(|a| a.axis == axis) {
                return err(
                    span,
                    format!(
                        "axis `{}` is both fixed on {context} and swept in [stage.sweep]",
                        axis.key()
                    ),
                );
            }
            let value = match axis {
                Axis::Ranks | Axis::Cadence => Coord::Int(get_u64(v, axis.key())?),
                _ => Coord::Str(get_str(v, axis.key())?),
            };
            let values = validate_axis(axis, vec![(value, v.span)])?;
            sweep.push(AxisValues { axis, values });
        }
    }
    for a in &sweep {
        if a.values.is_empty() {
            return err(
                t.span,
                format!("axis `{}` in {context} has no values", a.axis.key()),
            );
        }
    }

    Ok(StageDef {
        name,
        span: name_span,
        kind,
        app,
        policy,
        uncapped,
        report,
        compare,
        needs,
        max_ranks,
        expect,
        sweep,
    })
}

fn extract_axis_values(
    axis: Axis,
    v: &Spanned,
    options: &PlanOptions,
    resilience: Option<&ResilienceBlock>,
) -> Result<Vec<Coord>, TomlError> {
    let raw: Vec<(Coord, Span)> = match (&v.value, axis) {
        // Shorthands: the rank ladder and the resilience cadence sweep.
        (Value::Str(s), Axis::Ranks) if s == "ladder" => options
            .ladder()
            .into_iter()
            .map(|r| (Coord::Int(r), v.span))
            .collect(),
        (Value::Str(s), Axis::Cadence) if s == "cadences" => match resilience {
            Some(r) => r
                .cadences
                .iter()
                .map(|&c| (Coord::Int(c), v.span))
                .collect(),
            None => {
                return err(
                    v.span,
                    "`cadence = \"cadences\"` needs a [resilience] block",
                )
            }
        },
        (Value::Str(s), _) => {
            return err(
                v.span,
                format!("unknown shorthand `{s}` for axis `{}`", axis.key()),
            )
        }
        (Value::Array(items), Axis::Ranks | Axis::Cadence) => {
            let mut out = Vec::new();
            for it in items {
                out.push((Coord::Int(get_u64(it, axis.key())?), it.span));
            }
            out
        }
        (Value::Array(items), _) => {
            let mut out = Vec::new();
            for it in items {
                out.push((Coord::Str(get_str(it, axis.key())?), it.span));
            }
            out
        }
        (other, _) => {
            return err(
                v.span,
                format!(
                    "axis `{}` must be an array (or a shorthand string), found {}",
                    axis.key(),
                    other.type_name()
                ),
            )
        }
    };
    validate_axis(axis, raw)
}

fn validate_axis(axis: Axis, values: Vec<(Coord, Span)>) -> Result<Vec<Coord>, TomlError> {
    let mut out = Vec::new();
    for (value, span) in values {
        match (axis, &value) {
            (Axis::Ranks, Coord::Int(r)) if *r == 0 => {
                return err(span, "`ranks` values must be positive");
            }
            (Axis::Platform, Coord::Str(key)) if catalog::by_key(key).is_none() => {
                let known: Vec<String> = catalog::all_platforms()
                    .into_iter()
                    .map(|p| p.key)
                    .collect();
                return err(
                    span,
                    format!("unknown platform `{key}` (catalog: {})", known.join(", ")),
                );
            }
            (Axis::Variant, Coord::Str(s)) => {
                parse_variant(s).ok_or(TomlError {
                    span,
                    msg: format!(
                        "unknown solver variant `{s}` (expected one of: blocking, overlapped, pipelined)"
                    ),
                })?;
            }
            (Axis::Backend, Coord::Str(s)) => {
                parse_backend(s).ok_or(TomlError {
                    span,
                    msg: format!(
                        "unknown kernel backend `{s}` (expected one of: assembled, matrix-free)"
                    ),
                })?;
            }
            _ => {}
        }
        if out.contains(&value) {
            return err(
                span,
                format!("duplicate value `{value}` on axis `{}`", axis.key()),
            );
        }
        out.push(value);
    }
    Ok(out)
}

/// Parses a solver-variant axis value.
pub fn parse_variant(s: &str) -> Option<SolverVariant> {
    match s {
        "blocking" => Some(SolverVariant::Blocking),
        "overlapped" => Some(SolverVariant::Overlapped),
        "pipelined" => Some(SolverVariant::Pipelined),
        _ => None,
    }
}

/// Parses a kernel-backend axis value.
pub fn parse_backend(s: &str) -> Option<KernelBackend> {
    match s {
        "assembled" => Some(KernelBackend::Assembled),
        "matrix-free" => Some(KernelBackend::MatrixFree),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml::parse;

    fn plan(doc: &str) -> Result<Plan, TomlError> {
        extract(&parse(doc)?)
    }

    const MINIMAL: &str = r#"
[plan]
name = "t"
description = "test"

[[stage]]
name = "run"
kind = "run"
app = "rd"
platform = "ec2"

[stage.sweep]
ranks = [1, 8]
"#;

    #[test]
    fn minimal_plan_extracts() {
        let p = plan(MINIMAL).expect("valid");
        assert_eq!(p.name, "t");
        assert_eq!(p.stages.len(), 1);
        let s = &p.stages[0];
        assert_eq!(s.kind, StageKind::Run);
        assert_eq!(s.app, Some(AppKind::Rd));
        // Swept axes first, fixed axes appended after.
        assert_eq!(s.sweep[0].axis, Axis::Ranks);
        assert_eq!(s.sweep[1].axis, Axis::Platform);
        assert_eq!(s.sweep[1].values, vec![Coord::Str("ec2".into())]);
    }

    #[test]
    fn unknown_key_is_rejected_with_span_and_candidates() {
        let doc = MINIMAL.replace("app = \"rd\"", "ap = \"rd\"");
        let e = plan(&doc).unwrap_err();
        assert!(e.msg.contains("unknown key `ap` in [[stage]]"), "{e}");
        assert!(e.msg.contains("expected one of:"), "{e}");
        assert_eq!(e.span.line, 9);
        assert_eq!(e.span.col, 1);
    }

    #[test]
    fn unknown_sweep_axis_is_rejected() {
        let doc = MINIMAL.replace("ranks = [1, 8]", "rankz = [1, 8]");
        let e = plan(&doc).unwrap_err();
        assert!(e.msg.contains("unknown sweep axis `rankz`"), "{e}");
    }

    #[test]
    fn unknown_platform_lists_the_catalog() {
        let doc = MINIMAL.replace("\"ec2\"", "\"ec3\"");
        let e = plan(&doc).unwrap_err();
        assert!(e.msg.contains("unknown platform `ec3`"), "{e}");
        assert!(e.msg.contains("puma, ellipse, lagrange, ec2"), "{e}");
    }

    #[test]
    fn ladder_shorthand_expands_from_options() {
        let doc =
            MINIMAL.replace("ranks = [1, 8]", "ranks = \"ladder\"") + "\n[options]\nmax_k = 3\n";
        let p = plan(&doc).expect("valid");
        assert_eq!(
            p.stages[0].axis_values(Axis::Ranks).unwrap(),
            &[Coord::Int(1), Coord::Int(8), Coord::Int(27)]
        );
    }

    #[test]
    fn policy_requires_resilience_block() {
        let doc = MINIMAL.replace("app = \"rd\"", "app = \"rd\"\npolicy = \"on-demand\"");
        let e = plan(&doc).unwrap_err();
        assert!(e.msg.contains("no [resilience] block"), "{e}");
    }

    #[test]
    fn fixed_and_swept_axis_conflict() {
        let doc = MINIMAL.replace("ranks = [1, 8]", "ranks = [1, 8]\nplatform = [\"puma\"]");
        let e = plan(&doc).unwrap_err();
        assert!(e.msg.contains("both fixed"), "{e}");
    }

    #[test]
    fn duplicate_axis_values_are_rejected() {
        let doc = MINIMAL.replace("ranks = [1, 8]", "ranks = [8, 8]");
        let e = plan(&doc).unwrap_err();
        assert!(e.msg.contains("duplicate value `8` on axis `ranks`"), "{e}");
    }
}
