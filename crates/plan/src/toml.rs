//! A span-tracking parser for the TOML subset campaign plans use.
//!
//! The build environment vendors no TOML crate, so the subset the plan
//! schema needs is parsed here by hand: `[table]` and `[[array-of-table]]`
//! headers (with dotted paths), `key = value` pairs with basic strings,
//! integers, floats, booleans, and (possibly multi-line) arrays. Every key
//! and value carries its source position, so schema errors can point at
//! the offending line and column instead of describing the file in the
//! abstract. Unsupported TOML (inline tables, dotted keys in assignments,
//! literal strings) fails with an explicit message rather than a silent
//! misparse.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A parse or schema error, located at a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// Where the problem is.
    pub span: Span,
    /// What the problem is.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(span: Span, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        span,
        msg: msg.into(),
    })
}

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Spanned>),
    /// A sub-table (from a `[header]`).
    Table(Table),
    /// An array of tables (from `[[header]]`s).
    TableArray(Vec<Table>),
}

impl Value {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
            Value::TableArray(_) => "array of tables",
        }
    }
}

/// A value together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The value.
    pub value: Value,
    /// Where the value starts.
    pub span: Span,
}

/// An ordered table: keys in file order, each with the span of its key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// `(key, key span, value)` in declaration order.
    pub entries: Vec<(String, Span, Spanned)>,
    /// Span of the table's header (or 1:1 for the root).
    pub span: Span,
}

impl Table {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, v)| v)
    }

    /// Looks a key up together with the key's span.
    pub fn get_with_span(&self, key: &str) -> Option<(Span, &Spanned)> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, s, v)| (*s, v))
    }

    fn insert(&mut self, key: String, key_span: Span, value: Spanned) -> Result<(), TomlError> {
        if self.get(&key).is_some() {
            return err(key_span, format!("duplicate key `{key}`"));
        }
        self.entries.push((key, key_span, value));
        Ok(())
    }
}

/// Parses a TOML document into its root [`Table`].
pub fn parse(input: &str) -> Result<Table, TomlError> {
    let mut p = Parser::new(input);
    p.parse_document()?;
    Ok(p.root)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    root: Table,
    /// Path of the table the current `key = value` lines attach to.
    current: Vec<String>,
    _input: std::marker::PhantomData<&'a str>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            root: Table {
                entries: Vec::new(),
                span: Span { line: 1, col: 1 },
            },
            current: Vec::new(),
            _input: std::marker::PhantomData,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// Skips whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ') | Some('\t') | Some('\n') | Some('\r') => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Requires end-of-line (allowing trailing whitespace and a comment).
    fn expect_eol(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        if self.peek() == Some('#') {
            while !matches!(self.peek(), None | Some('\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some('\r') => {
                self.bump();
                if self.peek() == Some('\n') {
                    self.bump();
                }
                Ok(())
            }
            Some(c) => err(self.span(), format!("expected end of line, found `{c}`")),
        }
    }

    fn parse_document(&mut self) -> Result<(), TomlError> {
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Ok(()),
                Some('[') => self.parse_header()?,
                Some(_) => self.parse_key_value()?,
            }
        }
    }

    fn parse_key(&mut self) -> Result<(String, Span), TomlError> {
        let span = self.span();
        match self.peek() {
            Some('"') => {
                let s = self.parse_basic_string()?;
                Ok((s, span))
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok((s, span))
            }
            Some(c) => err(span, format!("expected a key, found `{c}`")),
            None => err(span, "expected a key, found end of file"),
        }
    }

    fn parse_header(&mut self) -> Result<(), TomlError> {
        let header_span = self.span();
        self.bump(); // '['
        let is_array = self.peek() == Some('[');
        if is_array {
            self.bump();
        }
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            let (key, _) = self.parse_key()?;
            path.push(key);
            self.skip_inline_ws();
            match self.peek() {
                Some('.') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    break;
                }
                Some(c) => {
                    return err(self.span(), format!("expected `.` or `]`, found `{c}`"));
                }
                None => return err(self.span(), "unterminated table header"),
            }
        }
        if is_array {
            match self.peek() {
                Some(']') => {
                    self.bump();
                }
                _ => {
                    return err(
                        self.span(),
                        "expected `]]` to close the array-of-tables header",
                    )
                }
            }
        }
        self.expect_eol()?;
        // Materialize the path: intermediate segments descend into the last
        // element of an array of tables.
        self.open_table(&path, is_array, header_span)?;
        self.current = path;
        Ok(())
    }

    fn open_table(&mut self, path: &[String], is_array: bool, span: Span) -> Result<(), TomlError> {
        let mut table = &mut self.root;
        for (i, seg) in path.iter().enumerate() {
            let last = i + 1 == path.len();
            let exists = table.get(seg).is_some();
            if !exists {
                let fresh = if last && is_array {
                    Value::TableArray(vec![Table {
                        entries: Vec::new(),
                        span,
                    }])
                } else {
                    Value::Table(Table {
                        entries: Vec::new(),
                        span,
                    })
                };
                table.insert(seg.clone(), span, Spanned { value: fresh, span })?;
                // Descend into what was just created.
            } else if last {
                // Re-opening an existing entry.
                let entry = table
                    .entries
                    .iter_mut()
                    .find(|(k, _, _)| k == seg)
                    .expect("checked above");
                match &mut entry.2.value {
                    Value::TableArray(ts) if is_array => {
                        ts.push(Table {
                            entries: Vec::new(),
                            span,
                        });
                    }
                    Value::TableArray(_) => {
                        return err(
                            span,
                            format!("`{seg}` is an array of tables; use `[[{seg}]]`"),
                        );
                    }
                    Value::Table(_) => {
                        return err(span, format!("table `{seg}` defined twice"));
                    }
                    other => {
                        return err(span, format!("`{seg}` is already a {}", other.type_name()));
                    }
                }
            }
            let entry = table
                .entries
                .iter_mut()
                .find(|(k, _, _)| k == seg)
                .expect("inserted or found above");
            table = match &mut entry.2.value {
                Value::Table(t) => t,
                Value::TableArray(ts) => ts.last_mut().expect("table arrays are never empty"),
                other => {
                    return err(
                        span,
                        format!("`{seg}` is a {}, not a table", other.type_name()),
                    );
                }
            };
        }
        Ok(())
    }

    fn parse_key_value(&mut self) -> Result<(), TomlError> {
        let (key, key_span) = self.parse_key()?;
        self.skip_inline_ws();
        if self.peek() == Some('.') {
            return err(
                self.span(),
                format!("dotted keys are not supported; use a `[{key}.…]` table header"),
            );
        }
        match self.peek() {
            Some('=') => {
                self.bump();
            }
            _ => return err(self.span(), format!("expected `=` after key `{key}`")),
        }
        self.skip_inline_ws();
        let value = self.parse_value()?;
        self.expect_eol()?;
        let path = self.current.clone();
        let table = self.current_table_mut(&path, key_span)?;
        table.insert(key, key_span, value)
    }

    fn current_table_mut(&mut self, path: &[String], span: Span) -> Result<&mut Table, TomlError> {
        let mut table = &mut self.root;
        for seg in path {
            let entry = table
                .entries
                .iter_mut()
                .find(|(k, _, _)| k == seg)
                .expect("the header materialized this path");
            table = match &mut entry.2.value {
                Value::Table(t) => t,
                Value::TableArray(ts) => ts.last_mut().expect("table arrays are never empty"),
                other => {
                    return err(
                        span,
                        format!("`{seg}` is a {}, not a table", other.type_name()),
                    );
                }
            };
        }
        Ok(table)
    }

    fn parse_value(&mut self) -> Result<Spanned, TomlError> {
        let span = self.span();
        match self.peek() {
            Some('"') => {
                let s = self.parse_basic_string()?;
                Ok(Spanned {
                    value: Value::Str(s),
                    span,
                })
            }
            Some('\'') => err(span, "literal strings are not supported; use \"…\""),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        Some(']') => {
                            self.bump();
                            break;
                        }
                        None => return err(self.span(), "unterminated array"),
                        _ => {}
                    }
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {
                            self.bump();
                            break;
                        }
                        Some(c) => {
                            return err(
                                self.span(),
                                format!("expected `,` or `]` in array, found `{c}`"),
                            );
                        }
                        None => return err(self.span(), "unterminated array"),
                    }
                }
                Ok(Spanned {
                    value: Value::Array(items),
                    span,
                })
            }
            Some('{') => err(span, "inline tables are not supported; use a table header"),
            Some('t') | Some('f') => {
                let word = self.parse_bare_word();
                match word.as_str() {
                    "true" => Ok(Spanned {
                        value: Value::Bool(true),
                        span,
                    }),
                    "false" => Ok(Spanned {
                        value: Value::Bool(false),
                        span,
                    }),
                    other => err(span, format!("expected a value, found `{other}`")),
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(span),
            Some(c) => err(span, format!("expected a value, found `{c}`")),
            None => err(span, "expected a value, found end of file"),
        }
    }

    fn parse_bare_word(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn parse_number(&mut self, span: Span) -> Result<Spanned, TomlError> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E' | '_') {
                if c != '_' {
                    s.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        let is_float = s.contains('.') || s.contains('e') || s.contains('E');
        if is_float {
            match s.parse::<f64>() {
                Ok(v) => Ok(Spanned {
                    value: Value::Float(v),
                    span,
                }),
                Err(_) => err(span, format!("invalid float `{s}`")),
            }
        } else {
            match s.parse::<i64>() {
                Ok(v) => Ok(Spanned {
                    value: Value::Int(v),
                    span,
                }),
                Err(_) => err(span, format!("invalid integer `{s}`")),
            }
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, TomlError> {
        let open = self.span();
        self.bump(); // '"'
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return err(open, "unterminated string"),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some(c) => return err(self.span(), format!("unsupported escape `\\{c}`")),
                    None => return err(open, "unterminated string"),
                },
                Some(c) => s.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
# a comment
[plan]
name = "fig4"
steps = 8
bid = 1.5
smoke = false
ranks = [1, 8, 27]

[[stage]]
name = "run"

[stage.sweep]
platform = ["ec2", "puma"]

[[stage]]
name = "report"
"#;
        let t = parse(doc).expect("parses");
        let plan = match &t.get("plan").unwrap().value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(plan.get("name").unwrap().value, Value::Str("fig4".into()));
        assert_eq!(plan.get("steps").unwrap().value, Value::Int(8));
        assert_eq!(plan.get("bid").unwrap().value, Value::Float(1.5));
        assert_eq!(plan.get("smoke").unwrap().value, Value::Bool(false));
        let stages = match &t.get("stage").unwrap().value {
            Value::TableArray(ts) => ts,
            other => panic!("{other:?}"),
        };
        assert_eq!(stages.len(), 2);
        let sweep = match &stages[0].get("sweep").unwrap().value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            sweep.get("platform").unwrap().value,
            Value::Array(_)
        ));
        assert!(stages[1].get("sweep").is_none());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse("[plan]\nname <- \"x\"\n").unwrap_err();
        assert_eq!(e.span.line, 2);
        assert_eq!(e.span.col, 6);
        assert!(e.msg.contains("expected `=` after key `name`"), "{e}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.span.line, 2);
        assert!(e.msg.contains("duplicate key `a`"), "{e}");
    }

    #[test]
    fn unsupported_toml_fails_loudly() {
        assert!(parse("x = { a = 1 }\n")
            .unwrap_err()
            .msg
            .contains("inline tables"));
        assert!(parse("x = 'literal'\n")
            .unwrap_err()
            .msg
            .contains("literal strings"));
        assert!(parse("a.b = 1\n").unwrap_err().msg.contains("dotted keys"));
    }

    #[test]
    fn multiline_arrays_parse() {
        let doc = "xs = [\n  1,\n  2, # comment\n  3,\n]\n";
        let t = parse(doc).unwrap();
        match &t.get("xs").unwrap().value {
            Value::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reopening_a_table_is_an_error() {
        let e = parse("[a]\nx = 1\n[a]\ny = 2\n").unwrap_err();
        assert!(e.msg.contains("table `a` defined twice"), "{e}");
    }
}
