//! Artifact-cache behavior: a second run is served entirely from the cache
//! byte-identically, worker count never changes the outcome, and corrupt or
//! stale entries are quarantined by re-execution instead of being trusted.

use hetero_plan::exec::{execute_plan, instance_keys, ExecOptions, PlanOutcome};
use hetero_plan::load_str;
use hetero_plan::resolver::ResolvedPlan;
use std::path::{Path, PathBuf};

const PROBE: &str = r#"
[plan]
name = "cache-probe"
description = "Tiny weak-scaling sweep used by the cache tests"

[options]
per_rank_axis = 3
max_k = 2
steps = 3
discard = 1
fidelity = "modeled"
seed = 2012

[[stage]]
name = "partition"
kind = "partition"

[stage.sweep]
ranks = "ladder"

[[stage]]
name = "sweep"
kind = "run"
app = "rd"
needs = ["partition"]

[stage.sweep]
ranks = "ladder"
platform = ["puma", "ec2"]

[[stage]]
name = "figure"
kind = "report"
template = "weak-scaling"
needs = ["sweep"]
"#;

fn probe_plan() -> ResolvedPlan {
    load_str(PROBE).expect("probe plan is valid")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cached_opts(dir: &Path) -> ExecOptions {
    ExecOptions {
        workers: 2,
        cache_dir: Some(dir.to_path_buf()),
    }
}

fn artifacts_of(outcome: &PlanOutcome) -> Vec<String> {
    outcome
        .results
        .iter()
        .map(|r| serde_json::to_string(&r.artifact).expect("artifact serializes"))
        .collect()
}

#[test]
fn second_run_is_served_entirely_from_the_cache() {
    let rp = probe_plan();
    let dir = fresh_dir("second-run");
    let opts = cached_opts(&dir);

    let first = execute_plan(&rp, &opts).expect("first run");
    assert!(
        first.results.iter().all(|r| !r.cached),
        "cold cache must execute everything"
    );

    let second = execute_plan(&rp, &opts).expect("second run");
    assert!(
        second.results.iter().all(|r| r.cached),
        "warm cache must serve everything"
    );
    assert_eq!(first.reports, second.reports);
    assert_eq!(artifacts_of(&first), artifacts_of(&second));
}

#[test]
fn corrupt_and_stale_entries_are_quarantined_by_re_execution() {
    let rp = probe_plan();
    let dir = fresh_dir("quarantine");
    let opts = cached_opts(&dir);
    let first = execute_plan(&rp, &opts).expect("first run");

    let keys = instance_keys(&rp).expect("keys");
    let path_of = |i: usize| {
        let hash = keys[i].rsplit('/').next().expect("hash suffix");
        dir.join(format!("{hash}.json"))
    };
    let idx_of = |prefix: &str| {
        rp.instances
            .iter()
            .position(|inst| inst.id.starts_with(prefix))
            .unwrap_or_else(|| panic!("no instance with prefix {prefix}"))
    };

    // Torn write: not JSON at all.
    let corrupt = idx_of("sweep[");
    std::fs::write(path_of(corrupt), "not json {").expect("corrupt entry");
    // Stale generation: valid envelope under a retired key.
    let stale = idx_of("figure");
    std::fs::write(
        path_of(stale),
        r#"{"schema":"hetero-plan/stage/v0","key":"old","id":"figure","artifact":{}}"#,
    )
    .expect("stale entry");

    let second = execute_plan(&rp, &opts).expect("second run");
    for (i, r) in second.results.iter().enumerate() {
        let expect_cached = i != corrupt && i != stale;
        assert_eq!(
            r.cached, expect_cached,
            "instance `{}` cached={} (want {})",
            r.id, r.cached, expect_cached
        );
    }
    // Quarantined entries are recomputed to the same bytes and overwritten.
    assert_eq!(first.reports, second.reports);
    assert_eq!(artifacts_of(&first), artifacts_of(&second));
    let third = execute_plan(&rp, &opts).expect("third run");
    assert!(third.results.iter().all(|r| r.cached));
}

#[test]
fn outcome_is_independent_of_worker_count() {
    let rp = probe_plan();
    let solo = execute_plan(
        &rp,
        &ExecOptions {
            workers: 1,
            cache_dir: None,
        },
    )
    .expect("1 worker");
    let pool = execute_plan(
        &rp,
        &ExecOptions {
            workers: 7,
            cache_dir: None,
        },
    )
    .expect("7 workers");
    assert_eq!(solo.reports, pool.reports);
    assert_eq!(artifacts_of(&solo), artifacts_of(&pool));
    let ids = |o: &PlanOutcome| o.results.iter().map(|r| r.id.clone()).collect::<Vec<_>>();
    assert_eq!(ids(&solo), ids(&pool));
}
