//! Byte-identity pins: the checked-in campaign plans must regenerate the
//! exact report text the legacy `core::scenarios` entry points produce.
//! These are the tests the CI `plans` lane leans on — if a plan, the
//! resolver, or the executor drifts from the hand-rolled experiment
//! drivers, the diff shows up here first.

use hetero_hpc::report::{render_solver_variants, render_table3, render_weak_scaling};
use hetero_hpc::scenarios::{fig4, solver_variants, table3, ResilienceOptions, ScenarioOptions};
use hetero_plan::exec::{execute_plan, ExecOptions, PlanOutcome};
use hetero_plan::load_str;

fn run_repo_plan(file: &str) -> PlanOutcome {
    let path = format!("{}/../../plans/{file}", env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let rp = load_str(&doc).unwrap_or_else(|e| panic!("{file}: line {}: {}", e.span.line, e.msg));
    execute_plan(&rp, &ExecOptions::default()).unwrap_or_else(|e| panic!("{file}: {e:?}"))
}

fn report_text(outcome: &PlanOutcome, stage: &str) -> String {
    outcome
        .reports
        .iter()
        .find(|(name, _)| name == stage)
        .unwrap_or_else(|| panic!("no report from stage `{stage}`"))
        .1
        .clone()
}

#[test]
fn fig4_smoke_plan_matches_legacy_scenario_bytes() {
    let outcome = run_repo_plan("fig4_smoke.toml");
    let expected = render_weak_scaling(&fig4(&ScenarioOptions::smoke()));
    assert_eq!(report_text(&outcome, "figure"), expected);
}

#[test]
fn table3_smoke_plan_matches_legacy_scenario_bytes() {
    let outcome = run_repo_plan("table3_smoke.toml");
    let expected = render_table3(&table3(&ResilienceOptions::smoke()));
    assert_eq!(report_text(&outcome, "table"), expected);
}

#[test]
fn solver_variants_plan_matches_legacy_example_bytes() {
    let outcome = run_repo_plan("solver_variants.toml");
    let opts = ScenarioOptions {
        steps: 4,
        discard: 1,
        ..ScenarioOptions::paper()
    };
    let expected = render_solver_variants(&solver_variants(&[27, 216, 1000], &opts));
    assert_eq!(report_text(&outcome, "table"), expected);
}

#[test]
fn fig4_paper_plan_matches_legacy_scenario_bytes() {
    let outcome = run_repo_plan("fig4.toml");
    let expected = render_weak_scaling(&fig4(&ScenarioOptions::paper()));
    assert_eq!(report_text(&outcome, "figure"), expected);
}

/// The full paper-sized Table III (600-step campaigns, five cadences, eight
/// seeds per cell) — heavy, so the CI plans lane runs it explicitly with
/// `--ignored` in release.
#[test]
#[ignore = "paper-sized resilience campaign; run in release via the CI plans lane"]
fn table3_paper_plan_matches_legacy_scenario_bytes() {
    let outcome = run_repo_plan("table3.toml");
    let expected = render_table3(&table3(&ResilienceOptions::paper()));
    assert_eq!(report_text(&outcome, "table"), expected);
}
