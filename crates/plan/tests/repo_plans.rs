//! Every checked-in plan under `plans/` must lint clean and resolve to the
//! shape the experiment sections advertise. This is the same pass the CI
//! `plans` lane runs through the `plan_lint` example.

use hetero_plan::load_str;
use hetero_plan::resolver::ResolvedPlan;
use std::collections::BTreeMap;

fn load_all() -> BTreeMap<String, ResolvedPlan> {
    let dir = format!("{}/../../plans", env!("CARGO_MANIFEST_DIR"));
    let mut plans = BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("plans/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_string();
        let doc = std::fs::read_to_string(&path).expect("readable plan");
        let rp = load_str(&doc).unwrap_or_else(|e| {
            panic!(
                "{name}: line {}, column {}: {}",
                e.span.line, e.span.col, e.msg
            )
        });
        plans.insert(name, rp);
    }
    plans
}

#[test]
fn all_checked_in_plans_resolve() {
    let plans = load_all();
    assert!(
        plans.len() >= 5,
        "expected the five checked-in plans, found {}",
        plans.len()
    );
    // Plan names are unique across the directory (cache keys fold the
    // request, not the plan name, but reports cite them).
    let mut names: Vec<&str> = plans.values().map(|rp| rp.plan.name.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate plan names");
}

#[test]
fn checked_in_plans_have_the_advertised_shape() {
    let plans = load_all();
    let count = |file: &str| {
        plans
            .get(file)
            .unwrap_or_else(|| panic!("missing {file}"))
            .instances
            .len()
    };
    // partition(10) + 4 platforms x 10 rungs + compare + report
    assert_eq!(count("fig4.toml"), 52);
    // partition(2) + 4 platforms x 2 rungs + compare + report
    assert_eq!(count("fig4_smoke.toml"), 12);
    // partition(10) + on-demand(10) + spot(10 x 5 cadences) + compare + report
    assert_eq!(count("table3.toml"), 72);
    // partition(2) + on-demand(2) + spot(2 x 3 cadences) + compare + report
    assert_eq!(count("table3_smoke.toml"), 12);
    // 4 platforms x 3 rank counts x 3 variants + report
    assert_eq!(count("solver_variants.toml"), 37);
}
