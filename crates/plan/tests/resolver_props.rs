//! Property-based tests of the resolver's contracts: sweep expansion
//! count identities, deterministic topological order, and cycle /
//! self-dependency detection with exact error text.

use hetero_plan::load_str;
use proptest::prelude::*;

/// Builds a two-stage plan (run + report) whose run stage sweeps the axis
/// subsets selected by the bit masks.
fn doc_with_axes(rank_mask: u16, platform_mask: u8, variant_mask: u8) -> (String, usize) {
    let ranks: Vec<u64> = (1..=10u64)
        .filter(|k| rank_mask & (1 << (k - 1)) != 0)
        .map(|k| k * k * k)
        .collect();
    let platforms: Vec<&str> = ["puma", "ellipse", "lagrange", "ec2"]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| platform_mask & (1 << i) != 0)
        .map(|(_, p)| p)
        .collect();
    let variants: Vec<&str> = ["blocking", "overlapped", "pipelined"]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| variant_mask & (1 << i) != 0)
        .map(|(_, v)| v)
        .collect();
    let product = ranks.len() * platforms.len() * variants.len();
    let quote = |xs: &[&str]| {
        xs.iter()
            .map(|x| format!("\"{x}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let doc = format!(
        r#"
[plan]
name = "prop"
description = "sweep expansion property"

[[stage]]
name = "sweep"
kind = "run"
app = "rd"

[stage.sweep]
ranks = [{}]
platform = [{}]
variant = [{}]

[[stage]]
name = "report"
kind = "report"
template = "weak-scaling"
needs = ["sweep"]
"#,
        ranks
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        quote(&platforms),
        quote(&variants),
    );
    (doc, product)
}

/// A linear chain of `n` partition stages, each needing the next, with the
/// last one closed back onto the first.
fn cycle_doc(n: usize) -> String {
    let mut doc = String::from("[plan]\nname = \"cyc\"\ndescription = \"cycle\"\n");
    for i in 0..n {
        let needs = if i + 1 < n {
            format!("needs = [\"s{}\"]\n", i + 1)
        } else {
            "needs = [\"s0\"]\n".to_string()
        };
        doc.push_str(&format!(
            "\n[[stage]]\nname = \"s{i}\"\nkind = \"partition\"\n{needs}\n[stage.sweep]\nranks = [1]\n"
        ));
    }
    doc
}

proptest! {
    #[test]
    fn sweep_expansion_count_is_the_axis_product(
        rank_mask in 1u16..1024,
        platform_mask in 1u8..16,
        variant_mask in 1u8..8,
    ) {
        let (doc, product) = doc_with_axes(rank_mask, platform_mask, variant_mask);
        let rp = load_str(&doc).expect("valid plan");
        // |axes product| == resolved run-stage count; +1 for the report.
        prop_assert_eq!(rp.instances.len(), product + 1);
        prop_assert_eq!(rp.topo.len(), rp.instances.len());
    }

    #[test]
    fn topological_order_is_deterministic_and_valid(
        rank_mask in 1u16..1024,
        platform_mask in 1u8..16,
    ) {
        let (doc, _) = doc_with_axes(rank_mask, platform_mask, 1);
        let a = load_str(&doc).expect("valid plan");
        let b = load_str(&doc).expect("valid plan");
        // Resolution is a pure function of the document.
        prop_assert_eq!(&a.topo, &b.topo);
        // The order is a valid linearization of the instance DAG.
        let mut seen = vec![false; a.instances.len()];
        for &i in &a.topo {
            for &d in &a.instances[i].deps {
                prop_assert!(seen[d], "dep {d} scheduled after {i}");
            }
            seen[i] = true;
        }
    }

    #[test]
    fn dependency_cycles_report_exact_rank_ordered_text(n in 2usize..6) {
        let e = load_str(&cycle_doc(n)).expect_err("cycle must be rejected");
        let mut names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        names.push("s0".to_string());
        prop_assert_eq!(e.msg, format!("dependency cycle: {}", names.join(" -> ")));
    }

    #[test]
    fn self_dependencies_report_exact_text(i in 0usize..4) {
        // Four independent stages; stage i also needs itself.
        let mut doc = String::from("[plan]\nname = \"selfdep\"\ndescription = \"self\"\n");
        for j in 0..4 {
            let needs = if j == i {
                format!("needs = [\"s{j}\"]\n")
            } else {
                String::new()
            };
            doc.push_str(&format!(
                "\n[[stage]]\nname = \"s{j}\"\nkind = \"partition\"\n{needs}\n[stage.sweep]\nranks = [1]\n"
            ));
        }
        let e = load_str(&doc).expect_err("self-dependency must be rejected");
        prop_assert_eq!(e.msg, format!("stage `s{i}` depends on itself"));
    }
}
