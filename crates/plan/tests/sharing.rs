//! Prepared-scenario sharing through the plan executor: every report of
//! the checked-in smoke plans must be byte-identical with sharing on or
//! off, at one worker or four. The executor resolves every instance's
//! `hetero-prep/key/v1` key up front and hands same-key instances one
//! shared [`hetero_hpc::PreparedScenario`]; these tests are the proof
//! that the sharing — and the worker-pool scheduling around it — never
//! reaches the bytes. The core-level battery is `tests/prep_sharing.rs`.

use hetero_hpc::prep;
use hetero_plan::exec::{execute_plan, ExecOptions, PlanOutcome};
use hetero_plan::load_str;
use std::sync::Mutex;

/// Sharing's disable switch is process-global: serialize the lanes.
static LOCK: Mutex<()> = Mutex::new(());

fn run_repo_plan(file: &str, workers: usize) -> PlanOutcome {
    let path = format!("{}/../../plans/{file}", env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let rp = load_str(&doc).unwrap_or_else(|e| panic!("{file}: line {}: {}", e.span.line, e.msg));
    let opts = ExecOptions {
        workers,
        ..ExecOptions::default()
    };
    execute_plan(&rp, &opts).unwrap_or_else(|e| panic!("{file}: {e:?}"))
}

/// All report texts of `file`, concatenated in stage order, for every
/// (sharing, workers) lane of the matrix.
fn report_lanes(file: &str) -> Vec<String> {
    let mut lanes = Vec::new();
    for workers in [1, 4] {
        for share in [true, false] {
            let _off = (!share).then(prep::disable_sharing_scoped);
            let outcome = run_repo_plan(file, workers);
            lanes.push(
                outcome
                    .reports
                    .iter()
                    .map(|(name, text)| format!("== {name} ==\n{text}"))
                    .collect::<String>(),
            );
        }
    }
    lanes
}

#[test]
fn fig4_smoke_reports_identical_across_sharing_and_workers() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let lanes = report_lanes("fig4_smoke.toml");
    assert!(!lanes[0].is_empty());
    for (i, lane) in lanes.iter().enumerate() {
        assert_eq!(lane, &lanes[0], "lane {i} diverged");
    }
}

#[test]
fn table3_smoke_reports_identical_across_sharing_and_workers() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let lanes = report_lanes("table3_smoke.toml");
    assert!(!lanes[0].is_empty());
    for (i, lane) in lanes.iter().enumerate() {
        assert_eq!(lane, &lanes[0], "lane {i} diverged");
    }
}
