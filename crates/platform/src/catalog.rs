//! The four platforms of the study, fully parameterized.
//!
//! Hardware figures come from the paper's Section V / Table I; sustained
//! per-core rates are calibrated so that the simulated single-rank RD
//! iteration on `ec2` lands near Table II's 4.83 s, with the other CPUs
//! scaled by generation (2006 Opterons ~ half a 2011 Xeon E5 on memory-bound
//! FEM kernels). Absolute times are calibration, not measurement; the
//! *relations* between platforms are what the reproduction validates.

use crate::cost::{Billing, CostModel};
use crate::limits::ExecutionLimits;
use crate::scheduler::{QueueModel, SchedulerKind};
use crate::spec::{AccessKind, PlatformSpec};
use hetero_simmpi::{ComputeModel, NetworkModel};

/// `puma`: the in-house 32-node cluster — the application's "home"
/// environment. 2 x dual-core AMD Opteron 2214 per node, 8 GB RAM, 1 GbE,
/// PBS/Torque, fully pre-provisioned for LifeV.
pub fn puma() -> PlatformSpec {
    PlatformSpec {
        key: "puma".into(),
        description: "in-house 32-node cluster (LifeV home environment)".into(),
        cpu_model: "2x AMD Opteron 2214 (2.2 GHz)".into(),
        cores_per_node: 4,
        max_nodes: 32,
        ram_per_core_gib: 1.0,
        compute: ComputeModel::new(0.50e9, 1.1e9),
        network: NetworkModel::gigabit_ethernet(),
        access: AccessKind::UserSpace,
        scheduler: SchedulerKind::PbsTorque,
        queue: QueueModel {
            base: 300.0,
            per_node: 30.0,
            spread: 2.0,
            size_exponent: 1.1,
        },
        cost: CostModel {
            billing: Billing::EstimatedPerCoreHour(0.023),
            note: "estimated from capital cost and operating expenses".into(),
        },
        limits: ExecutionLimits::capacity_only(128),
        // Aging commodity Opterons, no vendor support contract.
        node_mtbf_hours: 900.0,
    }
}

/// `ellipse`: the 256-node university cluster. Same interconnect class as
/// puma, slightly newer Opterons, SGE configured for serial batches only,
/// flat 5 c/core-hour, and an mpiexec launch ceiling around 512 daemons.
pub fn ellipse() -> PlatformSpec {
    PlatformSpec {
        key: "ellipse".into(),
        description: "university 256-node fee-for-use cluster".into(),
        cpu_model: "2x AMD Opteron 2218 (2.6 GHz)".into(),
        cores_per_node: 4,
        max_nodes: 256,
        ram_per_core_gib: 1.0,
        compute: ComputeModel::new(0.56e9, 1.2e9),
        network: NetworkModel::gigabit_ethernet(),
        access: AccessKind::UserSpace,
        scheduler: SchedulerKind::SgeSerialOnly,
        queue: QueueModel {
            base: 1800.0,
            per_node: 45.0,
            spread: 3.0,
            size_exponent: 1.2,
        },
        cost: CostModel {
            billing: Billing::PerCoreHour(0.05),
            note: "flat university rate".into(),
        },
        limits: ExecutionLimits {
            max_cores: 1024,
            max_launchable_ranks: Some(512),
            adapter_volume_cap: None,
        },
        // Same hardware class as puma, but professionally operated.
        node_mtbf_hours: 1200.0,
    }
}

/// Aggregate per-iteration fabric volume (bytes) above which lagrange's
/// InfiniBand adapters hit their configured cap. Calibrated to sit between
/// the paper's working 343-rank runs and the failing 512-rank runs.
pub const LAGRANGE_IB_VOLUME_CAP: f64 = 2.6e9;

/// `lagrange`: the CILEA HPC cluster (once #136 on the TOP500). HP blades
/// with 2 x 6-core Xeon X5660, 24 GB RAM, InfiniBand 4X DDR, PBS Pro,
/// EUR 0.15/core-hour (~ $0.1919 at the study's exchange rate).
pub fn lagrange() -> PlatformSpec {
    PlatformSpec {
        key: "lagrange".into(),
        description: "CILEA supercomputer (grid access), IB 4X DDR".into(),
        cpu_model: "2x Intel Xeon X5660 (2.8 GHz)".into(),
        cores_per_node: 12,
        max_nodes: 172,
        ram_per_core_gib: 2.0,
        compute: ComputeModel::new(1.0e9, 2.2e9),
        network: NetworkModel::infiniband_ddr(),
        access: AccessKind::UserSpace,
        scheduler: SchedulerKind::PbsPro,
        queue: QueueModel {
            base: 3600.0,
            per_node: 90.0,
            spread: 4.0,
            size_exponent: 1.3,
        },
        cost: CostModel {
            billing: Billing::PerCoreHour(0.1919),
            note: "EUR 0.15/core-h at the study's exchange rate".into(),
        },
        limits: ExecutionLimits {
            max_cores: 2064,
            max_launchable_ranks: None,
            adapter_volume_cap: Some(LAGRANGE_IB_VOLUME_CAP),
        },
        // Curated TOP500-class blades under service contract.
        node_mtbf_hours: 2500.0,
    }
}

/// `ec2`: Amazon cc2.8xlarge Cluster Compute instances. 2 x 8-core Xeon E5,
/// 60.5 GB RAM, virtualized 10 GbE with placement groups, root access,
/// direct shell execution; $2.40/instance-hour on demand, $0.54 spot during
/// the study. 63 instances sufficed for the 1000-rank runs.
pub fn ec2() -> PlatformSpec {
    PlatformSpec {
        key: "ec2".into(),
        description: "Amazon EC2 cc2.8xlarge IaaS assembly".into(),
        cpu_model: "2x Intel Xeon E5 (2.6 GHz, cc2.8xlarge)".into(),
        cores_per_node: 16,
        max_nodes: 63,
        ram_per_core_gib: 3.8,
        compute: ComputeModel::new(1.1e9, 2.3e9),
        network: NetworkModel::ten_gig_ethernet_ec2(),
        access: AccessKind::Root,
        scheduler: SchedulerKind::DirectShell,
        queue: QueueModel::on_demand(90.0, 2.0),
        cost: CostModel {
            billing: Billing::PerNodeHour {
                rate: 2.40,
                cores_per_node: 16,
            },
            note: "on-demand instance rate during the study".into(),
        },
        limits: ExecutionLimits::capacity_only(63 * 16),
        // Datacenter hardware behind a hypervisor; instance loss is
        // dominated by spot revocation, not node death.
        node_mtbf_hours: 2000.0,
    }
}

/// The EC2 spot-instance hourly rate observed during the study.
pub const EC2_SPOT_NODE_HOUR: f64 = 0.54;

/// The cost model of an all-spot EC2 assembly (Table II's "est. cost").
pub fn ec2_spot_cost() -> CostModel {
    CostModel {
        billing: Billing::PerNodeHour {
            rate: EC2_SPOT_NODE_HOUR,
            cores_per_node: 16,
        },
        note: "spot-request bid price during the study".into(),
    }
}

/// All four platforms in the paper's presentation order.
pub fn all_platforms() -> Vec<PlatformSpec> {
    vec![puma(), ellipse(), lagrange(), ec2()]
}

/// Looks a platform up by key.
pub fn by_key(key: &str) -> Option<PlatformSpec> {
    all_platforms().into_iter().find(|p| p.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_platforms_with_paper_keys() {
        let keys: Vec<String> = all_platforms().into_iter().map(|p| p.key).collect();
        assert_eq!(keys, vec!["puma", "ellipse", "lagrange", "ec2"]);
        assert!(by_key("ec2").is_some());
        assert!(by_key("nimbus").is_none());
    }

    #[test]
    fn capacity_matches_paper_truncations() {
        // puma tops out at 125 of the paper's rank ladder; ellipse at 512;
        // lagrange at 343 (volume, checked elsewhere); ec2 reaches 1000.
        assert!(puma().check_limits(125, 0.0).is_ok());
        assert!(puma().check_limits(216, 0.0).is_err());
        assert!(ellipse().check_limits(512, 0.0).is_ok());
        assert!(ellipse().check_limits(729, 0.0).is_err());
        assert!(ec2().check_limits(1000, 0.0).is_ok());
    }

    #[test]
    fn ec2_fits_1000_ranks_on_63_instances() {
        let e = ec2();
        assert_eq!(e.nodes_for(1000), 63);
        assert!(e.total_cores() >= 1000);
    }

    #[test]
    fn newer_cpus_are_faster() {
        assert!(ec2().compute.flops_per_sec > puma().compute.flops_per_sec);
        assert!(lagrange().compute.flops_per_sec > ellipse().compute.flops_per_sec);
    }

    #[test]
    fn interconnect_ordering() {
        // Latency: IB << 1GbE < virtualized 10GbE; bandwidth: IB ~ 10GbE >> 1GbE.
        assert!(lagrange().network.latency < puma().network.latency);
        assert!(ec2().network.latency > puma().network.latency);
        assert!(ec2().network.node_bw > 5.0 * puma().network.node_bw);
    }

    #[test]
    fn core_hour_rates_match_the_paper() {
        assert!((puma().cost_of(100, 3600.0) - 2.3).abs() < 1e-9);
        assert!((ellipse().cost_of(100, 3600.0) - 5.0).abs() < 1e-9);
        assert!((lagrange().cost_of(100, 3600.0) - 19.19).abs() < 1e-9);
        // ec2: 100 ranks -> 7 instances at $2.40.
        assert!((ec2().cost_of(100, 3600.0) - 16.8).abs() < 1e-9);
    }

    #[test]
    fn cloud_is_available_much_sooner_than_grid() {
        for ranks in [16usize, 216, 1000] {
            let cloud = ec2().queue_wait(ranks, 5);
            let grid = lagrange().queue_wait(ranks.min(2000), 5);
            assert!(cloud < grid, "ranks = {ranks}: {cloud} vs {grid}");
        }
    }
}
