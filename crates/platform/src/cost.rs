//! Billing models and the paper's exact rates.
//!
//! The paper's cost analysis (Figures 6 and 7, Table II) rests on one
//! asymmetry: traditional resources charge per *core*-hour, while "Amazon
//! charges the users for the entire machine" — whole 16-core instances —
//! so under-filling nodes inflates the EC2 cost, visible in the first two
//! points of both cost figures.

use serde::{Deserialize, Serialize};

/// How a platform charges for compute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Billing {
    /// Dollars per core per hour, charged for exactly the cores used.
    PerCoreHour(f64),
    /// Dollars per node per hour, charged for whole nodes.
    PerNodeHour {
        /// Node-hour rate in dollars.
        rate: f64,
        /// Cores on each billed node.
        cores_per_node: usize,
    },
    /// Internal resource with an *estimated* (capital + operating) rate per
    /// core-hour, not actually invoiced.
    EstimatedPerCoreHour(f64),
}

/// A platform's cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The billing scheme.
    pub billing: Billing,
    /// Human-readable provenance of the rate ("flat university rate",
    /// "EUR 0.15/core-h at 2012 exchange rates", ...).
    pub note: String,
}

impl CostModel {
    /// Dollars charged for running `ranks` ranks for `seconds` of wall time
    /// (one rank per core).
    pub fn cost(&self, ranks: usize, seconds: f64) -> f64 {
        let hours = seconds / 3600.0;
        match self.billing {
            Billing::PerCoreHour(rate) | Billing::EstimatedPerCoreHour(rate) => {
                rate * ranks as f64 * hours
            }
            Billing::PerNodeHour {
                rate,
                cores_per_node,
            } => rate * ranks.div_ceil(cores_per_node) as f64 * hours,
        }
    }

    /// Effective dollars per core-hour at a given rank count (captures the
    /// whole-node billing penalty for under-filled nodes).
    pub fn effective_core_hour_rate(&self, ranks: usize) -> f64 {
        assert!(ranks > 0);
        self.cost(ranks, 3600.0) / ranks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_billed() -> CostModel {
        CostModel {
            billing: Billing::PerNodeHour {
                rate: 2.40,
                cores_per_node: 16,
            },
            note: String::new(),
        }
    }

    #[test]
    fn per_core_hour_scales_linearly() {
        let m = CostModel {
            billing: Billing::PerCoreHour(0.05),
            note: String::new(),
        };
        assert!((m.cost(100, 3600.0) - 5.0).abs() < 1e-12);
        assert!((m.cost(100, 1800.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn whole_node_billing_rounds_up() {
        let m = node_billed();
        // 17 ranks need 2 instances.
        assert!((m.cost(17, 3600.0) - 4.80).abs() < 1e-12);
        assert!((m.cost(16, 3600.0) - 2.40).abs() < 1e-12);
        assert!((m.cost(1, 3600.0) - 2.40).abs() < 1e-12);
    }

    #[test]
    fn table_ii_costs_reproduce() {
        // Table II, full configuration: 1000 ranks on 63 instances at
        // $2.40/h for 162.09 s per iteration -> $6.8077.
        let m = node_billed();
        let c = m.cost(1000, 162.09);
        assert!((c - 6.8077).abs() < 0.005, "{c}");
        // And the single-rank row: 4.83 s -> $0.0032.
        let c1 = m.cost(1, 4.83);
        assert!((c1 - 0.0032).abs() < 0.0002, "{c1}");
        // Spot estimate column: $0.54/instance-hour, 148.98 s -> $1.4079.
        let spot = CostModel {
            billing: Billing::PerNodeHour {
                rate: 0.54,
                cores_per_node: 16,
            },
            note: String::new(),
        };
        let cs = spot.cost(1000, 148.98);
        assert!((cs - 1.4079).abs() < 0.003, "{cs}");
    }

    #[test]
    fn effective_rate_penalizes_underfilled_nodes() {
        let m = node_billed();
        // A single rank pays the whole 16-core instance: 2.40/core-h.
        assert!((m.effective_core_hour_rate(1) - 2.40).abs() < 1e-12);
        // A full instance amortizes to 15 c/core-h (the paper's figure).
        assert!((m.effective_core_hour_rate(16) - 0.15).abs() < 1e-12);
        assert!((m.effective_core_hour_rate(1000) - 63.0 * 2.40 / 1000.0).abs() < 1e-12);
    }
}
