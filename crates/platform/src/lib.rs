//! # hetero-platform
//!
//! Models of the four heterogeneous target platforms of the `hetero-hpc`
//! reproduction — the paper's Section V ("Four heterogeneous target
//! platforms") and Table I turned into executable artifacts:
//!
//! * [`spec`] / [`catalog`] — hardware and environment specifications of
//!   `puma` (in-house 32-node 1 GbE cluster), `ellipse` (university 256-node
//!   1 GbE cluster), `lagrange` (CILEA InfiniBand supercomputer), and `ec2`
//!   (Amazon cc2.8xlarge instances);
//! * [`cost`] — per-core-hour vs whole-node billing, spot pricing, and the
//!   paper's exact rates (2.3 c, 5 c, 19.19 c per core-hour; $2.40 / $0.54
//!   per instance-hour);
//! * [`scheduler`] — queue-wait/availability models for PBS, the
//!   serial-only SGE, PBS Professional, and direct shell execution on IaaS;
//! * [`spot`] — the EC2 spot-market and placement-group model behind
//!   Table II ("we never succeeded in establishing a full 63-host
//!   configuration of spot request instances");
//! * [`provision`] — the capability/package dependency planner that
//!   regenerates Table I's gap analysis and Section VI's provisioning
//!   effort estimates (~8 man-hours on ellipse/lagrange, about a day on
//!   EC2);
//! * [`limits`] — the execution limits the paper ran into (ellipse's >512
//!   process launch failure, lagrange's InfiniBand data-volume cap).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod limits;
pub mod provision;
pub mod scheduler;
pub mod spec;
pub mod spot;

pub use catalog::{all_platforms, ec2, ellipse, lagrange, puma};
pub use cost::{Billing, CostModel};
pub use limits::{ExecutionLimits, LimitViolation};
pub use spec::{AccessKind, PlatformSpec};
