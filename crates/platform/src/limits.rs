//! The execution limits the paper ran into.
//!
//! "The former machine \[ellipse\] was not natively configured to execute the
//! parallel jobs and our tasks spanning above 512 processes could not be
//! launched (mpiexec was unable to initialize a huge number of remote MPI
//! daemons). On the \[latter\] target \[lagrange\], our simulation codes reached
//! the configured limit of data volume sent by the IB network adapters. As
//! a result, we could not execute tasks bigger than 343 processes there."

use serde::{Deserialize, Serialize};

/// Why a run cannot execute on a platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LimitViolation {
    /// The job needs more cores than the machine has.
    InsufficientCapacity {
        /// Cores requested.
        requested: usize,
        /// Cores available.
        available: usize,
    },
    /// The launcher cannot spawn this many remote daemons (ellipse's
    /// mpiexec failure above 512 processes).
    LauncherFailure {
        /// Ranks requested.
        requested: usize,
        /// Maximum launchable.
        max_ranks: usize,
    },
    /// Per-adapter data-volume cap exceeded (lagrange's InfiniBand limit).
    AdapterVolumeExceeded {
        /// Estimated bytes per node per iteration.
        estimated: f64,
        /// Configured cap.
        cap: f64,
    },
}

impl std::fmt::Display for LimitViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LimitViolation::InsufficientCapacity {
                requested,
                available,
            } => {
                write!(f, "requested {requested} cores but only {available} exist")
            }
            LimitViolation::LauncherFailure {
                requested,
                max_ranks,
            } => write!(
                f,
                "mpiexec cannot initialize {requested} remote daemons (limit ~{max_ranks})"
            ),
            LimitViolation::AdapterVolumeExceeded { estimated, cap } => write!(
                f,
                "estimated {estimated:.2e} B/node/iter exceeds the adapter volume cap {cap:.2e}"
            ),
        }
    }
}

/// A platform's execution limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionLimits {
    /// Hard core capacity (nodes x cores/node x allocable fraction).
    pub max_cores: usize,
    /// Launcher rank cap, if any (ellipse).
    pub max_launchable_ranks: Option<usize>,
    /// Per-node per-iteration traffic cap in bytes, if any (lagrange).
    pub adapter_volume_cap: Option<f64>,
}

impl ExecutionLimits {
    /// No limits beyond capacity.
    pub fn capacity_only(max_cores: usize) -> Self {
        ExecutionLimits {
            max_cores,
            max_launchable_ranks: None,
            adapter_volume_cap: None,
        }
    }

    /// Checks whether a job of `ranks` ranks, moving an estimated
    /// `bytes_per_node_per_iter` through each node's adapter per iteration,
    /// can run.
    pub fn check(&self, ranks: usize, bytes_per_node_per_iter: f64) -> Result<(), LimitViolation> {
        if ranks > self.max_cores {
            return Err(LimitViolation::InsufficientCapacity {
                requested: ranks,
                available: self.max_cores,
            });
        }
        if let Some(max) = self.max_launchable_ranks {
            if ranks > max {
                return Err(LimitViolation::LauncherFailure {
                    requested: ranks,
                    max_ranks: max,
                });
            }
        }
        if let Some(cap) = self.adapter_volume_cap {
            if bytes_per_node_per_iter > cap {
                return Err(LimitViolation::AdapterVolumeExceeded {
                    estimated: bytes_per_node_per_iter,
                    cap,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_check() {
        let l = ExecutionLimits::capacity_only(128);
        assert!(l.check(125, 0.0).is_ok());
        assert!(matches!(
            l.check(216, 0.0),
            Err(LimitViolation::InsufficientCapacity {
                requested: 216,
                available: 128
            })
        ));
    }

    #[test]
    fn launcher_cap() {
        let l = ExecutionLimits {
            max_cores: 1024,
            max_launchable_ranks: Some(512),
            adapter_volume_cap: None,
        };
        assert!(l.check(512, 0.0).is_ok());
        assert!(matches!(
            l.check(729, 0.0),
            Err(LimitViolation::LauncherFailure { .. })
        ));
    }

    #[test]
    fn adapter_volume_cap() {
        let l = ExecutionLimits {
            max_cores: 10_000,
            max_launchable_ranks: None,
            adapter_volume_cap: Some(1e9),
        };
        assert!(l.check(343, 0.9e9).is_ok());
        assert!(matches!(
            l.check(512, 1.4e9),
            Err(LimitViolation::AdapterVolumeExceeded { .. })
        ));
    }

    #[test]
    fn violations_display() {
        let v = LimitViolation::LauncherFailure {
            requested: 729,
            max_ranks: 512,
        };
        assert!(v.to_string().contains("729"));
    }
}
