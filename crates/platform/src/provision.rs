//! The provisioning planner: Table I and Section VI as executable logic.
//!
//! The paper's porting exercise is a dependency-resolution problem: the
//! LifeV application needs a closed set of packages (Section IV-D) plus a
//! working parallel execution environment, each platform starts with a
//! different subset (Table I), and the cheapest remediation differs by
//! platform (reuse > vendor library > package manager [root only] > source
//! build). The planner reproduces both the *plans* (which coloured cell of
//! Table I gets which fix) and the *effort totals* ("about 8 man-hours" on
//! ellipse and lagrange, about a day on EC2, none on puma).

use crate::scheduler::SchedulerKind;
use serde::{Deserialize, Serialize};

/// The software packages of the LifeV stack (paper Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Pkg {
    /// GNU make + binutils etc.
    BuildTools,
    /// Autoconf/automake/libtool.
    Autotools,
    /// C/C++ compiler (GCC >= 4).
    Gcc,
    /// Fortran compiler compatible with C++.
    Gfortran,
    /// CMake >= 2.8 (required by Trilinos).
    CMake,
    /// MPI implementation (e.g. Open MPI).
    Mpi,
    /// BLAS/LAPACK (generic or vendor).
    BlasLapack,
    /// Boost C++ libraries.
    Boost,
    /// HDF5 (1.6 interface).
    Hdf5,
    /// ParMETIS mesh partitioner.
    ParMetis,
    /// SuiteSparse.
    SuiteSparse,
    /// Trilinos.
    Trilinos,
    /// The LifeV library itself plus the applications.
    LifeV,
}

impl Pkg {
    /// All packages in a valid install order base set.
    pub const ALL: [Pkg; 13] = [
        Pkg::BuildTools,
        Pkg::Autotools,
        Pkg::Gcc,
        Pkg::Gfortran,
        Pkg::CMake,
        Pkg::Mpi,
        Pkg::BlasLapack,
        Pkg::Boost,
        Pkg::Hdf5,
        Pkg::ParMetis,
        Pkg::SuiteSparse,
        Pkg::Trilinos,
        Pkg::LifeV,
    ];

    /// Build-time dependencies.
    pub fn deps(self) -> &'static [Pkg] {
        match self {
            Pkg::BuildTools | Pkg::Gcc => &[],
            Pkg::Autotools | Pkg::Gfortran => &[Pkg::BuildTools],
            Pkg::CMake => &[Pkg::Gcc, Pkg::BuildTools],
            Pkg::Mpi => &[Pkg::Gcc, Pkg::BuildTools],
            Pkg::BlasLapack => &[Pkg::Gcc, Pkg::Gfortran, Pkg::BuildTools],
            Pkg::Boost => &[Pkg::Gcc, Pkg::BuildTools],
            Pkg::Hdf5 => &[Pkg::Mpi, Pkg::Gcc, Pkg::BuildTools],
            Pkg::ParMetis => &[Pkg::Mpi, Pkg::Gcc, Pkg::BuildTools],
            Pkg::SuiteSparse => &[Pkg::BlasLapack, Pkg::Gcc, Pkg::BuildTools],
            Pkg::Trilinos => &[Pkg::BlasLapack, Pkg::Mpi, Pkg::CMake, Pkg::Gcc],
            Pkg::LifeV => &[
                Pkg::Trilinos,
                Pkg::ParMetis,
                Pkg::SuiteSparse,
                Pkg::Hdf5,
                Pkg::Boost,
                Pkg::Mpi,
                Pkg::Autotools,
                Pkg::Gcc,
            ],
        }
    }

    /// Man-hours for an experienced developer to build this package from
    /// source in user space (configure + compile + install + smoke test).
    pub fn source_build_hours(self) -> f64 {
        match self {
            Pkg::BuildTools => 1.0,
            Pkg::Autotools => 0.5,
            Pkg::Gcc => 4.0, // bootstrap from source: last resort
            Pkg::Gfortran => 1.0,
            Pkg::CMake => 0.5,
            Pkg::Mpi => 1.5,
            Pkg::BlasLapack => 1.25, // GotoBLAS2 + LAPACK
            Pkg::Boost => 1.0,
            Pkg::Hdf5 => 0.75,
            Pkg::ParMetis => 0.5,
            Pkg::SuiteSparse => 0.75,
            Pkg::Trilinos => 2.5,
            Pkg::LifeV => 0.5, // the team's own Makefile-driven build
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Pkg::BuildTools => "GNU make/build tools",
            Pkg::Autotools => "Autotools",
            Pkg::Gcc => "GCC (C/C++)",
            Pkg::Gfortran => "GFortran",
            Pkg::CMake => "CMake >= 2.8",
            Pkg::Mpi => "Open MPI",
            Pkg::BlasLapack => "BLAS/LAPACK",
            Pkg::Boost => "Boost",
            Pkg::Hdf5 => "HDF5",
            Pkg::ParMetis => "ParMETIS",
            Pkg::SuiteSparse => "SuiteSparse",
            Pkg::Trilinos => "Trilinos",
            Pkg::LifeV => "LifeV + applications",
        }
    }
}

/// How a missing capability gets provided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Already usable as found.
    Preinstalled,
    /// Use the CPU vendor's library (ACML, MKL).
    VendorLibrary(String),
    /// Install from the system package repository (requires root).
    PackageManager,
    /// Download sources and build in user space.
    SourceBuild,
    /// Ask the system administrators (quota raise, configuration).
    AdminRequest(String),
    /// Reconfigure the system (ssh keys, security groups, partitions) —
    /// requires root or service-console access.
    SystemConfig(String),
    /// Let Open MPI liaise with a serial-only SGE to run parallel jobs.
    SgeLiaison,
}

impl Action {
    /// Man-hours this action takes, for package `pkg` where applicable.
    pub fn hours(&self, pkg: Option<Pkg>) -> f64 {
        match self {
            Action::Preinstalled => 0.0,
            Action::VendorLibrary(_) => 0.25,
            Action::PackageManager => 0.1,
            Action::SourceBuild => pkg
                .expect("source builds are per package")
                .source_build_hours(),
            Action::AdminRequest(_) => 0.5,
            Action::SystemConfig(_) => 0.5,
            Action::SgeLiaison => 0.5,
        }
    }

    /// Short label for reports (colour-coded cells of Table I).
    pub fn label(&self) -> String {
        match self {
            Action::Preinstalled => "preinstalled".into(),
            Action::VendorLibrary(v) => format!("vendor lib ({v})"),
            Action::PackageManager => "yum install".into(),
            Action::SourceBuild => "source install".into(),
            Action::AdminRequest(what) => format!("admin request: {what}"),
            Action::SystemConfig(what) => format!("system config: {what}"),
            Action::SgeLiaison => "Open MPI <-> SGE liaison".into(),
        }
    }
}

/// A platform's initial software environment (the "before porting" state of
/// Table I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformEnvironment {
    /// Platform key.
    pub key: String,
    /// Packages already usable.
    pub preinstalled: Vec<Pkg>,
    /// CPU-vendor BLAS/LAPACK available ("ACML", "MKL").
    pub vendor_blas: Option<String>,
    /// Root access with a working package manager (EC2's yum).
    pub root_package_manager: bool,
    /// Packages the package manager can provide (when rooted). CMake 2.8
    /// was *not* in EC2's repos — the paper built it from source.
    pub pkg_manager_has: Vec<Pkg>,
    /// Scratch/storage adequate out of the box.
    pub scratch_sufficient: bool,
    /// The storage remediation if insufficient.
    pub scratch_fix: Option<Action>,
    /// Scheduler (drives the parallel-execution remediation).
    pub scheduler: SchedulerKind,
    /// IaaS-only setup chores (ssh mutual auth, open intranet ports,
    /// image preparation).
    pub iaas_setup: Vec<Action>,
    /// Level of on-site support (Table I "support" row), for reporting.
    pub support: String,
}

/// The four platforms' initial environments, per Section VI.
pub fn environment_of(key: &str) -> Option<PlatformEnvironment> {
    match key {
        "puma" => Some(PlatformEnvironment {
            key: "puma".into(),
            preinstalled: Pkg::ALL.to_vec(), // the home environment
            vendor_blas: None,
            root_package_manager: false,
            pkg_manager_has: vec![],
            scratch_sufficient: true,
            scratch_fix: None,
            scheduler: SchedulerKind::PbsTorque,
            iaas_setup: vec![],
            support: "full".into(),
        }),
        "ellipse" => Some(PlatformEnvironment {
            key: "ellipse".into(),
            preinstalled: vec![
                Pkg::BuildTools,
                Pkg::Autotools,
                Pkg::Gcc,
                Pkg::Gfortran,
                Pkg::CMake,
            ],
            vendor_blas: Some("ACML".into()),
            root_package_manager: false,
            pkg_manager_has: vec![],
            scratch_sufficient: false,
            scratch_fix: Some(Action::AdminRequest("raise disk quota".into())),
            scheduler: SchedulerKind::SgeSerialOnly,
            iaas_setup: vec![],
            support: "very limited".into(),
        }),
        "lagrange" => Some(PlatformEnvironment {
            key: "lagrange".into(),
            preinstalled: vec![
                Pkg::BuildTools,
                Pkg::Autotools,
                Pkg::Gcc,
                Pkg::Gfortran,
                Pkg::CMake,
                Pkg::Mpi,
            ],
            vendor_blas: Some("MKL".into()),
            root_package_manager: false,
            pkg_manager_has: vec![],
            scratch_sufficient: true,
            scratch_fix: None,
            scheduler: SchedulerKind::PbsPro,
            iaas_setup: vec![],
            support: "limited".into(),
        }),
        "ec2" => Some(PlatformEnvironment {
            key: "ec2".into(),
            preinstalled: vec![],
            vendor_blas: None,
            root_package_manager: true,
            pkg_manager_has: vec![
                Pkg::BuildTools,
                Pkg::Autotools,
                Pkg::Gcc,
                Pkg::Gfortran,
                Pkg::Mpi,
            ],
            scratch_sufficient: false,
            scratch_fix: Some(Action::SystemConfig("resize boot partition".into())),
            scheduler: SchedulerKind::DirectShell,
            iaas_setup: vec![
                Action::SystemConfig("generate + distribute ssh host keys".into()),
                Action::SystemConfig("open intranet TCP ports in the security group".into()),
                Action::SystemConfig("save the preconditioned private image".into()),
            ],
            support: "none".into(),
        }),
        _ => None,
    }
}

/// One planned remediation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    /// What is being provided.
    pub item: String,
    /// How.
    pub action: Action,
    /// Man-hours.
    pub hours: f64,
}

/// A full provisioning plan for one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvisionPlan {
    /// Platform key.
    pub platform: String,
    /// Ordered steps (dependencies before dependents).
    pub steps: Vec<PlanStep>,
}

impl ProvisionPlan {
    /// Total man-hours.
    pub fn total_hours(&self) -> f64 {
        // `0.0 +` normalizes the empty-plan sum (which can be -0.0) so
        // reports never print "-0.0 h".
        0.0 + self.steps.iter().map(|s| s.hours).sum::<f64>()
    }

    /// Steps that actually cost effort (not already-preinstalled no-ops).
    pub fn work_steps(&self) -> impl Iterator<Item = &PlanStep> {
        self.steps
            .iter()
            .filter(|s| s.action != Action::Preinstalled)
    }

    /// Renders a human-readable plan.
    pub fn render(&self) -> String {
        let mut out = format!("Provisioning plan for {}\n", self.platform);
        for s in &self.steps {
            out.push_str(&format!(
                "  {:<28} {:<38} {:>5.2} h\n",
                s.item,
                s.action.label(),
                s.hours
            ));
        }
        out.push_str(&format!(
            "  {:<28} {:<38} {:>5.2} h\n",
            "TOTAL",
            "",
            self.total_hours()
        ));
        out
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A package cannot be provided by any mechanism.
    Unsatisfiable(Pkg),
}

/// Picks the cheapest action that can provide `pkg` on `env` (reuse >
/// vendor library > package manager > source build).
fn best_action(pkg: Pkg, env: &PlatformEnvironment) -> Action {
    if env.preinstalled.contains(&pkg) {
        return Action::Preinstalled;
    }
    if pkg == Pkg::BlasLapack {
        if let Some(vendor) = &env.vendor_blas {
            return Action::VendorLibrary(vendor.clone());
        }
    }
    if env.root_package_manager && env.pkg_manager_has.contains(&pkg) {
        return Action::PackageManager;
    }
    Action::SourceBuild
}

/// Computes the provisioning plan that takes `env` to a state able to build
/// and run the LifeV applications in parallel.
pub fn plan(env: &PlatformEnvironment) -> Result<ProvisionPlan, PlanError> {
    let mut steps = Vec::new();

    // Packages in dependency (topological) order: Pkg::ALL is already a
    // valid order for this DAG; assert it in tests.
    for pkg in Pkg::ALL {
        let action = best_action(pkg, env);
        if action == Action::SourceBuild {
            // A source build needs a compiler and build tools from
            // somewhere; Gcc itself falling back to a source build without
            // any compiler is unsatisfiable.
            if pkg == Pkg::Gcc && !env.root_package_manager {
                return Err(PlanError::Unsatisfiable(Pkg::Gcc));
            }
        }
        let hours = action.hours(Some(pkg));
        if action != Action::Preinstalled {
            steps.push(PlanStep {
                item: pkg.name().into(),
                action,
                hours,
            });
        }
    }

    // Storage.
    if !env.scratch_sufficient {
        let action = env
            .scratch_fix
            .clone()
            .unwrap_or(Action::AdminRequest("storage remediation".into()));
        let hours = action.hours(None);
        steps.push(PlanStep {
            item: "scratch space".into(),
            action,
            hours,
        });
    }

    // Parallel execution environment.
    match env.scheduler {
        SchedulerKind::PbsTorque | SchedulerKind::PbsPro => {}
        SchedulerKind::SgeSerialOnly => {
            steps.push(PlanStep {
                item: "parallel job launch".into(),
                action: Action::SgeLiaison,
                hours: Action::SgeLiaison.hours(None),
            });
        }
        SchedulerKind::DirectShell => {
            for action in &env.iaas_setup {
                steps.push(PlanStep {
                    item: "execution environment".into(),
                    action: action.clone(),
                    hours: action.hours(None),
                });
            }
        }
    }

    // Application build against the assembled stack (trivial at home where
    // LifeV itself is preinstalled).
    if !env.preinstalled.contains(&Pkg::LifeV) {
        steps.push(PlanStep {
            item: "application Makefile update".into(),
            action: Action::SystemConfig("adapt Makefile to the new prefix layout".into()),
            hours: 0.25,
        });
    }

    Ok(ProvisionPlan {
        platform: env.key.clone(),
        steps,
    })
}

/// The paper's Section VIII future-work direction, made concrete:
/// "Use of third party software to address mundane, repeatable tasks (e.g.
/// DoIt) or predefined images for IaaS (StarCluster, OpenFOAM-on-EC2)
/// could significantly reduce this cost."
///
/// Once a platform has been provisioned once, the effort can be *banked*:
/// on IaaS the whole environment is saved as a private machine image whose
/// re-instantiation is minutes of work; on conventional clusters the
/// user-space installation tree persists, leaving only per-run
/// housekeeping. [`plan_with_prepared_environment`] returns the plan for
/// the *second and subsequent* campaigns.
pub fn plan_with_prepared_environment(
    env: &PlatformEnvironment,
) -> Result<ProvisionPlan, PlanError> {
    // The first campaign must have been plannable at all.
    let _ = plan(env)?;
    let mut steps = Vec::new();
    if env.root_package_manager {
        // IaaS: launch instances from the saved private image, refresh the
        // run-specific host list / keys.
        steps.push(PlanStep {
            item: "instantiate preconditioned image".into(),
            action: Action::SystemConfig("launch instances from the private AMI".into()),
            hours: 0.25,
        });
        steps.push(PlanStep {
            item: "run-specific host configuration".into(),
            action: Action::SystemConfig("regenerate the mpiexec hosts list".into()),
            hours: 0.25,
        });
    } else if !env.preinstalled.contains(&Pkg::LifeV) {
        // Conventional cluster: the `$HOME` installation tree persists;
        // only environment sanity checks remain.
        steps.push(PlanStep {
            item: "reuse user-space installation".into(),
            action: Action::SystemConfig("verify module/paths still resolve".into()),
            hours: 0.25,
        });
    }
    Ok(ProvisionPlan {
        platform: format!("{} (prepared)", env.key),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(key: &str) -> ProvisionPlan {
        plan(&environment_of(key).unwrap()).unwrap()
    }

    #[test]
    fn pkg_all_is_a_topological_order() {
        for (i, pkg) in Pkg::ALL.iter().enumerate() {
            for dep in pkg.deps() {
                let j = Pkg::ALL.iter().position(|p| p == dep).unwrap();
                assert!(j < i, "{dep:?} must precede {pkg:?}");
            }
        }
    }

    #[test]
    fn home_platform_needs_no_work() {
        let p = plan_for("puma");
        assert_eq!(p.total_hours(), 0.0, "{}", p.render());
        assert_eq!(p.work_steps().count(), 0);
    }

    #[test]
    fn ellipse_takes_about_eight_hours() {
        // Paper Section VI-B: "about 8 man-hours of work by an experienced
        // member of the LifeV developers team".
        let p = plan_for("ellipse");
        let h = p.total_hours();
        assert!((7.0..=9.5).contains(&h), "{h} h\n{}", p.render());
        // MPI must be a source build; BLAS must come from ACML.
        assert!(p
            .steps
            .iter()
            .any(|s| s.item.contains("Open MPI") && s.action == Action::SourceBuild));
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(&s.action, Action::VendorLibrary(v) if v == "ACML")));
        // SGE needs the liaison.
        assert!(p.steps.iter().any(|s| s.action == Action::SgeLiaison));
    }

    #[test]
    fn lagrange_takes_about_eight_hours() {
        // Paper Section VI-C: "about 8 man-hours for the LifeV developer".
        let p = plan_for("lagrange");
        let h = p.total_hours();
        assert!((6.0..=9.5).contains(&h), "{h} h\n{}", p.render());
        // MPI is preinstalled there; Trilinos is the big source build.
        assert!(!p.steps.iter().any(|s| s.item.contains("Open MPI")));
        assert!(p
            .steps
            .iter()
            .any(|s| s.item.contains("Trilinos") && s.action == Action::SourceBuild));
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(&s.action, Action::VendorLibrary(v) if v == "MKL")));
    }

    #[test]
    fn ec2_takes_about_a_day() {
        // Paper Section VI-D + VIII: "provisioning of a machine took about
        // a day"; EC2 needed the most work.
        let p = plan_for("ec2");
        let h = p.total_hours();
        assert!((8.5..=12.0).contains(&h), "{h} h\n{}", p.render());
        // Compilers come from yum; CMake from source (not in the repos).
        assert!(p
            .steps
            .iter()
            .any(|s| s.item.contains("GCC") && s.action == Action::PackageManager));
        assert!(p
            .steps
            .iter()
            .any(|s| s.item.contains("CMake") && s.action == Action::SourceBuild));
        // Cloud-specific system configuration shows up.
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(&s.action, Action::SystemConfig(w) if w.contains("ssh"))));
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(&s.action, Action::SystemConfig(w) if w.contains("security group"))));
    }

    #[test]
    fn effort_ordering_matches_the_paper() {
        let puma = plan_for("puma").total_hours();
        let ellipse = plan_for("ellipse").total_hours();
        let lagrange = plan_for("lagrange").total_hours();
        let ec2 = plan_for("ec2").total_hours();
        assert!(puma < lagrange);
        assert!(lagrange <= ellipse, "{lagrange} vs {ellipse}");
        assert!(ellipse < ec2, "{ellipse} vs {ec2}");
    }

    #[test]
    fn unknown_platform_has_no_environment() {
        assert!(environment_of("azure").is_none());
    }

    #[test]
    fn bare_user_space_without_compiler_is_unsatisfiable() {
        let env = PlatformEnvironment {
            key: "bare".into(),
            preinstalled: vec![],
            vendor_blas: None,
            root_package_manager: false,
            pkg_manager_has: vec![],
            scratch_sufficient: true,
            scratch_fix: None,
            scheduler: SchedulerKind::PbsTorque,
            iaas_setup: vec![],
            support: "none".into(),
        };
        assert!(matches!(
            plan(&env),
            Err(PlanError::Unsatisfiable(Pkg::Gcc))
        ));
    }

    #[test]
    fn render_mentions_every_step() {
        let p = plan_for("ec2");
        let text = p.render();
        assert!(text.contains("Trilinos"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn prepared_images_slash_repeat_effort() {
        // Section VIII: predefined images "could significantly reduce this
        // cost". The second EC2 campaign costs minutes, not a day.
        let env = environment_of("ec2").unwrap();
        let first = plan(&env).unwrap().total_hours();
        let repeat = plan_with_prepared_environment(&env).unwrap();
        assert!(repeat.total_hours() <= 0.5, "{}", repeat.render());
        assert!(first / repeat.total_hours() > 15.0);
        assert!(repeat.steps.iter().any(|s| s.item.contains("image")));
    }

    #[test]
    fn prepared_cluster_reuses_the_home_tree() {
        let env = environment_of("ellipse").unwrap();
        let repeat = plan_with_prepared_environment(&env).unwrap();
        assert!(repeat.total_hours() <= 0.25 + 1e-12);
        // The home platform has nothing to redo at all.
        let home = plan_with_prepared_environment(&environment_of("puma").unwrap()).unwrap();
        assert_eq!(home.total_hours(), 0.0);
    }

    #[test]
    fn prepared_plan_requires_a_satisfiable_first_plan() {
        let env = PlatformEnvironment {
            key: "bare".into(),
            preinstalled: vec![],
            vendor_blas: None,
            root_package_manager: false,
            pkg_manager_has: vec![],
            scratch_sufficient: true,
            scratch_fix: None,
            scheduler: SchedulerKind::PbsTorque,
            iaas_setup: vec![],
            support: "none".into(),
        };
        assert!(matches!(
            plan_with_prepared_environment(&env),
            Err(PlanError::Unsatisfiable(Pkg::Gcc))
        ));
    }
}
