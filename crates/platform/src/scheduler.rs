//! Job schedulers and availability (queue-wait) models.
//!
//! The paper stresses that availability — "wait time to obtain access to the
//! machine" — is a first-class axis of heterogeneity: "IaaS's provide
//! resources immediately, while local and grid resources are often subject
//! to long queue wait times — an aspect that might offset any additional
//! expense."

use hetero_simmpi::rng::{splitmix64, to_unit};
use serde::{Deserialize, Serialize};

/// The execution mechanism on a platform (Table I's "execution" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// PBS/Torque batch scheduler (puma).
    PbsTorque,
    /// Sun Grid Engine configured for serial batches only; parallel jobs
    /// run by letting Open MPI liaise with SGE (ellipse).
    SgeSerialOnly,
    /// PBS Professional (lagrange).
    PbsPro,
    /// Direct shell + mpiexec on IaaS hosts (ec2).
    DirectShell,
}

impl SchedulerKind {
    /// Whether the scheduler natively supports parallel jobs.
    pub fn native_parallel(self) -> bool {
        matches!(self, SchedulerKind::PbsTorque | SchedulerKind::PbsPro)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::PbsTorque => "PBS (Torque)",
            SchedulerKind::SgeSerialOnly => "SGE (serial-only)",
            SchedulerKind::PbsPro => "PBS Professional",
            SchedulerKind::DirectShell => "shell + mpiexec",
        }
    }
}

/// A deterministic queue-wait model: `wait = base + per_node * nodes`,
/// scaled by a hash-seeded congestion factor in `[1, 1 + spread]` and by a
/// superlinear large-job penalty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueModel {
    /// Minimum wait in seconds (submission/boot overhead).
    pub base: f64,
    /// Additional wait per node requested.
    pub per_node: f64,
    /// Relative spread of the congestion factor (0 = deterministic).
    pub spread: f64,
    /// Exponent on the node count for large-job queue penalties
    /// (1.0 = linear; grid centers queue big jobs much longer).
    pub size_exponent: f64,
}

impl QueueModel {
    /// Expected wait in seconds to obtain `nodes` nodes, for a given
    /// experiment seed (deterministic per (model, seed, nodes)).
    pub fn wait_seconds(&self, nodes: usize, seed: u64) -> f64 {
        assert!(nodes > 0);
        let h = splitmix64(seed ^ (nodes as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let congestion = 1.0 + self.spread * to_unit(h);
        (self.base + self.per_node * (nodes as f64).powf(self.size_exponent)) * congestion
    }

    /// Wait to *re*-acquire `nodes` nodes for restart attempt `attempt`
    /// (1-based). Each attempt resamples the congestion draw — the queue
    /// the job rejoins is not the queue it left — by salting the seed, so
    /// retries are deterministic per `(model, seed, nodes, attempt)`.
    pub fn reacquisition_wait_seconds(&self, nodes: usize, seed: u64, attempt: usize) -> f64 {
        self.wait_seconds(
            nodes,
            splitmix64(seed ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
        )
    }

    /// An on-demand model: boot latency only (IaaS).
    pub fn on_demand(boot_seconds: f64, per_node: f64) -> Self {
        QueueModel {
            base: boot_seconds,
            per_node,
            spread: 0.3,
            size_exponent: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_parallel_flags() {
        assert!(SchedulerKind::PbsTorque.native_parallel());
        assert!(SchedulerKind::PbsPro.native_parallel());
        assert!(!SchedulerKind::SgeSerialOnly.native_parallel());
        assert!(!SchedulerKind::DirectShell.native_parallel());
    }

    #[test]
    fn wait_grows_with_nodes() {
        let q = QueueModel {
            base: 600.0,
            per_node: 60.0,
            spread: 0.0,
            size_exponent: 1.2,
        };
        assert!(q.wait_seconds(32, 1) > q.wait_seconds(2, 1));
    }

    #[test]
    fn wait_is_deterministic_per_seed() {
        let q = QueueModel {
            base: 100.0,
            per_node: 10.0,
            spread: 0.5,
            size_exponent: 1.0,
        };
        assert_eq!(q.wait_seconds(8, 42), q.wait_seconds(8, 42));
        assert_ne!(q.wait_seconds(8, 42), q.wait_seconds(8, 43));
    }

    #[test]
    fn on_demand_is_fast() {
        let cloud = QueueModel::on_demand(90.0, 2.0);
        let grid = QueueModel {
            base: 3600.0,
            per_node: 120.0,
            spread: 1.0,
            size_exponent: 1.3,
        };
        for nodes in [1usize, 8, 63] {
            assert!(cloud.wait_seconds(nodes, 7) < grid.wait_seconds(nodes, 7) / 5.0);
        }
    }

    #[test]
    fn congestion_bounded_by_spread() {
        let q = QueueModel {
            base: 100.0,
            per_node: 0.0,
            spread: 0.5,
            size_exponent: 1.0,
        };
        for seed in 0..200 {
            let w = q.wait_seconds(4, seed);
            assert!((100.0..150.0 + 1e-9).contains(&w), "w = {w}");
        }
    }
}
