//! The full platform specification: hardware, environment, cost, limits.

use crate::cost::CostModel;
use crate::limits::{ExecutionLimits, LimitViolation};
use crate::scheduler::{QueueModel, SchedulerKind};
use hetero_simmpi::{ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
use serde::{Deserialize, Serialize};

/// User privilege on the platform (Table I's "access" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Unprivileged user space: software must be installed under `$HOME`.
    UserSpace,
    /// Root on the (virtual) machine: package managers and system
    /// configuration are available.
    Root,
}

/// One target platform, fully parameterized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Short key ("puma", "ellipse", "lagrange", "ec2").
    pub key: String,
    /// Human-readable description.
    pub description: String,
    /// CPU model string (Table I "cpu arch.").
    pub cpu_model: String,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Nodes available to a single job.
    pub max_nodes: usize,
    /// RAM per core in GiB (Table I "RAM/core").
    pub ram_per_core_gib: f64,
    /// Per-core roofline model.
    pub compute: ComputeModel,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Privilege level.
    pub access: AccessKind,
    /// Execution mechanism.
    pub scheduler: SchedulerKind,
    /// Queue-wait model.
    pub queue: QueueModel,
    /// Billing.
    pub cost: CostModel,
    /// Execution limits.
    pub limits: ExecutionLimits,
    /// Mean time between hardware failures of one node, hours. Drives the
    /// crash process of the fault subsystem; commodity clusters sit near
    /// 10^3 h, curated grid resources higher.
    pub node_mtbf_hours: f64,
}

impl PlatformSpec {
    /// Cluster topology for a job of `ranks` ranks (block placement over
    /// the minimum node count, single placement group).
    pub fn topology(&self, ranks: usize) -> ClusterTopology {
        let nodes = ranks
            .div_ceil(self.cores_per_node)
            .min(self.max_nodes)
            .max(1);
        ClusterTopology::uniform(nodes, self.cores_per_node)
    }

    /// SPMD configuration for the threaded engine.
    pub fn spmd_config(&self, ranks: usize, seed: u64) -> SpmdConfig {
        SpmdConfig {
            size: ranks,
            topo: self.topology(ranks),
            net: self.network.clone(),
            compute: self.compute,
            seed,
        }
    }

    /// Nodes needed for `ranks` ranks.
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Checks the platform's execution limits for a job.
    pub fn check_limits(
        &self,
        ranks: usize,
        bytes_per_node_per_iter: f64,
    ) -> Result<(), LimitViolation> {
        self.limits.check(ranks, bytes_per_node_per_iter)
    }

    /// Dollars for `ranks` ranks held for `seconds`.
    pub fn cost_of(&self, ranks: usize, seconds: f64) -> f64 {
        self.cost.cost(ranks, seconds)
    }

    /// Queue wait (seconds) before a job on `ranks` ranks starts.
    pub fn queue_wait(&self, ranks: usize, seed: u64) -> f64 {
        self.queue.wait_seconds(self.nodes_for(ranks).max(1), seed)
    }

    /// Total core capacity.
    pub fn total_cores(&self) -> usize {
        self.cores_per_node * self.max_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Billing;

    fn spec() -> PlatformSpec {
        PlatformSpec {
            key: "test".into(),
            description: "test platform".into(),
            cpu_model: "Test CPU".into(),
            cores_per_node: 4,
            max_nodes: 8,
            ram_per_core_gib: 2.0,
            compute: ComputeModel::new(1e9, 4e9),
            network: NetworkModel::gigabit_ethernet(),
            access: AccessKind::UserSpace,
            scheduler: SchedulerKind::PbsTorque,
            queue: QueueModel {
                base: 60.0,
                per_node: 10.0,
                spread: 0.0,
                size_exponent: 1.0,
            },
            cost: CostModel {
                billing: Billing::PerCoreHour(0.05),
                note: String::new(),
            },
            limits: ExecutionLimits::capacity_only(32),
            node_mtbf_hours: 1000.0,
        }
    }

    #[test]
    fn topology_uses_minimum_nodes() {
        let s = spec();
        assert_eq!(s.topology(4).num_nodes(), 1);
        assert_eq!(s.topology(5).num_nodes(), 2);
        assert_eq!(s.nodes_for(9), 3);
    }

    #[test]
    fn spmd_config_round_trip() {
        let s = spec();
        let cfg = s.spmd_config(8, 7);
        assert_eq!(cfg.size, 8);
        assert_eq!(cfg.topo.cores_per_node(), 4);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn limits_enforced() {
        let s = spec();
        assert!(s.check_limits(32, 0.0).is_ok());
        assert!(s.check_limits(33, 0.0).is_err());
    }

    #[test]
    fn queue_wait_positive() {
        let s = spec();
        assert!(s.queue_wait(8, 0) >= 60.0);
    }
}
